// Adjusting a sampled contingency table to known population margins —
// Deming & Stephan's original 1940 problem, the statistics application in
// the paper's opening list.
//
// A survey samples ~1% of a population cross-classified on two attributes;
// the full-population margins are known from a census. We adjust the sample
// with two estimators and measure which recovers the population structure
// better than the raw sample does:
//   * the chi-square quadratic estimate (SEA; Deming & Stephan's weights),
//   * the cross-entropy estimate (RAS / iterative proportional fitting).
#include <cmath>
#include <iostream>

#include "core/diagonal_sea.hpp"
#include "datasets/contingency.hpp"
#include "entropy/entropy_sea.hpp"
#include "io/table_printer.hpp"

int main() {
  using namespace sea;

  datasets::ContingencySpec spec;
  spec.rows = 8;
  spec.cols = 10;
  spec.population = 2e6;
  spec.sample_rate = 0.01;
  spec.association = 0.5;
  const auto inst = datasets::MakeContingency(spec);

  double sample_total = 0.0, pop_total = 0.0;
  for (double v : inst.sample.Flat()) sample_total += v;
  for (double v : inst.population.Flat()) pop_total += v;
  std::cout << "population " << long(pop_total) << ", sample "
            << long(sample_total) << " ("
            << TablePrinter::Num(100.0 * sample_total / pop_total, 2)
            << "%)\n\n";

  // Error of an estimate against the scaled-down population structure.
  const double scale = sample_total / pop_total;
  auto rel_error = [&](const DenseMatrix& x) {
    double num = 0.0, den = 0.0;
    for (std::size_t k = 0; k < x.size(); ++k) {
      const double truth = scale * inst.population.Flat()[k];
      num += std::abs(x.Flat()[k] - truth);
      den += truth;
    }
    return num / den;
  };

  // Quadratic (chi-square) adjustment via SEA.
  const auto problem = datasets::MakeAdjustmentProblem(inst);
  SeaOptions opts;
  opts.epsilon = 1e-9;
  opts.criterion = StopCriterion::kResidualAbs;
  const auto quad = SolveDiagonal(problem, opts);

  // Entropy adjustment via the RAS member of the family.
  EntropyProblem ent;
  ent.x0 = inst.sample;
  ent.s0 = problem.s0();
  ent.d0 = problem.d0();
  const auto kl = SolveEntropy(ent, opts);

  TablePrinter t({"estimate", "mean relative cell error", "converged",
                  "iterations"});
  t.AddRow({"raw sample", TablePrinter::Num(rel_error(inst.sample), 4), "-",
            "-"});
  t.AddRow({"chi-square (SEA)", TablePrinter::Num(rel_error(quad.solution.x), 4),
            quad.result.converged() ? "yes" : "NO",
            TablePrinter::Int(long(quad.result.iterations))});
  t.AddRow({"entropy (RAS)", TablePrinter::Num(rel_error(kl.x), 4),
            kl.result.converged() ? "yes" : "NO",
            TablePrinter::Int(long(kl.result.iterations))});
  t.Print(std::cout);

  const bool improved = rel_error(quad.solution.x) < rel_error(inst.sample) &&
                        rel_error(kl.x) < rel_error(inst.sample);
  std::cout << "\nmargin adjustment "
            << (improved ? "improves" : "DOES NOT improve")
            << " recovery of the population structure\n";
  return quad.result.converged() && kl.result.converged() && improved ? 0 : 1;
}
