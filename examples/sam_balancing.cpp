// Balancing a social accounting matrix (the paper's Table 3 application).
//
// A SAM assembled from disparate sources is inconsistent: account i's
// receipts (row total) disagree with its expenditures (column total). The
// SAM estimation problem finds the nearest transaction matrix whose accounts
// balance exactly, estimating the totals along the way (paper objective (9),
// constraints (7)-(8)).
#include <iostream>

#include "core/diagonal_sea.hpp"
#include "datasets/sam_datasets.hpp"
#include "io/table_printer.hpp"

int main() {
  using namespace sea;

  datasets::SamSpec spec;
  spec.name = "demo-sam";
  spec.accounts = 12;
  spec.transactions = 0;  // fully dense
  spec.perturbation = 0.15;
  const auto problem = datasets::MakeSam(spec);

  // Show the imbalance in the raw data.
  const Vector rows = problem.x0().RowSums();
  const Vector cols = problem.x0().ColSums();
  double worst = 0.0;
  for (std::size_t i = 0; i < spec.accounts; ++i)
    worst = std::max(worst, std::abs(rows[i] - cols[i]) /
                                std::max(1.0, rows[i]));
  std::cout << "raw SAM: worst account imbalance "
            << TablePrinter::Num(100.0 * worst, 2) << "%\n";

  SeaOptions opts;
  opts.epsilon = 1e-6;
  opts.criterion = StopCriterion::kResidualRel;
  const auto run = SolveDiagonal(problem, opts);
  std::cout << "SEA: converged=" << std::boolalpha << run.result.converged()
            << " iterations=" << run.result.iterations << "\n\n";

  TablePrinter table({"account", "raw receipts", "raw expenditures",
                      "balanced total"});
  for (std::size_t i = 0; i < spec.accounts; ++i) {
    double rs = 0.0;
    for (std::size_t j = 0; j < spec.accounts; ++j)
      rs += run.solution.x(i, j);
    table.AddRow({std::to_string(i + 1), TablePrinter::Num(rows[i], 2),
                  TablePrinter::Num(cols[i], 2), TablePrinter::Num(rs, 2)});
  }
  table.Print(std::cout);

  // Verify the defining SAM property: receipts == expenditures per account.
  double post = 0.0;
  for (std::size_t i = 0; i < spec.accounts; ++i) {
    double rs = 0.0, cs = 0.0;
    for (std::size_t j = 0; j < spec.accounts; ++j) {
      rs += run.solution.x(i, j);
      cs += run.solution.x(j, i);
    }
    post = std::max(post, std::abs(rs - cs) / std::max(1.0, rs));
  }
  std::cout << "\nbalanced SAM: worst account imbalance "
            << TablePrinter::Num(100.0 * post, 6) << "%\n";
  return run.result.converged() ? 0 : 1;
}
