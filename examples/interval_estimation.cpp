// Interval-constrained table estimation (the Harrigan & Buchanan 1984
// variant the paper's Section 2 cites): an analyst trusts the growth targets
// only up to a band, so each total must land within +-2% of its target
// rather than hit it exactly.
//
// The example contrasts three regimes on the same data:
//   fixed    — totals forced exactly,
//   elastic  — totals are soft targets (penalty only),
//   interval — soft targets plus hard +-2% bands,
// and shows the interval solution interpolating between them: cheaper than
// fixed, more disciplined than elastic.
#include <iostream>

#include "core/diagonal_sea.hpp"
#include "datasets/weights.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"
#include "support/rng.hpp"

int main() {
  using namespace sea;
  Rng rng(2026);

  // A 20-sector table and 12% grown targets (consistent across sides).
  const std::size_t n = 20;
  DenseMatrix x0(n, n);
  for (double& v : x0.Flat()) v = rng.Uniform(1.0, 100.0);
  Vector s0 = x0.RowSums(), d0 = x0.ColSums();
  for (double& v : s0) v *= 1.12;
  for (double& v : d0) v *= 1.12;
  double ssum = 0.0, dsum = 0.0;
  for (double v : s0) ssum += v;
  for (double v : d0) dsum += v;
  for (double& v : d0) v *= ssum / dsum;

  const DenseMatrix gamma = datasets::ChiSquareWeights(x0);
  const Vector alpha(n, 0.001), beta(n, 0.001);  // weak total penalties
  Vector s_lo(n), s_hi(n), d_lo(n), d_hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    s_lo[i] = s0[i] * 0.98;
    s_hi[i] = s0[i] * 1.02;
    d_lo[i] = d0[i] * 0.98;
    d_hi[i] = d0[i] * 1.02;
  }

  SeaOptions opts;
  opts.epsilon = 1e-8;
  opts.criterion = StopCriterion::kResidualAbs;
  opts.max_iterations = 500000;

  const auto fixed =
      SolveDiagonal(DiagonalProblem::MakeFixed(x0, gamma, s0, d0), opts);
  const auto elastic = SolveDiagonal(
      DiagonalProblem::MakeElastic(x0, gamma, s0, alpha, d0, beta), opts);
  const auto interval = SolveDiagonal(
      DiagonalProblem::MakeInterval(x0, gamma, s0, alpha, s_lo, s_hi, d0,
                                    beta, d_lo, d_hi),
      opts);

  auto matrix_dev = [&](const DenseMatrix& x) {
    double dev = 0.0;
    for (std::size_t k = 0; k < x.size(); ++k) {
      const double d = x.Flat()[k] - x0.Flat()[k];
      dev += gamma.Flat()[k] * d * d;
    }
    return dev;
  };
  auto worst_total_gap = [&](const Vector& s) {
    double g = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      g = std::max(g, std::abs(s[i] - s0[i]) / s0[i]);
    return g;
  };

  TablePrinter t({"regime", "matrix deviation", "worst total gap",
                  "iterations"});
  t.AddRow({"fixed", TablePrinter::Num(matrix_dev(fixed.solution.x), 3),
            TablePrinter::Num(100.0 * worst_total_gap(fixed.solution.s), 2) +
                "%",
            TablePrinter::Int(long(fixed.result.iterations))});
  t.AddRow({"elastic", TablePrinter::Num(matrix_dev(elastic.solution.x), 3),
            TablePrinter::Num(100.0 * worst_total_gap(elastic.solution.s),
                              2) +
                "%",
            TablePrinter::Int(long(elastic.result.iterations))});
  t.AddRow(
      {"interval (+-2%)",
       TablePrinter::Num(matrix_dev(interval.solution.x), 3),
       TablePrinter::Num(100.0 * worst_total_gap(interval.solution.s), 2) +
           "%",
       TablePrinter::Int(long(interval.result.iterations))});
  t.Print(std::cout);

  // The interval solution's matrix cost sits between elastic and fixed, and
  // its totals respect the band exactly.
  bool bands_ok = true;
  for (std::size_t i = 0; i < n; ++i)
    bands_ok = bands_ok && interval.solution.s[i] >= s_lo[i] - 1e-7 &&
               interval.solution.s[i] <= s_hi[i] + 1e-7;
  std::cout << "\ninterval totals within the +-2% bands: "
            << (bands_ok ? "yes" : "NO") << '\n';
  return fixed.result.converged() && elastic.result.converged() &&
                 interval.result.converged() && bands_ok
             ? 0
             : 1;
}
