// Projecting migration flows (the paper's Table 4 and Table 8 application).
//
// Given a base state-to-state migration table and growth estimates for each
// origin's out-migration and each destination's in-migration, project the
// flow matrix. The totals are estimates, not facts, so the elastic regime is
// used: SEA trades off matching the totals against staying near the base
// flows. We then repeat the projection with a dense weighting matrix G
// (expert covariance information) via the general algorithm.
#include <iostream>

#include "core/diagonal_sea.hpp"
#include "core/general_sea.hpp"
#include "datasets/migration.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"

int main() {
  using namespace sea;

  const auto specs = datasets::Table4Specs();
  const auto problem = datasets::MakeMigration(specs[0]);  // MIG5560a

  SeaOptions opts;
  opts.epsilon = 1e-5;
  opts.criterion = StopCriterion::kResidualRel;
  opts.sort_policy = SortPolicy::kInsertion;
  const auto run = SolveDiagonal(problem, opts);

  std::cout << "diagonal projection (" << specs[0].name
            << "): converged=" << std::boolalpha << run.result.converged()
            << " iterations=" << run.result.iterations << '\n';

  // The elastic regime treats the growth targets as estimates: the projected
  // totals track them closely without being forced to match exactly.
  const Vector base_out = datasets::MakeMigrationBase(5560).RowSums();
  double worst_gap = 0.0;
  for (std::size_t i = 0; i < datasets::kStates; ++i)
    worst_gap = std::max(worst_gap,
                         std::abs(run.solution.s[i] - problem.s0()[i]) /
                             std::max(1.0, problem.s0()[i]));
  std::cout << "worst relative gap between projected total and growth "
               "target: "
            << TablePrinter::Num(100.0 * worst_gap, 2) << "%\n";

  TablePrinter table({"state", "base out-migration", "growth target",
                      "projected"});
  for (std::size_t i = 0; i < 6; ++i)
    table.AddRow({"S" + std::to_string(i + 1),
                  TablePrinter::Num(base_out[i], 0),
                  TablePrinter::Num(problem.s0()[i], 0),
                  TablePrinter::Num(run.solution.s[i], 0)});
  table.Print(std::cout);

  // General (dense G) projection, as in Table 8.
  std::cout << "\ngeneral projection with dense 2304x2304 G (Table 8 "
               "protocol)...\n";
  const auto gen_problem =
      datasets::MakeGeneralMigration(datasets::Table8Specs()[0]);
  GeneralSeaOptions gen_opts;
  gen_opts.outer_epsilon = 1e-3;
  gen_opts.inner.criterion = StopCriterion::kResidualRel;
  gen_opts.inner.sort_policy = SortPolicy::kInsertion;
  const auto gen_run = SolveGeneral(gen_problem, gen_opts);
  const auto rep = CheckFeasibility(gen_run.solution.x, gen_problem.s0(),
                                    gen_problem.d0());
  std::cout << "general SEA: converged=" << gen_run.result.converged()
            << " outer=" << gen_run.result.outer_iterations
            << " inner=" << gen_run.result.total_inner_iterations
            << " max-rel-residual=" << rep.MaxRel() << '\n';
  return run.result.converged() && gen_run.result.converged() ? 0 : 1;
}
