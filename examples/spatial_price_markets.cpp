// Spatial price equilibrium via matrix equilibration (the paper's Table 5
// application, and Stone's 1951 observation that the two computations are
// one and the same).
//
// Ten supply markets ship a commodity to ten demand markets with linear
// supply prices, demand prices, and transport costs. The equilibrium flows,
// supplies, demands and prices are computed by mapping the model to an
// elastic constrained matrix problem and running SEA; the dual multipliers
// ARE the market prices.
#include <iostream>

#include "core/diagonal_sea.hpp"
#include "io/table_printer.hpp"
#include "spe/spatial_price.hpp"
#include "spe/spe_generator.hpp"
#include "support/rng.hpp"

int main() {
  using namespace sea;

  Rng rng(20260706);
  const auto market = spe::Generate(10, 10, rng);

  SeaOptions opts;
  opts.epsilon = 1e-9;
  opts.criterion = StopCriterion::kResidualAbs;
  const auto run = SolveDiagonal(market.ToDiagonalProblem(), opts);
  std::cout << "SEA: converged=" << std::boolalpha << run.result.converged()
            << " iterations=" << run.result.iterations << "\n\n";

  const Vector s = run.solution.x.RowSums();
  const Vector d = run.solution.x.ColSums();

  TablePrinter supply({"supply market", "quantity", "supply price",
                       "-lambda (dual)"});
  for (std::size_t i = 0; i < 10; ++i)
    supply.AddRow({"S" + std::to_string(i + 1), TablePrinter::Num(s[i], 3),
                   TablePrinter::Num(market.SupplyPrice(i, s[i]), 3),
                   TablePrinter::Num(-run.solution.lambda[i], 3)});
  supply.Print(std::cout);

  std::cout << '\n';
  TablePrinter demand({"demand market", "quantity", "demand price",
                       "mu (dual)"});
  for (std::size_t j = 0; j < 10; ++j)
    demand.AddRow({"D" + std::to_string(j + 1), TablePrinter::Num(d[j], 3),
                   TablePrinter::Num(market.DemandPrice(j, d[j]), 3),
                   TablePrinter::Num(run.solution.mu[j], 3)});
  demand.Print(std::cout);

  // Equilibrium verification: no profitable unused route, prices consistent
  // on used routes.
  const auto rep = spe::CheckEquilibrium(market, run.solution.x);
  std::size_t active_routes = 0;
  for (double v : run.solution.x.Flat())
    if (v > 1e-9) ++active_routes;
  std::cout << "\nactive trade routes: " << active_routes << "/100\n"
            << "max |pi + c - rho| on used routes:   "
            << rep.max_equality_violation << '\n'
            << "max (rho - pi - c)+ on unused routes: "
            << rep.max_inequality_violation << '\n';
  return run.result.converged() && rep.Max() < 1e-5 ? 0 : 1;
}
