// Updating an input/output table (the paper's Table 2 application).
//
// Scenario: a 60-sector I/O table from a base year must be updated to new
// sectoral output totals (10% average growth, sector-specific). We compare
// the SEA least-squares update against the classical RAS biproportional
// update — including a support pattern where RAS fails outright while the
// quadratic estimate still exists (Mohr, Crown & Polenske 1987).
#include <iostream>

#include "baselines/ras.hpp"
#include "core/diagonal_sea.hpp"
#include "datasets/io_tables.hpp"
#include "datasets/weights.hpp"
#include "problems/feasibility.hpp"

int main() {
  using namespace sea;

  datasets::IoTableSpec spec;
  spec.name = "demo-io";
  spec.size = 60;
  spec.density = 0.55;
  spec.protocol = 'a';  // 0-10% growth in every total
  spec.growth_hi = 0.10;
  const auto problem = datasets::MakeIoTable(spec, 0);

  std::cout << "I/O update: " << spec.size << " sectors, "
            << int(spec.density * 100) << "% dense, grown totals\n\n";

  // --- SEA (weighted least squares with nonnegativity).
  SeaOptions opts;
  opts.epsilon = 1e-6;
  opts.criterion = StopCriterion::kResidualRel;
  const auto run = SolveDiagonal(problem, opts);
  const auto rep = CheckFeasibility(problem, run.solution);
  std::cout << "SEA: converged=" << std::boolalpha << run.result.converged()
            << " iterations=" << run.result.iterations
            << " max-rel-residual=" << rep.MaxRel() << '\n';

  // How far did the update move the table?
  double max_rel_change = 0.0, moved_cells = 0.0, support = 0.0;
  for (std::size_t k = 0; k < problem.x0().size(); ++k) {
    const double base = problem.x0().Flat()[k];
    if (base <= 0.0) continue;
    support += 1.0;
    const double rel =
        std::abs(run.solution.x.Flat()[k] - base) / base;
    max_rel_change = std::max(max_rel_change, rel);
    if (rel > 1e-6) moved_cells += 1.0;
  }
  std::cout << "     " << int(100.0 * moved_cells / support)
            << "% of cells adjusted; max relative adjustment "
            << max_rel_change << "\n\n";

  // --- RAS on the same instance (it solves the biproportional objective).
  const auto ras = SolveRas(problem.x0(), problem.s0(), problem.d0());
  std::cout << "RAS: status=" << ToString(ras.status)
            << " iterations=" << ras.iterations << '\n';

  // --- A support where RAS has no answer but least squares does.
  DenseMatrix bad(2, 2, 0.0);
  bad(0, 0) = 1.0;
  bad(0, 1) = 1.0;
  bad(1, 1) = 1.0;  // structural zero at (1,0)
  const Vector s_bad{2.0, 5.0}, d_bad{5.0, 2.0};
  const auto ras_bad = SolveRas(bad, s_bad, d_bad, {.max_iterations = 1000});
  std::cout << "\nstructural-zero instance: RAS status="
            << ToString(ras_bad.status) << '\n';
  const auto p_bad = DiagonalProblem::MakeFixed(
      bad, DenseMatrix(2, 2, 1.0), s_bad, d_bad);
  SeaOptions tight;
  tight.epsilon = 1e-9;
  tight.criterion = StopCriterion::kResidualAbs;
  const auto run_bad = SolveDiagonal(p_bad, tight);
  std::cout << "SEA solves it: x = [[" << run_bad.solution.x(0, 0) << ", "
            << run_bad.solution.x(0, 1) << "], [" << run_bad.solution.x(1, 0)
            << ", " << run_bad.solution.x(1, 1) << "]]\n";
  return 0;
}
