// Quickstart: estimate a small matrix subject to known row and column totals.
//
// A 3x4 base matrix X0 is "aged": we know next year's row and column totals
// and want the nearest matrix (chi-square weighted) that hits them exactly
// while staying nonnegative — the classical constrained matrix problem,
// solved by the splitting equilibration algorithm in closed-form sweeps.
#include <iostream>

#include "core/diagonal_sea.hpp"
#include "datasets/weights.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"

int main() {
  using namespace sea;

  // The base matrix (e.g. last year's observed flows).
  DenseMatrix x0(3, 4);
  const double base[3][4] = {{10.0, 4.0, 0.5, 7.0},
                             {2.0, 15.0, 3.0, 1.0},
                             {6.0, 2.0, 9.0, 4.0}};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) x0(i, j) = base[i][j];

  // Known new totals (must be consistent: both sides sum to the same value).
  const Vector s0{24.0, 22.0, 24.0};        // row totals
  const Vector d0{20.0, 23.0, 14.0, 13.0};  // column totals

  // Chi-square weights 1/x0 keep small entries from moving too much.
  auto problem = DiagonalProblem::MakeFixed(x0, datasets::ChiSquareWeights(x0),
                                            s0, d0);

  SeaOptions opts;
  opts.epsilon = 1e-8;
  opts.criterion = StopCriterion::kResidualAbs;
  const auto run = SolveDiagonal(problem, opts);

  std::cout << "converged: " << std::boolalpha << run.result.converged()
            << " in " << run.result.iterations << " iterations\n"
            << "objective (weighted squared deviation): "
            << run.result.objective << "\n\n";

  TablePrinter table({"", "col 1", "col 2", "col 3", "col 4", "row total"});
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<std::string> row{"row " + std::to_string(i + 1)};
    double sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      row.push_back(TablePrinter::Num(run.solution.x(i, j), 3));
      sum += run.solution.x(i, j);
    }
    row.push_back(TablePrinter::Num(sum, 3));
    table.AddRow(std::move(row));
  }
  std::vector<std::string> totals{"col total"};
  for (std::size_t j = 0; j < 4; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < 3; ++i) sum += run.solution.x(i, j);
    totals.push_back(TablePrinter::Num(sum, 3));
  }
  totals.push_back("");
  table.AddRow(std::move(totals));
  table.Print(std::cout);

  const auto rep = CheckFeasibility(problem, run.solution);
  std::cout << "\nmax constraint residual: " << rep.MaxAbs() << '\n';
  return run.result.converged() ? 0 : 1;
}
