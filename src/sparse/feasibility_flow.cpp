#include "sparse/feasibility_flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "support/check.hpp"

namespace sea {

MaxFlow::MaxFlow(std::size_t num_nodes) : graph_(num_nodes) {}

void MaxFlow::AddEdge(std::size_t u, std::size_t v, double capacity) {
  SEA_CHECK(u < graph_.size() && v < graph_.size());
  SEA_CHECK(capacity >= 0.0);
  graph_[u].push_back({v, capacity, graph_[v].size()});
  graph_[v].push_back({u, 0.0, graph_[u].size() - 1});
}

bool MaxFlow::Bfs(std::size_t source, std::size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> q;
  level_[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (const Edge& e : graph_[v]) {
      if (e.cap > 1e-12 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlow::Dfs(std::size_t v, std::size_t sink, double pushed) {
  if (v == sink) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.cap <= 1e-12 || level_[v] + 1 != level_[e.to]) continue;
    const double got = Dfs(e.to, sink, std::min(pushed, e.cap));
    if (got > 0.0) {
      e.cap -= got;
      graph_[e.to][e.rev].cap += got;
      return got;
    }
  }
  return 0.0;
}

double MaxFlow::Solve(std::size_t source, std::size_t sink) {
  SEA_CHECK(source < graph_.size() && sink < graph_.size());
  double flow = 0.0;
  while (Bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    for (;;) {
      const double got =
          Dfs(source, sink, std::numeric_limits<double>::infinity());
      if (got <= 0.0) break;
      flow += got;
    }
  }
  return flow;
}

std::vector<bool> MaxFlow::MinCutSourceSide() const {
  std::vector<bool> side(graph_.size(), false);
  std::queue<std::size_t> q;
  // level_ holds the last BFS labeling; nodes with level >= 0 were reachable
  // in the final residual graph.
  for (std::size_t v = 0; v < graph_.size(); ++v)
    side[v] = !level_.empty() && level_[v] >= 0;
  return side;
}

PatternFeasibilityReport CheckPatternFeasibility(const SparseMatrix& pattern,
                                                 const Vector& s,
                                                 const Vector& d) {
  const std::size_t m = pattern.rows(), n = pattern.cols();
  SEA_CHECK(s.size() == m && d.size() == n);
  double ssum = 0.0, dsum = 0.0;
  for (double v : s) {
    SEA_CHECK_MSG(v >= 0.0, "row totals must be nonnegative");
    ssum += v;
  }
  for (double v : d) {
    SEA_CHECK_MSG(v >= 0.0, "column totals must be nonnegative");
    dsum += v;
  }
  SEA_CHECK_MSG(std::abs(ssum - dsum) <=
                    1e-8 * std::max({1.0, ssum, dsum}),
                "totals must be consistent (sum s == sum d)");

  // Nodes: 0 = source, 1..m = rows, m+1..m+n = columns, m+n+1 = sink.
  const std::size_t source = 0, sink = m + n + 1;
  MaxFlow flow(m + n + 2);
  for (std::size_t i = 0; i < m; ++i) flow.AddEdge(source, 1 + i, s[i]);
  for (std::size_t j = 0; j < n; ++j) flow.AddEdge(m + 1 + j, sink, d[j]);
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j : pattern.RowCols(i))
      flow.AddEdge(1 + i, m + 1 + j, inf);

  PatternFeasibilityReport rep;
  rep.required = ssum;
  rep.max_flow = flow.Solve(source, sink);
  rep.feasible =
      rep.max_flow >= ssum - 1e-8 * std::max(1.0, ssum);

  if (!rep.feasible) {
    // The min cut's source side yields the violated Hall condition.
    const auto side = flow.MinCutSourceSide();
    for (std::size_t i = 0; i < m; ++i)
      if (side[1 + i]) rep.deficient_rows.push_back(i);
    for (std::size_t j = 0; j < n; ++j)
      if (side[m + 1 + j]) rep.reachable_cols.push_back(j);
  }
  return rep;
}

}  // namespace sea
