// Diagonal constrained matrix problems with an explicit support pattern:
// only pattern entries are variables; structural zeros stay zero.
//
// This is the form practitioners actually solve for sparse I/O tables —
// the paper's IO72 instances are only 16% dense — and it changes the
// semantics relative to DiagonalProblem with stiff zero-cell weights:
// off-pattern cells are excluded outright, so the totals must be reachable
// on the pattern (checkable with sparse/feasibility_flow.hpp).
#pragma once

#include "problems/types.hpp"
#include "sparse/feasibility_flow.hpp"
#include "sparse/sparse_matrix.hpp"

namespace sea {

class SparseDiagonalProblem {
 public:
  SparseDiagonalProblem() = default;

  static SparseDiagonalProblem MakeFixed(SparseMatrix x0, SparseMatrix gamma,
                                         Vector s0, Vector d0);
  static SparseDiagonalProblem MakeElastic(SparseMatrix x0, SparseMatrix gamma,
                                           Vector s0, Vector alpha, Vector d0,
                                           Vector beta);
  static SparseDiagonalProblem MakeSam(SparseMatrix x0, SparseMatrix gamma,
                                       Vector s0, Vector alpha);

  TotalsMode mode() const { return mode_; }
  std::size_t m() const { return x0_.rows(); }
  std::size_t n() const { return x0_.cols(); }
  std::size_t nnz() const { return x0_.nnz(); }

  const SparseMatrix& x0() const { return x0_; }
  const SparseMatrix& gamma() const { return gamma_; }
  const Vector& s0() const { return s0_; }
  const Vector& alpha() const { return alpha_; }
  const Vector& d0() const { return d0_; }
  const Vector& beta() const { return beta_; }

  void Validate() const;

  // For the fixed regime: max-flow feasibility of the totals on the pattern.
  PatternFeasibilityReport CheckFeasibleTotals() const;

  // Objective over a pattern-matching estimate.
  double Objective(const SparseMatrix& x, const Vector& s,
                   const Vector& d) const;

 private:
  TotalsMode mode_ = TotalsMode::kFixed;
  SparseMatrix x0_;
  SparseMatrix gamma_;  // same pattern as x0
  Vector s0_, alpha_, d0_, beta_;
};

}  // namespace sea
