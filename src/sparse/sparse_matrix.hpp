// Compressed sparse row (CSR) storage for constrained matrix problems with
// structural zeros.
//
// The paper's real datasets are far from dense (the 485-sector 1972 US I/O
// table is 16% dense), and in practice structural zeros are not variables at
// all: a sector that cannot buy from another stays zero in every update. The
// sparse problem types in this module make the support pattern explicit —
// only pattern entries are estimated — and the sparse SEA solver's work
// scales with nnz rather than m*n.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sea {

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // From triplets (duplicates are summed). Triplets may be in any order.
  struct Triplet {
    std::size_t row, col;
    double value;
  };
  static SparseMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets);

  // Pattern = entries of d with |value| > threshold.
  static SparseMatrix FromDense(const DenseMatrix& d, double threshold = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // CSR accessors.
  std::span<const std::size_t> RowPtr() const { return row_ptr_; }
  std::span<const std::size_t> ColIdx() const { return col_idx_; }
  std::span<const double> Values() const { return values_; }
  std::span<double> MutableValues() { return values_; }

  // Row i's column indices / values (contiguous).
  std::span<const std::size_t> RowCols(std::size_t i) const {
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  std::span<const double> RowValues(std::size_t i) const {
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  std::span<double> MutableRowValues(std::size_t i) {
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }

  // Entry lookup (binary search within the row); 0.0 if not in the pattern.
  double At(std::size_t i, std::size_t j) const;
  bool InPattern(std::size_t i, std::size_t j) const;

  Vector RowSums() const;
  Vector ColSums() const;

  // CSR of the transpose (used for column sweeps).
  SparseMatrix Transposed() const;

  // Same pattern check (exact row_ptr/col_idx equality).
  bool SamePattern(const SparseMatrix& o) const;

  DenseMatrix ToDense() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // rows_ + 1
  std::vector<std::size_t> col_idx_;  // nnz, sorted within each row
  std::vector<double> values_;        // nnz
};

}  // namespace sea
