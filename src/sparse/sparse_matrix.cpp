#include "sparse/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace sea {

SparseMatrix SparseMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                        std::vector<Triplet> triplets) {
  SEA_CHECK(rows > 0 && cols > 0);
  for (const auto& t : triplets)
    SEA_CHECK_MSG(t.row < rows && t.col < cols, "triplet out of range");
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (std::size_t k = 0; k < triplets.size();) {
    const std::size_t r = triplets[k].row, c = triplets[k].col;
    double v = 0.0;
    while (k < triplets.size() && triplets[k].row == r &&
           triplets[k].col == c) {
      v += triplets[k].value;
      ++k;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    ++m.row_ptr_[r + 1];
  }
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  return m;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& d, double threshold) {
  SparseMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (std::size_t i = 0; i < m.rows_; ++i) {
    const auto row = d.Row(i);
    for (std::size_t j = 0; j < m.cols_; ++j) {
      if (std::abs(row[j]) > threshold) {
        m.col_idx_.push_back(j);
        m.values_.push_back(row[j]);
        ++m.row_ptr_[i + 1];
      }
    }
  }
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  return m;
}

double SparseMatrix::At(std::size_t i, std::size_t j) const {
  SEA_DCHECK(i < rows_ && j < cols_);
  const auto cols = RowCols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + static_cast<std::size_t>(it - cols.begin())];
}

bool SparseMatrix::InPattern(std::size_t i, std::size_t j) const {
  const auto cols = RowCols(i);
  return std::binary_search(cols.begin(), cols.end(), j);
}

Vector SparseMatrix::RowSums() const {
  Vector s(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (double v : RowValues(i)) acc += v;
    s[i] = acc;
  }
  return s;
}

Vector SparseMatrix::ColSums() const {
  Vector s(cols_, 0.0);
  for (std::size_t k = 0; k < values_.size(); ++k) s[col_idx_[k]] += values_[k];
  return s;
}

SparseMatrix SparseMatrix::Transposed() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  for (std::size_t k = 0; k < nnz(); ++k) ++t.row_ptr_[col_idx_[k] + 1];
  std::partial_sum(t.row_ptr_.begin(), t.row_ptr_.end(), t.row_ptr_.begin());
  std::vector<std::size_t> fill(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t pos = fill[col_idx_[k]]++;
      t.col_idx_[pos] = i;
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

bool SparseMatrix::SamePattern(const SparseMatrix& o) const {
  return rows_ == o.rows_ && cols_ == o.cols_ && row_ptr_ == o.row_ptr_ &&
         col_idx_ == o.col_idx_;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      d(i, col_idx_[k]) = values_[k];
  return d;
}

}  // namespace sea
