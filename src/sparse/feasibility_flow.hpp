// Transportation feasibility on a support pattern, by maximum flow.
//
// With structural zeros, fixed row/column totals may be unreachable on the
// given support — the phenomenon behind the "infeasible RAS problems" of
// Mohr, Crown & Polenske (1987) that the paper's introduction cites. The
// classical certificate: totals (s, d) with sum(s) == sum(d) are feasible on
// pattern P iff the max flow from a source through rows (capacity s_i),
// pattern arcs (infinite capacity), and columns to a sink (capacity d_j)
// saturates the source, i.e. equals sum(s). Dinic's algorithm decides this
// in polynomial time and, when infeasible, exposes a violated Hall-type cut.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "sparse/sparse_matrix.hpp"

namespace sea {

struct PatternFeasibilityReport {
  bool feasible = false;
  double max_flow = 0.0;
  double required = 0.0;  // sum of row totals
  // When infeasible: a set of rows R whose pattern-neighborhood columns C
  // cannot absorb them: sum_{i in R} s_i > sum_{j in N(R)} d_j.
  std::vector<std::size_t> deficient_rows;
  std::vector<std::size_t> reachable_cols;
};

// Decides feasibility of { X >= 0 on pattern(P) : row sums = s, col sums =
// d }. Requires s, d >= 0 and |sum(s) - sum(d)| small (checked).
PatternFeasibilityReport CheckPatternFeasibility(const SparseMatrix& pattern,
                                                 const Vector& s,
                                                 const Vector& d);

// Dinic max flow on a general directed graph (exposed for tests).
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t num_nodes);

  // Adds a directed edge u -> v with the given capacity.
  void AddEdge(std::size_t u, std::size_t v, double capacity);

  // Computes the max flow from source to sink. May be called once.
  double Solve(std::size_t source, std::size_t sink);

  // After Solve: nodes reachable from the source in the residual graph
  // (the min-cut's source side).
  std::vector<bool> MinCutSourceSide() const;

 private:
  struct Edge {
    std::size_t to;
    double cap;
    std::size_t rev;  // index of the reverse edge in graph_[to]
  };
  bool Bfs(std::size_t source, std::size_t sink);
  double Dfs(std::size_t v, std::size_t sink, double pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace sea
