#include "sparse/sparse_problem.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sea {

SparseDiagonalProblem SparseDiagonalProblem::MakeFixed(SparseMatrix x0,
                                                       SparseMatrix gamma,
                                                       Vector s0, Vector d0) {
  SparseDiagonalProblem p;
  p.mode_ = TotalsMode::kFixed;
  p.x0_ = std::move(x0);
  p.gamma_ = std::move(gamma);
  p.s0_ = std::move(s0);
  p.d0_ = std::move(d0);
  p.Validate();
  return p;
}

SparseDiagonalProblem SparseDiagonalProblem::MakeElastic(
    SparseMatrix x0, SparseMatrix gamma, Vector s0, Vector alpha, Vector d0,
    Vector beta) {
  SparseDiagonalProblem p;
  p.mode_ = TotalsMode::kElastic;
  p.x0_ = std::move(x0);
  p.gamma_ = std::move(gamma);
  p.s0_ = std::move(s0);
  p.alpha_ = std::move(alpha);
  p.d0_ = std::move(d0);
  p.beta_ = std::move(beta);
  p.Validate();
  return p;
}

SparseDiagonalProblem SparseDiagonalProblem::MakeSam(SparseMatrix x0,
                                                     SparseMatrix gamma,
                                                     Vector s0, Vector alpha) {
  SparseDiagonalProblem p;
  p.mode_ = TotalsMode::kSam;
  p.x0_ = std::move(x0);
  p.gamma_ = std::move(gamma);
  p.s0_ = std::move(s0);
  p.alpha_ = std::move(alpha);
  p.Validate();
  return p;
}

void SparseDiagonalProblem::Validate() const {
  SEA_CHECK_MSG(m() > 0 && n() > 0, "empty problem");
  SEA_CHECK_MSG(gamma_.SamePattern(x0_), "gamma pattern mismatch");
  for (double g : gamma_.Values())
    SEA_CHECK_MSG(g > 0.0, "gamma weights must be strictly positive");
  SEA_CHECK_MSG(s0_.size() == m(), "s0 size mismatch");
  switch (mode_) {
    case TotalsMode::kFixed: {
      SEA_CHECK_MSG(d0_.size() == n(), "d0 size mismatch");
      double ssum = 0.0, dsum = 0.0;
      for (double v : s0_) {
        SEA_CHECK_MSG(v >= 0.0, "fixed totals must be nonnegative");
        ssum += v;
      }
      for (double v : d0_) {
        SEA_CHECK_MSG(v >= 0.0, "fixed totals must be nonnegative");
        dsum += v;
      }
      SEA_CHECK_MSG(std::abs(ssum - dsum) <=
                        1e-8 * std::max({1.0, ssum, dsum}),
                    "fixed totals are inconsistent");
      break;
    }
    case TotalsMode::kElastic:
      SEA_CHECK_MSG(alpha_.size() == m() && beta_.size() == n() &&
                        d0_.size() == n(),
                    "elastic parameter size mismatch");
      for (double a : alpha_) SEA_CHECK_MSG(a > 0.0, "alpha must be positive");
      for (double b : beta_) SEA_CHECK_MSG(b > 0.0, "beta must be positive");
      break;
    case TotalsMode::kSam:
      SEA_CHECK_MSG(m() == n(), "SAM problems must be square");
      SEA_CHECK_MSG(alpha_.size() == n(), "alpha size mismatch");
      for (double a : alpha_) SEA_CHECK_MSG(a > 0.0, "alpha must be positive");
      break;
    case TotalsMode::kInterval:
      SEA_CHECK_MSG(false,
                    "interval totals are not yet supported on sparse "
                    "patterns");
      break;
  }
}

PatternFeasibilityReport SparseDiagonalProblem::CheckFeasibleTotals() const {
  SEA_CHECK_MSG(mode_ == TotalsMode::kFixed,
                "flow feasibility applies to the fixed regime");
  return CheckPatternFeasibility(x0_, s0_, d0_);
}

double SparseDiagonalProblem::Objective(const SparseMatrix& x, const Vector& s,
                                        const Vector& d) const {
  SEA_CHECK_MSG(x.SamePattern(x0_), "estimate pattern mismatch");
  double obj = 0.0;
  const auto xv = x.Values();
  const auto cv = x0_.Values();
  const auto gv = gamma_.Values();
  for (std::size_t k = 0; k < xv.size(); ++k) {
    const double dev = xv[k] - cv[k];
    obj += gv[k] * dev * dev;
  }
  if (mode_ == TotalsMode::kElastic || mode_ == TotalsMode::kSam) {
    SEA_CHECK(s.size() == s0_.size());
    for (std::size_t i = 0; i < s0_.size(); ++i) {
      const double dev = s[i] - s0_[i];
      obj += alpha_[i] * dev * dev;
    }
  }
  if (mode_ == TotalsMode::kElastic) {
    SEA_CHECK(d.size() == d0_.size());
    for (std::size_t j = 0; j < d0_.size(); ++j) {
      const double dev = d[j] - d0_[j];
      obj += beta_[j] * dev * dev;
    }
  }
  return obj;
}

}  // namespace sea
