// Splitting equilibration on sparse support patterns.
//
// Same dual block-coordinate maximization as core/diagonal_sea.hpp, but each
// row/column market only ranges over its pattern entries, so a full sweep
// costs O(nnz log(max row length)) instead of O(mn log n). Used for the
// paper's sparse I/O instances and any application with structural zeros.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "core/result.hpp"
#include "problems/feasibility.hpp"
#include "sparse/sparse_problem.hpp"

namespace sea {

// FNV-1a fingerprint of a sparse problem's data (mode, shape, pattern,
// centers, weights, targets). Checkpoints record it so --resume refuses to
// graft an iterate onto different data; disjoint from the dense fingerprint
// (core/checkpoint.hpp) by a leading tag byte.
std::uint64_t FingerprintProblem(const SparseDiagonalProblem& p);

struct SparseSolution {
  SparseMatrix x;  // estimate on the pattern
  Vector s, d;     // totals (fixed: copies of the targets)
  Vector lambda, mu;
};

struct SparseSeaRun {
  SparseSolution solution;
  SeaResult result;
};

SparseSeaRun SolveSparse(const SparseDiagonalProblem& problem,
                         const SeaOptions& opts);

// Feasibility residuals of a sparse solution against its problem's regime.
FeasibilityReport CheckFeasibility(const SparseDiagonalProblem& p,
                                   const SparseSolution& sol);

// Max KKT stationarity violation on the pattern (off-pattern cells are not
// variables and impose no condition).
double KktStationarityError(const SparseDiagonalProblem& p,
                            const SparseSolution& sol);

}  // namespace sea
