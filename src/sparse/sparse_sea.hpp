// Splitting equilibration on sparse support patterns.
//
// Same dual block-coordinate maximization as core/diagonal_sea.hpp, but each
// row/column market only ranges over its pattern entries, so a full sweep
// costs O(nnz log(max row length)) instead of O(mn log n). Used for the
// paper's sparse I/O instances and any application with structural zeros.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "core/result.hpp"
#include "problems/feasibility.hpp"
#include "sparse/sparse_problem.hpp"

namespace sea {

// FNV-1a fingerprint of a sparse problem's data (mode, shape, pattern,
// centers, weights, targets). Checkpoints record it so --resume refuses to
// graft an iterate onto different data; disjoint from the dense fingerprint
// (core/checkpoint.hpp) by a leading tag byte.
std::uint64_t FingerprintProblem(const SparseDiagonalProblem& p);

struct SparseSolution {
  SparseMatrix x;  // estimate on the pattern
  Vector s, d;     // totals (fixed: copies of the targets)
  Vector lambda, mu;
};

struct SparseSeaRun {
  SparseSolution solution;
  SeaResult result;
};

// Solver object mirroring core/diagonal_sea.hpp's DiagonalSea, so callers
// that chain related solves (the general algorithm, the sea_serve warm
// cache) program one warm-start API across the dense and sparse paths.
// Construction builds the transposed pattern copies; ResetProblem swaps in
// refreshed data of the same shape and mode without reallocating the
// solver.
class SparseSea {
 public:
  explicit SparseSea(const SparseDiagonalProblem& problem);

  // Replaces the problem while keeping this solver object. Requires
  // identical dimensions and mode (the pattern may differ — the transposed
  // copies are rebuilt).
  void ResetProblem(const SparseDiagonalProblem& problem);

  const SparseDiagonalProblem& problem() const { return *problem_; }

  // Runs SEA from mu = 0 (paper Step 0).
  SparseSeaRun Solve(const SeaOptions& opts);

  // Runs SEA warm-started from the given column multipliers; lambda is
  // recomputed by the first row sweep, so mu is the whole warm state.
  SparseSeaRun SolveWarm(const SeaOptions& opts, const Vector& mu0);

 private:
  const SparseDiagonalProblem* problem_ = nullptr;
  SparseMatrix x0_t_;
  SparseMatrix gamma_t_;
};

// One-shot convenience wrapper.
SparseSeaRun SolveSparse(const SparseDiagonalProblem& problem,
                         const SeaOptions& opts);

// Feasibility residuals of a sparse solution against its problem's regime.
FeasibilityReport CheckFeasibility(const SparseDiagonalProblem& p,
                                   const SparseSolution& sol);

// Max KKT stationarity violation on the pattern (off-pattern cells are not
// variables and impose no condition).
double KktStationarityError(const SparseDiagonalProblem& p,
                            const SparseSolution& sol);

}  // namespace sea
