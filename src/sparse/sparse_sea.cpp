#include "sparse/sparse_sea.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "equilibration/equilibrator.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

namespace {

// One sweep over a sparse side. centers/weights are sweep-major CSR (rows =
// markets); other_mult is indexed by the pattern's column ids. When x_out is
// non-null (same pattern as centers), allocations are materialized.
SweepStats SparseSweep(const SparseMatrix& centers, const SparseMatrix& weights,
                       std::span<const double> other_mult,
                       const MarketSide& side, std::span<double> mult_out,
                       SparseMatrix* x_out, const SweepOptions& opts) {
  const std::size_t markets = centers.rows();
  SweepStats stats;
  if (opts.record_task_costs) stats.task_costs.assign(markets, 0.0);

  const std::size_t workers = WorkerCount(opts.pool);
  std::vector<BreakpointWorkspace> ws(workers);
  std::vector<OpCounts> worker_ops(workers);

  ForRangeWorker(opts.pool, markets,
                 [&](std::size_t begin, std::size_t end, std::size_t w) {
    BreakpointWorkspace& wksp = ws[w];
    OpCounts local;
    for (std::size_t i = begin; i < end; ++i) {
      const auto cols = centers.RowCols(i);
      const auto cvals = centers.RowValues(i);
      const auto gvals = weights.RowValues(i);
      auto& arcs = wksp.arcs();
      arcs.resize(cols.size());
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const double q = 1.0 / (2.0 * gvals[k]);
        arcs[k] = {cvals[k] + other_mult[cols[k]] * q, q};
      }
      double u = 0.0, v = 0.0;
      ClearingTarget(side, i, u, v);
      BreakpointResult res = SolveMarket(wksp, u, v, opts.sort_policy);
      res.ops.flops += 2 * cols.size();
      SEA_INTERNAL_CHECK(res.feasible);
      mult_out[i] = res.lambda;
      if (x_out != nullptr) {
        auto xvals = x_out->MutableRowValues(i);
        for (std::size_t k = 0; k < arcs.size(); ++k)
          xvals[k] = std::max(0.0, arcs[k].p + arcs[k].q * res.lambda);
        res.ops.flops += 2 * cols.size();
      }
      if (opts.record_task_costs) stats.task_costs[i] = res.ops.Work();
      local += res.ops;
    }
    worker_ops[w] = local;
  });
  for (const auto& o : worker_ops) stats.total_ops += o;
  return stats;
}

}  // namespace

SparseSeaRun SolveSparse(const SparseDiagonalProblem& p,
                         const SeaOptions& opts) {
  p.Validate();
  SEA_CHECK(opts.epsilon > 0.0);
  SEA_CHECK(opts.check_every >= 1);
  const std::size_t m = p.m(), n = p.n();

  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  const SparseMatrix x0_t = p.x0().Transposed();
  const SparseMatrix gamma_t = p.gamma().Transposed();

  Vector lambda(m, 0.0), mu(n, 0.0);
  SparseMatrix xt = x0_t;  // pattern reused; values overwritten per check
  std::vector<double> xt_prev;
  bool have_prev = false;

  MarketSide row_side, col_side;
  row_side.mode = p.mode();
  row_side.t0 = p.s0();
  col_side.mode = p.mode();
  switch (p.mode()) {
    case TotalsMode::kFixed:
      col_side.t0 = p.d0();
      break;
    case TotalsMode::kElastic:
      row_side.weight = p.alpha();
      col_side.t0 = p.d0();
      col_side.weight = p.beta();
      break;
    case TotalsMode::kSam:
      row_side.weight = p.alpha();
      row_side.coupling = mu;
      col_side.t0 = p.s0();
      col_side.weight = p.alpha();
      col_side.coupling = lambda;
      break;
    case TotalsMode::kInterval:
      SEA_INTERNAL_CHECK(false);  // rejected by Validate
      break;
  }

  SweepOptions sweep_opts;
  sweep_opts.sort_policy = opts.sort_policy;
  sweep_opts.pool = opts.pool;
  sweep_opts.record_task_costs = opts.record_trace;

  SeaResult result;
  Vector rowsum(m, 0.0);

  for (std::size_t t = 1; t <= opts.max_iterations; ++t) {
    const bool check_now =
        (t % opts.check_every == 0) || (t == opts.max_iterations);

    {
      Stopwatch sw;
      if (p.mode() == TotalsMode::kSam) row_side.coupling = mu;
      SweepStats stats = SparseSweep(p.x0(), p.gamma(), mu, row_side, lambda,
                                     nullptr, sweep_opts);
      result.ops += stats.total_ops;
      result.row_phase_seconds += sw.Seconds();
      if (opts.record_trace)
        result.trace.AddParallelPhase("row", std::move(stats.task_costs));
    }
    {
      Stopwatch sw;
      if (p.mode() == TotalsMode::kSam) col_side.coupling = lambda;
      SweepStats stats = SparseSweep(x0_t, gamma_t, lambda, col_side, mu,
                                     check_now ? &xt : nullptr, sweep_opts);
      result.ops += stats.total_ops;
      result.col_phase_seconds += sw.Seconds();
      if (opts.record_trace)
        result.trace.AddParallelPhase("col", std::move(stats.task_costs));
    }

    result.iterations = t;
    if (!check_now) continue;

    Stopwatch check_sw;
    double measure = 0.0;
    if (opts.criterion == StopCriterion::kXChange) {
      const auto vals = xt.Values();
      if (have_prev) {
        for (std::size_t k = 0; k < vals.size(); ++k)
          measure = std::max(measure, std::abs(vals[k] - xt_prev[k]));
      } else {
        measure = std::numeric_limits<double>::infinity();
      }
      xt_prev.assign(vals.begin(), vals.end());
      have_prev = true;
    } else {
      std::fill(rowsum.begin(), rowsum.end(), 0.0);
      // xt's rows are the original columns; its column ids are original rows.
      for (std::size_t k = 0; k < xt.nnz(); ++k)
        rowsum[xt.ColIdx()[k]] += xt.Values()[k];
      for (std::size_t i = 0; i < m; ++i) {
        double target = 0.0;
        switch (p.mode()) {
          case TotalsMode::kFixed:
            target = p.s0()[i];
            break;
          case TotalsMode::kElastic:
            target = p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]);
            break;
          case TotalsMode::kSam:
            target = p.s0()[i] - (lambda[i] + mu[i]) / (2.0 * p.alpha()[i]);
            break;
          case TotalsMode::kInterval:
            break;  // unreachable
        }
        double r = std::abs(rowsum[i] - target);
        if (opts.criterion == StopCriterion::kResidualRel)
          r /= std::max(1.0, std::abs(target));
        measure = std::max(measure, r);
      }
    }
    result.check_phase_seconds += check_sw.Seconds();
    result.ops.flops += 2 * p.nnz();
    if (opts.record_trace)
      result.trace.AddSerialPhase("check", 2.0 * double(p.nnz()));
    result.final_residual = measure;
    if (measure <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }

  SparseSeaRun run;
  run.solution.x = p.x0();
  for (std::size_t i = 0; i < m; ++i) {
    const auto cols = run.solution.x.RowCols(i);
    const auto cvals = p.x0().RowValues(i);
    const auto gvals = p.gamma().RowValues(i);
    auto xvals = run.solution.x.MutableRowValues(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      xvals[k] = std::max(
          0.0, cvals[k] + (lambda[i] + mu[cols[k]]) / (2.0 * gvals[k]));
  }
  switch (p.mode()) {
    case TotalsMode::kFixed:
      run.solution.s = p.s0();
      run.solution.d = p.d0();
      break;
    case TotalsMode::kElastic:
      run.solution.s.resize(m);
      run.solution.d.resize(n);
      for (std::size_t i = 0; i < m; ++i)
        run.solution.s[i] = p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]);
      for (std::size_t j = 0; j < n; ++j)
        run.solution.d[j] = p.d0()[j] - mu[j] / (2.0 * p.beta()[j]);
      break;
    case TotalsMode::kSam:
      run.solution.s.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        run.solution.s[i] =
            p.s0()[i] - (lambda[i] + mu[i]) / (2.0 * p.alpha()[i]);
      run.solution.d = run.solution.s;
      break;
    case TotalsMode::kInterval:
      break;  // unreachable
  }
  run.solution.lambda = std::move(lambda);
  run.solution.mu = std::move(mu);
  result.objective =
      p.Objective(run.solution.x, run.solution.s, run.solution.d);
  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  run.result = std::move(result);
  return run;
}

FeasibilityReport CheckFeasibility(const SparseDiagonalProblem& p,
                                   const SparseSolution& sol) {
  const Vector rows = sol.x.RowSums();
  const Vector cols = sol.x.ColSums();
  const Vector& s_target = (p.mode() == TotalsMode::kFixed) ? p.s0() : sol.s;
  const Vector& d_target = (p.mode() == TotalsMode::kFixed) ? p.d0()
                           : (p.mode() == TotalsMode::kSam) ? sol.s
                                                            : sol.d;
  FeasibilityReport r;
  for (std::size_t i = 0; i < p.m(); ++i) {
    const double abs_res = std::abs(rows[i] - s_target[i]);
    r.max_row_abs = std::max(r.max_row_abs, abs_res);
    r.max_row_rel = std::max(
        r.max_row_rel, abs_res / std::max(1.0, std::abs(s_target[i])));
  }
  for (std::size_t j = 0; j < p.n(); ++j) {
    const double abs_res = std::abs(cols[j] - d_target[j]);
    r.max_col_abs = std::max(r.max_col_abs, abs_res);
    r.max_col_rel = std::max(
        r.max_col_rel, abs_res / std::max(1.0, std::abs(d_target[j])));
  }
  for (double v : sol.x.Values()) r.min_x = std::min(r.min_x, v);
  return r;
}

double KktStationarityError(const SparseDiagonalProblem& p,
                            const SparseSolution& sol) {
  double err = 0.0;
  for (std::size_t i = 0; i < p.m(); ++i) {
    const auto cols = p.x0().RowCols(i);
    const auto cvals = p.x0().RowValues(i);
    const auto gvals = p.gamma().RowValues(i);
    const auto xvals = sol.x.RowValues(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double resid = 2.0 * gvals[k] * (xvals[k] - cvals[k]) -
                           sol.lambda[i] - sol.mu[cols[k]];
      if (xvals[k] > 1e-12) {
        err = std::max(err, std::abs(resid));
      } else {
        err = std::max(err, -resid);
      }
      err = std::max(err, -xvals[k]);
    }
  }
  if (p.mode() == TotalsMode::kElastic) {
    for (std::size_t i = 0; i < p.m(); ++i)
      err = std::max(err, std::abs(2.0 * p.alpha()[i] *
                                       (sol.s[i] - p.s0()[i]) +
                                   sol.lambda[i]));
    for (std::size_t j = 0; j < p.n(); ++j)
      err = std::max(err, std::abs(2.0 * p.beta()[j] *
                                       (sol.d[j] - p.d0()[j]) +
                                   sol.mu[j]));
  } else if (p.mode() == TotalsMode::kSam) {
    for (std::size_t i = 0; i < p.n(); ++i)
      err = std::max(err, std::abs(2.0 * p.alpha()[i] *
                                       (sol.s[i] - p.s0()[i]) +
                                   sol.lambda[i] + sol.mu[i]));
  }
  return err;
}

}  // namespace sea
