#include "sparse/sparse_sea.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "core/iteration_engine.hpp"
#include "core/stopping.hpp"
#include "equilibration/equilibrator.hpp"
#include "equilibration/kernel_backend.hpp"
#include "obs/market_stats.hpp"
#include "obs/profiler.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/schedule.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"
#include "support/stopwatch.hpp"

namespace sea {

namespace {

void MixPattern(support::Fnv1a& h, const SparseMatrix& a) {
  h.MixU64(a.rows());
  h.MixU64(a.nnz());
  for (std::size_t p : a.RowPtr()) h.MixU64(p);
  for (std::size_t c : a.ColIdx()) h.MixU64(c);
  h.MixDoubles(a.Values());
}

}  // namespace

std::uint64_t FingerprintProblem(const SparseDiagonalProblem& p) {
  support::Fnv1a h;
  h.MixBytes("S", 1);  // domain-separate from the dense fingerprint
  h.MixU64(static_cast<std::uint64_t>(p.mode()));
  h.MixU64(p.m());
  h.MixU64(p.n());
  MixPattern(h, p.x0());
  MixPattern(h, p.gamma());
  h.MixDoubles(p.s0());
  h.MixDoubles(p.alpha());
  h.MixDoubles(p.d0());
  h.MixDoubles(p.beta());
  return h.value();
}

namespace {

// One sweep over a sparse side. centers/weights are sweep-major CSR (rows =
// markets); other_mult is indexed by the pattern's column ids. When x_out is
// non-null (same pattern as centers), allocations are materialized.
SweepStats SparseSweep(const SparseMatrix& centers, const SparseMatrix& weights,
                       std::span<const double> other_mult,
                       const MarketSide& side, std::span<double> mult_out,
                       SparseMatrix* x_out, const SweepOptions& opts) {
  const std::size_t markets = centers.rows();
  SweepStats stats;
  const bool record_costs = opts.record_task_costs || opts.scheduler != nullptr;
  if (record_costs) stats.task_costs.assign(markets, 0.0);
  if (opts.sort_cache != nullptr)
    SEA_CHECK_MSG(opts.sort_cache->size() == markets,
                  "sort cache not sized for this sweep side");

  const std::size_t workers = WorkerCount(opts.pool);
  std::vector<BreakpointWorkspace> ws(workers);
  std::vector<OpCounts> worker_ops(workers);
  std::vector<std::uint64_t> worker_reuses(workers, 0);

  ScheduleSpec sched;
  if (opts.scheduler != nullptr) sched = opts.scheduler->Next(markets, workers);

  const KernelBackend& kb =
      opts.kernel != nullptr ? *opts.kernel : ScalarKernel();
  const char* phase =
      opts.profile_phase != nullptr ? opts.profile_phase : "equilibrate.sweep";
  // Dynamic schedules invoke the body once per claimed chunk: accumulate
  // per-worker state with +=.
  obs::MarketAttribution* attr = opts.attribution;
  ForRangeWorker(opts.pool, markets,
                 [&](std::size_t begin, std::size_t end, std::size_t w) {
    obs::ProfScope prof(phase);
    BreakpointWorkspace& wksp = ws[w];
    OpCounts local;
    std::uint64_t reuses = 0;
    Stopwatch market_sw;
    for (std::size_t i = begin; i < end; ++i) {
      if (attr != nullptr) market_sw.Restart();
      const auto cols = centers.RowCols(i);
      wksp.Resize(cols.size());
      kb.BuildArcsGather(centers.RowValues(i), weights.RowValues(i),
                         other_mult, cols, wksp.p(), wksp.q());
      double u = 0.0, v = 0.0;
      ClearingTarget(side, i, u, v);
      MarketOrder* order =
          opts.sort_cache != nullptr ? opts.sort_cache->At(i) : nullptr;
      BreakpointResult res = kb.Solve(wksp, u, v, opts.sort_policy, order);
      res.ops.flops += 2 * cols.size();
      SEA_INTERNAL_CHECK(res.feasible);
      mult_out[i] = res.lambda;
      if (x_out != nullptr) {
        kb.Writeback(wksp.p(), wksp.q(), res.lambda,
                     x_out->MutableRowValues(i));
        res.ops.flops += 2 * cols.size();
      }
      if (attr != nullptr)
        attr->RecordSolve(opts.attribution_base + i, res.active_count,
                          res.ops.breakpoints, market_sw.Seconds());
      if (record_costs) stats.task_costs[i] = res.ops.Work();
      if (res.order_reused) ++reuses;
      local += res.ops;
    }
    worker_ops[w] += local;
    worker_reuses[w] += reuses;
  }, sched);
  for (const auto& o : worker_ops) stats.total_ops += o;
  for (std::uint64_t r : worker_reuses) stats.order_reuses += r;
  stats.markets = markets;
  if (opts.scheduler != nullptr) {
    opts.scheduler->Update(stats.task_costs);
    if (!opts.record_task_costs) stats.task_costs.clear();
  }
  return stats;
}

// Sparse backend for the shared iteration engine: sweeps via SparseSweep
// over the problem and its transposed copies; the primal is materialized on
// the transposed pattern (xt) on check iterations.
class SparseBackend final : public SeaIterationBackend {
 public:
  SparseBackend(const SparseDiagonalProblem& p, const SparseMatrix& x0_t,
                const SparseMatrix& gamma_t, const SeaOptions& opts,
                Vector& lambda, Vector& mu)
      : p_(p),
        x0_t_(x0_t),
        gamma_t_(gamma_t),
        lambda_(lambda),
        mu_(mu),
        xt_(x0_t),  // pattern reused; values overwritten per check
        rowsum_(p.m(), 0.0) {
    row_side_.mode = p.mode();
    row_side_.t0 = p.s0();
    col_side_.mode = p.mode();
    switch (p.mode()) {
      case TotalsMode::kFixed:
        col_side_.t0 = p.d0();
        break;
      case TotalsMode::kElastic:
        row_side_.weight = p.alpha();
        col_side_.t0 = p.d0();
        col_side_.weight = p.beta();
        break;
      case TotalsMode::kSam:
        row_side_.weight = p.alpha();
        row_side_.coupling = mu_;
        col_side_.t0 = p.s0();
        col_side_.weight = p.alpha();
        col_side_.coupling = lambda_;
        break;
      case TotalsMode::kInterval:
        SEA_INTERNAL_CHECK(false);  // rejected by Validate
        break;
    }
    sweep_opts_.sort_policy = opts.sort_policy;
    sweep_opts_.pool = opts.pool;
    sweep_opts_.record_task_costs = opts.record_trace;
    sweep_opts_.kernel = ResolveKernelBackend(opts.backend).kernel;
    sweep_opts_.attribution = opts.attribution;
    if (opts.attribution != nullptr) opts.attribution->Reset(p.m(), p.n());
    if (opts.sweep_schedule != ScheduleKind::kStatic) {
      row_scheduler_.emplace(opts.sweep_schedule, opts.sweep_grain);
      col_scheduler_.emplace(opts.sweep_schedule, opts.sweep_grain);
    }
    if (opts.sort_policy == SortPolicy::kReuse) {
      row_orders_.Reset(p.m());
      col_orders_.Reset(p.n());
    }
  }

  SweepStats RowSweep() override {
    if (p_.mode() == TotalsMode::kSam) row_side_.coupling = mu_;
    sweep_opts_.profile_phase = "equilibrate.rows";
    sweep_opts_.scheduler =
        row_scheduler_.has_value() ? &*row_scheduler_ : nullptr;
    sweep_opts_.sort_cache = row_orders_.size() > 0 ? &row_orders_ : nullptr;
    sweep_opts_.attribution_base = 0;  // row markets: slots [0, m)
    return SparseSweep(p_.x0(), p_.gamma(), mu_, row_side_, lambda_, nullptr,
                       sweep_opts_);
  }

  SweepStats ColSweep(bool materialize) override {
    if (p_.mode() == TotalsMode::kSam) col_side_.coupling = lambda_;
    sweep_opts_.profile_phase = "equilibrate.cols";
    sweep_opts_.scheduler =
        col_scheduler_.has_value() ? &*col_scheduler_ : nullptr;
    sweep_opts_.sort_cache = col_orders_.size() > 0 ? &col_orders_ : nullptr;
    sweep_opts_.attribution_base = p_.m();  // column markets: slots [m, m+n)
    return SparseSweep(x0_t_, gamma_t_, lambda_, col_side_, mu_,
                       materialize ? &xt_ : nullptr, sweep_opts_);
  }

  double ResidualMeasure(StopCriterion c) override {
    AccumulateRowSums();
    return MaxRowResidual(c, rowsum_, Targets());
  }

  double AttributeResidual(StopCriterion c, std::span<double> out) override {
    AccumulateRowSums();
    const ResidualTargets targets = Targets();
    double l1 = 0.0;
    for (std::size_t i = 0; i < rowsum_.size(); ++i) {
      out[i] = FoldRowResidual(c, rowsum_[i], RowTarget(targets, i), 0.0);
      l1 += out[i];
    }
    return l1;
  }

  double DiffFromSnapshot() override {
    const auto vals = xt_.Values();
    double measure = 0.0;
    for (std::size_t k = 0; k < vals.size(); ++k)
      measure = std::max(measure, std::abs(vals[k] - xt_prev_[k]));
    return measure;
  }

  void SnapshotIterate() override {
    const auto vals = xt_.Values();
    xt_prev_.assign(vals.begin(), vals.end());
  }

  std::uint64_t CheckCost() const override { return 2 * p_.nnz(); }

  // Breakdown recovery mirrors the dense backend: the pattern primal is
  // recovered from the duals after the run, so they are the whole state.
  void SaveGoodIterate() override {
    lambda_good_ = lambda_;
    mu_good_ = mu_;
  }
  void RestoreGoodIterate() override {
    if (lambda_good_.empty()) {
      std::fill(lambda_.begin(), lambda_.end(), 0.0);
      std::fill(mu_.begin(), mu_.end(), 0.0);
      return;
    }
    lambda_ = lambda_good_;
    mu_ = mu_good_;
  }

  // Durability hooks (core/checkpoint.hpp): duals + the kXChange snapshot
  // (pattern values only — the pattern itself is pinned by the fingerprint)
  // are the whole resumable state.
  bool CaptureIterate(CheckpointState& out) override {
    if (!fingerprint_.has_value()) fingerprint_ = FingerprintProblem(p_);
    out.fingerprint = *fingerprint_;
    out.m = p_.m();
    out.n = p_.n();
    out.lambda = lambda_;
    out.mu = mu_;
    out.have_snapshot = !xt_prev_.empty();
    out.snapshot = xt_prev_;
    return true;
  }

  bool RestoreIterate(const CheckpointState& in) override {
    if (in.lambda.size() != p_.m() || in.mu.size() != p_.n()) return false;
    if (in.have_snapshot && in.snapshot.size() != p_.nnz()) return false;
    lambda_ = in.lambda;
    mu_ = in.mu;
    xt_prev_ = in.have_snapshot ? in.snapshot : std::vector<double>();
    // The restored iterate is the best known point: re-seat the good copies
    // so a later breakdown rolls back here, not to a pre-resume state.
    lambda_good_ = lambda_;
    mu_good_ = mu_;
    return true;
  }

  bool SupportsRecovery() const override { return true; }

  void SnapshotRowDuals(std::vector<double>& out) const override {
    out = lambda_;
  }

  void BlendRowDuals(const std::vector<double>& prev, double keep) override {
    for (std::size_t i = 0; i < lambda_.size(); ++i)
      lambda_[i] = prev[i] + keep * (lambda_[i] - prev[i]);
  }

  // ForceRebalance stays the no-op default: the sparse path has no
  // multiplier-rebalance transform, so the restart rung restores + damps.

 private:
  void AccumulateRowSums() {
    std::fill(rowsum_.begin(), rowsum_.end(), 0.0);
    // xt's rows are the original columns; its column ids are original rows.
    for (std::size_t k = 0; k < xt_.nnz(); ++k)
      rowsum_[xt_.ColIdx()[k]] += xt_.Values()[k];
  }

  ResidualTargets Targets() const {
    ResidualTargets targets;
    targets.mode = p_.mode();
    targets.s0 = p_.s0();
    targets.alpha = p_.alpha();
    targets.lambda = lambda_;
    targets.mu = mu_;
    return targets;
  }

  const SparseDiagonalProblem& p_;
  const SparseMatrix& x0_t_;
  const SparseMatrix& gamma_t_;
  Vector& lambda_;
  Vector& mu_;
  MarketSide row_side_;
  MarketSide col_side_;
  SweepOptions sweep_opts_;
  // Cost feedback + persisted sort orders are per sweep side: the two sides
  // have different market counts and their costs do not transfer.
  std::optional<SweepScheduler> row_scheduler_, col_scheduler_;
  SortOrderCache row_orders_, col_orders_;
  SparseMatrix xt_;
  std::vector<double> xt_prev_;
  Vector rowsum_;
  // Duals at the last finite check (empty until one passes).
  Vector lambda_good_, mu_good_;
  // Problem fingerprint, computed lazily on the first checkpoint capture.
  std::optional<std::uint64_t> fingerprint_;
};

}  // namespace

SparseSea::SparseSea(const SparseDiagonalProblem& problem) {
  problem.Validate();
  problem_ = &problem;
  x0_t_ = problem.x0().Transposed();
  gamma_t_ = problem.gamma().Transposed();
}

void SparseSea::ResetProblem(const SparseDiagonalProblem& problem) {
  SEA_CHECK(problem.m() == problem_->m() && problem.n() == problem_->n());
  SEA_CHECK(problem.mode() == problem_->mode());
  problem.Validate();
  problem_ = &problem;
  x0_t_ = problem.x0().Transposed();
  gamma_t_ = problem.gamma().Transposed();
}

SparseSeaRun SparseSea::Solve(const SeaOptions& opts) {
  return SolveWarm(opts, Vector(problem_->n(), 0.0));  // paper Step 0: mu = 0
}

SparseSeaRun SparseSea::SolveWarm(const SeaOptions& opts, const Vector& mu0) {
  const SparseDiagonalProblem& p = *problem_;
  const std::size_t m = p.m(), n = p.n();
  SEA_CHECK(mu0.size() == n);

  const SparseMatrix& x0_t = x0_t_;
  const SparseMatrix& gamma_t = gamma_t_;

  Vector lambda(m, 0.0);
  Vector mu = mu0;
  SparseBackend backend(p, x0_t, gamma_t, opts, lambda, mu);

  SparseSeaRun run;
  run.result = RunIterationEngine(backend, opts);
  SeaResult& result = run.result;
  run.solution.x = p.x0();
  for (std::size_t i = 0; i < m; ++i) {
    const auto cols = run.solution.x.RowCols(i);
    const auto cvals = p.x0().RowValues(i);
    const auto gvals = p.gamma().RowValues(i);
    auto xvals = run.solution.x.MutableRowValues(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      xvals[k] = std::max(
          0.0, cvals[k] + (lambda[i] + mu[cols[k]]) / (2.0 * gvals[k]));
  }
  switch (p.mode()) {
    case TotalsMode::kFixed:
      run.solution.s = p.s0();
      run.solution.d = p.d0();
      break;
    case TotalsMode::kElastic:
      run.solution.s.resize(m);
      run.solution.d.resize(n);
      for (std::size_t i = 0; i < m; ++i)
        run.solution.s[i] = p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]);
      for (std::size_t j = 0; j < n; ++j)
        run.solution.d[j] = p.d0()[j] - mu[j] / (2.0 * p.beta()[j]);
      break;
    case TotalsMode::kSam:
      run.solution.s.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        run.solution.s[i] =
            p.s0()[i] - (lambda[i] + mu[i]) / (2.0 * p.alpha()[i]);
      run.solution.d = run.solution.s;
      break;
    case TotalsMode::kInterval:
      break;  // unreachable
  }
  run.solution.lambda = std::move(lambda);
  run.solution.mu = std::move(mu);
  result.objective =
      p.Objective(run.solution.x, run.solution.s, run.solution.d);
  return run;
}

SparseSeaRun SolveSparse(const SparseDiagonalProblem& p,
                         const SeaOptions& opts) {
  SparseSea solver(p);
  return solver.Solve(opts);
}

FeasibilityReport CheckFeasibility(const SparseDiagonalProblem& p,
                                   const SparseSolution& sol) {
  const Vector rows = sol.x.RowSums();
  const Vector cols = sol.x.ColSums();
  const Vector& s_target = (p.mode() == TotalsMode::kFixed) ? p.s0() : sol.s;
  const Vector& d_target = (p.mode() == TotalsMode::kFixed) ? p.d0()
                           : (p.mode() == TotalsMode::kSam) ? sol.s
                                                            : sol.d;
  FeasibilityReport r;
  for (std::size_t i = 0; i < p.m(); ++i) {
    const double abs_res = std::abs(rows[i] - s_target[i]);
    r.max_row_abs = std::max(r.max_row_abs, abs_res);
    r.max_row_rel = std::max(
        r.max_row_rel, abs_res / std::max(1.0, std::abs(s_target[i])));
  }
  for (std::size_t j = 0; j < p.n(); ++j) {
    const double abs_res = std::abs(cols[j] - d_target[j]);
    r.max_col_abs = std::max(r.max_col_abs, abs_res);
    r.max_col_rel = std::max(
        r.max_col_rel, abs_res / std::max(1.0, std::abs(d_target[j])));
  }
  for (double v : sol.x.Values()) r.min_x = std::min(r.min_x, v);
  return r;
}

double KktStationarityError(const SparseDiagonalProblem& p,
                            const SparseSolution& sol) {
  double err = 0.0;
  for (std::size_t i = 0; i < p.m(); ++i) {
    const auto cols = p.x0().RowCols(i);
    const auto cvals = p.x0().RowValues(i);
    const auto gvals = p.gamma().RowValues(i);
    const auto xvals = sol.x.RowValues(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double resid = 2.0 * gvals[k] * (xvals[k] - cvals[k]) -
                           sol.lambda[i] - sol.mu[cols[k]];
      if (xvals[k] > 1e-12) {
        err = std::max(err, std::abs(resid));
      } else {
        err = std::max(err, -resid);
      }
      err = std::max(err, -xvals[k]);
    }
  }
  if (p.mode() == TotalsMode::kElastic) {
    for (std::size_t i = 0; i < p.m(); ++i)
      err = std::max(err, std::abs(2.0 * p.alpha()[i] *
                                       (sol.s[i] - p.s0()[i]) +
                                   sol.lambda[i]));
    for (std::size_t j = 0; j < p.n(); ++j)
      err = std::max(err, std::abs(2.0 * p.beta()[j] *
                                       (sol.d[j] - p.d0()[j]) +
                                   sol.mu[j]));
  } else if (p.mode() == TotalsMode::kSam) {
    for (std::size_t i = 0; i < p.n(); ++i)
      err = std::max(err, std::abs(2.0 * p.alpha()[i] *
                                       (sol.s[i] - p.s0()[i]) +
                                   sol.lambda[i] + sol.mu[i]));
  }
  return err;
}

}  // namespace sea
