#include "obs/json_export.hpp"

#include <charconv>
#include <cmath>

#include "core/result.hpp"
#include "parallel/thread_pool.hpp"

namespace sea::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

// ------------------------------------------------------------------ JsonObj

JsonObj& JsonObj::Append(const std::string& key, const std::string& rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

JsonObj& JsonObj::Field(const std::string& key, const std::string& value) {
  return Append(key, "\"" + JsonEscape(value) + "\"");
}
JsonObj& JsonObj::Field(const std::string& key, const char* value) {
  return Field(key, std::string(value));
}
JsonObj& JsonObj::Field(const std::string& key, double value) {
  return Append(key, JsonNumber(value));
}
JsonObj& JsonObj::Field(const std::string& key, bool value) {
  return Append(key, value ? "true" : "false");
}
JsonObj& JsonObj::Field(const std::string& key, std::uint64_t value) {
  return Append(key, std::to_string(value));
}
JsonObj& JsonObj::Field(const std::string& key, int value) {
  return Append(key, std::to_string(value));
}
JsonObj& JsonObj::Raw(const std::string& key, const std::string& json) {
  return Append(key, json);
}

// ------------------------------------------------------------------ JsonArr

JsonArr& JsonArr::Append(const std::string& rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += rendered;
  return *this;
}

JsonArr& JsonArr::Add(double value) { return Append(JsonNumber(value)); }
JsonArr& JsonArr::Add(std::uint64_t value) {
  return Append(std::to_string(value));
}
JsonArr& JsonArr::Add(const std::string& value) {
  return Append("\"" + JsonEscape(value) + "\"");
}
JsonArr& JsonArr::Raw(const std::string& json) { return Append(json); }

// ---------------------------------------------------------------- ToJson(s)

namespace {

std::string OpsJson(const OpCounts& ops) {
  return JsonObj()
      .Field("comparisons", ops.comparisons)
      .Field("flops", ops.flops)
      .Field("breakpoints", ops.breakpoints)
      .Field("inversions", ops.inversions)
      .Str();
}

}  // namespace

std::string ToJson(const SeaResult& r) {
  JsonArr rungs;
  for (std::uint8_t rung : r.recovery_rungs)
    rungs.Add(static_cast<std::uint64_t>(rung));
  return JsonObj()
      .Field("status", ToString(r.status))
      .Field("converged", r.converged())
      .Field("iterations", r.iterations)
      .Field("checks_compared", r.checks_compared)
      .Field("final_residual", r.final_residual)
      .Field("objective", r.objective)
      .Field("wall_seconds", r.wall_seconds)
      .Field("cpu_seconds", r.cpu_seconds)
      .Field("row_phase_seconds", r.row_phase_seconds)
      .Field("col_phase_seconds", r.col_phase_seconds)
      .Field("check_phase_seconds", r.check_phase_seconds)
      .Field("order_reuses", r.order_reuses)
      .Field("kernel_backend", r.kernel_backend)
      .Field("kernel_markets", r.kernel_markets)
      .Field("recovered_count", r.recovered_count)
      .Raw("recovery_rungs", rungs.Str())
      .Raw("ops", OpsJson(r.ops))
      .Str();
}

std::string ToJson(const GeneralSeaResult& r) {
  return JsonObj()
      .Field("status", ToString(r.status))
      .Field("converged", r.converged())
      .Field("outer_iterations", r.outer_iterations)
      .Field("total_inner_iterations", r.total_inner_iterations)
      .Field("final_outer_change", r.final_outer_change)
      .Field("objective", r.objective)
      .Field("wall_seconds", r.wall_seconds)
      .Field("cpu_seconds", r.cpu_seconds)
      .Field("linearization_seconds", r.linearization_seconds)
      .Raw("ops", OpsJson(r.ops))
      .Str();
}

std::string ToJson(const HistogramSnapshot& h) {
  JsonArr bounds, counts;
  for (double b : h.bounds) bounds.Add(b);
  for (std::uint64_t c : h.counts) counts.Add(c);
  JsonObj obj;
  obj.Raw("bounds", bounds.Str())
      .Raw("counts", counts.Str())
      .Field("count", h.total_count)
      .Field("sum", h.sum);
  if (h.total_count > 0) obj.Field("min", h.min).Field("max", h.max);
  return obj.Str();
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  JsonObj counters, gauges, histograms;
  for (const auto& [name, value] : snapshot.counters)
    counters.Field(name, value);
  for (const auto& [name, value] : snapshot.gauges) gauges.Field(name, value);
  for (const auto& [name, h] : snapshot.histograms)
    histograms.Raw(name, ToJson(h));
  return JsonObj()
      .Raw("counters", counters.Str())
      .Raw("gauges", gauges.Str())
      .Raw("histograms", histograms.Str())
      .Str();
}

std::string ToJson(const PoolStats& stats) {
  JsonArr busy;
  double busy_total = 0.0;
  for (double s : stats.worker_busy_seconds) {
    busy.Add(s);
    busy_total += s;
  }
  return JsonObj()
      .Field("threads", stats.threads)
      .Field("regions", stats.regions)
      .Field("region_wall_seconds", stats.region_wall_seconds)
      .Raw("worker_busy_seconds", busy.Str())
      .Field("busy_seconds_total", busy_total)
      .Field("max_imbalance", stats.max_imbalance)
      .Field("mean_imbalance", stats.mean_imbalance)
      .Field("chunks", stats.chunks)
      .Field("claims", stats.claims)
      .Str();
}

}  // namespace sea::obs
