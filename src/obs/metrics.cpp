#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "obs/json_export.hpp"
#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace sea::obs {

namespace internal {

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

// ---------------------------------------------------------------- Histogram

Histogram::Shard::Shard(std::size_t n_buckets)
    : buckets(n_buckets),
      min(std::numeric_limits<double>::infinity()),
      max(-std::numeric_limits<double>::infinity()) {
  // Value-initialization of atomics predates P0883 on some standard
  // libraries; zero the buckets explicitly.
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  SEA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be sorted");
  shards_.reserve(internal::kShards);
  for (std::size_t s = 0; s < internal::kShards; ++s)
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
}

void Histogram::Observe(double v) {
  Shard& shard = *shards_[internal::ThisThreadShard()];
  const std::size_t b =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  double cur = shard.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !shard.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = shard.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !shard.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b)
      snap.counts[b] += shard->buckets[b].load(std::memory_order_relaxed);
    snap.total_count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    lo = std::min(lo, shard->min.load(std::memory_order_relaxed));
    hi = std::max(hi, shard->max.load(std::memory_order_relaxed));
  }
  if (snap.total_count > 0) {
    snap.min = lo;
    snap.max = hi;
  }
  return snap;
}

// ----------------------------------------------------------------- Snapshot

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms)
    if (n == name) return &h;
  return nullptr;
}

// ----------------------------------------------------------------- Registry

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard lk(mu_);
  for (auto& e : counters_)
    if (e.name == name) return *e.metric;
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard lk(mu_);
  for (auto& e : gauges_)
    if (e.name == name) return *e.metric;
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard lk(mu_);
  for (auto& e : histograms_)
    if (e.name == name) return *e.metric;
  histograms_.push_back(
      {name, std::make_unique<Histogram>(std::move(upper_bounds))});
  return *histograms_.back().metric;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& e : counters_)
    snap.counters.emplace_back(e.name, e.metric->Value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& e : gauges_)
    snap.gauges.emplace_back(e.name, e.metric->Value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& e : histograms_)
    snap.histograms.emplace_back(e.name, e.metric->Snapshot());
  return snap;
}

// --------------------------------------------------------------- prometheus

namespace {

// Metric-name charset per the exposition format: [a-zA-Z0-9_:], with dots
// (our canonical separator) and anything else mapped to '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

// Prometheus renders values as Go floats: unlike JSON it HAS NaN/Inf
// spellings, so this differs from JsonNumber only on non-finite values.
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return JsonNumber(v);
}

}  // namespace

void WritePrometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = PromName(name) + "_total";
    os << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = PromName(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << PromNumber(value)
       << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = PromName(name);
    os << "# TYPE " << n << " histogram\n";
    // Buckets are cumulative in the exposition format; ours are disjoint.
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cum += h.counts[b];
      os << n << "_bucket{le=\"" << PromNumber(h.bounds[b]) << "\"} " << cum
         << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.total_count << '\n';
    os << n << "_sum " << PromNumber(h.sum) << '\n';
    os << n << "_count " << h.total_count << '\n';
  }
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  obs::WritePrometheus(os, Snapshot());
}

// --------------------------------------------------------- pool utilization

void RecordPoolMetrics(MetricsRegistry& registry, const PoolStats& stats) {
  registry.GetGauge("pool.threads").Set(static_cast<double>(stats.threads));
  registry.GetCounter("pool.regions").Add(stats.regions);
  registry.GetGauge("pool.region_wall_seconds").Add(stats.region_wall_seconds);
  registry.GetGauge("pool.chunk_imbalance.max").Set(stats.max_imbalance);
  registry.GetGauge("pool.chunk_imbalance.mean").Set(stats.mean_imbalance);
  registry.GetCounter("pool.chunks").Add(stats.chunks);
  registry.GetCounter("pool.claims").Add(stats.claims);
  double busy = 0.0;
  for (std::size_t w = 0; w < stats.worker_busy_seconds.size(); ++w) {
    registry.GetGauge("pool.worker." + std::to_string(w) + ".busy_seconds")
        .Add(stats.worker_busy_seconds[w]);
    busy += stats.worker_busy_seconds[w];
  }
  registry.GetGauge("pool.busy_seconds_total").Add(busy);
  // Utilization of the pool across its ParallelFor regions: busy worker
  // seconds over (region wall x threads) — the measured counterpart to the
  // schedule simulator's efficiency column (parallel/speedup_model.hpp).
  const double capacity =
      stats.region_wall_seconds * static_cast<double>(stats.threads);
  registry.GetGauge("pool.utilization")
      .Set(capacity > 0.0 ? busy / capacity : 0.0);
}

// ----------------------------------------------------------------- quantile

double HistogramQuantile(const HistogramSnapshot& h, double q) {
  if (h.total_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based); walk buckets cumulatively.
  const double rank = q * static_cast<double>(h.total_count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const std::uint64_t c = h.counts[b];
    if (c == 0) continue;
    const double cum_after = static_cast<double>(cum + c);
    if (rank <= cum_after || b + 1 == h.counts.size()) {
      // Bucket edges: the first populated edge is min, the overflow bucket
      // tops out at max; interpolate by the rank's position in the bucket.
      const double lo = (b == 0) ? h.min : h.bounds[b - 1];
      const double hi = (b < h.bounds.size()) ? h.bounds[b] : h.max;
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, h.min, h.max);
    }
    cum += c;
  }
  return h.max;
}

}  // namespace sea::obs
