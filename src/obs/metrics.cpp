#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "obs/json_export.hpp"
#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace sea::obs {

namespace internal {

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

// ---------------------------------------------------------------- Histogram

Histogram::Shard::Shard(std::size_t n_buckets)
    : buckets(n_buckets),
      min(std::numeric_limits<double>::infinity()),
      max(-std::numeric_limits<double>::infinity()) {
  // Value-initialization of atomics predates P0883 on some standard
  // libraries; zero the buckets explicitly.
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  SEA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be sorted");
  shards_.reserve(internal::kShards);
  for (std::size_t s = 0; s < internal::kShards; ++s)
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
}

void Histogram::Observe(double v) {
  Shard& shard = *shards_[internal::ThisThreadShard()];
  const std::size_t b =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  double cur = shard.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !shard.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = shard.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !shard.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b)
      snap.counts[b] += shard->buckets[b].load(std::memory_order_relaxed);
    snap.total_count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    lo = std::min(lo, shard->min.load(std::memory_order_relaxed));
    hi = std::max(hi, shard->max.load(std::memory_order_relaxed));
  }
  if (snap.total_count > 0) {
    snap.min = lo;
    snap.max = hi;
  }
  return snap;
}

// ----------------------------------------------------------------- Snapshot

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms)
    if (n == name) return &h;
  return nullptr;
}

// ----------------------------------------------------------------- Registry

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard lk(mu_);
  for (auto& e : counters_)
    if (e.name == name) return *e.metric;
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard lk(mu_);
  for (auto& e : gauges_)
    if (e.name == name) return *e.metric;
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard lk(mu_);
  for (auto& e : histograms_)
    if (e.name == name) return *e.metric;
  histograms_.push_back(
      {name, std::make_unique<Histogram>(std::move(upper_bounds))});
  return *histograms_.back().metric;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& e : counters_)
    snap.counters.emplace_back(e.name, e.metric->Value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& e : gauges_)
    snap.gauges.emplace_back(e.name, e.metric->Value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& e : histograms_)
    snap.histograms.emplace_back(e.name, e.metric->Snapshot());
  return snap;
}

// --------------------------------------------------------------- prometheus

namespace {

// Metric-name charset per the exposition format: [a-zA-Z_:][a-zA-Z0-9_:]*.
// Dots (our canonical separator) and anything else map to '_'; a leading
// digit gets a '_' prefix and an empty name becomes "_" — a scraper must
// never see a name its parser rejects, whatever a caller registered.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

// Prometheus renders values as Go floats: unlike JSON it HAS NaN/Inf
// spellings, so this differs from JsonNumber only on non-finite values.
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return JsonNumber(v);
}

// HELP text escaping per the text format: backslash and line feed. Label
// VALUES additionally escape the double quote that delimits them.
std::string PromEscape(const std::string& s, bool label_value) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else if (c == '"' && label_value)
      out += "\\\"";
    else
      out += c;
  }
  return out;
}

// Catalogue of HELP strings for the metric families the solver emits
// (core/iteration_engine.cpp, RecordPoolMetrics). Unknown names — tests,
// embedders — simply get no HELP line; the format makes it optional.
const char* PromHelp(const std::string& name) {
  struct Entry {
    const char* name;
    const char* help;
  };
  static constexpr Entry kCatalogue[] = {
      {"sea.iterations", "Completed row+column iteration pairs."},
      {"sea.checks_compared",
       "Convergence checks whose stopping measure was defined."},
      {"sea.solves", "Solver invocations recorded into this registry."},
      {"sea.solves_converged", "Solver invocations that converged."},
      {"sea.ops.flops", "Floating-point operations in market solves."},
      {"sea.ops.comparisons", "Breakpoint comparisons in market solves."},
      {"sea.ops.breakpoints", "Breakpoints generated across market solves."},
      {"sea.ops.inversions",
       "Adjacent-pair inversions repaired by order reuse."},
      {"sea.sweep.order_reuses",
       "Market solves answered by repairing a persisted breakpoint order."},
      {"sea.recovery.rescues",
       "Guardrail trips rescued by the recovery ladder."},
      {"sea.recovery.active_rung",
       "Rung of the most recent recovery (0 = none)."},
      {"sea.checkpoint.resumes", "Solves resumed from a checkpoint."},
      {"sea.check.residual", "Stopping-measure values at convergence checks."},
      {"sea.check.interval_iters",
       "Iterations elapsed between consecutive checks."},
      {"sea.kernel.backend",
       "Kernel backend in use (0 = scalar, 1 = simd)."},
      {"sea.row_phase_seconds", "Wall seconds in parallel row phases."},
      {"sea.col_phase_seconds", "Wall seconds in parallel column phases."},
      {"sea.check_phase_seconds",
       "Wall seconds in serial convergence checks."},
      {"sea.wall_seconds", "Wall seconds across recorded solves."},
      {"sea.cpu_seconds", "Process CPU seconds across recorded solves."},
      {"sea.final_residual", "Stopping measure of the latest solve."},
      {"sea.converged", "Whether the latest solve converged (0/1)."},
      {"sea.market.tracked", "Markets tracked by attribution."},
      {"sea.market.checks", "Attribution check rows recorded."},
      {"sea.market.solves", "Per-market solves recorded by attribution."},
      {"sea.market.churn", "Breakpoint-order churn recorded by attribution."},
      {"pool.threads", "Worker threads in the parallel pool."},
      {"pool.regions", "ParallelFor regions executed."},
      {"pool.region_wall_seconds", "Wall seconds inside ParallelFor regions."},
      {"pool.chunk_imbalance.max",
       "Max relative chunk imbalance across regions."},
      {"pool.chunk_imbalance.mean",
       "Mean relative chunk imbalance across regions."},
      {"pool.chunks", "Work chunks executed by the pool."},
      {"pool.claims", "Dynamic chunk claims by pool workers."},
      {"pool.busy_seconds_total", "Busy seconds summed over pool workers."},
      {"pool.utilization",
       "Busy worker seconds over region wall x threads."},
  };
  for (const auto& e : kCatalogue)
    if (name == e.name) return e.help;
  return nullptr;
}

void WriteHeader(std::ostream& os, const std::string& raw_name,
                 const std::string& prom_name, const char* type) {
  if (const char* help = PromHelp(raw_name))
    os << "# HELP " << prom_name << ' '
       << PromEscape(help, /*label_value=*/false) << '\n';
  os << "# TYPE " << prom_name << ' ' << type << '\n';
}

}  // namespace

void WritePrometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = PromName(name) + "_total";
    WriteHeader(os, name, n, "counter");
    os << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = PromName(name);
    WriteHeader(os, name, n, "gauge");
    os << n << ' ' << PromNumber(value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = PromName(name);
    WriteHeader(os, name, n, "histogram");
    // Buckets are cumulative in the exposition format; ours are disjoint.
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cum += h.counts[b];
      os << n << "_bucket{le=\""
         << PromEscape(PromNumber(h.bounds[b]), /*label_value=*/true)
         << "\"} " << cum << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.total_count << '\n';
    os << n << "_sum " << PromNumber(h.sum) << '\n';
    os << n << "_count " << h.total_count << '\n';
  }
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  obs::WritePrometheus(os, Snapshot());
}

// --------------------------------------------------------- pool utilization

void RecordPoolMetrics(MetricsRegistry& registry, const PoolStats& stats) {
  registry.GetGauge("pool.threads").Set(static_cast<double>(stats.threads));
  registry.GetCounter("pool.regions").Add(stats.regions);
  registry.GetGauge("pool.region_wall_seconds").Add(stats.region_wall_seconds);
  registry.GetGauge("pool.chunk_imbalance.max").Set(stats.max_imbalance);
  registry.GetGauge("pool.chunk_imbalance.mean").Set(stats.mean_imbalance);
  registry.GetCounter("pool.chunks").Add(stats.chunks);
  registry.GetCounter("pool.claims").Add(stats.claims);
  double busy = 0.0;
  for (std::size_t w = 0; w < stats.worker_busy_seconds.size(); ++w) {
    registry.GetGauge("pool.worker." + std::to_string(w) + ".busy_seconds")
        .Add(stats.worker_busy_seconds[w]);
    busy += stats.worker_busy_seconds[w];
  }
  registry.GetGauge("pool.busy_seconds_total").Add(busy);
  // Utilization of the pool across its ParallelFor regions: busy worker
  // seconds over (region wall x threads) — the measured counterpart to the
  // schedule simulator's efficiency column (parallel/speedup_model.hpp).
  const double capacity =
      stats.region_wall_seconds * static_cast<double>(stats.threads);
  registry.GetGauge("pool.utilization")
      .Set(capacity > 0.0 ? busy / capacity : 0.0);
}

// ----------------------------------------------------------------- quantile

double HistogramQuantile(const HistogramSnapshot& h, double q) {
  if (h.total_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based); walk buckets cumulatively.
  const double rank = q * static_cast<double>(h.total_count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const std::uint64_t c = h.counts[b];
    if (c == 0) continue;
    const double cum_after = static_cast<double>(cum + c);
    if (rank <= cum_after || b + 1 == h.counts.size()) {
      // Bucket edges: the first populated edge is min, the overflow bucket
      // tops out at max; interpolate by the rank's position in the bucket.
      const double lo = (b == 0) ? h.min : h.bounds[b - 1];
      const double hi = (b < h.bounds.size()) ? h.bounds[b] : h.max;
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, h.min, h.max);
    }
    cum += c;
  }
  return h.max;
}

}  // namespace sea::obs
