#include "obs/trace_sink.hpp"

#include "obs/json_export.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"

namespace sea::obs {

std::string ToJsonLine(const IterationEvent& ev) {
  return JsonObj()
      .Field("schema", kTelemetrySchemaVersion)
      .Field("type", "check")
      .Field("iter", ev.iteration)
      .Field("measure", ev.measure)
      .Field("measure_defined", ev.measure_defined)
      .Field("converged", ev.converged)
      .Field("checks_compared", ev.checks_compared)
      .Field("row_seconds", ev.row_phase_seconds)
      .Field("col_seconds", ev.col_phase_seconds)
      .Field("check_seconds", ev.check_phase_seconds)
      .Field("flops_delta", ev.ops_delta.flops)
      .Field("comparisons_delta", ev.ops_delta.comparisons)
      .Field("breakpoints_delta", ev.ops_delta.breakpoints)
      .Field("flops_total", ev.ops_total.flops)
      .Field("comparisons_total", ev.ops_total.comparisons)
      .Field("breakpoints_total", ev.ops_total.breakpoints)
      .Str();
}

std::string ToJsonLine(const OuterStepEvent& ev) {
  return JsonObj()
      .Field("schema", kTelemetrySchemaVersion)
      .Field("type", "outer")
      .Field("iter", ev.outer_iteration)
      .Field("change", ev.change)
      .Field("converged", ev.converged)
      .Field("inner_iterations", ev.inner_iterations)
      .Field("inner_iterations_total", ev.inner_iterations_total)
      .Field("linearize_seconds", ev.linearize_seconds)
      .Str();
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) : out_(path) {
  SEA_CHECK_MSG(out_.good(), "cannot open trace file for writing: " + path);
}

void JsonlTraceSink::WriteLine(const std::string& line) {
  if (write_failed_) return;
  SEA_FAILPOINT_SITE("sea.obs.trace_write")
  if (fail::Triggered("sea.obs.trace_write"))
    out_.setstate(std::ios::badbit);
  out_ << line << '\n';
  if (!out_.good()) {
    write_failed_ = true;  // degrade: drop the trace, never the solve
    return;
  }
  ++events_written_;
}

void JsonlTraceSink::OnCheck(const IterationEvent& ev) {
  WriteLine(ToJsonLine(ev));
}

void JsonlTraceSink::OnOuterStep(const OuterStepEvent& ev) {
  WriteLine(ToJsonLine(ev));
}

}  // namespace sea::obs
