// Low-overhead solver metrics: counters, gauges, and fixed-bucket
// histograms.
//
// The registry is the accumulation side of the telemetry layer
// (docs/OBSERVABILITY.md). Counters and histograms are sharded: each thread
// increments a cache-line-private slot chosen once per thread, so the hot
// path is an uncontended relaxed fetch_add; Snapshot() merges the shards.
// Solvers carry the registry as an optional pointer (SeaOptions::metrics) —
// a null registry costs nothing, matching the repository rule that
// telemetry is pay-for-use only.
//
// Metric names are dotted lowercase paths ("sea.check.residual",
// "pool.region_wall_seconds"); the full catalogue lives in
// docs/OBSERVABILITY.md and is append-only across PRs.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sea {

struct PoolStats;

namespace obs {

namespace internal {

// One cache line per slot so concurrent writers never false-share.
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

inline constexpr std::size_t kShards = 16;

// Stable per-thread shard index in [0, kShards).
std::size_t ThisThreadShard();

}  // namespace internal

// Monotone event count. Add() is safe from any thread.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    shards_[internal::ThisThreadShard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_)
      total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  internal::PaddedU64 shards_[internal::kShards];
};

// Last-written scalar (phase seconds, convergence flag, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  // Bucket b counts observations v with v <= bounds[b]; the final bucket
  // (counts.size() == bounds.size() + 1) is the overflow bucket.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total_count = 0;
  double sum = 0.0;
  double min = 0.0;  // defined only when total_count > 0
  double max = 0.0;
};

// Fixed-bucket distribution. Bounds are set at registration and never
// change (the export schema is append-only).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min;
    std::atomic<double> max;
    explicit Shard(std::size_t n_buckets);
  };

  std::vector<double> bounds_;  // sorted upper bounds
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Point-in-time copy of every registered metric, ready for export
// (obs/json_export.hpp). Entries appear in registration order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // Lookup helpers for tests and reports; return 0 / empty on a miss.
  std::uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

// Owns the metrics. Get*() registers on first use and returns a reference
// that stays valid for the registry's lifetime, so call sites resolve a
// metric once and hold the reference across the hot loop.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // Bounds apply on first registration; later calls with the same name
  // return the existing histogram regardless of the bounds argument.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  MetricsSnapshot Snapshot() const;

  // Convenience: Snapshot() rendered in Prometheus text exposition format
  // (see the free WritePrometheus below).
  void WritePrometheus(std::ostream& os) const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mu_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

// Registers a ThreadPool utilization snapshot (parallel/thread_pool.hpp)
// under the "pool." prefix: region count, region wall seconds, per-worker
// busy seconds, and chunk-imbalance gauges.
void RecordPoolMetrics(MetricsRegistry& registry, const PoolStats& stats);

// Renders a snapshot in the Prometheus text exposition format (version
// 0.0.4) for scraping — the wire format the future sea_serve daemon
// exposes. Dotted metric names are sanitized (every character outside
// [a-zA-Z0-9_:] becomes '_', so "sea.check.residual" exports as
// "sea_check_residual"); counters gain the conventional "_total" suffix;
// histograms export as cumulative <name>_bucket{le="..."} series ending in
// le="+Inf", plus <name>_sum and <name>_count. Every family is preceded by
// its "# TYPE" line.
void WritePrometheus(std::ostream& os, const MetricsSnapshot& snapshot);

// Quantile estimate (q in [0, 1]) from a fixed-bucket snapshot: finds the
// bucket containing the q-th ranked observation and interpolates linearly
// within it, clamping to the recorded [min, max]. The estimate's resolution
// is the bucket width — exact values were not retained. Returns 0 when the
// histogram is empty.
double HistogramQuantile(const HistogramSnapshot& h, double q);

}  // namespace obs
}  // namespace sea
