#include "obs/status_file.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <utility>

#include "core/stopping.hpp"
#include "obs/json_export.hpp"

namespace sea::obs {

StatusFileWriter::StatusFileWriter(std::string path, double epsilon,
                                   double min_interval_seconds)
    : path_(std::move(path)),
      epsilon_(epsilon),
      min_interval_(min_interval_seconds),
      eta_iterations_(std::numeric_limits<double>::quiet_NaN()) {}

void StatusFileWriter::OnCheck(const IterationEvent& ev) {
  last_event_ = ev;
  if (ev.measure_defined && std::isfinite(ev.measure)) {
    if (have_prev_)
      eta_iterations_ = EstimateItersToEpsilon(
          prev_iteration_, prev_measure_, ev.iteration, ev.measure, epsilon_);
    prev_iteration_ = ev.iteration;
    prev_measure_ = ev.measure;
    have_prev_ = true;
  }
  const double now = clock_.Seconds();
  if (last_write_seconds_ >= 0.0 && now - last_write_seconds_ < min_interval_)
    return;  // throttled; the snapshot catches up at the next check
  if (WriteSnapshot(ev, "iterating", "")) last_write_seconds_ = now;
}

void StatusFileWriter::OnTermination(SolveStatus status) {
  WriteSnapshot(last_event_, "terminated", sea::ToString(status));
}

bool StatusFileWriter::WriteSnapshot(const IterationEvent& ev,
                                     const char* phase, const char* status) {
  const double elapsed = clock_.Seconds();
  // Seconds-per-iteration so far scales the iteration ETA to wall time.
  const double eta_seconds =
      ev.iteration > 0
          ? eta_iterations_ * (elapsed / static_cast<double>(ev.iteration))
          : std::numeric_limits<double>::quiet_NaN();

  JsonObj obj;
  obj.Field("schema", kTelemetrySchemaVersion)
      .Field("type", "status")
      .Field("phase", phase);
  if (*status != '\0') obj.Field("status", status);
  obj.Field("iter", static_cast<std::uint64_t>(ev.iteration))
      .Field("measure_defined", ev.measure_defined)
      .Field("measure", ev.measure_defined
                            ? ev.measure
                            : std::numeric_limits<double>::quiet_NaN())
      .Field("converged", ev.converged)
      .Field("checks_compared", static_cast<std::uint64_t>(ev.checks_compared))
      .Field("epsilon", epsilon_)
      // NaN renders as null: "no estimate yet" is distinguishable from 0.
      .Field("eta_iterations", eta_iterations_)
      .Field("eta_seconds", eta_seconds)
      .Field("elapsed_seconds", elapsed)
      .Field("row_phase_seconds", ev.row_phase_seconds)
      .Field("col_phase_seconds", ev.col_phase_seconds)
      .Field("check_phase_seconds", ev.check_phase_seconds);

  const std::string tmp = path_ + ".tmp";
  std::ofstream f(tmp, std::ios::trunc);
  if (!f.good()) return false;
  f << obj.Str() << '\n';
  f.close();
  if (!f.good() || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  ++writes_;
  return true;
}

}  // namespace sea::obs
