#include "obs/status_file.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <utility>

#include "core/stopping.hpp"
#include "obs/json_export.hpp"
#include "support/atomic_file.hpp"

namespace sea::obs {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double SanitizeEta(double eta) {
  if (!std::isfinite(eta) || eta < 0.0) return kNan;
  return eta;
}

std::string RenderStatusJson(const StatusSnapshot& snap) {
  JsonObj obj;
  obj.Field("schema", kTelemetrySchemaVersion)
      .Field("type", "status")
      .Field("phase", snap.phase);
  if (*snap.status != '\0') obj.Field("status", snap.status);
  obj.Field("iter", snap.iteration)
      .Field("measure_defined", snap.measure_defined)
      .Field("measure", snap.measure_defined ? snap.measure : kNan)
      .Field("converged", snap.converged)
      .Field("checks_compared", snap.checks_compared)
      .Field("epsilon", snap.epsilon)
      // NaN renders as null: "no estimate yet" is distinguishable from 0.
      .Field("eta_iterations", snap.eta_iterations)
      .Field("eta_seconds", snap.eta_seconds)
      .Field("elapsed_seconds", snap.elapsed_seconds)
      .Field("row_phase_seconds", snap.row_phase_seconds)
      .Field("col_phase_seconds", snap.col_phase_seconds)
      .Field("check_phase_seconds", snap.check_phase_seconds)
      .Field("recoveries", snap.recoveries);
  if (*snap.last_recovery_rung != '\0')
    obj.Field("last_recovery_rung", snap.last_recovery_rung)
        .Field("last_recovery_iter", snap.last_recovery_iteration);
  return obj.Str();
}

StatusFileWriter::StatusFileWriter(std::string path, double epsilon,
                                   double min_interval_seconds)
    : path_(std::move(path)),
      epsilon_(epsilon),
      min_interval_(min_interval_seconds),
      eta_iterations_(kNan) {
  // /statusz must answer before the first check fires.
  latest_json_ = RenderStatusJson(BuildSnapshot(last_event_, "starting", ""));
}

void StatusFileWriter::OnCheck(const IterationEvent& ev) {
  last_event_ = ev;
  if (ev.measure_defined && std::isfinite(ev.measure)) {
    if (have_prev_)
      eta_iterations_ = SanitizeEta(EstimateItersToEpsilon(
          prev_iteration_, prev_measure_, ev.iteration, ev.measure, epsilon_));
    prev_iteration_ = ev.iteration;
    prev_measure_ = ev.measure;
    have_prev_ = true;
  }
  const double now = clock_.Seconds();
  if (last_write_seconds_ >= 0.0 && now - last_write_seconds_ < min_interval_)
    return;  // throttled; the snapshot catches up at the next check
  if (Publish(ev, "iterating", "")) last_write_seconds_ = now;
}

void StatusFileWriter::OnTermination(SolveStatus status) {
  Publish(last_event_, "terminated", sea::ToString(status));
}

void StatusFileWriter::OnRecovery(std::size_t iteration, const char* rung,
                                  std::uint64_t recovered_count) {
  recovered_count_ = recovered_count;
  last_recovery_rung_ = rung;
  last_recovery_iteration_ = iteration;
  // Bypass the throttle: a rescue must be visible live, not a throttle
  // interval later.
  if (Publish(last_event_, "recovering", ""))
    last_write_seconds_ = clock_.Seconds();
}

StatusSnapshot StatusFileWriter::BuildSnapshot(const IterationEvent& ev,
                                               const char* phase,
                                               const char* status) const {
  const double elapsed = clock_.Seconds();
  StatusSnapshot snap;
  snap.phase = phase;
  snap.status = status;
  snap.iteration = static_cast<std::uint64_t>(ev.iteration);
  snap.measure_defined = ev.measure_defined;
  snap.measure = ev.measure;
  snap.converged = ev.converged;
  snap.checks_compared = static_cast<std::uint64_t>(ev.checks_compared);
  snap.epsilon = epsilon_;
  snap.eta_iterations = SanitizeEta(eta_iterations_);
  // Seconds-per-iteration so far scales the iteration ETA to wall time.
  snap.eta_seconds = SanitizeEta(
      ev.iteration > 0
          ? snap.eta_iterations * (elapsed / static_cast<double>(ev.iteration))
          : kNan);
  snap.elapsed_seconds = elapsed;
  snap.row_phase_seconds = ev.row_phase_seconds;
  snap.col_phase_seconds = ev.col_phase_seconds;
  snap.check_phase_seconds = ev.check_phase_seconds;
  snap.recoveries = recovered_count_;
  snap.last_recovery_rung = last_recovery_rung_;
  snap.last_recovery_iteration =
      static_cast<std::uint64_t>(last_recovery_iteration_);
  return snap;
}

bool StatusFileWriter::Publish(const IterationEvent& ev, const char* phase,
                               const char* status) {
  const std::string line = RenderStatusJson(BuildSnapshot(ev, phase, status));
  {
    std::lock_guard lk(latest_mu_);
    latest_json_ = line;
  }
  if (path_.empty()) return true;  // endpoint-only mode

  // Single attempt, no retry: a lost snapshot is superseded by the next
  // throttled one (unlike checkpoints/postmortems, which retry — see
  // support/atomic_file.hpp).
  support::AtomicFileWriter writer;
  if (!writer.Write(path_, [&](std::ostream& f) { f << line << '\n'; }))
    return false;
  ++writes_;
  return true;
}

std::string StatusFileWriter::LatestJson() const {
  std::lock_guard lk(latest_mu_);
  return latest_json_;
}

}  // namespace sea::obs
