#include "obs/status_file.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <utility>

#include "core/stopping.hpp"
#include "obs/json_export.hpp"
#include "support/atomic_file.hpp"

namespace sea::obs {

StatusFileWriter::StatusFileWriter(std::string path, double epsilon,
                                   double min_interval_seconds)
    : path_(std::move(path)),
      epsilon_(epsilon),
      min_interval_(min_interval_seconds),
      eta_iterations_(std::numeric_limits<double>::quiet_NaN()) {}

void StatusFileWriter::OnCheck(const IterationEvent& ev) {
  last_event_ = ev;
  if (ev.measure_defined && std::isfinite(ev.measure)) {
    if (have_prev_)
      eta_iterations_ = EstimateItersToEpsilon(
          prev_iteration_, prev_measure_, ev.iteration, ev.measure, epsilon_);
    prev_iteration_ = ev.iteration;
    prev_measure_ = ev.measure;
    have_prev_ = true;
  }
  const double now = clock_.Seconds();
  if (last_write_seconds_ >= 0.0 && now - last_write_seconds_ < min_interval_)
    return;  // throttled; the snapshot catches up at the next check
  if (WriteSnapshot(ev, "iterating", "")) last_write_seconds_ = now;
}

void StatusFileWriter::OnTermination(SolveStatus status) {
  WriteSnapshot(last_event_, "terminated", sea::ToString(status));
}

void StatusFileWriter::OnRecovery(std::size_t iteration, const char* rung,
                                  std::uint64_t recovered_count) {
  recovered_count_ = recovered_count;
  last_recovery_rung_ = rung;
  last_recovery_iteration_ = iteration;
  // Bypass the throttle: a rescue must be visible live, not a throttle
  // interval later.
  if (WriteSnapshot(last_event_, "recovering", ""))
    last_write_seconds_ = clock_.Seconds();
}

bool StatusFileWriter::WriteSnapshot(const IterationEvent& ev,
                                     const char* phase, const char* status) {
  const double elapsed = clock_.Seconds();
  // Seconds-per-iteration so far scales the iteration ETA to wall time.
  const double eta_seconds =
      ev.iteration > 0
          ? eta_iterations_ * (elapsed / static_cast<double>(ev.iteration))
          : std::numeric_limits<double>::quiet_NaN();

  JsonObj obj;
  obj.Field("schema", kTelemetrySchemaVersion)
      .Field("type", "status")
      .Field("phase", phase);
  if (*status != '\0') obj.Field("status", status);
  obj.Field("iter", static_cast<std::uint64_t>(ev.iteration))
      .Field("measure_defined", ev.measure_defined)
      .Field("measure", ev.measure_defined
                            ? ev.measure
                            : std::numeric_limits<double>::quiet_NaN())
      .Field("converged", ev.converged)
      .Field("checks_compared", static_cast<std::uint64_t>(ev.checks_compared))
      .Field("epsilon", epsilon_)
      // NaN renders as null: "no estimate yet" is distinguishable from 0.
      .Field("eta_iterations", eta_iterations_)
      .Field("eta_seconds", eta_seconds)
      .Field("elapsed_seconds", elapsed)
      .Field("row_phase_seconds", ev.row_phase_seconds)
      .Field("col_phase_seconds", ev.col_phase_seconds)
      .Field("check_phase_seconds", ev.check_phase_seconds)
      .Field("recoveries", recovered_count_);
  if (*last_recovery_rung_ != '\0')
    obj.Field("last_recovery_rung", last_recovery_rung_)
        .Field("last_recovery_iter",
               static_cast<std::uint64_t>(last_recovery_iteration_));

  // Single attempt, no retry: a lost snapshot is superseded by the next
  // throttled one (unlike checkpoints/postmortems, which retry — see
  // support/atomic_file.hpp).
  support::AtomicFileWriter writer;
  if (!writer.Write(path_, [&](std::ostream& f) { f << obj.Str() << '\n'; }))
    return false;
  ++writes_;
  return true;
}

}  // namespace sea::obs
