#include "obs/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "obs/json_export.hpp"

namespace sea::obs {

const char* ToString(MetricsSampler::SeriesKind kind) {
  switch (kind) {
    case MetricsSampler::SeriesKind::kRate:
      return "rate";
    case MetricsSampler::SeriesKind::kGauge:
      return "gauge";
    case MetricsSampler::SeriesKind::kQuantile:
      return "quantile";
  }
  return "?";
}

void MetricsSampler::Ring::Push(double ts, double val, std::size_t capacity) {
  if (t.size() < capacity) {
    t.push_back(ts);
    v.push_back(val);
    head = t.size() % capacity;
    size = t.size();
    return;
  }
  // Full: overwrite the oldest slot — bounded memory is the contract.
  t[head] = ts;
  v[head] = val;
  head = (head + 1) % capacity;
  size = capacity;
}

MetricsSampler::MetricsSampler(const MetricsRegistry* registry,
                               SamplerOptions opts)
    : registry_(registry), opts_(std::move(opts)) {
  if (opts_.ring_capacity == 0) opts_.ring_capacity = 1;
  if (!(opts_.interval_ms > 0.0)) opts_.interval_ms = 250.0;
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::lock_guard lk(thread_mu_);
  if (running_) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { ThreadLoop(); });
  running_ = true;
}

void MetricsSampler::Stop() {
  {
    std::lock_guard lk(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard lk(thread_mu_);
    running_ = false;
  }
  // Terminal sample: the series always end at the final registry state,
  // even when the solve finished between two cadence ticks.
  SampleOnce();
}

bool MetricsSampler::running() const {
  std::lock_guard lk(thread_mu_);
  return running_;
}

void MetricsSampler::ThreadLoop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      opts_.interval_ms);
  std::unique_lock lk(thread_mu_);
  for (;;) {
    // Wait first: the t=0 state is all zeros and the first interesting
    // sample exists one cadence in.
    if (stop_cv_.wait_for(lk, interval, [this] { return stop_requested_; }))
      return;
    lk.unlock();
    SampleOnce();
    lk.lock();
  }
}

void MetricsSampler::SampleOnce() {
  if (registry_ == nullptr) return;
  // Snapshot outside the ring lock: merging the registry shards is the
  // slow part and must not block /timeseries readers.
  const MetricsSnapshot snap = registry_->Snapshot();
  Ingest(snap, clock_.Seconds());
}

MetricsSampler::Ring& MetricsSampler::FindOrCreate(const std::string& name,
                                                   SeriesKind kind,
                                                   double quantile) {
  for (auto& r : rings_)
    if (r.name == name) return r;
  Ring r;
  r.name = name;
  r.kind = kind;
  r.quantile = quantile;
  r.t.reserve(opts_.ring_capacity);
  r.v.reserve(opts_.ring_capacity);
  rings_.push_back(std::move(r));
  return rings_.back();
}

const MetricsSampler::Ring* MetricsSampler::Find(
    const std::string& name) const {
  for (const auto& r : rings_)
    if (r.name == name) return &r;
  return nullptr;
}

void MetricsSampler::Ingest(const MetricsSnapshot& snapshot,
                            double t_seconds) {
  std::lock_guard lk(mu_);
  const double dt = prev_t_ >= 0.0 ? t_seconds - prev_t_ : -1.0;
  for (const auto& [name, value] : snapshot.counters) {
    Ring& r = FindOrCreate(name, SeriesKind::kRate, 0.0);
    if (r.have_prev && dt > 0.0) {
      // Reset clamp: a counter that went backwards (registry swapped out
      // under the sampler) samples as 0, never as a negative rate.
      const std::uint64_t delta =
          value >= r.prev_count ? value - r.prev_count : 0;
      r.Push(t_seconds, static_cast<double>(delta) / dt,
             opts_.ring_capacity);
    }
    r.prev_count = value;
    r.have_prev = true;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    Ring& r = FindOrCreate(name, SeriesKind::kGauge, 0.0);
    r.Push(t_seconds, value, opts_.ring_capacity);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    for (double q : opts_.quantiles) {
      const int pct = static_cast<int>(std::lround(q * 100.0));
      const std::string series = name + ".p" + std::to_string(pct);
      Ring& r = FindOrCreate(series, SeriesKind::kQuantile, q);
      r.Push(t_seconds, HistogramQuantile(hist, q), opts_.ring_capacity);
    }
  }
  prev_t_ = t_seconds;
  ++samples_taken_;
}

std::string MetricsSampler::TimeSeriesJson(const std::string& metric,
                                           std::size_t last) const {
  std::lock_guard lk(mu_);
  const Ring* r = Find(metric);
  if (r == nullptr) {
    JsonArr names;
    for (const auto& ring : rings_) names.Add(ring.name);
    return JsonObj()
        .Field("error", "unknown metric")
        .Raw("metrics", names.Str())
        .Str();
  }
  std::size_t count = r->size;
  if (last > 0) count = std::min(count, last);
  JsonArr samples;
  // Oldest-first of the requested window. While the ring is filling, slot
  // i holds the i-th sample; once full, the oldest live sample sits at
  // `head` and the buffer wraps.
  const bool full = r->size >= opts_.ring_capacity;
  const std::size_t cap = r->t.size();
  const std::size_t start_logical = r->size - count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t logical = start_logical + i;
    const std::size_t slot = full ? (r->head + logical) % cap : logical;
    samples.Raw(
        JsonObj().Field("t", r->t[slot]).Field("v", r->v[slot]).Str());
  }
  return JsonObj()
      .Field("schema", kTelemetrySchemaVersion)
      .Field("type", "timeseries")
      .Field("metric", metric)
      .Field("kind", ToString(r->kind))
      .Field("interval_ms", opts_.interval_ms)
      .Field("samples_kept", static_cast<std::uint64_t>(r->size))
      .Raw("samples", samples.Str())
      .Str();
}

std::string MetricsSampler::SeriesIndexJson() const {
  std::lock_guard lk(mu_);
  JsonArr arr;
  for (const auto& r : rings_)
    arr.Raw(JsonObj()
                .Field("metric", r.name)
                .Field("kind", ToString(r.kind))
                .Field("samples", static_cast<std::uint64_t>(r.size))
                .Str());
  return JsonObj()
      .Field("schema", kTelemetrySchemaVersion)
      .Field("type", "timeseries_index")
      .Field("interval_ms", opts_.interval_ms)
      .Field("series_count", static_cast<std::uint64_t>(rings_.size()))
      .Raw("series", arr.Str())
      .Str();
}

std::vector<std::string> MetricsSampler::SeriesNames() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  names.reserve(rings_.size());
  for (const auto& r : rings_) names.push_back(r.name);
  return names;
}

std::uint64_t MetricsSampler::samples_taken() const {
  std::lock_guard lk(mu_);
  return samples_taken_;
}

}  // namespace sea::obs
