// Structured run traces.
//
// A TraceSink receives one event per convergence check of the shared
// iteration engine (core/iteration_engine.hpp) and one event per projection
// step of general SEA's outer loop (core/general_sea.hpp). It layers
// *beside* the existing ExecutionTrace machinery (SeaOptions::record_trace
// feeds the schedule simulator with per-task operation counts); the sink
// instead captures the convergence trajectory and phase accounting in a
// diffable, append-only format for cross-PR analysis.
//
// Sinks are invoked from the solve thread only — between parallel regions,
// never inside one — so implementations need no locking. Attach via
// SeaOptions::trace_sink; a null sink costs nothing.
//
// JSONL event schema (version 1, append-only; see docs/OBSERVABILITY.md):
//   check {"schema":1,"type":"check","iter":..,"measure":..,
//          "measure_defined":..,"converged":..,"checks_compared":..,
//          "row_seconds":..,"col_seconds":..,"check_seconds":..,
//          "flops_delta":..,"comparisons_delta":..,"breakpoints_delta":..,
//          "flops_total":..,"comparisons_total":..,"breakpoints_total":..}
//   outer {"schema":1,"type":"outer","iter":..,"change":..,"converged":..,
//          "inner_iterations":..,"inner_iterations_total":..,
//          "linearize_seconds":..}
#pragma once

#include <cstddef>
#include <fstream>
#include <string>

#include "core/options.hpp"

namespace sea::obs {

// One projection step of general SEA (paper Section 3.2, Figure 4).
struct OuterStepEvent {
  std::size_t outer_iteration = 0;
  double change = 0.0;  // max |x^t - x^{t-1}| after this step
  bool converged = false;
  std::size_t inner_iterations = 0;        // this step's inner solve
  std::size_t inner_iterations_total = 0;  // cumulative across steps
  double linearize_seconds = 0.0;          // cumulative matvec-phase wall
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnCheck(const IterationEvent& ev) = 0;
  virtual void OnOuterStep(const OuterStepEvent& ev) = 0;
  virtual void Flush() {}
};

// Renders an event as a single-line JSON object (no trailing newline) —
// the serialization JsonlTraceSink writes, exposed for tests and tools.
std::string ToJsonLine(const IterationEvent& ev);
std::string ToJsonLine(const OuterStepEvent& ev);

// Appends one JSON object per line to a file. Throws InvalidArgument when
// the file cannot be opened. Flushes on destruction.
//
// Mid-run write failures (disk full, pipe closed; injectable via the
// sea.obs.trace_write failpoint) degrade rather than abort the solve:
// the sink stops writing, write_failed() reports the condition, and
// events_written() counts only the lines that actually reached the stream.
// A trace is telemetry — losing it must never lose the solve.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);

  void OnCheck(const IterationEvent& ev) override;
  void OnOuterStep(const OuterStepEvent& ev) override;
  void Flush() override { out_.flush(); }

  std::size_t events_written() const { return events_written_; }
  bool write_failed() const { return write_failed_; }

 private:
  void WriteLine(const std::string& line);

  std::ofstream out_;
  std::size_t events_written_ = 0;
  bool write_failed_ = false;
};

}  // namespace sea::obs
