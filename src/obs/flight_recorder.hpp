// In-memory flight recorder for solver postmortems (docs/ROBUSTNESS.md,
// docs/OBSERVABILITY.md "Flight recorder").
//
// The guardrail statuses (stalled, numerical-breakdown, cancelled,
// time-budget-exceeded) used to surface as a bare enum with no evidence
// trail. The FlightRecorder keeps a fixed-capacity ring of recent engine
// events (begin/check/breakdown/stall/guardrail/termination) plus a
// last-good-iterate summary; when a solve terminates in one of the four
// guardrail failure classes and a dump path is set, it writes the ring
// atomically (temp file + rename) to a JSONL postmortem that the flat trace
// parser (obs/trace_reader.hpp) can read back.
//
// Recording is O(1) per event into preallocated storage, single-threaded
// (the engine records only from the solve thread, never inside a sweep),
// and the ring survives across chained solves (general SEA's inner runs),
// so the postmortem shows the events leading up to the failure even when
// the failing solve was warm-started. Pay-for-use as usual:
// SeaOptions::flight_recorder is null by default.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/solve_status.hpp"
#include "support/stopwatch.hpp"

namespace sea::obs {

class FlightRecorder {
 public:
  // Kinds of recorded events; serialized under these stable names.
  enum class EventKind : std::uint8_t {
    kBegin,        // engine run started (value = max_iterations)
    kCheck,        // check iteration (value = measure; NaN when undefined)
    kBreakdown,    // non-finite measure observed, last-good iterate restored
    kStallTrip,    // stall detector tripped (value = frozen measure)
    kCancelPoll,   // cancellation observed at a check poll
    kBudgetPoll,   // time budget observed expired at a check poll
    kRecovery,     // recovery-ladder rescue (value = rung; ROBUSTNESS.md)
    kResume,       // run resumed from a checkpoint (value = its residual)
    kTermination,  // engine returned (value = final residual)
  };
  static const char* ToString(EventKind k);

  explicit FlightRecorder(std::size_t capacity = 256);

  // Enables the automatic postmortem dump on guardrail termination.
  void SetDumpPath(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  // Engine hooks (solve thread only).
  void Record(EventKind kind, std::size_t iteration, double value);
  void NoteGoodIterate(std::size_t iteration, double measure) {
    last_good_iteration_ = iteration;
    last_good_measure_ = measure;
    have_good_ = true;
  }
  // Records the termination event and, when `status` is one of the four
  // guardrail failure classes and a dump path is set, writes the
  // postmortem. `recovered` is the run's recovery-ladder rescue count
  // (surfaced in the postmortem header: "the ladder rescued N trips before
  // this one ended the run").
  void OnTermination(SolveStatus status, std::size_t iterations,
                     double final_residual, double wall_seconds,
                     std::uint64_t recovered = 0);

  // Writes the postmortem JSONL (header, last-good summary, ring events
  // oldest to newest) atomically. Fail-soft: returns false and leaves any
  // existing file untouched on a write failure (failpoint
  // sea.obs.postmortem_write forces that path).
  bool WritePostmortem(const std::string& path) const;

  std::size_t capacity() const { return ring_.size(); }
  std::size_t recorded() const { return recorded_; }
  bool dumped() const { return dumped_; }

 private:
  struct Event {
    double seconds = 0.0;  // since recorder construction
    EventKind kind = EventKind::kBegin;
    std::size_t iteration = 0;
    double value = 0.0;
  };

  std::vector<Event> ring_;
  std::size_t recorded_ = 0;  // total events ever recorded
  Stopwatch clock_;           // one time base across chained solves
  std::string dump_path_;
  SolveStatus last_status_ = SolveStatus::kMaxIterations;
  double wall_seconds_ = 0.0;
  std::size_t iterations_ = 0;
  double final_residual_ = 0.0;
  std::uint64_t recovered_ = 0;
  std::size_t last_good_iteration_ = 0;
  double last_good_measure_ = 0.0;
  bool have_good_ = false;
  bool dumped_ = false;
};

}  // namespace sea::obs
