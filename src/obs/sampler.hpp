// Background metrics sampler: turns the point-in-time MetricsRegistry into
// queryable time series with bounded memory (docs/OBSERVABILITY.md, "Live
// endpoints").
//
// A scrape of /metrics answers "what is the counter NOW"; judging a running
// solve needs "how fast is it moving and how has that changed" — iteration
// RATE collapsing is exactly the slow-convergence signature the "limit
// points of iterative scaling" literature warns about, and the rate series
// is the natural input for judging acceleration (PAPERS.md). MetricsSampler
// owns one background thread that snapshots a MetricsRegistry every
// `interval_ms` and appends to fixed-capacity per-series rings:
//
//   * counters   -> per-second rates (delta / dt, clamped at 0 so a
//                   registry swap / counter reset yields a 0 sample, not a
//                   huge negative spike),
//   * gauges     -> last-written values,
//   * histograms -> one series per configured quantile ("<name>.p50", ...)
//                   via HistogramQuantile.
//
// Memory is bounded by construction: series_count x ring_capacity samples,
// no allocation after the first sampling pass registers the series set.
// Readers (the /timeseries endpoint, tests) and the sampler thread
// synchronize on one mutex; the solve thread is never touched — sampling
// only reads the registry's atomics, which is why sampler-on results are
// bit-identical to sampler-off (asserted by the CI telemetry smoke).
//
// Ingest(snapshot, t) is the thread-free core (exposed for tests and for
// embedders with their own cadence): SampleOnce() stamps the monotonic
// clock and calls it; the background thread calls SampleOnce() on its
// timer. Stop() (or destruction) takes a final sample so the series always
// include the terminal state, then joins — every sea_solve exit path runs
// it (docs/ROBUSTNESS.md, "Flush-on-exit").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace sea::obs {

struct SamplerOptions {
  double interval_ms = 250.0;      // cadence of the background thread
  std::size_t ring_capacity = 256; // samples kept per series (~64s history)
  std::vector<double> quantiles = {0.5, 0.95, 0.99};  // histogram series
};

class MetricsSampler {
 public:
  enum class SeriesKind { kRate, kGauge, kQuantile };

  MetricsSampler(const MetricsRegistry* registry, SamplerOptions opts = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  // Spawn / join the background thread. Start is idempotent while running;
  // Stop takes one final sample before joining and is safe to call twice.
  void Start();
  void Stop();

  // Take one sample now, on the caller's thread (also used by the
  // background thread). Safe concurrently with readers.
  void SampleOnce();

  // Test/embedder seam: fold an externally produced snapshot taken at
  // monotonic time `t_seconds` into the rings, exactly as the sampler
  // thread would. Counter deltas are computed against the previous ingest.
  void Ingest(const MetricsSnapshot& snapshot, double t_seconds);

  // One series as JSON:
  //   {"schema":4,"type":"timeseries","metric":"sea.iterations",
  //    "kind":"rate","interval_ms":250,"samples":[{"t":1.25,"v":120.0},...]}
  // `last` > 0 returns only the most recent `last` samples. An unknown
  // metric returns {"error":"unknown metric","metrics":[...names...]}.
  std::string TimeSeriesJson(const std::string& metric,
                             std::size_t last = 0) const;
  // Every known series name with kind and sample count, as a JSON array —
  // the /timeseries index when no metric is named.
  std::string SeriesIndexJson() const;

  std::vector<std::string> SeriesNames() const;
  std::uint64_t samples_taken() const;
  bool running() const;
  const SamplerOptions& options() const { return opts_; }

 private:
  struct Ring {
    std::string name;
    SeriesKind kind = SeriesKind::kGauge;
    // For kQuantile: source histogram + q; for kRate: previous raw count.
    double quantile = 0.0;
    std::uint64_t prev_count = 0;
    bool have_prev = false;
    // Fixed-capacity circular buffer of (t, v).
    std::vector<double> t;
    std::vector<double> v;
    std::size_t head = 0;  // next write slot
    std::size_t size = 0;

    void Push(double ts, double val, std::size_t capacity);
  };

  void ThreadLoop();
  Ring& FindOrCreate(const std::string& name, SeriesKind kind,
                     double quantile);
  const Ring* Find(const std::string& name) const;

  const MetricsRegistry* registry_;
  SamplerOptions opts_;
  Stopwatch clock_;

  mutable std::mutex mu_;        // guards rings_ + sample bookkeeping
  std::vector<Ring> rings_;
  double prev_t_ = -1.0;         // previous ingest time (rate denominators)
  std::uint64_t samples_taken_ = 0;

  mutable std::mutex thread_mu_; // guards thread lifecycle + stop flag
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

const char* ToString(MetricsSampler::SeriesKind kind);

}  // namespace sea::obs
