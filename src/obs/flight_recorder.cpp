#include "obs/flight_recorder.hpp"

#include <ios>
#include <ostream>
#include <utility>

#include "obs/json_export.hpp"
#include "support/atomic_file.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"

namespace sea::obs {

const char* FlightRecorder::ToString(EventKind k) {
  switch (k) {
    case EventKind::kBegin: return "begin";
    case EventKind::kCheck: return "check";
    case EventKind::kBreakdown: return "breakdown";
    case EventKind::kStallTrip: return "stall";
    case EventKind::kCancelPoll: return "cancel";
    case EventKind::kBudgetPoll: return "budget";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kResume: return "resume";
    case EventKind::kTermination: return "termination";
  }
  SEA_INTERNAL_CHECK(false);
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Record(EventKind kind, std::size_t iteration,
                            double value) {
  Event& e = ring_[recorded_ % ring_.size()];
  e.seconds = clock_.Seconds();
  e.kind = kind;
  e.iteration = iteration;
  e.value = value;
  ++recorded_;
}

void FlightRecorder::OnTermination(SolveStatus status, std::size_t iterations,
                                   double final_residual, double wall_seconds,
                                   std::uint64_t recovered) {
  Record(EventKind::kTermination, iterations, final_residual);
  last_status_ = status;
  iterations_ = iterations;
  final_residual_ = final_residual;
  wall_seconds_ = wall_seconds;
  recovered_ = recovered;
  const bool failure_class = status == SolveStatus::kStalled ||
                             status == SolveStatus::kNumericalBreakdown ||
                             status == SolveStatus::kCancelled ||
                             status == SolveStatus::kTimeBudgetExceeded;
  if (failure_class && !dump_path_.empty())
    dumped_ = WritePostmortem(dump_path_);
}

bool FlightRecorder::WritePostmortem(const std::string& path) const {
  // Atomic publication + retry with backoff via the shared writer: readers
  // polling `path` see the old dump or the new one, never a torn write,
  // and a transient write failure gets another chance before the dump is
  // abandoned (the solve result is never at stake either way).
  support::AtomicFileWriter writer(support::RetryPolicy{3, 0.5, 4.0});
  return writer.Write(path, [&](std::ostream& f) {
    SEA_FAILPOINT_SITE("sea.obs.postmortem_write")
    if (fail::Triggered("sea.obs.postmortem_write"))
      f.setstate(std::ios::badbit);
    if (!f.good()) return;

    const std::size_t kept =
        recorded_ < ring_.size() ? recorded_ : ring_.size();
    f << JsonObj()
             .Field("schema", kTelemetrySchemaVersion)
             .Field("type", "postmortem")
             .Field("status", sea::ToString(last_status_))
             .Field("iterations", static_cast<std::uint64_t>(iterations_))
             .Field("final_residual", final_residual_)
             .Field("wall_seconds", wall_seconds_)
             .Field("recovered", recovered_)
             .Field("events_recorded", static_cast<std::uint64_t>(recorded_))
             .Field("events_dropped",
                    static_cast<std::uint64_t>(recorded_ - kept))
             .Field("capacity", static_cast<std::uint64_t>(ring_.size()))
             .Str()
      << '\n';
    if (have_good_) {
      f << JsonObj()
               .Field("type", "last_good")
               .Field("iter",
                      static_cast<std::uint64_t>(last_good_iteration_))
               .Field("measure", last_good_measure_)
               .Str()
        << '\n';
    }
    for (std::size_t k = recorded_ - kept; k < recorded_; ++k) {
      const Event& e = ring_[k % ring_.size()];
      f << JsonObj()
               .Field("type", "event")
               .Field("kind", ToString(e.kind))
               .Field("t", e.seconds)
               .Field("iter", static_cast<std::uint64_t>(e.iteration))
               .Field("value", e.value)
               .Str()
        << '\n';
    }
  });
}

}  // namespace sea::obs
