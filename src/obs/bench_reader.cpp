#include "obs/bench_reader.hpp"

#include <fstream>

#include "support/check.hpp"

namespace sea::obs {

namespace {

// Advances i past the JSON string starting at s[i] == '"'. Escape-aware.
void SkipString(const std::string& s, std::size_t& i) {
  SEA_CHECK_MSG(i < s.size() && s[i] == '"', "expected string");
  ++i;
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;
    } else if (s[i] == '"') {
      ++i;
      return;
    } else {
      ++i;
    }
  }
  throw InvalidArgument("unterminated string in bench document");
}

// Advances i past a balanced bracket run starting at s[i] (one of '[','{').
// Strings inside are escape-aware; returns [start, i) as the fragment.
std::string SkipBalanced(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  int depth = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      SkipString(s, i);
      continue;
    }
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        ++i;
        return s.substr(start, i - start);
      }
    }
    ++i;
  }
  throw InvalidArgument("unbalanced brackets in bench document");
}

void SkipWs(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n'))
    ++i;
}

// Splits an "[ {..}, {..} ]" fragment into its flat-object elements.
std::vector<std::string> ArrayElements(const std::string& arr) {
  std::vector<std::string> out;
  std::size_t i = 0;
  SkipWs(arr, i);
  SEA_CHECK_MSG(i < arr.size() && arr[i] == '[', "expected array");
  ++i;
  for (;;) {
    SkipWs(arr, i);
    if (i >= arr.size())
      throw InvalidArgument("unterminated array in bench document");
    if (arr[i] == ']') break;
    if (arr[i] == ',') {
      ++i;
      continue;
    }
    if (arr[i] == '{') {
      out.push_back(SkipBalanced(arr, i));
    } else {
      // Scalar element (not produced by bench_common; tolerate and skip).
      while (i < arr.size() && arr[i] != ',' && arr[i] != ']') {
        if (arr[i] == '"')
          SkipString(arr, i);
        else
          ++i;
      }
    }
  }
  return out;
}

struct TopLevel {
  std::string flat;  // scalar fields reassembled as one flat object
  std::vector<std::pair<std::string, std::string>> arrays;  // name -> "[..]"
};

TopLevel SplitTopLevel(const std::string& line) {
  TopLevel out;
  std::string flat_body;
  std::size_t i = 0;
  SkipWs(line, i);
  SEA_CHECK_MSG(i < line.size() && line[i] == '{',
                "bench document must be a JSON object");
  ++i;
  for (;;) {
    SkipWs(line, i);
    if (i >= line.size())
      throw InvalidArgument("unterminated bench document");
    if (line[i] == '}') break;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    const std::size_t key_start = i;
    SkipString(line, i);
    const std::string key_json = line.substr(key_start, i - key_start);
    SkipWs(line, i);
    SEA_CHECK_MSG(i < line.size() && line[i] == ':',
                  "expected ':' in bench document");
    ++i;
    SkipWs(line, i);
    if (i >= line.size())
      throw InvalidArgument("truncated bench document value");
    if (line[i] == '[') {
      // Strip the quotes off the key for the array name.
      out.arrays.emplace_back(key_json.substr(1, key_json.size() - 2),
                              SkipBalanced(line, i));
    } else if (line[i] == '{') {
      SkipBalanced(line, i);  // unknown nested object: tolerate, skip
    } else {
      const std::size_t val_start = i;
      if (line[i] == '"') {
        SkipString(line, i);
      } else {
        while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      }
      std::string value = line.substr(val_start, i - val_start);
      while (!value.empty() &&
             (value.back() == ' ' || value.back() == '\t'))
        value.pop_back();
      if (!flat_body.empty()) flat_body += ',';
      flat_body += key_json + ":" + value;
    }
  }
  out.flat = "{" + flat_body + "}";
  return out;
}

std::string StringField(const TraceEvent& ev, const std::string& key) {
  auto it = ev.strings.find(key);
  return it != ev.strings.end() ? it->second : std::string();
}

}  // namespace

std::vector<std::pair<std::string, std::string>> JsonObjectFields(
    const std::string& json) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  SkipWs(json, i);
  SEA_CHECK_MSG(i < json.size() && json[i] == '{', "expected JSON object");
  ++i;
  for (;;) {
    SkipWs(json, i);
    if (i >= json.size()) throw InvalidArgument("unterminated JSON object");
    if (json[i] == '}') break;
    if (json[i] == ',') {
      ++i;
      continue;
    }
    const std::size_t key_start = i;
    SkipString(json, i);
    std::string key = json.substr(key_start + 1, i - key_start - 2);
    SkipWs(json, i);
    SEA_CHECK_MSG(i < json.size() && json[i] == ':',
                  "expected ':' in JSON object");
    ++i;
    SkipWs(json, i);
    if (i >= json.size()) throw InvalidArgument("truncated JSON value");
    std::string value;
    if (json[i] == '[' || json[i] == '{') {
      value = SkipBalanced(json, i);
    } else if (json[i] == '"') {
      const std::size_t start = i;
      SkipString(json, i);
      value = json.substr(start, i - start);
    } else {
      const std::size_t start = i;
      while (i < json.size() && json[i] != ',' && json[i] != '}') ++i;
      value = json.substr(start, i - start);
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
        value.pop_back();
    }
    out.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

std::vector<double> JsonNumberArray(const std::string& json) {
  std::vector<double> out;
  std::size_t i = 0;
  SkipWs(json, i);
  SEA_CHECK_MSG(i < json.size() && json[i] == '[', "expected JSON array");
  ++i;
  std::string token;
  auto flush = [&out, &token] {
    if (token.empty()) return;
    try {
      out.push_back(std::stod(token));
    } catch (const std::exception&) {
      // Non-numeric element: skipped, per the header contract.
    }
    token.clear();
  };
  while (i < json.size() && json[i] != ']') {
    const char c = json[i];
    if (c == ',') {
      flush();
      ++i;
    } else if (c == '"') {
      SkipString(json, i);
    } else if (c == ' ' || c == '\t') {
      ++i;
    } else {
      token += c;
      ++i;
    }
  }
  if (i >= json.size()) throw InvalidArgument("unterminated JSON array");
  flush();
  return out;
}

BenchDoc ParseBenchDoc(const std::string& line) {
  const TopLevel top = SplitTopLevel(line);
  BenchDoc doc;
  doc.meta = ParseTraceLine(top.flat);
  for (const auto& [name, arr] : top.arrays) {
    if (name == "records") {
      for (const auto& elem : ArrayElements(arr)) {
        const TraceEvent ev = ParseTraceLine(elem);
        BenchRecord r;
        r.experiment = StringField(ev, "experiment");
        r.dataset = StringField(ev, "dataset");
        r.metric = StringField(ev, "metric");
        r.measured = ev.Number("measured");
        if (ev.Has("paper")) r.paper = ev.Number("paper");
        r.note = StringField(ev, "note");
        doc.records.push_back(std::move(r));
      }
    } else if (name == "phases") {
      for (const auto& elem : ArrayElements(arr)) {
        const TraceEvent ev = ParseTraceLine(elem);
        BenchPhase p;
        p.phase = StringField(ev, "phase");
        p.count = ev.Number("count");
        p.total_seconds = ev.Number("total_seconds");
        p.self_seconds = ev.Number("self_seconds");
        p.mean_seconds = ev.Number("mean_seconds");
        p.max_seconds = ev.Number("max_seconds");
        doc.phases.push_back(std::move(p));
      }
    }
    // Unknown arrays: skipped (append-only schema tolerance).
  }
  return doc;
}

std::vector<BenchDoc> ReadBenchJsonl(const std::string& path) {
  std::ifstream in(path);
  SEA_CHECK_MSG(in.good(), "cannot open bench json: " + path);
  std::vector<BenchDoc> docs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    bool blank = true;
    for (char c : line)
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    if (blank) continue;
    try {
      docs.push_back(ParseBenchDoc(line));
    } catch (const InvalidArgument& err) {
      throw InvalidArgument(path + " line " + std::to_string(line_no) + ": " +
                            err.what());
    }
  }
  return docs;
}

}  // namespace sea::obs
