#include "obs/solve_log.hpp"

#include <ctime>
#include <ostream>
#include <utility>

#include "support/atomic_file.hpp"

namespace sea::obs {

namespace {

std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

std::string HexU64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string RenderWideEvent(const SolveWideEvent& event) {
  // The document is FLAT by contract (readable with obs::ReadTraceJsonl,
  // which rejects nesting), so the rung sequence renders as a compact
  // string: "1,2,3".
  std::string rungs;
  for (std::uint8_t r : event.recovery_rungs) {
    if (!rungs.empty()) rungs += ',';
    rungs += std::to_string(static_cast<unsigned>(r));
  }
  JsonObj doc;
  doc.Field("schema", kTelemetrySchemaVersion)
      .Field("type", "solve")
      .Field("timestamp", IsoTimestampUtc())
      .Field("tool", event.tool)
      .Field("mode", event.mode)
      .Field("rows", event.rows)
      .Field("cols", event.cols)
      .Field("epsilon", event.epsilon)
      .Field("criterion", event.criterion)
      .Field("threads", event.threads)
      .Field("schedule", event.schedule)
      .Field("sort", event.sort)
      .Field("backend", event.backend)
      .Field("options_fingerprint", HexU64(event.options_fingerprint))
      .Field("status", event.status)
      .Field("exit_code", event.exit_code)
      .Field("iterations", event.iterations)
      .Field("checks_compared", event.checks_compared)
      .Field("final_residual", event.final_residual)
      .Field("objective", event.objective)
      .Field("feasibility_max_abs", event.feasibility_max_abs)
      .Field("feasibility_max_rel", event.feasibility_max_rel)
      .Field("wall_seconds", event.wall_seconds)
      .Field("cpu_seconds", event.cpu_seconds)
      .Field("row_phase_seconds", event.row_phase_seconds)
      .Field("col_phase_seconds", event.col_phase_seconds)
      .Field("check_phase_seconds", event.check_phase_seconds)
      .Field("recoveries", event.recoveries)
      .Field("recovery_rungs", rungs)
      .Field("resumed", event.resumed)
      .Field("peak_rss_bytes", event.peak_rss_bytes)
      .Field("listen_port", event.listen_port);
  if (!event.cache_tier.empty()) {
    doc.Field("cache_tier", event.cache_tier)
        .Field("queue_seconds", event.queue_seconds);
  }
  if (!event.error.empty()) doc.Field("error", event.error);
  return doc.Str();
}

SolveLogWriter::SolveLogWriter(std::string path) : path_(std::move(path)) {}

bool SolveLogWriter::Emit(const SolveWideEvent& event) {
  if (path_.empty()) return true;
  const std::string line = RenderWideEvent(event);
  // Retry: unlike a status snapshot, a wide event has no successor to
  // supersede it — losing the line is losing the invocation's record.
  support::AtomicFileWriter writer(
      support::RetryPolicy{/*max_attempts=*/3, /*initial_backoff_ms=*/1.0,
                           /*backoff_multiplier=*/4.0});
  if (!writer.Append(path_, [&](std::ostream& f) { f << line << '\n'; }))
    return false;
  ++emitted_;
  return true;
}

}  // namespace sea::obs
