// Phase-level span profiler (docs/OBSERVABILITY.md, "Profiling").
//
// The paper's Section 4 cost model attributes SEA's speed to a tiny serial
// fraction: almost all wall-clock sits in the embarrassingly-parallel row and
// column equilibrations. This profiler is the instrument that measures that
// claim on real hardware: every named solver phase (equilibration sweeps,
// convergence checks, projection steps, factorizations, thread-pool chunks
// and queue waits) is wrapped in an RAII span, and a run can be exported as
//   * a Chrome trace-event JSON file (open in Perfetto / chrome://tracing;
//     one track per recording thread), and
//   * an aggregated per-phase table (count, total/self/mean/max seconds,
//     % of wall) via tools/prof_report or `sea_solve --profile-summary`.
//
// Pay-for-use, same contract as MetricsRegistry: the profiler is attached
// process-wide; with none attached a span site costs one relaxed atomic load
// and a predicted branch — no clock read, no allocation. When attached, a
// span costs two monotonic clock reads plus an append to a thread-private
// buffer (the only lock is taken once per thread to register its buffer).
//
// Threading contract: Attach/Detach and Events()/dropped() must be called
// while no spans are being recorded (between solves / after pool joins).
// Recording itself is safe from any thread. A Profiler must outlive every
// span recorded into it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sea::obs {

// One completed span, as recorded on the hot path. `name` is an interned
// pointer to a string literal (static storage duration required).
struct ProfEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // monotonic clock, absolute
  std::uint64_t end_ns = 0;
  std::uint32_t thread = 0;  // dense per-profiler track index
};

struct ProfilerOptions {
  // Enables the fine-grained span sites (per-market breakpoint solves).
  // These multiply event counts by the market count per sweep, so they are
  // off by default; the coarse phases already account for their total time.
  bool fine_grained = false;
  // Events beyond this per-thread cap are counted in dropped() instead of
  // recorded, bounding profiler memory on very long runs.
  std::size_t max_events_per_thread = 1u << 20;
};

class Profiler {
 public:
  explicit Profiler(ProfilerOptions opts = {});
  ~Profiler();  // detaches if still attached

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Makes this profiler the process-wide recording target. At most one
  // profiler may be attached at a time (SEA_CHECK enforced).
  void Attach();
  void Detach();
  static Profiler* Current();

  bool fine_grained() const { return opts_.fine_grained; }

  // Records a completed span with explicit timestamps onto the calling
  // thread's track (used for spans whose start was observed elsewhere, e.g.
  // thread-pool queue waits timed from the region's publish instant).
  void RecordSpan(const char* name, std::uint64_t start_ns,
                  std::uint64_t end_ns);

  // Merged copy of every recorded event (unordered across threads).
  std::vector<ProfEvent> Events() const;
  std::uint64_t dropped() const;
  std::size_t thread_count() const;

  // --- internal (hot path) -------------------------------------------------
  struct ThreadBuffer {
    std::vector<ProfEvent> events;
    std::uint32_t index = 0;
    std::uint64_t dropped = 0;
  };
  // Returns this thread's buffer, registering it on first use.
  ThreadBuffer* BufferForThisThread();

 private:
  ProfilerOptions opts_;
  std::uint64_t generation_ = 0;  // unique per Attach, keys thread caches
  mutable std::mutex mu_;         // guards buffers_ registration and reads
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

namespace prof_internal {
extern std::atomic<Profiler*> g_current;
std::uint64_t NowNs();  // monotonic nanoseconds
}  // namespace prof_internal

// RAII span guard. `name` must be a string literal (or otherwise outlive the
// profiler). With no profiler attached, construction and destruction reduce
// to one atomic load and two branches.
class ProfScope {
 public:
  explicit ProfScope(const char* name)
      : profiler_(prof_internal::g_current.load(std::memory_order_acquire)) {
    if (profiler_) Begin(name);
  }
  ~ProfScope() {
    if (profiler_) End();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 protected:
  ProfScope(const char* name, Profiler* profiler) : profiler_(profiler) {
    if (profiler_) Begin(name);
  }

 private:
  void Begin(const char* name);
  void End();

  Profiler* profiler_;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  Profiler::ThreadBuffer* buffer_ = nullptr;
};

// Span guard for fine-grained sites (per-market solves): records only when
// the attached profiler was built with fine_grained = true.
class ProfScopeFine : public ProfScope {
 public:
  explicit ProfScopeFine(const char* name)
      : ProfScope(name, FineProfiler()) {}

 private:
  static Profiler* FineProfiler() {
    Profiler* p = prof_internal::g_current.load(std::memory_order_acquire);
    return (p != nullptr && p->fine_grained()) ? p : nullptr;
  }
};

// ---------------------------------------------------------------- analysis

// Owned-string span form shared by the in-process profiler and the trace
// file reader (tools/prof_report).
struct RawSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t thread = 0;
};

std::vector<RawSpan> ToRawSpans(const std::vector<ProfEvent>& events);

// Aggregated per-phase statistics. Self time is the span's duration minus
// the time spent in spans nested inside it on the same thread — the quantity
// the per-phase table's "% wall" column is computed from (self times across
// one thread partition that thread's covered wall time, so they never double
// count nested phases).
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
  double mean_seconds = 0.0;  // total / count
  double max_seconds = 0.0;   // longest single span
};

// Groups spans by name, attributing nested child time to compute self time.
// Returned stats are sorted by descending self time.
std::vector<PhaseStat> SummarizeSpans(std::vector<RawSpan> spans);

// Profile wall clock: max end - min start across all spans, in seconds.
double ProfileWallSeconds(const std::vector<RawSpan>& spans);

// Renders the per-phase table (count, total, self, mean, max, % of wall).
void PrintProfileSummary(std::ostream& os, const std::vector<PhaseStat>& stats,
                         double wall_seconds);

// ------------------------------------------------------------------ export

// Writes the spans as Chrome trace-event JSON ("X" complete events, one
// track per thread, microsecond timestamps relative to the earliest span),
// loadable in Perfetto / chrome://tracing. Fail-soft like every exporter
// (docs/ROBUSTNESS.md): a write failure — injectable via the
// sea.obs.profile_write failpoint — returns false instead of throwing, and
// must never lose the solve that was profiled. Returns true on success.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<RawSpan>& spans,
                      const std::string& process_name);

// Reads a Chrome trace file written by WriteChromeTrace (one event object
// per line; metadata events are skipped). Throws InvalidArgument on a
// missing file or a malformed event line.
std::vector<RawSpan> ReadChromeTrace(const std::string& path);

}  // namespace sea::obs
