// Reader for the JSONL run traces written by obs::JsonlTraceSink.
//
// The trace events are flat JSON objects (string/number/bool values, no
// nesting), so a full JSON parser is unnecessary; this reader handles
// exactly that subset and rejects anything else. Unknown keys are kept —
// the schema is append-only, so a reader built against version 1 must
// tolerate fields added by later versions.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace sea::obs {

// One parsed trace line. Fields land in the map matching their JSON type;
// the typed accessors return a fallback on a missing key.
struct TraceEvent {
  std::map<std::string, double> numbers;
  std::map<std::string, bool> flags;
  std::map<std::string, std::string> strings;

  std::string Type() const;  // "" when absent
  double Number(const std::string& key, double fallback = 0.0) const;
  bool Flag(const std::string& key, bool fallback = false) const;
  bool Has(const std::string& key) const;
};

// Parses one flat JSON object; throws InvalidArgument on malformed input.
TraceEvent ParseTraceLine(const std::string& line);

// Reads every non-empty line of a JSONL file. A missing file always throws
// InvalidArgument. With lines_skipped == nullptr (strict mode) an
// unparsable line throws too, the message naming the line number. With
// lines_skipped non-null (tolerant mode) malformed or truncated lines —
// e.g. the torn tail of a trace whose writer died mid-flush — are skipped
// and counted into *lines_skipped instead, and every well-formed line still
// parses; reports should surface the count rather than lose the whole run.
std::vector<TraceEvent> ReadTraceJsonl(const std::string& path,
                                       std::size_t* lines_skipped = nullptr);

}  // namespace sea::obs
