#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>

#include "obs/json_export.hpp"
#include "obs/trace_reader.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"

namespace sea::obs {

namespace prof_internal {

std::atomic<Profiler*> g_current{nullptr};

// Monotonically increasing across every Attach in the process; a thread's
// cached buffer pointer is valid only for the generation it was issued
// under, so a stale cache can never alias a later profiler's storage.
std::atomic<std::uint64_t> g_generation{0};

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
struct ThreadCache {
  std::uint64_t generation = 0;  // 0 never matches a live attach
  Profiler::ThreadBuffer* buffer = nullptr;
};
thread_local ThreadCache t_cache;
}  // namespace

}  // namespace prof_internal

Profiler::Profiler(ProfilerOptions opts) : opts_(opts) {}

Profiler::~Profiler() {
  if (Current() == this) Detach();
}

void Profiler::Attach() {
  Profiler* expected = nullptr;
  SEA_CHECK_MSG(prof_internal::g_current.compare_exchange_strong(
                    expected, nullptr, std::memory_order_relaxed),
                "another Profiler is already attached");
  generation_ =
      prof_internal::g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  prof_internal::g_current.store(this, std::memory_order_release);
}

void Profiler::Detach() {
  Profiler* expected = this;
  prof_internal::g_current.compare_exchange_strong(expected, nullptr,
                                                   std::memory_order_acq_rel);
}

Profiler* Profiler::Current() {
  return prof_internal::g_current.load(std::memory_order_acquire);
}

Profiler::ThreadBuffer* Profiler::BufferForThisThread() {
  auto& cache = prof_internal::t_cache;
  if (cache.generation == generation_) return cache.buffer;
  std::lock_guard lk(mu_);
  auto buf = std::make_unique<ThreadBuffer>();
  buf->index = static_cast<std::uint32_t>(buffers_.size());
  cache = {generation_, buf.get()};
  buffers_.push_back(std::move(buf));
  return cache.buffer;
}

void Profiler::RecordSpan(const char* name, std::uint64_t start_ns,
                          std::uint64_t end_ns) {
  ThreadBuffer* buf = BufferForThisThread();
  if (buf->events.size() >= opts_.max_events_per_thread) {
    ++buf->dropped;
    return;
  }
  buf->events.push_back({name, start_ns, end_ns, buf->index});
}

std::vector<ProfEvent> Profiler::Events() const {
  std::lock_guard lk(mu_);
  std::vector<ProfEvent> out;
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b->events.size();
  out.reserve(total);
  for (const auto& b : buffers_)
    out.insert(out.end(), b->events.begin(), b->events.end());
  return out;
}

std::uint64_t Profiler::dropped() const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b->dropped;
  return total;
}

std::size_t Profiler::thread_count() const {
  std::lock_guard lk(mu_);
  return buffers_.size();
}

void ProfScope::Begin(const char* name) {
  name_ = name;
  buffer_ = profiler_->BufferForThisThread();
  start_ns_ = prof_internal::NowNs();
}

void ProfScope::End() {
  profiler_->RecordSpan(name_, start_ns_, prof_internal::NowNs());
}

// ---------------------------------------------------------------- analysis

std::vector<RawSpan> ToRawSpans(const std::vector<ProfEvent>& events) {
  std::vector<RawSpan> spans;
  spans.reserve(events.size());
  for (const auto& ev : events)
    spans.push_back({ev.name, ev.start_ns, ev.end_ns, ev.thread});
  return spans;
}

std::vector<PhaseStat> SummarizeSpans(std::vector<RawSpan> spans) {
  // Same-thread spans follow stack discipline (RAII), so within one thread
  // the intervals are properly nested. Sort by (thread, start asc, end
  // desc) — a parent sorts before its children — then a stack walk charges
  // each span's duration to its innermost enclosing span as child time.
  std::sort(spans.begin(), spans.end(),
            [](const RawSpan& a, const RawSpan& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;
            });

  struct Open {
    std::size_t span;  // index into spans
    std::uint64_t child_ns = 0;
  };
  std::vector<std::uint64_t> child_ns(spans.size(), 0);
  std::vector<Open> stack;
  auto flush = [&](std::size_t keep) {
    while (stack.size() > keep) {
      child_ns[stack.back().span] = stack.back().child_ns;
      stack.pop_back();
    }
  };
  std::uint32_t stack_thread = 0;
  for (std::size_t k = 0; k < spans.size(); ++k) {
    const RawSpan& s = spans[k];
    if (!stack.empty() && stack_thread != s.thread) flush(0);
    stack_thread = s.thread;
    while (!stack.empty() && spans[stack.back().span].end_ns <= s.start_ns) {
      child_ns[stack.back().span] = stack.back().child_ns;
      stack.pop_back();
    }
    const std::uint64_t dur =
        s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0;
    if (!stack.empty()) stack.back().child_ns += dur;
    stack.push_back({k, 0});
  }
  flush(0);

  std::vector<PhaseStat> stats;
  // Linear scan with a name->index map kept simple: phase counts are small
  // (tens of distinct names).
  auto find = [&stats](const std::string& name) -> PhaseStat& {
    for (auto& st : stats)
      if (st.name == name) return st;
    stats.push_back(PhaseStat{name, 0, 0.0, 0.0, 0.0, 0.0});
    return stats.back();
  };
  for (std::size_t k = 0; k < spans.size(); ++k) {
    const RawSpan& s = spans[k];
    const double dur = static_cast<double>(s.end_ns - s.start_ns) * 1e-9;
    const double self =
        static_cast<double>(s.end_ns - s.start_ns - child_ns[k]) * 1e-9;
    PhaseStat& st = find(s.name);
    ++st.count;
    st.total_seconds += dur;
    st.self_seconds += self;
    st.max_seconds = std::max(st.max_seconds, dur);
  }
  for (auto& st : stats)
    st.mean_seconds = st.total_seconds / static_cast<double>(st.count);
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.self_seconds > b.self_seconds;
            });
  return stats;
}

double ProfileWallSeconds(const std::vector<RawSpan>& spans) {
  if (spans.empty()) return 0.0;
  std::uint64_t lo = spans.front().start_ns, hi = spans.front().end_ns;
  for (const auto& s : spans) {
    lo = std::min(lo, s.start_ns);
    hi = std::max(hi, s.end_ns);
  }
  return static_cast<double>(hi - lo) * 1e-9;
}

void PrintProfileSummary(std::ostream& os, const std::vector<PhaseStat>& stats,
                         double wall_seconds) {
  os << "per-phase profile (wall " << std::setprecision(6) << wall_seconds
     << "s):\n";
  os << "  " << std::left << std::setw(28) << "phase" << std::right
     << std::setw(10) << "count" << std::setw(12) << "total_s" << std::setw(12)
     << "self_s" << std::setw(12) << "mean_s" << std::setw(12) << "max_s"
     << std::setw(8) << "%wall" << '\n';
  double self_total = 0.0;
  for (const auto& st : stats) {
    const double pct =
        wall_seconds > 0.0 ? 100.0 * st.self_seconds / wall_seconds : 0.0;
    self_total += st.self_seconds;
    os << "  " << std::left << std::setw(28) << st.name << std::right
       << std::setw(10) << st.count << std::setw(12) << std::setprecision(4)
       << st.total_seconds << std::setw(12) << st.self_seconds << std::setw(12)
       << st.mean_seconds << std::setw(12) << st.max_seconds << std::setw(7)
       << std::setprecision(1) << std::fixed << pct << "%" << '\n';
    os.unsetf(std::ios::fixed);
  }
  if (wall_seconds > 0.0) {
    // Self times across threads can legitimately sum past 100% of wall
    // (parallel phases overlap); the single-thread share is what the
    // Section 4.2 accounting criterion reads.
    os << "  accounted self time: " << std::setprecision(4) << self_total
       << "s across all threads\n";
  }
}

// ------------------------------------------------------------------ export

bool WriteChromeTrace(const std::string& path,
                      const std::vector<RawSpan>& spans,
                      const std::string& process_name) {
  std::ofstream out(path);
  if (!out.good()) return false;

  SEA_FAILPOINT_SITE("sea.obs.profile_write")
  if (fail::Triggered("sea.obs.profile_write")) out.setstate(std::ios::badbit);

  std::uint64_t origin = 0;
  std::uint32_t max_thread = 0;
  for (const auto& s : spans) {
    origin = (origin == 0) ? s.start_ns : std::min(origin, s.start_ns);
    max_thread = std::max(max_thread, s.thread);
  }

  // One event object per line: the array is still valid Chrome trace JSON
  // (Perfetto's importer takes it verbatim) and stays line-parsable for
  // tools/prof_report's flat reader.
  out << "[\n";
  out << JsonObj()
             .Field("name", "process_name")
             .Field("ph", "M")
             .Field("pid", 1)
             .Field("tid", 0)
             .Raw("args", JsonObj().Field("name", process_name).Str())
             .Str();
  for (std::uint32_t t = 0; t <= max_thread && !spans.empty(); ++t) {
    out << ",\n"
        << JsonObj()
               .Field("name", "thread_name")
               .Field("ph", "M")
               .Field("pid", 1)
               .Field("tid", static_cast<std::uint64_t>(t))
               .Raw("args",
                    JsonObj()
                        .Field("name", t == 0 ? std::string("solve")
                                              : "worker-" + std::to_string(t))
                        .Str())
               .Str();
  }
  for (const auto& s : spans) {
    const double ts_us = static_cast<double>(s.start_ns - origin) * 1e-3;
    const double dur_us = static_cast<double>(s.end_ns - s.start_ns) * 1e-3;
    out << ",\n"
        << JsonObj()
               .Field("name", s.name)
               .Field("cat", "sea")
               .Field("ph", "X")
               .Field("pid", 1)
               .Field("tid", static_cast<std::uint64_t>(s.thread))
               .Field("ts", ts_us)
               .Field("dur", dur_us)
               .Str();
    if (!out.good()) return false;  // disk full / pipe closed: degrade
  }
  out << "\n]\n";
  out.flush();
  return out.good();
}

std::vector<RawSpan> ReadChromeTrace(const std::string& path) {
  std::ifstream in(path);
  SEA_CHECK_MSG(in.good(), "cannot open profile trace: " + path);
  std::vector<RawSpan> spans;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip whitespace and the array scaffolding ([ , ]).
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    std::size_t e = line.find_last_not_of(" \t\r");
    std::string body = line.substr(b, e - b + 1);
    if (!body.empty() && body.back() == ',') body.pop_back();
    if (body.empty() || body == "[" || body == "]") continue;
    if (body.find("\"ph\":\"M\"") != std::string::npos) continue;  // metadata
    TraceEvent ev;
    try {
      ev = ParseTraceLine(body);
    } catch (const InvalidArgument& err) {
      throw InvalidArgument("profile trace " + path + " line " +
                            std::to_string(line_no) + ": " + err.what());
    }
    if (ev.strings.count("ph") && ev.strings.at("ph") != "X")
      continue;  // future event kinds: skip, schema is append-only
    RawSpan s;
    s.name = ev.strings.count("name") ? ev.strings.at("name") : "?";
    s.thread = static_cast<std::uint32_t>(ev.Number("tid"));
    s.start_ns = static_cast<std::uint64_t>(ev.Number("ts") * 1e3);
    s.end_ns =
        s.start_ns + static_cast<std::uint64_t>(ev.Number("dur") * 1e3);
    spans.push_back(std::move(s));
  }
  return spans;
}

}  // namespace sea::obs
