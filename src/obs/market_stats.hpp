// Per-market convergence attribution (docs/OBSERVABILITY.md, "Per-market
// attribution").
//
// The aggregate residual trajectory hides WHERE a solve spends its tail
// iterations: in practice a handful of slow markets dominate while the rest
// converged long ago. MarketAttribution is a compact SoA table over all
// m + n markets of a solve (row markets in slots [0, rows), column markets
// in slots [rows, rows + cols)) that the sweep workers and the iteration
// engine fill cooperatively:
//
//   * Sweep hot path (RecordSolve): cumulative solve count, breakpoint
//     count, kernel seconds, and the latest active-set size per market.
//     Allocation-free — Reset() sizes every array up front, and each market
//     slot is touched by exactly one worker per sweep (the same invariant
//     SortOrderCache relies on), so writes need no synchronization.
//   * Check phase (residual_scratch + CommitCheck, serial): the backend
//     fills each ROW market's residual contribution of the materialized
//     column-feasible iterate (column markets are exactly satisfied after
//     the column half-step and contribute zero by construction), and the
//     engine commits the check: active-set churn since the previous check
//     plus one per-check series entry. The commit may allocate (it appends
//     to the series) — the check phase is already the serial O(mn) part.
//
// Attribution is pay-for-use like every observer: SeaOptions::attribution
// is null by default and the sweeps pay only a branch per market when it is
// unset. The exported JSONL (WriteJsonl) consists of flat objects readable
// by obs/trace_reader.hpp and summarized by tools/market_report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sea::obs {

class MarketAttribution {
 public:
  // Sizes the table for one solve: `rows` row markets then `cols` column
  // markets, all cumulative tallies zeroed. reserve_checks preallocates the
  // per-check series (appends past it reallocate — still serial-phase only).
  void Reset(std::size_t rows, std::size_t cols,
             std::size_t reserve_checks = 64);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t markets() const { return rows_ + cols_; }

  // Sweep hot path. `slot` = this side's attribution base + market index;
  // `active` is the market's current active-set size (arcs with x > 0),
  // `breakpoints` the solve's breakpoint count, `seconds` its kernel time.
  void RecordSolve(std::size_t slot, std::size_t active,
                   std::uint64_t breakpoints, double seconds) {
    solves_[slot] += 1;
    breakpoints_[slot] += breakpoints;
    kernel_seconds_[slot] += seconds;
    active_[slot] = static_cast<std::uint32_t>(active);
  }

  // Check phase: the backend writes row market i's residual contribution
  // into residual_scratch()[i] (size rows()), then the engine commits.
  std::span<double> residual_scratch() { return residual_scratch_; }

  // Appends one per-check entry: iteration, aggregate measure, the l1 sum
  // of the scratch contributions as the backend computed it, and the total
  // active-set churn (sum over markets of |active - active at the previous
  // check|; 0 on the first check, which only baselines the sets).
  void CommitCheck(std::size_t iteration, double measure, double residual_l1);

  struct CheckRow {
    std::size_t iteration = 0;
    double measure = 0.0;
    double residual_l1 = 0.0;
    std::uint64_t churn = 0;
  };
  const std::vector<CheckRow>& checks() const { return checks_; }
  // Row-market residual contributions recorded at checks()[check]
  // (size rows()).
  std::span<const double> residuals_at(std::size_t check) const;

  // Cumulative per-market tallies (size markets()).
  std::uint64_t solves(std::size_t slot) const { return solves_[slot]; }
  std::uint64_t breakpoints(std::size_t slot) const {
    return breakpoints_[slot];
  }
  double kernel_seconds(std::size_t slot) const {
    return kernel_seconds_[slot];
  }
  std::uint32_t active(std::size_t slot) const { return active_[slot]; }
  std::uint64_t churn(std::size_t slot) const { return churn_[slot]; }

  std::uint64_t total_solves() const;
  std::uint64_t total_churn() const;

  // Writes the attribution document as JSONL of flat objects (schema
  // docs/OBSERVABILITY.md): one "attribution" header, one
  // "attribution_check" line per check, one "attribution_residual" line per
  // row market per check, and one "attribution_market" summary line per
  // market. Returns false (leaving a partial file) on a write failure.
  bool WriteJsonl(const std::string& path, double epsilon,
                  const char* criterion) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Hot-path SoA tallies, indexed by market slot.
  std::vector<std::uint64_t> solves_;
  std::vector<std::uint64_t> breakpoints_;
  std::vector<double> kernel_seconds_;
  std::vector<std::uint32_t> active_;
  // Check-phase state: active sets at the previous commit, cumulative
  // per-market churn, the scratch row the backend fills, and the series.
  std::vector<std::uint32_t> prev_active_;
  std::vector<std::uint64_t> churn_;
  std::vector<double> residual_scratch_;
  std::vector<CheckRow> checks_;
  std::vector<double> residuals_;  // checks x rows, row-major by check
  bool baselined_ = false;
};

}  // namespace sea::obs
