#include "obs/trace_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "support/check.hpp"

namespace sea::obs {

std::string TraceEvent::Type() const {
  const auto it = strings.find("type");
  return it == strings.end() ? std::string() : it->second;
}

double TraceEvent::Number(const std::string& key, double fallback) const {
  const auto it = numbers.find(key);
  return it == numbers.end() ? fallback : it->second;
}

bool TraceEvent::Flag(const std::string& key, bool fallback) const {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

bool TraceEvent::Has(const std::string& key) const {
  return numbers.count(key) || flags.count(key) || strings.count(key);
}

namespace {

// Minimal recursive-descent parser over the flat-object subset.
class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  TraceEvent ParseObject() {
    TraceEvent ev;
    SkipWs();
    Expect('{');
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return ev;
    }
    for (;;) {
      SkipWs();
      const std::string key = ParseString();
      SkipWs();
      Expect(':');
      SkipWs();
      ParseValue(ev, key);
      SkipWs();
      const char c = Next();
      if (c == '}') break;
      SEA_CHECK_MSG(c == ',', "trace line: expected ',' or '}'");
    }
    SkipWs();
    SEA_CHECK_MSG(pos_ == s_.size(), "trace line: trailing characters");
    return ev;
  }

 private:
  char Peek() const {
    SEA_CHECK_MSG(pos_ < s_.size(), "trace line: unexpected end of input");
    return s_[pos_];
  }
  char Next() {
    const char c = Peek();
    ++pos_;
    return c;
  }
  void Expect(char c) {
    SEA_CHECK_MSG(Next() == c,
                  std::string("trace line: expected '") + c + "'");
  }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      const char c = Next();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = Next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            SEA_CHECK_MSG(pos_ + 4 <= s_.size(),
                          "trace line: truncated \\u escape");
            const unsigned code =
                std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // Trace fields are ASCII; anything else degrades to '?'.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            SEA_CHECK_MSG(false, "trace line: unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  void ParseValue(TraceEvent& ev, const std::string& key) {
    const char c = Peek();
    if (c == '"') {
      ev.strings[key] = ParseString();
    } else if (c == 't' || c == 'f') {
      const char* word = (c == 't') ? "true" : "false";
      for (const char* p = word; *p; ++p) Expect(*p);
      ev.flags[key] = (c == 't');
    } else if (c == 'n') {
      for (const char* p = "null"; *p; ++p) Expect(*p);
      // A null measure stays absent — Number() returns the fallback.
    } else {
      const std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
              s_[pos_] == 'e' || s_[pos_] == 'E'))
        ++pos_;
      SEA_CHECK_MSG(pos_ > start, "trace line: expected a value");
      char* end = nullptr;
      const std::string tok = s_.substr(start, pos_ - start);
      const double v = std::strtod(tok.c_str(), &end);
      SEA_CHECK_MSG(end && *end == '\0',
                    "trace line: malformed number '" + tok + "'");
      ev.numbers[key] = v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

TraceEvent ParseTraceLine(const std::string& line) {
  return Parser(line).ParseObject();
}

std::vector<TraceEvent> ReadTraceJsonl(const std::string& path,
                                       std::size_t* lines_skipped) {
  std::ifstream f(path);
  SEA_CHECK_MSG(f.good(), "cannot open trace file: " + path);
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  if (lines_skipped != nullptr) *lines_skipped = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      events.push_back(ParseTraceLine(line));
    } catch (const std::exception& e) {
      if (lines_skipped != nullptr) {
        ++*lines_skipped;
        continue;
      }
      SEA_CHECK_MSG(false, path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return events;
}

}  // namespace sea::obs
