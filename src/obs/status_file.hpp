// Live solve introspection via an atomically-replaced status file and the
// /statusz endpoint (docs/OBSERVABILITY.md, "Live status file").
//
// A long-running solve is a black box to the outside world until it
// returns. StatusFileWriter receives the engine's per-check IterationEvents
// and maintains a single-line flat-JSON snapshot — iteration, stopping
// measure, phase seconds, and an ETA extrapolated from the geometric
// convergence rate of the last two defined measures (core/stopping.hpp,
// EstimateItersToEpsilon). Construction and publication are split:
//
//   * BuildSnapshot() -> StatusSnapshot: the point-in-time struct, with
//     the ETA already sanitized (never Inf/negative — NaN means "no
//     estimate", rendered as JSON null);
//   * RenderStatusJson(snapshot): the one serializer, so the status FILE
//     and the /statusz ENDPOINT emit byte-identical schemas;
//   * the writer itself throttles file writes to min_interval_seconds
//     (first check and termination always write), replaces the file
//     atomically (temp + rename, support/atomic_file.hpp), and keeps the
//     latest rendered line for LatestJson() — which the telemetry
//     server's handler threads read under the writer's lock while the
//     solve thread keeps checking.
//
// A path-less writer (path == "") skips the file entirely and only serves
// LatestJson() — how `sea_solve --listen` exposes /statusz without
// requiring --status-file. Pay-for-use: SeaOptions::status_file is null by
// default.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/options.hpp"
#include "core/solve_status.hpp"
#include "support/stopwatch.hpp"

namespace sea::obs {

// Point-in-time view of a running solve; the schema behind both the
// --status-file line and /statusz. Doubles may be NaN ("no value yet"),
// which RenderStatusJson emits as null — never Inf/NaN text.
struct StatusSnapshot {
  const char* phase = "starting";  // "starting"/"iterating"/"recovering"/
                                   // "terminated"
  const char* status = "";         // SolveStatus name once terminated
  std::uint64_t iteration = 0;
  bool measure_defined = false;
  double measure = 0.0;
  bool converged = false;
  std::uint64_t checks_compared = 0;
  double epsilon = 0.0;
  double eta_iterations = 0.0;  // NaN = no estimate
  double eta_seconds = 0.0;     // NaN = no estimate
  double elapsed_seconds = 0.0;
  double row_phase_seconds = 0.0;
  double col_phase_seconds = 0.0;
  double check_phase_seconds = 0.0;
  std::uint64_t recoveries = 0;
  const char* last_recovery_rung = "";  // "" = never recovered
  std::uint64_t last_recovery_iteration = 0;
};

// The single serializer for status snapshots (single-line flat JSON).
std::string RenderStatusJson(const StatusSnapshot& snap);

// ETA sanitizer: raw geometric-rate estimates can be Inf (rate estimate
// collapsing toward 1) or negative (clock skew in the seconds scaling);
// a dashboard must see null, not "inf". Finite non-negative values pass
// through; everything else becomes NaN. Exposed for tests.
double SanitizeEta(double eta);

class StatusFileWriter {
 public:
  // `epsilon` is the solve's stopping tolerance (feeds the ETA model).
  // An empty `path` disables the file and keeps only LatestJson().
  StatusFileWriter(std::string path, double epsilon,
                   double min_interval_seconds = 0.05);

  // Engine hooks (solve thread only).
  void OnCheck(const IterationEvent& ev);
  void OnTermination(SolveStatus status);
  // Recovery-ladder transition (docs/ROBUSTNESS.md): recorded into every
  // later snapshot and written through immediately — a rescue is exactly
  // the moment a dashboard must not be a throttle interval behind.
  void OnRecovery(std::size_t iteration, const char* rung,
                  std::uint64_t recovered_count);

  // Latest rendered snapshot line — what /statusz serves. Thread-safe
  // against the solve thread; before the first check it renders a
  // "starting" snapshot so the endpoint is valid from t=0.
  std::string LatestJson() const;

  const std::string& path() const { return path_; }
  std::size_t writes() const { return writes_; }

 private:
  StatusSnapshot BuildSnapshot(const IterationEvent& ev, const char* phase,
                               const char* status) const;
  bool Publish(const IterationEvent& ev, const char* phase,
               const char* status);

  std::string path_;
  double epsilon_;
  double min_interval_;
  Stopwatch clock_;
  double last_write_seconds_ = -1.0;
  std::size_t writes_ = 0;
  // Previous defined (iteration, measure) pair for the rate estimate.
  std::size_t prev_iteration_ = 0;
  double prev_measure_ = 0.0;
  bool have_prev_ = false;
  double eta_iterations_ = 0.0;  // NaN until estimable
  IterationEvent last_event_;
  // Recovery-ladder surface: cumulative rescues + the latest rung.
  std::uint64_t recovered_count_ = 0;
  const char* last_recovery_rung_ = "";  // stable literal from the engine
  std::size_t last_recovery_iteration_ = 0;
  // Latest rendered line, shared with the /statusz handler threads.
  mutable std::mutex latest_mu_;
  std::string latest_json_;
};

}  // namespace sea::obs
