// Live solve introspection via an atomically-replaced status file
// (docs/OBSERVABILITY.md, "Live status file").
//
// A long-running solve is a black box to the outside world until it
// returns. StatusFileWriter receives the engine's per-check IterationEvents
// and maintains a single-line flat-JSON snapshot on disk — iteration,
// stopping measure, phase seconds, and an ETA extrapolated from the
// geometric convergence rate of the last two defined measures
// (core/stopping.hpp, EstimateItersToEpsilon) — replaced atomically (temp
// file + rename) so a dashboard, the future sea_serve daemon, or a plain
// `watch cat` polls it without ever seeing a torn write. Writes are
// throttled to min_interval_seconds; the first check and the termination
// snapshot always write. Pay-for-use: SeaOptions::status_file is null by
// default.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/options.hpp"
#include "core/solve_status.hpp"
#include "support/stopwatch.hpp"

namespace sea::obs {

class StatusFileWriter {
 public:
  // `epsilon` is the solve's stopping tolerance (feeds the ETA model).
  StatusFileWriter(std::string path, double epsilon,
                   double min_interval_seconds = 0.05);

  // Engine hooks (solve thread only).
  void OnCheck(const IterationEvent& ev);
  void OnTermination(SolveStatus status);
  // Recovery-ladder transition (docs/ROBUSTNESS.md): recorded into every
  // later snapshot and written through immediately — a rescue is exactly
  // the moment a dashboard must not be a throttle interval behind.
  void OnRecovery(std::size_t iteration, const char* rung,
                  std::uint64_t recovered_count);

  const std::string& path() const { return path_; }
  std::size_t writes() const { return writes_; }

 private:
  bool WriteSnapshot(const IterationEvent& ev, const char* phase,
                     const char* status);

  std::string path_;
  double epsilon_;
  double min_interval_;
  Stopwatch clock_;
  double last_write_seconds_ = -1.0;
  std::size_t writes_ = 0;
  // Previous defined (iteration, measure) pair for the rate estimate.
  std::size_t prev_iteration_ = 0;
  double prev_measure_ = 0.0;
  bool have_prev_ = false;
  double eta_iterations_ = 0.0;  // NaN until estimable
  IterationEvent last_event_;
  // Recovery-ladder surface: cumulative rescues + the latest rung.
  std::uint64_t recovered_count_ = 0;
  const char* last_recovery_rung_ = "";  // stable literal from the engine
  std::size_t last_recovery_iteration_ = 0;
};

}  // namespace sea::obs
