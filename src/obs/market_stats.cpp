#include "obs/market_stats.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/json_export.hpp"
#include "support/check.hpp"

namespace sea::obs {

void MarketAttribution::Reset(std::size_t rows, std::size_t cols,
                              std::size_t reserve_checks) {
  rows_ = rows;
  cols_ = cols;
  const std::size_t markets = rows + cols;
  solves_.assign(markets, 0);
  breakpoints_.assign(markets, 0);
  kernel_seconds_.assign(markets, 0.0);
  active_.assign(markets, 0);
  prev_active_.assign(markets, 0);
  churn_.assign(markets, 0);
  residual_scratch_.assign(rows, 0.0);
  checks_.clear();
  checks_.reserve(reserve_checks);
  residuals_.clear();
  residuals_.reserve(reserve_checks * rows);
  baselined_ = false;
}

void MarketAttribution::CommitCheck(std::size_t iteration, double measure,
                                    double residual_l1) {
  CheckRow row;
  row.iteration = iteration;
  row.measure = measure;
  row.residual_l1 = residual_l1;
  if (baselined_) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < active_.size(); ++s) {
      const std::uint64_t d = active_[s] >= prev_active_[s]
                                  ? active_[s] - prev_active_[s]
                                  : prev_active_[s] - active_[s];
      churn_[s] += d;
      total += d;
    }
    row.churn = total;
  }
  prev_active_ = active_;
  baselined_ = true;
  checks_.push_back(row);
  residuals_.insert(residuals_.end(), residual_scratch_.begin(),
                    residual_scratch_.end());
}

std::span<const double> MarketAttribution::residuals_at(
    std::size_t check) const {
  SEA_CHECK(check < checks_.size());
  return {residuals_.data() + check * rows_, rows_};
}

std::uint64_t MarketAttribution::total_solves() const {
  std::uint64_t total = 0;
  for (std::uint64_t s : solves_) total += s;
  return total;
}

std::uint64_t MarketAttribution::total_churn() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : churn_) total += c;
  return total;
}

bool MarketAttribution::WriteJsonl(const std::string& path, double epsilon,
                                   const char* criterion) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) return false;

  f << JsonObj()
           .Field("schema", kTelemetrySchemaVersion)
           .Field("type", "attribution")
           .Field("rows", static_cast<std::uint64_t>(rows_))
           .Field("cols", static_cast<std::uint64_t>(cols_))
           .Field("checks", static_cast<std::uint64_t>(checks_.size()))
           .Field("epsilon", epsilon)
           .Field("criterion", criterion)
           .Str()
    << '\n';

  for (std::size_t c = 0; c < checks_.size(); ++c) {
    const CheckRow& row = checks_[c];
    f << JsonObj()
             .Field("type", "attribution_check")
             .Field("iter", static_cast<std::uint64_t>(row.iteration))
             .Field("measure", row.measure)
             .Field("residual_l1", row.residual_l1)
             .Field("churn", row.churn)
             .Str()
      << '\n';
    const std::span<const double> res = residuals_at(c);
    for (std::size_t i = 0; i < res.size(); ++i) {
      f << JsonObj()
               .Field("type", "attribution_residual")
               .Field("iter", static_cast<std::uint64_t>(row.iteration))
               .Field("market", static_cast<std::uint64_t>(i))
               .Field("residual", res[i])
               .Str()
        << '\n';
    }
  }

  for (std::size_t s = 0; s < markets(); ++s) {
    const bool is_row = s < rows_;
    f << JsonObj()
             .Field("type", "attribution_market")
             .Field("market", static_cast<std::uint64_t>(s))
             .Field("side", is_row ? "row" : "col")
             .Field("index", static_cast<std::uint64_t>(is_row ? s : s - rows_))
             .Field("solves", solves_[s])
             .Field("breakpoints", breakpoints_[s])
             .Field("kernel_seconds", kernel_seconds_[s])
             .Field("active", static_cast<std::uint64_t>(active_[s]))
             .Field("churn", churn_[s])
             .Str()
      << '\n';
  }

  f.flush();
  return f.good();
}

}  // namespace sea::obs
