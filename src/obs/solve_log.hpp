// Wide-event solve log: one flat JSON line per solver invocation
// (docs/OBSERVABILITY.md, "Wide-event solve log").
//
// Metrics answer aggregate questions; traces answer per-iteration ones.
// The question a service operator actually asks — "which solves regressed
// after the rollout, and what did they have in common?" — wants one row
// per solve with EVERYTHING about it: problem shape, option fingerprint,
// backend, outcome, residuals, phase timings, recovery provenance, peak
// RSS. That is the wide-event pattern: no joins, no sessionizing, grep and
// a JSON parser suffice. `sea_solve --solve-log <path>` appends exactly
// one line per process exit — success, infeasible, cancelled, or thrown —
// and sea_serve will append one per request.
//
// Writing goes through AtomicFileWriter::Append (O_APPEND + flush, retry
// with backoff; failpoint `sea.support.atomic_append`), so concurrent
// invocations logging to the same file interleave at line granularity and
// a crash can only lose the in-flight line. A failed append degrades to a
// warning at the call site — the log must never take the solve down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_export.hpp"

namespace sea::obs {

// Everything known about one finished (or failed) solve invocation. The
// field set is append-only, like every telemetry schema; NaN doubles
// render as null. Strings are free-form except `status`, which holds the
// SolveStatus name ("converged", "cancelled", ...) or "error" for
// failures outside the engine (bad usage, unreadable input).
struct SolveWideEvent {
  std::string tool = "sea_solve";
  std::string mode;           // solver variant / subcommand
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  double epsilon = 0.0;
  std::string criterion;
  std::uint64_t threads = 0;
  std::string schedule;
  std::string sort;
  std::string backend;        // kernel backend that actually ran
  // FNV-1a over the option set that affects the numerics, rendered as hex
  // — two rows with equal fingerprints ran comparable configurations.
  std::uint64_t options_fingerprint = 0;

  std::string status;
  int exit_code = 0;
  std::uint64_t iterations = 0;
  std::uint64_t checks_compared = 0;
  double final_residual = 0.0;
  double objective = 0.0;
  double feasibility_max_abs = 0.0;
  double feasibility_max_rel = 0.0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double row_phase_seconds = 0.0;
  double col_phase_seconds = 0.0;
  double check_phase_seconds = 0.0;

  std::uint64_t recoveries = 0;
  std::vector<std::uint8_t> recovery_rungs;
  bool resumed = false;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t listen_port = 0;  // 0 = telemetry server not enabled
  // Serving-plane fields (sea_serve emits one event per request; empty /
  // zero for CLI invocations). cache_tier names the warm-cache outcome:
  // "cold", "exact" (replayed multipliers), or "warm" (nearby-tier warm
  // start); queue_seconds is time spent waiting in the admission queue.
  std::string cache_tier;
  double queue_seconds = 0.0;
  // Failure detail for invocations that never reached a normal engine
  // exit (usage/IO errors, rejected resume, pre-flight infeasibility).
  std::string error;
};

// Renders the event as a single-line flat JSON document (no trailing
// newline). Split from the writer so tests can assert on bytes without
// touching the filesystem.
std::string RenderWideEvent(const SolveWideEvent& event);

class SolveLogWriter {
 public:
  // Events append to `path`; the file is created on first emit. An empty
  // path disables the writer (Emit returns true and does nothing).
  explicit SolveLogWriter(std::string path);

  // Appends one rendered line. Returns false when the append failed after
  // retries; the caller logs a warning and continues.
  bool Emit(const SolveWideEvent& event);

  std::uint64_t emitted() const { return emitted_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t emitted_ = 0;
};

}  // namespace sea::obs
