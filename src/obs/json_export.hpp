// Machine-readable export of solver results and telemetry.
//
// A deliberately small JSON layer — the repository bakes in no third-party
// JSON dependency — with two halves:
//   * JsonObj / JsonArr: append-only builders that render doubles with
//     shortest round-trip formatting (std::to_chars), so exported numbers
//     are bit-identical to the in-memory values the printed tables were
//     formatted from;
//   * ToJson overloads for the solver report types (SeaResult,
//     GeneralSeaResult), MetricsSnapshot, and PoolStats.
//
// All documents carry a `"schema"` version; the schema is append-only (new
// fields may appear, existing ones never change meaning —
// docs/OBSERVABILITY.md). Version 2 added the bench provenance fields
// (git_sha/build_type/timestamp/wall/cpu/peak-RSS) and the per-phase
// profiler breakdown. Version 3 added the forensics documents: per-market
// attribution JSONL, flight-recorder postmortems, and the --status-file
// snapshot (obs/market_stats.hpp, obs/flight_recorder.hpp,
// obs/status_file.hpp). Version 4 added the telemetry-plane documents:
// /timeseries and its index (obs/sampler.hpp), /varz, and the wide-event
// solve log (obs/solve_log.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace sea {

struct SeaResult;
struct GeneralSeaResult;
struct PoolStats;

namespace obs {

// Current version stamped into every exported document and trace event.
inline constexpr int kTelemetrySchemaVersion = 4;

std::string JsonEscape(const std::string& s);
// Shortest decimal that round-trips to the same double; "null" for
// non-finite values (JSON has no NaN/Inf).
std::string JsonNumber(double v);

// Ordered {"k":v,...} builder. Values are escaped/formatted per type; Raw
// splices an already-rendered JSON fragment (nested objects/arrays).
class JsonObj {
 public:
  JsonObj& Field(const std::string& key, const std::string& value);
  JsonObj& Field(const std::string& key, const char* value);
  JsonObj& Field(const std::string& key, double value);
  JsonObj& Field(const std::string& key, bool value);
  JsonObj& Field(const std::string& key, std::uint64_t value);
  JsonObj& Field(const std::string& key, int value);
  JsonObj& Raw(const std::string& key, const std::string& json);

  std::string Str() const { return "{" + body_ + "}"; }

 private:
  JsonObj& Append(const std::string& key, const std::string& rendered);
  std::string body_;
};

// Ordered [v,...] builder; Raw appends a rendered fragment.
class JsonArr {
 public:
  JsonArr& Add(double value);
  JsonArr& Add(std::uint64_t value);
  JsonArr& Add(const std::string& value);
  JsonArr& Raw(const std::string& json);

  std::string Str() const { return "[" + body_ + "]"; }

 private:
  JsonArr& Append(const std::string& rendered);
  std::string body_;
};

// Result objects (converged, iterations, residuals, phase seconds, op
// counts). These are fragments, meant to be spliced into a document with
// JsonObj::Raw.
std::string ToJson(const SeaResult& result);
std::string ToJson(const GeneralSeaResult& result);
std::string ToJson(const MetricsSnapshot& snapshot);
std::string ToJson(const HistogramSnapshot& h);
std::string ToJson(const PoolStats& stats);

}  // namespace obs
}  // namespace sea
