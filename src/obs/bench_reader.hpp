// Reader for the BENCH_<table>.json trajectory files written by
// bench/bench_common (one full JSON document per line, append-mode) and for
// the flat sections of `sea_solve --metrics-json` output.
//
// The documents are one level deep: top-level scalars plus named arrays
// ("records", "phases") whose elements are flat objects. This reader splits
// the document at that level and delegates every flat object to
// obs::ParseTraceLine, so it inherits the trace reader's append-only-schema
// tolerance: unknown scalar fields and unknown arrays are kept/skipped, not
// errors. Schema-1 documents (no metadata, no phases) parse fine — the
// accessors just come back empty.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/trace_reader.hpp"

namespace sea::obs {

// One paper-vs-measured record of a bench table.
struct BenchRecord {
  std::string experiment;
  std::string dataset;
  std::string metric;
  double measured = 0.0;
  std::optional<double> paper;
  std::string note;
};

// One aggregated profiler phase (obs/profiler.hpp PhaseStat, as exported).
struct BenchPhase {
  std::string phase;
  double count = 0.0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
};

// One bench run (one JSONL line).
struct BenchDoc {
  TraceEvent meta;  // top-level scalars: schema, bench, git_sha, ...
  std::vector<BenchRecord> records;
  std::vector<BenchPhase> phases;
};

// Splits a rendered JSON object into ordered (key, raw value fragment)
// pairs at the object's top level. Values are returned verbatim — scalars,
// strings (with quotes), arrays, and nested objects alike — so callers can
// recurse into nested documents (e.g. trace_report digging histograms out
// of a metrics JSON). Escape-aware; throws InvalidArgument when malformed.
std::vector<std::pair<std::string, std::string>> JsonObjectFields(
    const std::string& json);

// Parses a "[1,2.5,3]" fragment into doubles. Non-numeric elements are
// skipped, not errors.
std::vector<double> JsonNumberArray(const std::string& json);

// Parses one document line. Throws InvalidArgument on malformed input.
BenchDoc ParseBenchDoc(const std::string& line);

// Reads every non-empty line of a BENCH JSONL file, oldest first. Throws
// InvalidArgument on a missing file or an unparsable line (the message
// names the line number).
std::vector<BenchDoc> ReadBenchJsonl(const std::string& path);

}  // namespace sea::obs
