#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace sea::net {

namespace {

FetchResult Fail(const std::string& why) {
  FetchResult r;
  r.error = why + ": " + std::strerror(errno);
  return r;
}

// One connected socket with send/receive deadlines, or -1.
int Connect(const std::string& host, std::uint16_t port,
            double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_seconds - std::floor(timeout_seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

FetchResult Exchange(const std::string& host, std::uint16_t port,
                     const std::string& request, double timeout_seconds,
                     bool half_close = false) {
  const int fd = Connect(host, port, timeout_seconds);
  if (fd < 0) return Fail("connect " + host + ":" + std::to_string(port));
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Fail("write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // server closed (normal end) or timed out
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  FetchResult r;
  // Status line: "HTTP/1.1 NNN Reason".
  if (raw.compare(0, 5, "HTTP/") != 0 || raw.size() < 12) {
    r.error = "no HTTP status line in response";
    return r;
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    r.error = "malformed status line";
    return r;
  }
  r.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    r.head = raw;
  } else {
    r.head = raw.substr(0, head_end);
    r.body = raw.substr(head_end + 4);
  }
  r.ok = r.status > 0;
  return r;
}

}  // namespace

FetchResult HttpGet(const std::string& host, std::uint16_t port,
                    const std::string& target, double timeout_seconds) {
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  return Exchange(host, port, request, timeout_seconds);
}

FetchResult HttpPost(const std::string& host, std::uint16_t port,
                     const std::string& target, const std::string& body,
                     const std::string& content_type,
                     double timeout_seconds) {
  const std::string request =
      "POST " + target + " HTTP/1.1\r\nHost: " + host +
      "\r\nContent-Type: " + content_type +
      "\r\nContent-Length: " + std::to_string(body.size()) +
      "\r\nConnection: close\r\n\r\n" + body;
  return Exchange(host, port, request, timeout_seconds);
}

FetchResult HttpRaw(const std::string& host, std::uint16_t port,
                    const std::string& raw, double timeout_seconds) {
  return Exchange(host, port, raw, timeout_seconds);
}

FetchResult HttpRawHalfClose(const std::string& host, std::uint16_t port,
                             const std::string& raw,
                             double timeout_seconds) {
  return Exchange(host, port, raw, timeout_seconds, /*half_close=*/true);
}

}  // namespace sea::net
