#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "parallel/task_queue.hpp"

namespace sea::net {

namespace {

// One hex digit -> value, -1 on a non-hex byte.
int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// %XX and '+' decoding for query components; malformed escapes pass
// through literally (a scrape URL is operator input, not hostile — but it
// must never crash the exchange).
std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
               HexVal(s[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(HexVal(s[i + 1]) * 16 + HexVal(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

void ParseQuery(const std::string& query,
                std::map<std::string, std::string>& params) {
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        params[UrlDecode(pair)] = "";
      } else {
        params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = end + 1;
  }
}

// Header field lines between the request line and the blank line, names
// lowercased, surrounding whitespace trimmed from values. Malformed lines
// (no ':') are skipped rather than failing the exchange.
void ParseHeaders(const std::string& head, std::size_t first_line_end,
                  std::map<std::string, std::string>& headers) {
  std::size_t pos = first_line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    std::size_t vb = colon + 1;
    while (vb < line.size() && (line[vb] == ' ' || line[vb] == '\t')) ++vb;
    std::size_t ve = line.size();
    while (ve > vb && (line[ve - 1] == ' ' || line[ve - 1] == '\t' ||
                       line[ve - 1] == '\r'))
      --ve;
    headers[std::move(name)] = line.substr(vb, ve - vb);
  }
}

// Writes the whole buffer, retrying short writes; false on a socket error
// (client went away — the exchange is abandoned, never the server).
bool WriteAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool SendResponse(int fd, const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     StatusReason(resp.status) + "\r\n";
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  for (const std::string& h : resp.headers) {
    head += h;
    head += "\r\n";
  }
  head += "Connection: close\r\n\r\n";
  return WriteAll(fd, head.data(), head.size()) &&
         WriteAll(fd, resp.body.data(), resp.body.size());
}

HttpResponse ErrorResponse(int status, const std::string& detail) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::to_string(status) + " " + StatusReason(status) + ": " +
              detail + "\n";
  return resp;
}

// Strict non-negative decimal parse for Content-Length; false on empty,
// non-digit bytes, or overflow past `max_reasonable`. Hostile values like
// "1e9", "-1", or 70-digit numbers must all land in the 411 path rather
// than wrap around the body read.
bool ParseContentLength(const std::string& s, std::size_t max_reasonable,
                        std::size_t* out) {
  if (s.empty()) return false;
  std::size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
    // Cap the accumulator well above any legal body so overflow cannot
    // wrap; anything past this is "too large", handled by the caller.
    if (value > max_reasonable * 2 + 1024) {
      *out = value;
      return true;
    }
  }
  *out = value;
  return true;
}

}  // namespace

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 411:
      return "Length Required";
    case 413:
      return "Content Too Large";
    case 422:
      return "Unprocessable Content";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string HttpRequest::Param(const std::string& key,
                               const std::string& fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::string HttpRequest::Header(const std::string& name,
                                const std::string& fallback) const {
  const auto it = headers.find(name);
  return it == headers.end() ? fallback : it->second;
}

HttpServer::HttpServer(std::size_t handler_threads, CancelToken* cancel)
    : cancel_(cancel),
      handler_threads_(handler_threads == 0 ? 1 : handler_threads) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::HandlePost(std::string path, Handler handler) {
  post_handlers_[std::move(path)] = std::move(handler);
}

bool HttpServer::Start(std::uint16_t port, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Loopback only: the telemetry plane is a local scrape/debug surface,
  // never an internet listener.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return fail("bind 127.0.0.1:" + std::to_string(port));
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  // Recover the kernel-assigned port for the port-0 ephemeral bind.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0)
    return fail("getsockname");
  port_ = ntohs(bound.sin_port);

  stop_.store(false, std::memory_order_release);
  queue_ = std::make_unique<TaskQueue>(handler_threads_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return true;
}

void HttpServer::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (queue_) queue_->Stop();  // drain in-flight exchanges, join workers
  queue_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_ = false;
}

void HttpServer::AcceptLoop() {
  // Poll with a short timeout instead of a blocking accept, so Stop() and
  // a tripped CancelToken are noticed within one poll interval without
  // any cross-thread socket shutdown games.
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_acquire)) {
    if (cancel_ != nullptr && cancel_->cancelled()) break;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listener broken; nothing to serve on
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // A request head is small and bounded, and a body is capped; a stuck
    // client is cut off by the socket timeout rather than pinning a worker.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    if (!queue_->Submit([this, fd] { ServeConnection(fd); })) ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Read until the end of the request head (blank line after the header
  // fields) or the head size cap. Whatever arrived past the blank line is
  // the start of the body and is kept.
  std::string buf;
  bool oversized = false;
  std::size_t head_end = std::string::npos;
  char chunk[4096];
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    if (buf.size() > kMaxRequestBytes) {
      oversized = true;
      break;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // client closed or timed out mid-request
    buf.append(chunk, static_cast<std::size_t>(n));
  }

  HttpResponse resp;
  HttpRequest req;
  const std::size_t line_end = buf.find("\r\n");
  if (oversized) {
    resp = ErrorResponse(431, "request head exceeds " +
                                  std::to_string(kMaxRequestBytes) + " bytes");
  } else if (line_end == std::string::npos ||
             head_end == std::string::npos) {
    resp = ErrorResponse(400, "truncated request head");
  } else {
    // Request line: METHOD SP TARGET SP VERSION.
    const std::string line = buf.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
      resp = ErrorResponse(400, "malformed request line");
    } else {
      req.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t qmark = target.find('?');
      if (qmark != std::string::npos) {
        req.query = target.substr(qmark + 1);
        target.resize(qmark);
      }
      req.path = target;
      ParseQuery(req.query, req.params);
      ParseHeaders(buf.substr(0, head_end + 2), line_end, req.headers);

      const bool is_get = req.method == "GET" || req.method == "HEAD";
      const bool is_post = req.method == "POST";
      const bool get_route = handlers_.count(req.path) != 0;
      const bool post_route = post_handlers_.count(req.path) != 0;
      if (!is_get && !is_post) {
        resp = ErrorResponse(405, "method not served here");
        resp.headers.push_back("Allow: GET, HEAD, POST");
      } else if (!get_route && !post_route) {
        resp = ErrorResponse(404, "no handler for " + req.path);
      } else if (is_get && !get_route) {
        resp = ErrorResponse(405, req.path + " accepts only POST");
        resp.headers.push_back("Allow: POST");
      } else if (is_post && !post_route) {
        resp = ErrorResponse(405, req.path + " accepts only GET");
        resp.headers.push_back("Allow: GET, HEAD");
      } else if (is_post) {
        // Bounded body read: Content-Length is mandatory (no chunked
        // decoding in this tiny server), checked against the cap before a
        // single body byte is read, then the remainder is pulled off the
        // socket. A body shorter than declared ends in a read timeout and
        // a 400 — the handler never sees a truncated payload.
        std::size_t content_length = 0;
        if (!ParseContentLength(req.Header("content-length"),
                                max_body_bytes_, &content_length)) {
          resp = ErrorResponse(411, "POST requires a valid Content-Length");
        } else if (content_length > max_body_bytes_) {
          resp = ErrorResponse(
              413, "body of " + std::to_string(content_length) +
                       " bytes exceeds cap of " +
                       std::to_string(max_body_bytes_) + " bytes");
        } else {
          req.body = buf.substr(head_end + 4);
          bool truncated = false;
          while (req.body.size() < content_length) {
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0) {
              truncated = true;
              break;
            }
            req.body.append(chunk, static_cast<std::size_t>(n));
          }
          if (truncated) {
            resp = ErrorResponse(
                400, "body truncated: declared " +
                         std::to_string(content_length) + " bytes, received " +
                         std::to_string(req.body.size()));
          } else {
            req.body.resize(content_length);  // drop any pipelined excess
            resp = post_handlers_.at(req.path)(req);
          }
        }
      } else {
        resp = handlers_.at(req.path)(req);
      }
    }
  }
  if (req.method == "HEAD") resp.body.clear();
  SendResponse(fd, resp);
  if (resp.status < 300) {
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
  }
  ::close(fd);
}

std::uint64_t HttpServer::requests_ok() const {
  return requests_ok_.load(std::memory_order_relaxed);
}

std::uint64_t HttpServer::requests_error() const {
  return requests_error_.load(std::memory_order_relaxed);
}

}  // namespace sea::net
