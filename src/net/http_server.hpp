// Minimal embedded HTTP/1.1 GET server — the live telemetry plane's wire
// seam (docs/OBSERVABILITY.md, "Live endpoints").
//
// Scope is deliberately tiny and dependency-free: loopback-only
// (127.0.0.1), GET-only, one request per connection (`Connection: close`),
// handlers registered by exact path before Start. That is all a metrics
// scraper, a dashboard poll, or a CI curl needs — and it is the seam the
// future sea_serve daemon grows request multiplexing on (ROADMAP
// "Solver-as-a-service"): the accept loop and parsing stay, only the
// handler set changes.
//
// Threading: Start() spawns one accept thread; each accepted connection is
// dispatched onto a TaskQueue (parallel/task_queue.hpp) of handler workers,
// so a slow client never blocks accept and concurrent GETs are served
// concurrently — without touching the solver's ParallelFor region pool,
// which a running solve owns. Handlers run on queue workers and must be
// thread-safe against the solve thread (the telemetry sources already are:
// MetricsRegistry snapshots, sampler rings, and the status writer's latest
// snapshot are all internally synchronized).
//
// Shutdown: Stop() — or a tripped CancelToken, polled by the accept loop —
// stops accepting, drains in-flight handlers, and joins both the accept
// thread and the handler queue, so process exit is clean under TSan. The
// sea_solve SIGINT/SIGTERM path reuses the solver's token
// (docs/ROBUSTNESS.md, "Signals").
//
// Protocol limits (tested in tests/test_net.cpp): request line capped at
// kMaxRequestBytes (431 on overflow), unknown path -> 404, non-GET -> 405
// with an Allow header, unparsable request -> 400, 5s socket read timeout.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "support/cancel.hpp"

namespace sea {
class TaskQueue;
}  // namespace sea

namespace sea::net {

// Parsed request line of one GET exchange. `params` holds the query string
// split on '&'/'=' with %XX sequences decoded; duplicate keys keep the
// last value.
struct HttpRequest {
  std::string method;
  std::string path;   // before '?'
  std::string query;  // after '?', raw
  std::map<std::string, std::string> params;

  // Lookup helper: decoded query parameter or `fallback` when absent.
  std::string Param(const std::string& key,
                    const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Request line (method + target + version) size cap; longer lines are
  // answered 431 without reading the rest.
  static constexpr std::size_t kMaxRequestBytes = 4096;

  // `handler_threads` sizes the TaskQueue the exchanges run on; `cancel`
  // (optional) lets the solver's signal machinery stop the server without
  // a Stop() call — the accept loop polls it a few times per second.
  explicit HttpServer(std::size_t handler_threads = 2,
                      CancelToken* cancel = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Register `handler` for exact-match `path` (e.g. "/metrics"). Must be
  // called before Start; handlers run concurrently on queue workers.
  void Handle(std::string path, Handler handler);

  // Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, readable
  // via port() after Start returns) and start serving. Returns false with
  // `*error` filled on bind/listen failure; never throws.
  bool Start(std::uint16_t port, std::string* error = nullptr);

  // Stop accepting, drain in-flight exchanges, join all threads.
  // Idempotent; called by the destructor.
  void Stop();

  bool running() const { return running_; }
  std::uint16_t port() const { return port_; }
  // Exchanges fully answered so far, by outcome (monotone; any thread).
  std::uint64_t requests_ok() const;
  std::uint64_t requests_error() const;  // every non-2xx answer

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  std::unique_ptr<TaskQueue> queue_;
  CancelToken* cancel_ = nullptr;
  std::size_t handler_threads_;
  std::thread accept_thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
};

// Reason-phrase for the status codes the server emits ("OK", "Not Found",
// ...); "Unknown" otherwise. Exposed for tests.
const char* StatusReason(int status);

}  // namespace sea::net
