// Minimal embedded HTTP/1.1 server — the live telemetry plane's wire seam
// (docs/OBSERVABILITY.md, "Live endpoints") and the request door of the
// sea_serve solve daemon (docs/SERVING.md).
//
// Scope is deliberately tiny and dependency-free: loopback-only
// (127.0.0.1), GET/HEAD plus POST with a bounded body, one request per
// connection (`Connection: close`), handlers registered by exact path
// before Start. That is all a metrics scraper, a dashboard poll, a CI
// curl, or a solve client needs.
//
// Threading: Start() spawns one accept thread; each accepted connection is
// dispatched onto a TaskQueue (parallel/task_queue.hpp) of handler workers,
// so a slow client never blocks accept and concurrent exchanges are served
// concurrently — without touching the solver's ParallelFor region pool,
// which a running solve owns. Handlers run on queue workers and must be
// thread-safe against each other and the solve thread (the telemetry
// sources already are: MetricsRegistry snapshots, sampler rings, and the
// status writer's latest snapshot are all internally synchronized; the
// serve layer's cache and admission queue are synchronized in src/serve/).
//
// Shutdown: Stop() — or a tripped CancelToken, polled by the accept loop —
// stops accepting, drains in-flight handlers, and joins both the accept
// thread and the handler queue, so process exit is clean under TSan. The
// sea_solve SIGINT/SIGTERM path reuses the solver's token
// (docs/ROBUSTNESS.md, "Signals").
//
// Protocol limits (tested in tests/test_net.cpp and tests/test_fuzz.cpp):
// request head capped at kMaxRequestBytes (431 on overflow), request body
// capped at max_body_bytes (413 on overflow, answered without reading the
// body), POST without a parseable Content-Length -> 411, a body shorter
// than its declared length -> 400 after the socket read timeout, unknown
// path -> 404, method not registered for the path -> 405 with an Allow
// header, unparsable request -> 400, 5s socket read timeout.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/cancel.hpp"

namespace sea {
class TaskQueue;
}  // namespace sea

namespace sea::net {

// Parsed request of one exchange. `params` holds the query string split on
// '&'/'=' with %XX sequences decoded; duplicate keys keep the last value.
// `headers` holds the request header fields with lowercased names; `body`
// holds the POST payload (empty for GET/HEAD).
struct HttpRequest {
  std::string method;
  std::string path;   // before '?'
  std::string query;  // after '?', raw
  std::map<std::string, std::string> params;
  std::map<std::string, std::string> headers;  // lowercased field names
  std::string body;

  // Lookup helper: decoded query parameter or `fallback` when absent.
  std::string Param(const std::string& key,
                    const std::string& fallback = "") const;
  // Lookup helper: header value by lowercased name, or `fallback`.
  std::string Header(const std::string& name,
                     const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  // Extra response header lines ("Retry-After: 1", "Allow: GET, HEAD").
  std::vector<std::string> headers;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Request head (request line + header fields) size cap; longer heads are
  // answered 431 without reading the rest.
  static constexpr std::size_t kMaxRequestBytes = 4096;
  // Default request-body cap (override with set_max_body_bytes): generous
  // enough for a dense binary solve frame of a few hundred x a few hundred
  // cells, small enough that a hostile Content-Length cannot balloon a
  // handler worker.
  static constexpr std::size_t kDefaultMaxBodyBytes = 8u << 20;

  // `handler_threads` sizes the TaskQueue the exchanges run on; `cancel`
  // (optional) lets the solver's signal machinery stop the server without
  // a Stop() call — the accept loop polls it a few times per second.
  explicit HttpServer(std::size_t handler_threads = 2,
                      CancelToken* cancel = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Register `handler` for GET/HEAD of exact-match `path` (e.g.
  // "/metrics"). Must be called before Start; handlers run concurrently on
  // queue workers.
  void Handle(std::string path, Handler handler);

  // Register `handler` for POST of exact-match `path` (e.g. "/solve").
  // The request carries the complete body (already bounds-checked).
  void HandlePost(std::string path, Handler handler);

  // Request-body cap for POST exchanges; bodies whose Content-Length
  // exceeds it are answered 413 without being read. Set before Start.
  void set_max_body_bytes(std::size_t bytes) { max_body_bytes_ = bytes; }
  std::size_t max_body_bytes() const { return max_body_bytes_; }

  // Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, readable
  // via port() after Start returns) and start serving. Returns false with
  // `*error` filled on bind/listen failure; never throws.
  bool Start(std::uint16_t port, std::string* error = nullptr);

  // Stop accepting, drain in-flight exchanges, join all threads.
  // Idempotent; called by the destructor.
  void Stop();

  bool running() const { return running_; }
  std::uint16_t port() const { return port_; }
  // Exchanges fully answered so far, by outcome (monotone; any thread).
  std::uint64_t requests_ok() const;
  std::uint64_t requests_error() const;  // every non-2xx answer

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;       // GET/HEAD routes
  std::map<std::string, Handler> post_handlers_;  // POST routes
  std::unique_ptr<TaskQueue> queue_;
  CancelToken* cancel_ = nullptr;
  std::size_t handler_threads_;
  std::size_t max_body_bytes_ = kDefaultMaxBodyBytes;
  std::thread accept_thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
};

// Reason-phrase for the status codes the server emits ("OK", "Not Found",
// ...); "Unknown" otherwise. Exposed for tests.
const char* StatusReason(int status);

}  // namespace sea::net
