// Minimal blocking HTTP/1.1 client for the telemetry plane's tests and
// tools and the sea_serve daemon's load generator. Counterpart of
// net/http_server.hpp and nothing more: connect to a loopback port, send
// one GET or POST, read to EOF (the server closes after each exchange),
// parse the status line. Not a general HTTP client — no TLS, no
// redirects, no keep-alive.
#pragma once

#include <cstdint>
#include <string>

namespace sea::net {

struct FetchResult {
  bool ok = false;         // transport succeeded and a status line parsed
  int status = 0;          // HTTP status code (0 when !ok)
  std::string body;        // response body (headers stripped)
  std::string head;        // raw response head (status line + headers)
  std::string error;       // transport/parse failure detail when !ok
};

// GET http://`host`:`port``target` with a `timeout_seconds` socket
// deadline on connect and reads. `target` must start with '/' and may
// carry a query string.
FetchResult HttpGet(const std::string& host, std::uint16_t port,
                    const std::string& target, double timeout_seconds = 5.0);

// POST `body` to http://`host`:`port``target` with the given
// Content-Type. Used by serve_load and the serve tests to submit solve
// frames; same transport rules as HttpGet.
FetchResult HttpPost(const std::string& host, std::uint16_t port,
                     const std::string& target, const std::string& body,
                     const std::string& content_type =
                         "application/octet-stream",
                     double timeout_seconds = 5.0);

// Sends `raw` bytes verbatim on a fresh connection and returns everything
// the server answers until close — the hostile-input door for tests
// (malformed request lines, oversized heads, non-GET methods).
FetchResult HttpRaw(const std::string& host, std::uint16_t port,
                    const std::string& raw, double timeout_seconds = 5.0);

// HttpRaw plus a write-side shutdown after the send, so the server sees
// EOF where it expects more bytes — exercises truncated-body handling
// without waiting out the server's socket read timeout.
FetchResult HttpRawHalfClose(const std::string& host, std::uint16_t port,
                             const std::string& raw,
                             double timeout_seconds = 5.0);

}  // namespace sea::net
