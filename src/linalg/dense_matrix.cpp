#include "linalg/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace sea {

DenseMatrix DenseMatrix::Identity(std::size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::Diagonal(const Vector& diag) {
  DenseMatrix m(diag.size(), diag.size(), 0.0);
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  // Blocked transpose for cache friendliness on the large instances.
  constexpr std::size_t kBlock = 64;
  for (std::size_t ib = 0; ib < rows_; ib += kBlock) {
    const std::size_t iend = std::min(rows_, ib + kBlock);
    for (std::size_t jb = 0; jb < cols_; jb += kBlock) {
      const std::size_t jend = std::min(cols_, jb + kBlock);
      for (std::size_t i = ib; i < iend; ++i)
        for (std::size_t j = jb; j < jend; ++j) t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Vector DenseMatrix::DiagonalVector() const {
  SEA_CHECK(rows_ == cols_);
  Vector d(rows_);
  for (std::size_t i = 0; i < rows_; ++i) d[i] = (*this)(i, i);
  return d;
}

Vector DenseMatrix::RowSums() const {
  Vector s(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (double v : Row(i)) acc += v;
    s[i] = acc;
  }
  return s;
}

Vector DenseMatrix::ColSums() const {
  Vector s(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto row = Row(i);
    for (std::size_t j = 0; j < cols_; ++j) s[j] += row[j];
  }
  return s;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  SEA_CHECK(SameShape(other));
  double m = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k)
    m = std::max(m, std::abs(data_[k] - other.data_[k]));
  return m;
}

bool DenseMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

}  // namespace sea
