// Dense factorizations for the baseline solvers and test oracles.
//
// The SEA algorithm itself never factorizes anything — its subproblems are
// solved in closed form — but (i) the Hildreth-style Bachem–Korte baseline
// needs Q^{-1} a_k columns for its dual coordinate updates, and (ii) the
// enumerative KKT oracle in the test suite solves small saddle-point systems.
#pragma once

#include <optional>

#include "linalg/dense_matrix.hpp"

namespace sea {

// Cholesky factorization A = L L^T of a symmetric positive definite matrix.
// Returns std::nullopt if a non-positive pivot is encountered (A not PD to
// working precision).
class Cholesky {
 public:
  static std::optional<Cholesky> Factor(const DenseMatrix& a);

  // Solves A x = b.
  Vector Solve(std::span<const double> b) const;

  // Solves in place.
  void SolveInPlace(std::span<double> b) const;

  std::size_t dim() const { return l_.rows(); }

  const DenseMatrix& L() const { return l_; }

 private:
  explicit Cholesky(DenseMatrix l) : l_(std::move(l)) {}
  DenseMatrix l_;
};

// LU factorization with partial pivoting (for the possibly-indefinite KKT
// saddle-point systems of the enumerative oracle). Returns std::nullopt for
// (numerically) singular matrices.
class PartialPivLU {
 public:
  static std::optional<PartialPivLU> Factor(const DenseMatrix& a);

  Vector Solve(std::span<const double> b) const;

  std::size_t dim() const { return lu_.rows(); }

 private:
  PartialPivLU(DenseMatrix lu, std::vector<std::size_t> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace sea
