#include "linalg/spd_generators.hpp"

#include <cmath>

#include "support/check.hpp"

namespace sea {

DenseMatrix MakeDiagonallyDominantSpd(std::size_t n, Rng& rng,
                                      const SpdOptions& opts) {
  SEA_CHECK(n > 0);
  SEA_CHECK(opts.diag_lo > 0.0 && opts.diag_hi >= opts.diag_lo);
  SEA_CHECK(opts.density >= 0.0 && opts.density <= 1.0);
  DenseMatrix a(n, n, 0.0);

  // Draw raw off-diagonal entries into the upper triangle, mirror to lower.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (opts.density < 1.0 && !rng.Bernoulli(opts.density)) continue;
      double v = rng.Uniform(0.1, 1.0) * opts.offdiag_scale;
      if (rng.Bernoulli(opts.negative_fraction)) v = -v;
      a(i, j) = v;
      a(j, i) = v;
    }
  }

  // Diagonal: strictly dominate the absolute row sum with a uniform draw in
  // [diag_lo, diag_hi] scaled so dominance is preserved even for large n.
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    const auto row = a.Row(i);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) offsum += std::abs(row[j]);
    const double base = rng.Uniform(opts.diag_lo, opts.diag_hi);
    // If the drawn diagonal already dominates, keep it (mirrors the paper:
    // diagonal in [500, 800] with modest off-diagonals); otherwise lift it.
    a(i, i) = std::max(base, offsum * 1.05 + 1.0);
  }
  return a;
}

bool IsStrictlyDiagonallyDominant(const DenseMatrix& a) {
  if (a.rows() != a.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double offsum = 0.0;
    const auto row = a.Row(i);
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (j != i) offsum += std::abs(row[j]);
    if (!(a(i, i) > offsum)) return false;
  }
  return true;
}

}  // namespace sea
