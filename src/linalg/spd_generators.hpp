// Generators for symmetric positive definite weight matrices.
//
// The paper's general experiments (Section 5.1.1) generate G "symmetric and
// strictly diagonally dominant, which ensured positive definiteness, with
// each diagonal term generated in the range [500, 800], but allowing for
// negative off-diagonal elements to simulate variance-covariance matrices".
#pragma once

#include "linalg/dense_matrix.hpp"
#include "support/rng.hpp"

namespace sea {

struct SpdOptions {
  double diag_lo = 500.0;     // diagonal range, per the paper
  double diag_hi = 800.0;
  double offdiag_scale = 1.0; // magnitude scale of off-diagonal entries
  double negative_fraction = 0.5;  // fraction of off-diagonals made negative
  double density = 1.0;       // fraction of off-diagonals that are nonzero
};

// Dense symmetric strictly diagonally dominant matrix of dimension n.
// Off-diagonal magnitudes are drawn then rescaled per-row so the matrix is
// strictly diagonally dominant with margin; signs mixed per options.
DenseMatrix MakeDiagonallyDominantSpd(std::size_t n, Rng& rng,
                                      const SpdOptions& opts = {});

// Verifies strict diagonal dominance (a cheap sufficient PD certificate used
// by tests and dataset validation).
bool IsStrictlyDiagonallyDominant(const DenseMatrix& a);

}  // namespace sea
