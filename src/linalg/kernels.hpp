// BLAS-lite kernels. The general splitting equilibration algorithm's
// projection step needs one dense symmetric matrix-vector product with G per
// outer iteration (paper eq. (79)); everything else is level-1.
#pragma once

#include <span>

#include "linalg/dense_matrix.hpp"

namespace sea {

class ThreadPool;  // forward declaration (parallel/thread_pool.hpp)

// y <- alpha * x + y
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

// <x, y>
double Dot(std::span<const double> x, std::span<const double> y);

// max_i |x_i|
double MaxAbs(std::span<const double> x);

// sqrt(sum x_i^2)
double Norm2(std::span<const double> x);

// sum of entries
double Sum(std::span<const double> x);

// y <- A x  (general dense, row-major)
void Gemv(const DenseMatrix& a, std::span<const double> x, std::span<double> y);

// y <- A x for symmetric A; same as Gemv but kept as a distinct entry point so
// the call sites document the symmetry contract (and to allow a packed
// implementation later without touching callers).
void Symv(const DenseMatrix& a, std::span<const double> x, std::span<double> y);

// Parallel y <- A x over a thread pool (rows partitioned across workers).
// Falls back to the serial kernel when pool is null or has a single thread.
void GemvParallel(const DenseMatrix& a, std::span<const double> x,
                  std::span<double> y, ThreadPool* pool);

// C <- A * B (used only by small test/oracle paths, not on solver hot paths).
DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace sea
