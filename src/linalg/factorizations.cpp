#include "linalg/factorizations.hpp"

#include <cmath>

#include "obs/profiler.hpp"
#include "support/check.hpp"

namespace sea {

std::optional<Cholesky> Cholesky::Factor(const DenseMatrix& a) {
  obs::ProfScope prof("linalg.cholesky_factor");
  SEA_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  DenseMatrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      const auto li = l.Row(i);
      const auto lj = l.Row(j);
      for (std::size_t k = 0; k < j; ++k) v -= li[k] * lj[k];
      l(i, j) = v / ljj;
    }
  }
  return Cholesky(std::move(l));
}

void Cholesky::SolveInPlace(std::span<double> b) const {
  obs::ProfScopeFine prof("linalg.cholesky_solve");
  const std::size_t n = dim();
  SEA_CHECK(b.size() == n);
  // Forward: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    const auto li = l_.Row(i);
    for (std::size_t k = 0; k < i; ++k) v -= li[k] * b[k];
    b[i] = v / li[i];
  }
  // Backward: L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * b[k];
    b[ii] = v / l_(ii, ii);
  }
}

Vector Cholesky::Solve(std::span<const double> b) const {
  Vector x(b.begin(), b.end());
  SolveInPlace(x);
  return x;
}

std::optional<PartialPivLU> PartialPivLU::Factor(const DenseMatrix& a) {
  obs::ProfScope prof("linalg.lu_factor");
  SEA_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  DenseMatrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    double best = std::abs(lu(col, col));
    for (std::size_t i = col + 1; i < n; ++i) {
      const double v = std::abs(lu(i, col));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < 1e-14) return std::nullopt;
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(piv, j), lu(col, j));
      std::swap(perm[piv], perm[col]);
    }
    const double pivot = lu(col, col);
    for (std::size_t i = col + 1; i < n; ++i) {
      const double f = lu(i, col) / pivot;
      lu(i, col) = f;
      if (f == 0.0) continue;
      auto ri = lu.Row(i);
      const auto rc = lu.Row(col);
      for (std::size_t j = col + 1; j < n; ++j) ri[j] -= f * rc[j];
    }
  }
  return PartialPivLU(std::move(lu), std::move(perm));
}

Vector PartialPivLU::Solve(std::span<const double> b) const {
  obs::ProfScopeFine prof("linalg.lu_solve");
  const std::size_t n = dim();
  SEA_CHECK(b.size() == n);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // L has unit diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    double v = x[i];
    const auto row = lu_.Row(i);
    for (std::size_t k = 0; k < i; ++k) v -= row[k] * x[k];
    x[i] = v;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double v = x[ii];
    const auto row = lu_.Row(ii);
    for (std::size_t k = ii + 1; k < n; ++k) v -= row[k] * x[k];
    x[ii] = v / row[ii];
  }
  return x;
}

}  // namespace sea
