#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace sea {

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SEA_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double Dot(std::span<const double> x, std::span<const double> y) {
  SEA_DCHECK(x.size() == y.size());
  // Four-way unrolled accumulation: better ILP and more stable rounding than
  // a single serial chain at these sizes.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) a0 += x[i] * y[i];
  return (a0 + a1) + (a2 + a3);
}

double MaxAbs(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double Norm2(std::span<const double> x) { return std::sqrt(Dot(x, x)); }

double Sum(std::span<const double> x) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
  }
  for (; i < n; ++i) a0 += x[i];
  return (a0 + a1) + (a2 + a3);
}

void Gemv(const DenseMatrix& a, std::span<const double> x,
          std::span<double> y) {
  SEA_CHECK(a.cols() == x.size());
  SEA_CHECK(a.rows() == y.size());
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = Dot(a.Row(i), x);
}

void Symv(const DenseMatrix& a, std::span<const double> x,
          std::span<double> y) {
  SEA_DCHECK(a.rows() == a.cols());
  Gemv(a, x, y);
}

void GemvParallel(const DenseMatrix& a, std::span<const double> x,
                  std::span<double> y, ThreadPool* pool) {
  SEA_CHECK(a.cols() == x.size());
  SEA_CHECK(a.rows() == y.size());
  if (pool == nullptr || pool->num_threads() <= 1) {
    Gemv(a, x, y);
    return;
  }
  pool->ParallelFor(a.rows(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) y[i] = Dot(a.Row(i), x);
  });
}

DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  SEA_CHECK(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.Row(k);
      auto crow = c.Row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

}  // namespace sea
