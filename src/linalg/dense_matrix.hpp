// Row-major dense matrix used throughout the library.
//
// The constrained matrix problem stores the m×n estimate X densely (the
// paper's instances are 16–100% dense) and the general problem's weight
// matrices A (m×m), B (n×n), G (mn×mn) as dense symmetric matrices; the
// largest instance in the evaluation (Table 7) has G of dimension
// 14400×14400 (~1.7 GB in double precision).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace sea {

using Vector = std::vector<double>;

class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static DenseMatrix Identity(std::size_t n);

  // Builds a diagonal matrix from a vector.
  static DenseMatrix Diagonal(const Vector& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    SEA_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    SEA_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  // Contiguous view of row i.
  std::span<double> Row(std::size_t i) {
    SEA_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> Row(std::size_t i) const {
    SEA_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  // Flat storage access (row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> Flat() { return {data_.data(), data_.size()}; }
  std::span<const double> Flat() const { return {data_.data(), data_.size()}; }

  DenseMatrix Transposed() const;

  // Extracts the diagonal (requires square).
  Vector DiagonalVector() const;

  // Row sums (length rows()) and column sums (length cols()).
  Vector RowSums() const;
  Vector ColSums() const;

  // Max |a_ij - b_ij|; matrices must have identical shape.
  double MaxAbsDiff(const DenseMatrix& other) const;

  bool SameShape(const DenseMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  // True if the matrix is symmetric to within tol (requires square).
  bool IsSymmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

}  // namespace sea
