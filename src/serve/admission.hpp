// Bounded admission gate for the sea_serve daemon (docs/SERVING.md,
// "Admission and shedding").
//
// The HTTP layer's TaskQueue is an unbounded FIFO by design (a telemetry
// scrape must never be dropped), so the solve plane bounds itself HERE, at
// the start of each /solve handler: at most `max_concurrent` solves run at
// once, at most `max_queued` handlers block waiting for a slot, and
// everything beyond that is shed immediately with 503 + Retry-After —
// sheds are cheap (no decode, no solve), so an overloaded daemon degrades
// to fast rejections instead of an unbounded memory backlog.
//
// Drain (SIGTERM): BeginDrain() makes every subsequent — and every
// currently waiting — Acquire() return kDraining (another 503 to the
// client), while in-flight solves run to completion; AwaitIdle() blocks
// until the last one releases. That is the daemon's clean-shutdown
// sequence: stop admitting, finish what was admitted, then stop the
// server.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace sea::serve {

class AdmissionQueue {
 public:
  enum class Outcome {
    kAdmitted,  // caller owns a slot; must Release() when done
    kShed,      // queue full — answer 503 + Retry-After
    kDraining,  // shutting down — answer 503
  };

  // max_concurrent is clamped to >= 1; max_queued may be 0 (no waiting:
  // every request beyond the concurrent slots is shed).
  AdmissionQueue(std::size_t max_concurrent, std::size_t max_queued);

  // Blocks while all slots are busy and the waiter bound has room;
  // otherwise returns immediately with kShed / kDraining.
  Outcome Acquire();

  // Returns the slot taken by a successful Acquire.
  void Release();

  // Stop admitting: wakes all waiters (they return kDraining) and makes
  // future Acquires fail fast. Idempotent.
  void BeginDrain();

  // Blocks until no solve holds a slot. Call after BeginDrain.
  void AwaitIdle();

  std::uint64_t admitted() const;
  std::uint64_t shed() const;
  std::size_t in_flight() const;
  std::size_t queued() const;
  std::size_t peak_queued() const;
  bool draining() const;

 private:
  const std::size_t max_concurrent_;
  const std::size_t max_queued_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::size_t queued_ = 0;
  std::size_t peak_queued_ = 0;
  std::uint64_t admitted_count_ = 0;
  std::uint64_t shed_count_ = 0;
  bool draining_ = false;
};

}  // namespace sea::serve
