// Wire protocol of the sea_serve solve daemon (docs/SERVING.md).
//
// A solve request is one POST /solve body in either of two encodings:
//
//   * Binary frame (Content-Type: application/octet-stream) — the compact
//     form for production clients, following the checkpoint codec's
//     conventions (core/checkpoint.hpp): 8-byte magic, u32 version,
//     native-endian fixed-width fields, length-prefixed double vectors,
//     and a trailing CRC-32 over every preceding byte. Layout (version 1):
//
//       "SEASOLV\0"  8-byte magic
//       u32   format version
//       u32   totals mode       (problems/types.hpp TotalsMode)
//       u32   stop criterion    (core/options.hpp StopCriterion)
//       u32   flags             (bit 0: response carries lambda/mu arrays)
//       u64   m, u64 n
//       f64   epsilon
//       f64   time_budget_seconds   (0 = server default)
//       u64   max_iterations        (0 = server default)
//       u64 count + f64[]  x0     (m*n, row-major)
//       u64 count + f64[]  gamma  (m*n, row-major)
//       u64 count + f64[]  s0
//       u64 count + f64[]  alpha  (empty unless elastic/SAM/interval)
//       u64 count + f64[]  d0     (empty for SAM)
//       u64 count + f64[]  beta   (empty unless elastic/interval)
//       u64 count + f64[]  s_lo, s_hi, d_lo, d_hi  (empty unless interval)
//       u32   CRC-32 of all preceding bytes
//
//   * JSON (Content-Type: application/json, or any body whose first
//     non-space byte is '{') — the debuggable form for small problems and
//     curl: a flat object with scalars {"mode","criterion","epsilon",
//     "time_budget_seconds","max_iterations","want_multipliers","m","n"}
//     and number arrays {"x0","gamma","s0","alpha","d0","beta","s_lo",
//     "s_hi","d_lo","d_hi"} (matrices row-major; the same emptiness rules
//     as the binary frame).
//
// Decoding never throws on hostile bytes: every defect — bad magic,
// version skew, CRC mismatch, inconsistent lengths, shapes that fail
// DiagonalProblem::Validate — comes back as a DecodedRequest with a
// non-empty error string, which the daemon answers as 400/422.
//
// The response is always JSON (one flat object; schema 4): solve outcome
// scalars, the cache tier that served the request ("cold", "exact",
// "warm"), and FNV-1a fingerprints of the problem and the returned primal
// so clients and tests can assert bit-identity without shipping the
// matrix. `want_multipliers` additionally inlines lambda/mu as arrays.
#pragma once

#include <cstdint>
#include <string>

#include "core/options.hpp"
#include "problems/diagonal_problem.hpp"

namespace sea::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;

// Response flag: client wants lambda/mu arrays inlined in the reply.
inline constexpr std::uint32_t kFlagWantMultipliers = 1u << 0;

// One decoded solve request: the problem plus the per-request solver knobs
// a client may set. Server-side policy (pool, metrics, cancellation)
// stays out of the wire format.
struct SolveRequest {
  DiagonalProblem problem;
  double epsilon = 1e-6;
  StopCriterion criterion = StopCriterion::kResidualRel;
  double time_budget_seconds = 0.0;  // 0 = server default
  std::uint64_t max_iterations = 0;  // 0 = server default
  bool want_multipliers = false;
};

struct DecodedRequest {
  SolveRequest request;  // meaningful only when ok()
  std::string error;     // non-empty on any decode/validation defect

  bool ok() const { return error.empty(); }
};

// Binary frame codec. Encode is used by clients (serve_load, tests);
// Decode by the daemon.
std::string EncodeRequestFrame(const SolveRequest& request);
DecodedRequest DecodeRequestFrame(std::string_view bytes);

// JSON request codec (the curl-friendly fallback).
std::string EncodeRequestJson(const SolveRequest& request);
DecodedRequest DecodeRequestJson(const std::string& body);

// Dispatches on the body's first non-space byte: '{' -> JSON, otherwise
// the binary frame decoder.
DecodedRequest DecodeRequest(const std::string& body);

}  // namespace sea::serve
