#include "serve/solve_service.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/solve_status.hpp"
#include "core/stopping.hpp"
#include "obs/json_export.hpp"
#include "obs/metrics.hpp"
#include "problems/solution.hpp"
#include "problems/types.hpp"
#include "support/hash.hpp"
#include "support/rusage.hpp"

namespace sea::serve {
namespace {

std::string HexU64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

std::uint64_t FingerprintPrimal(const DenseMatrix& x) {
  support::Fnv1a h;
  h.MixU64('x');
  h.MixDoubles(x.Flat());
  return h.value();
}

// Latency buckets spanning sub-millisecond replays to budget-bounded
// multi-second solves.
std::vector<double> LatencyBounds() {
  return {1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01,
          0.05, 0.1,  0.5,  1.0,  5.0,  10.0, 30.0};
}

}  // namespace

SolveService::SolveService(WarmStartCache* cache,
                           obs::MetricsRegistry* metrics,
                           obs::SolveLogWriter* solve_log,
                           ServiceLimits limits)
    : cache_(cache),
      metrics_(metrics),
      solve_log_(solve_log),
      limits_(limits) {}

SeaOptions SolveService::BuildOptions(const SolveRequest& request) const {
  SeaOptions opts;
  opts.epsilon = request.epsilon;
  opts.criterion = request.criterion;
  opts.max_iterations =
      request.max_iterations == 0
          ? static_cast<std::size_t>(limits_.max_iterations)
          : static_cast<std::size_t>(std::min<std::uint64_t>(
                request.max_iterations, limits_.max_iterations));
  opts.time_budget_seconds =
      request.time_budget_seconds <= 0.0
          ? limits_.max_time_budget_seconds
          : std::min(request.time_budget_seconds,
                     limits_.max_time_budget_seconds);
  opts.metrics = metrics_;
  opts.cancel = limits_.cancel;
  return opts;
}

ServeOutcome SolveService::Handle(const SolveRequest& request,
                                  double queue_seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  ServeOutcome out;
  out.queue_seconds = queue_seconds;

  const DiagonalProblem& p = request.problem;
  out.problem_fingerprint = FingerprintProblem(p);
  const std::uint64_t structure_key = FingerprintProblemStructure(p);
  const auto hit = cache_->Lookup(out.problem_fingerprint, structure_key);

  try {
    bool served = false;
    if (hit && hit->tier == WarmHit::Tier::kExact &&
        request.criterion != StopCriterion::kXChange) {
      // Exact replay: the byte-identical problem was solved before, so
      // pushing the cached duals through RecoverPrimal reproduces that
      // solve's answer bit for bit. Serve it only if the replayed iterate
      // passes THIS request's tolerance (the cache may hold a looser
      // solve); otherwise fall through to a warm solve from the same mu.
      Solution sol = RecoverPrimal(p, hit->entry.lambda, hit->entry.mu);
      const Vector rowsums = sol.x.RowSums();
      ResidualTargets targets;
      targets.mode = p.mode();
      targets.s0 = p.s0();
      targets.alpha = p.alpha();
      targets.lambda = sol.lambda;
      targets.mu = sol.mu;
      targets.s_lo = p.s_lo();
      targets.s_hi = p.s_hi();
      const double measure =
          MaxRowResidual(request.criterion, rowsums, targets);
      if (measure <= request.epsilon) {
        out.cache_tier = "exact";
        out.status = SolveStatus::kConverged;
        out.result.status = SolveStatus::kConverged;
        out.result.iterations = 0;
        out.result.checks_compared = 1;
        out.result.final_residual = measure;
        out.result.objective = p.Objective(sol.x, sol.s, sol.d);
        out.solution = std::move(sol);
        served = true;
      }
    }

    if (!served) {
      const SeaOptions opts = BuildOptions(request);
      DiagonalSea solver(p);
      DiagonalSeaRun run;
      if (hit) {
        out.cache_tier = "warm";
        run = solver.SolveWarm(opts, hit->entry.mu);
      } else {
        out.cache_tier = "cold";
        run = solver.Solve(opts);
      }
      out.status = run.result.status;
      out.result = std::move(run.result);
      out.solution = std::move(run.solution);
      if (out.result.converged()) {
        CachedMultipliers entry;
        entry.lambda = out.solution.lambda;
        entry.mu = out.solution.mu;
        entry.criterion = request.criterion;
        entry.epsilon = request.epsilon;
        entry.iterations = out.result.iterations;
        cache_->Insert(out.problem_fingerprint, structure_key,
                       std::move(entry));
      }
    }
    out.x_fingerprint = FingerprintPrimal(out.solution.x);
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  Record(request, out);
  return out;
}

void SolveService::Record(const SolveRequest& request,
                          const ServeOutcome& out) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!out.ok) errors_.fetch_add(1, std::memory_order_relaxed);

  if (metrics_) {
    metrics_->GetCounter("sea.serve.requests").Add();
    if (!out.ok) metrics_->GetCounter("sea.serve.errors").Add();
    if (out.cache_tier == "exact")
      metrics_->GetCounter("sea.serve.replay_exact").Add();
    else if (out.cache_tier == "warm")
      metrics_->GetCounter("sea.serve.warm_solves").Add();
    else
      metrics_->GetCounter("sea.serve.cold_solves").Add();
    metrics_->GetHistogram("sea.serve.request_seconds", LatencyBounds())
        .Observe(out.wall_seconds);
    metrics_->GetHistogram("sea.serve.queue_seconds", LatencyBounds())
        .Observe(out.queue_seconds);
    const WarmCacheStats stats = cache_->Stats();
    metrics_->GetGauge("sea.serve.cache_size")
        .Set(static_cast<double>(stats.size));
    metrics_->GetCounter("sea.serve.iterations")
        .Add(out.result.iterations);
  }

  if (solve_log_) {
    obs::SolveWideEvent ev;
    ev.tool = "sea_serve";
    ev.mode = ToString(request.problem.mode());
    ev.rows = request.problem.m();
    ev.cols = request.problem.n();
    ev.epsilon = request.epsilon;
    ev.criterion = ToString(request.criterion);
    ev.threads = 1;
    ev.backend = out.result.kernel_backend;
    {
      support::Fnv1a fp;
      fp.MixU64('s');  // serving-plane option space
      fp.MixU64(static_cast<std::uint64_t>(request.criterion));
      fp.MixDoubles({&request.epsilon, 1});
      fp.MixU64(request.max_iterations);
      fp.MixDoubles({&request.time_budget_seconds, 1});
      ev.options_fingerprint = fp.value();
    }
    ev.status = out.ok ? ToString(out.status) : "error";
    ev.exit_code = out.ok ? ExitCodeFor(out.status) : 3;
    ev.iterations = out.result.iterations;
    ev.checks_compared = out.result.checks_compared;
    ev.final_residual = out.result.final_residual;
    ev.objective = out.result.objective;
    ev.wall_seconds = out.wall_seconds;
    ev.cpu_seconds = out.result.cpu_seconds;
    ev.row_phase_seconds = out.result.row_phase_seconds;
    ev.col_phase_seconds = out.result.col_phase_seconds;
    ev.check_phase_seconds = out.result.check_phase_seconds;
    ev.recoveries = out.result.recovered_count;
    ev.recovery_rungs = out.result.recovery_rungs;
    ev.peak_rss_bytes = support::PeakRssBytes();
    ev.cache_tier = out.cache_tier;
    ev.queue_seconds = out.queue_seconds;
    ev.error = out.error;
    solve_log_->Emit(ev);
  }
}

std::string SolveService::RenderReplyJson(const ServeOutcome& out,
                                          bool want_multipliers) {
  obs::JsonObj o;
  o.Field("schema", obs::kTelemetrySchemaVersion)
      .Field("tool", "sea_serve")
      .Field("ok", out.ok)
      .Field("status", out.ok ? ToString(out.status) : "error")
      .Field("exit_code", out.ok ? ExitCodeFor(out.status) : 3)
      .Field("cache_tier", out.cache_tier)
      .Field("iterations",
             static_cast<std::uint64_t>(out.result.iterations))
      .Field("final_residual", out.result.final_residual)
      .Field("objective", out.result.objective)
      .Field("wall_seconds", out.wall_seconds)
      .Field("queue_seconds", out.queue_seconds)
      .Field("problem_fingerprint", HexU64(out.problem_fingerprint))
      .Field("x_fingerprint", HexU64(out.x_fingerprint));
  if (!out.ok) o.Field("error", out.error);
  if (want_multipliers && out.ok) {
    obs::JsonArr lambda;
    for (double v : out.solution.lambda) lambda.Add(v);
    obs::JsonArr mu;
    for (double v : out.solution.mu) mu.Add(v);
    o.Raw("lambda", lambda.Str()).Raw("mu", mu.Str());
  }
  return o.Str();
}

}  // namespace sea::serve
