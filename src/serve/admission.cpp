#include "serve/admission.hpp"

namespace sea::serve {

AdmissionQueue::AdmissionQueue(std::size_t max_concurrent,
                               std::size_t max_queued)
    : max_concurrent_(max_concurrent == 0 ? 1 : max_concurrent),
      max_queued_(max_queued) {}

AdmissionQueue::Outcome AdmissionQueue::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) return Outcome::kDraining;
  if (in_flight_ < max_concurrent_) {
    ++in_flight_;
    ++admitted_count_;
    return Outcome::kAdmitted;
  }
  if (queued_ >= max_queued_) {
    ++shed_count_;
    return Outcome::kShed;
  }
  ++queued_;
  if (queued_ > peak_queued_) peak_queued_ = queued_;
  slot_free_.wait(lock, [this] {
    return draining_ || in_flight_ < max_concurrent_;
  });
  --queued_;
  if (draining_) return Outcome::kDraining;
  ++in_flight_;
  ++admitted_count_;
  return Outcome::kAdmitted;
}

void AdmissionQueue::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  slot_free_.notify_one();
  if (in_flight_ == 0) idle_.notify_all();
}

void AdmissionQueue::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  slot_free_.notify_all();
}

void AdmissionQueue::AwaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::uint64_t AdmissionQueue::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_count_;
}

std::uint64_t AdmissionQueue::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_count_;
}

std::size_t AdmissionQueue::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::size_t AdmissionQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

std::size_t AdmissionQueue::peak_queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queued_;
}

bool AdmissionQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

}  // namespace sea::serve
