#include "serve/warm_cache.hpp"

#include <utility>

namespace sea::serve {

WarmStartCache::WarmStartCache(std::size_t capacity, std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {
  const std::size_t s = shards_.size();
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + s - 1) / s;
}

std::optional<WarmHit> WarmStartCache::Lookup(std::uint64_t exact_key,
                                              std::uint64_t structure_key) {
  Shard& shard = ShardFor(structure_key);
  std::lock_guard<std::mutex> lock(shard.mu);

  const auto touch = [&shard](std::list<Entry>::iterator it) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it);
    // The refreshed entry is again the structure's most recent.
    shard.by_structure[it->structure_key] = it->exact_key;
  };

  if (const auto it = shard.by_exact.find(exact_key);
      it != shard.by_exact.end()) {
    touch(it->second);
    hits_exact_.fetch_add(1, std::memory_order_relaxed);
    WarmHit hit;
    hit.tier = WarmHit::Tier::kExact;
    hit.entry = it->second->value;
    return hit;
  }

  if (const auto sit = shard.by_structure.find(structure_key);
      sit != shard.by_structure.end()) {
    const auto it = shard.by_exact.find(sit->second);
    if (it != shard.by_exact.end()) {
      touch(it->second);
      hits_nearby_.fetch_add(1, std::memory_order_relaxed);
      WarmHit hit;
      hit.tier = WarmHit::Tier::kNearby;
      hit.entry = it->second->value;
      return hit;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void WarmStartCache::Insert(std::uint64_t exact_key,
                            std::uint64_t structure_key,
                            CachedMultipliers entry) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = ShardFor(structure_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  inserts_.fetch_add(1, std::memory_order_relaxed);

  if (const auto it = shard.by_exact.find(exact_key);
      it != shard.by_exact.end()) {
    it->second->value = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    shard.by_structure[structure_key] = exact_key;
    return;
  }

  while (shard.lru.size() >= per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.by_exact.erase(victim.exact_key);
    if (const auto sit = shard.by_structure.find(victim.structure_key);
        sit != shard.by_structure.end() && sit->second == victim.exact_key)
      shard.by_structure.erase(sit);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }

  shard.lru.push_front(
      Entry{exact_key, structure_key, std::move(entry)});
  shard.by_exact[exact_key] = shard.lru.begin();
  shard.by_structure[structure_key] = exact_key;
  size_.fetch_add(1, std::memory_order_relaxed);
}

WarmCacheStats WarmStartCache::Stats() const {
  WarmCacheStats s;
  s.hits_exact = hits_exact_.load(std::memory_order_relaxed);
  s.hits_nearby = hits_nearby_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.size = size_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sea::serve
