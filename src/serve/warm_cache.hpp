// Sharded two-tier LRU cache of converged dual multipliers, the economic
// heart of the sea_serve daemon (docs/SERVING.md, "Warm-start cache").
//
// The SEA iterate is compact: the (lambda, mu) multipliers determine the
// primal in closed form (problems/solution.hpp RecoverPrimal), so caching
// the converged duals of a finished solve caches everything needed to
// answer — or to accelerate — a later request. Keys are the existing
// FNV-1a problem fingerprints (core/checkpoint.hpp), split into two tiers:
//
//   * exact tier — FingerprintProblem (mode, shape, centers, weights, AND
//     totals). A hit means the byte-identical problem was solved before;
//     the cached multipliers can be replayed through RecoverPrimal and
//     re-verified against the request's tolerance with zero iterations.
//   * nearby tier — FingerprintProblemStructure (totals excluded). A hit
//     means the same structure was solved with different totals — the
//     perturbed-repeat pattern of production traffic (re-estimating a
//     table as fresh marginals arrive). The cached mu warm-starts
//     DiagonalSea::SolveWarm; perturbed scaling problems re-converge along
//     nearby dual trajectories, so iterations drop measurably vs. cold.
//
// Sharding: entries land in shard (structure_key mod shards), so the exact
// and nearby lookups of one request touch ONE shard lock, and concurrent
// requests for different structures proceed without contention. Each shard
// holds its own LRU list of capacity ceil(capacity / shards); eviction is
// per-shard LRU. The nearby index remembers the most recent entry per
// structure key (older same-structure entries stay reachable in the LRU
// but only through their exact key) — best-effort by design, since any
// same-structure entry is an adequate warm start.
//
// Thread safety: all public methods are safe from any thread; stats are
// monotone relaxed atomics readable without the shard locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/options.hpp"
#include "linalg/dense_matrix.hpp"

namespace sea::serve {

// One cached converged solve: the duals plus the convergence contract they
// met (criterion + epsilon), so a replay can decide whether the cached
// iterate already satisfies a new request's tolerance.
struct CachedMultipliers {
  Vector lambda;
  Vector mu;
  StopCriterion criterion = StopCriterion::kResidualRel;
  double epsilon = 0.0;
  std::uint64_t iterations = 0;  // iterations the populating solve spent
};

struct WarmHit {
  enum class Tier { kExact, kNearby };
  Tier tier = Tier::kExact;
  CachedMultipliers entry;
};

struct WarmCacheStats {
  std::uint64_t hits_exact = 0;
  std::uint64_t hits_nearby = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t size = 0;
};

class WarmStartCache {
 public:
  // `capacity` entries total across `shards` shards (shards is clamped to
  // >= 1; capacity 0 disables the cache — every lookup misses).
  explicit WarmStartCache(std::size_t capacity, std::size_t shards = 8);

  // Two-tier lookup: exact key first, then the structure key. A hit
  // refreshes the entry's LRU position and returns a copy of the cached
  // multipliers (copies, so the caller never holds a shard lock while
  // solving).
  std::optional<WarmHit> Lookup(std::uint64_t exact_key,
                                std::uint64_t structure_key);

  // Inserts (or refreshes) the converged multipliers of a finished solve.
  // An existing entry under the same exact key is replaced in place.
  void Insert(std::uint64_t exact_key, std::uint64_t structure_key,
              CachedMultipliers entry);

  WarmCacheStats Stats() const;

 private:
  struct Entry {
    std::uint64_t exact_key = 0;
    std::uint64_t structure_key = 0;
    CachedMultipliers value;
  };

  struct Shard {
    std::mutex mu;
    // Front = most recently used. Iterators stay valid across splice.
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> by_exact;
    // structure key -> exact key of the most recent entry with it.
    std::unordered_map<std::uint64_t, std::uint64_t> by_structure;
  };

  Shard& ShardFor(std::uint64_t structure_key) {
    return shards_[structure_key % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_exact_{0};
  mutable std::atomic<std::uint64_t> hits_nearby_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> size_{0};
};

}  // namespace sea::serve
