// Per-request solve session of the sea_serve daemon (docs/SERVING.md).
//
// One Handle() call is the whole lifecycle of an admitted request: cache
// lookup, the cheapest sound path to an answer, cache population, metrics,
// and the per-request wide event. The three paths, cheapest first:
//
//   * exact replay — the exact-tier fingerprint matched and the request
//     uses a residual criterion: the cached converged multipliers are
//     replayed through RecoverPrimal and RE-VERIFIED against the request's
//     own tolerance (core/stopping.hpp MaxRowResidual). On success the
//     reply is bit-identical to the solve that populated the cache — same
//     duals through the same closed form — at zero iterations. Replay is
//     refused (falls through to warm) when the verification fails (the
//     request wants a tighter epsilon than the cached solve met) or the
//     criterion is kXChange, whose measure is trajectory state that cannot
//     be re-checked from a final iterate.
//   * warm solve — a nearby-tier hit (or a refused replay): the cached mu
//     seeds DiagonalSea::SolveWarm. The result re-populates the cache
//     under the request's own keys.
//   * cold solve — no usable hit: DiagonalSea::Solve from mu = 0.
//
// Metrics (sea.serve.*, appended to docs/OBSERVABILITY.md's catalogue):
// requests/errors counters, hit/miss/shed counters, request_seconds and
// queue_seconds histograms, cache_size + queue_depth gauges. The wide
// event (obs/solve_log.hpp) carries tool="sea_serve", the cache tier, and
// the queue wait, one line per request.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/diagonal_sea.hpp"
#include "obs/solve_log.hpp"
#include "serve/protocol.hpp"
#include "serve/warm_cache.hpp"

namespace sea::obs {
class MetricsRegistry;
}  // namespace sea::obs

namespace sea::serve {

// Server-side solve policy a request cannot override upward.
struct ServiceLimits {
  double max_time_budget_seconds = 30.0;  // also the default budget
  std::uint64_t max_iterations = 200000;  // also the default cap
  // Optional hard-abort token threaded into every solve (the daemon trips
  // it on a second termination signal, turning the graceful drain into a
  // prompt one — in-flight solves return kCancelled at their next check).
  CancelToken* cancel = nullptr;
};

// Everything about one answered request. `result`/`solution` are
// meaningful whenever ok; on an exact replay, `result` is synthesized
// (converged, zero iterations, the re-verified residual).
struct ServeOutcome {
  bool ok = true;
  std::string error;  // set when !ok (engine threw)
  SolveStatus status = SolveStatus::kConverged;
  SeaResult result;
  Solution solution;
  std::string cache_tier;  // "cold", "exact", or "warm"
  std::uint64_t problem_fingerprint = 0;
  std::uint64_t x_fingerprint = 0;  // FNV-1a over the returned primal
  double queue_seconds = 0.0;
  double wall_seconds = 0.0;  // handling time, queue excluded
};

class SolveService {
 public:
  // All pointers optional (may be null) except `cache`.
  SolveService(WarmStartCache* cache, obs::MetricsRegistry* metrics,
               obs::SolveLogWriter* solve_log, ServiceLimits limits = {});

  // Solves one admitted, decoded request. `queue_seconds` is the admission
  // wait, recorded into metrics and the wide event. Never throws: engine
  // failures come back as !ok outcomes.
  ServeOutcome Handle(const SolveRequest& request, double queue_seconds);

  // Renders the reply JSON the daemon writes back (flat, schema 4). The
  // multiplier arrays are included when the request asked for them.
  static std::string RenderReplyJson(const ServeOutcome& outcome,
                                     bool want_multipliers);

  WarmCacheStats CacheStats() const { return cache_->Stats(); }
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  SeaOptions BuildOptions(const SolveRequest& request) const;
  void Record(const SolveRequest& request, const ServeOutcome& outcome);

  WarmStartCache* cache_;
  obs::MetricsRegistry* metrics_;
  obs::SolveLogWriter* solve_log_;
  ServiceLimits limits_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace sea::serve
