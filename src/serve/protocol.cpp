#include "serve/protocol.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>

#include "obs/bench_reader.hpp"
#include "obs/json_export.hpp"
#include "support/check.hpp"
#include "support/crc32.hpp"

namespace sea::serve {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'A', 'S', 'O', 'L', 'V', '\0'};

// Dimension sanity cap: a request whose declared shape implies more cells
// than this is rejected before any allocation — the HTTP body cap bounds
// honest requests long before here, so anything larger is hostile or
// corrupt. 16M cells = 128 MiB of doubles per matrix.
constexpr std::uint64_t kMaxCells = 16ull << 20;

void PutU32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutDoubles(std::string& out, std::span<const double> v) {
  PutU64(out, v.size());
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(double));
}

// Bounds-checked sequential reader (same shape as the checkpoint codec's).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool GetU32(std::uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(std::uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetRaw(v, sizeof(*v)); }

  bool GetDoubles(std::vector<double>* v) {
    std::uint64_t count = 0;
    if (!GetU64(&count)) return false;
    if (count > Remaining() / sizeof(double)) return false;
    v->resize(static_cast<std::size_t>(count));
    return GetRaw(v->data(), v->size() * sizeof(double));
  }

  std::size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  bool GetRaw(void* dst, std::size_t len) {
    if (len > Remaining()) return false;
    std::memcpy(dst, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

DecodedRequest Fail(std::string why) {
  DecodedRequest r;
  r.error = std::move(why);
  return r;
}

DenseMatrix MatrixFromFlat(std::size_t m, std::size_t n,
                           std::vector<double>&& flat) {
  DenseMatrix out(m, n);
  std::memcpy(out.data(), flat.data(), flat.size() * sizeof(double));
  return out;
}

// Assembles the problem through the mode's factory (which enforces the
// argument shapes) and validates it; any defect becomes the error string.
DecodedRequest Assemble(TotalsMode mode, std::size_t m, std::size_t n,
                        std::vector<double>&& x0, std::vector<double>&& gamma,
                        Vector&& s0, Vector&& alpha, Vector&& d0,
                        Vector&& beta, Vector&& s_lo, Vector&& s_hi,
                        Vector&& d_lo, Vector&& d_hi, SolveRequest&& partial) {
  if (x0.size() != m * n || gamma.size() != m * n)
    return Fail("x0/gamma length disagrees with the declared m*n shape");
  DecodedRequest out;
  out.request = std::move(partial);
  try {
    DenseMatrix x0m = MatrixFromFlat(m, n, std::move(x0));
    DenseMatrix gm = MatrixFromFlat(m, n, std::move(gamma));
    switch (mode) {
      case TotalsMode::kFixed:
        out.request.problem = DiagonalProblem::MakeFixed(
            std::move(x0m), std::move(gm), std::move(s0), std::move(d0));
        break;
      case TotalsMode::kElastic:
        out.request.problem = DiagonalProblem::MakeElastic(
            std::move(x0m), std::move(gm), std::move(s0), std::move(alpha),
            std::move(d0), std::move(beta));
        break;
      case TotalsMode::kSam:
        out.request.problem = DiagonalProblem::MakeSam(
            std::move(x0m), std::move(gm), std::move(s0), std::move(alpha));
        break;
      case TotalsMode::kInterval:
        out.request.problem = DiagonalProblem::MakeInterval(
            std::move(x0m), std::move(gm), std::move(s0), std::move(alpha),
            std::move(s_lo), std::move(s_hi), std::move(d0), std::move(beta),
            std::move(d_lo), std::move(d_hi));
        break;
    }
    out.request.problem.Validate();
  } catch (const std::exception& e) {
    return Fail(std::string("invalid problem: ") + e.what());
  }
  return out;
}

bool ValidEnumRanges(std::uint32_t mode, std::uint32_t criterion) {
  return mode <= static_cast<std::uint32_t>(TotalsMode::kInterval) &&
         criterion <= static_cast<std::uint32_t>(StopCriterion::kResidualRel);
}

bool SaneScalars(double epsilon, double budget, std::uint64_t m,
                 std::uint64_t n) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) return false;
  if (budget < 0.0 || !std::isfinite(budget)) return false;
  if (m == 0 || n == 0) return false;
  if (m > kMaxCells || n > kMaxCells || m * n > kMaxCells) return false;
  return true;
}

}  // namespace

std::string EncodeRequestFrame(const SolveRequest& req) {
  const DiagonalProblem& p = req.problem;
  std::string out;
  out.reserve(128 + sizeof(double) * (2 * p.m() * p.n() + 4 * (p.m() + p.n())));
  out.append(kMagic, sizeof(kMagic));
  PutU32(out, kProtocolVersion);
  PutU32(out, static_cast<std::uint32_t>(p.mode()));
  PutU32(out, static_cast<std::uint32_t>(req.criterion));
  PutU32(out, req.want_multipliers ? kFlagWantMultipliers : 0u);
  PutU64(out, p.m());
  PutU64(out, p.n());
  PutF64(out, req.epsilon);
  PutF64(out, req.time_budget_seconds);
  PutU64(out, req.max_iterations);
  PutDoubles(out, p.x0().Flat());
  PutDoubles(out, p.gamma().Flat());
  PutDoubles(out, p.s0());
  PutDoubles(out, p.alpha());
  PutDoubles(out, p.d0());
  PutDoubles(out, p.beta());
  PutDoubles(out, p.s_lo());
  PutDoubles(out, p.s_hi());
  PutDoubles(out, p.d_lo());
  PutDoubles(out, p.d_hi());
  PutU32(out, support::Crc32(out));
  return out;
}

DecodedRequest DecodeRequestFrame(std::string_view bytes) {
  // Same rejection order as the checkpoint codec: magic, version, CRC,
  // then fields — so "wrong protocol" / "incompatible revision" /
  // "corrupt" are distinguishable from the error text alone.
  if (bytes.size() < sizeof(kMagic) + 2 * sizeof(std::uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return Fail("not a SEA solve frame (bad magic or too short)");
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kProtocolVersion)
    return Fail("solve frame version " + std::to_string(version) +
                "; this server speaks " + std::to_string(kProtocolVersion));
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (stored_crc !=
      support::Crc32(bytes.data(), bytes.size() - sizeof(stored_crc)))
    return Fail("CRC mismatch (corrupt or truncated solve frame)");

  Reader r(bytes.substr(
      sizeof(kMagic) + sizeof(std::uint32_t),
      bytes.size() - sizeof(kMagic) - 2 * sizeof(std::uint32_t)));
  std::uint32_t mode = 0, criterion = 0, flags = 0;
  std::uint64_t m = 0, n = 0;
  SolveRequest req;
  std::vector<double> x0, gamma;
  Vector s0, alpha, d0, beta, s_lo, s_hi, d_lo, d_hi;
  const bool parsed =
      r.GetU32(&mode) && r.GetU32(&criterion) && r.GetU32(&flags) &&
      r.GetU64(&m) && r.GetU64(&n) && r.GetF64(&req.epsilon) &&
      r.GetF64(&req.time_budget_seconds) && r.GetU64(&req.max_iterations) &&
      r.GetDoubles(&x0) && r.GetDoubles(&gamma) && r.GetDoubles(&s0) &&
      r.GetDoubles(&alpha) && r.GetDoubles(&d0) && r.GetDoubles(&beta) &&
      r.GetDoubles(&s_lo) && r.GetDoubles(&s_hi) && r.GetDoubles(&d_lo) &&
      r.GetDoubles(&d_hi);
  if (!parsed || r.Remaining() != 0)
    return Fail("inconsistent solve frame field lengths");
  if (!ValidEnumRanges(mode, criterion))
    return Fail("solve frame names an unknown mode or criterion");
  if (!SaneScalars(req.epsilon, req.time_budget_seconds, m, n))
    return Fail("solve frame scalars out of range (epsilon/budget/shape)");
  req.criterion = static_cast<StopCriterion>(criterion);
  req.want_multipliers = (flags & kFlagWantMultipliers) != 0;
  return Assemble(static_cast<TotalsMode>(mode), static_cast<std::size_t>(m),
                  static_cast<std::size_t>(n), std::move(x0), std::move(gamma),
                  std::move(s0), std::move(alpha), std::move(d0),
                  std::move(beta), std::move(s_lo), std::move(s_hi),
                  std::move(d_lo), std::move(d_hi), std::move(req));
}

std::string EncodeRequestJson(const SolveRequest& req) {
  const DiagonalProblem& p = req.problem;
  const auto arr = [](std::span<const double> v) {
    obs::JsonArr a;
    for (double x : v) a.Add(x);
    return a.Str();
  };
  obs::JsonObj doc;
  doc.Field("mode", ToString(p.mode()))
      .Field("criterion", ToString(req.criterion))
      .Field("epsilon", req.epsilon)
      .Field("time_budget_seconds", req.time_budget_seconds)
      .Field("max_iterations", req.max_iterations)
      .Field("want_multipliers", req.want_multipliers)
      .Field("m", static_cast<std::uint64_t>(p.m()))
      .Field("n", static_cast<std::uint64_t>(p.n()))
      .Raw("x0", arr(p.x0().Flat()))
      .Raw("gamma", arr(p.gamma().Flat()))
      .Raw("s0", arr(p.s0()))
      .Raw("alpha", arr(p.alpha()))
      .Raw("d0", arr(p.d0()))
      .Raw("beta", arr(p.beta()))
      .Raw("s_lo", arr(p.s_lo()))
      .Raw("s_hi", arr(p.s_hi()))
      .Raw("d_lo", arr(p.d_lo()))
      .Raw("d_hi", arr(p.d_hi()));
  return doc.Str();
}

DecodedRequest DecodeRequestJson(const std::string& body) {
  std::vector<std::pair<std::string, std::string>> fields;
  try {
    fields = obs::JsonObjectFields(body);
  } catch (const std::exception& e) {
    return Fail(std::string("malformed JSON request: ") + e.what());
  }
  std::string mode_name = "fixed", criterion_name = "residual-rel";
  std::uint64_t m = 0, n = 0;
  SolveRequest req;
  std::vector<double> x0, gamma;
  Vector s0, alpha, d0, beta, s_lo, s_hi, d_lo, d_hi;
  const auto unquote = [](const std::string& v) {
    return v.size() >= 2 && v.front() == '"' ? v.substr(1, v.size() - 2) : v;
  };
  for (const auto& [key, value] : fields) {
    if (key == "mode") {
      mode_name = unquote(value);
    } else if (key == "criterion") {
      criterion_name = unquote(value);
    } else if (key == "epsilon") {
      req.epsilon = std::atof(value.c_str());
    } else if (key == "time_budget_seconds") {
      req.time_budget_seconds = std::atof(value.c_str());
    } else if (key == "max_iterations") {
      req.max_iterations =
          static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (key == "want_multipliers") {
      req.want_multipliers = value == "true";
    } else if (key == "m") {
      m = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (key == "n") {
      n = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (key == "x0") {
      x0 = obs::JsonNumberArray(value);
    } else if (key == "gamma") {
      gamma = obs::JsonNumberArray(value);
    } else if (key == "s0") {
      s0 = obs::JsonNumberArray(value);
    } else if (key == "alpha") {
      alpha = obs::JsonNumberArray(value);
    } else if (key == "d0") {
      d0 = obs::JsonNumberArray(value);
    } else if (key == "beta") {
      beta = obs::JsonNumberArray(value);
    } else if (key == "s_lo") {
      s_lo = obs::JsonNumberArray(value);
    } else if (key == "s_hi") {
      s_hi = obs::JsonNumberArray(value);
    } else if (key == "d_lo") {
      d_lo = obs::JsonNumberArray(value);
    } else if (key == "d_hi") {
      d_hi = obs::JsonNumberArray(value);
    }
    // Unknown fields are ignored (append-only schema tolerance).
  }
  TotalsMode mode;
  if (mode_name == "fixed") {
    mode = TotalsMode::kFixed;
  } else if (mode_name == "elastic") {
    mode = TotalsMode::kElastic;
  } else if (mode_name == "sam") {
    mode = TotalsMode::kSam;
  } else if (mode_name == "interval") {
    mode = TotalsMode::kInterval;
  } else {
    return Fail("unknown mode '" + mode_name + "'");
  }
  if (criterion_name == "x-change") {
    req.criterion = StopCriterion::kXChange;
  } else if (criterion_name == "residual-abs") {
    req.criterion = StopCriterion::kResidualAbs;
  } else if (criterion_name == "residual-rel") {
    req.criterion = StopCriterion::kResidualRel;
  } else {
    return Fail("unknown criterion '" + criterion_name + "'");
  }
  if (!SaneScalars(req.epsilon, req.time_budget_seconds, m, n))
    return Fail("JSON request scalars out of range (epsilon/budget/shape)");
  return Assemble(mode, static_cast<std::size_t>(m),
                  static_cast<std::size_t>(n), std::move(x0), std::move(gamma),
                  std::move(s0), std::move(alpha), std::move(d0),
                  std::move(beta), std::move(s_lo), std::move(s_hi),
                  std::move(d_lo), std::move(d_hi), std::move(req));
}

DecodedRequest DecodeRequest(const std::string& body) {
  for (char c : body) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    if (c == '{') return DecodeRequestJson(body);
    break;
  }
  return DecodeRequestFrame(body);
}

}  // namespace sea::serve
