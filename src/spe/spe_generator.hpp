// Synthetic spatial price equilibrium instances (paper Section 4.1.2,
// Table 5: SP50x50 ... SP750x750 with separable linear supply price, demand
// price, and transportation cost functions).
//
// Coefficient ranges follow the standard SPE test protocol of the
// equilibration literature (Dafermos & Nagurney 1989; Eydeland & Nagurney
// 1989): supply prices cheap relative to demand intercepts so a substantial
// fraction of arcs trade at equilibrium.
#pragma once

#include "spe/spatial_price.hpp"
#include "support/rng.hpp"

namespace sea::spe {

struct SpeGeneratorOptions {
  double r_lo = 10.0, r_hi = 25.0;   // supply price intercepts
  double t_lo = 0.3, t_hi = 0.7;     // supply price slopes
  double u_lo = 150.0, u_hi = 300.0; // demand price intercepts
  double v_lo = 0.45, v_hi = 0.75;   // demand price slopes
  double g_lo = 1.0, g_hi = 15.0;    // transaction cost intercepts
  double h_lo = 0.01, h_hi = 0.05;   // transaction cost slopes
};

SpatialPriceProblem Generate(std::size_t m, std::size_t n, Rng& rng,
                             const SpeGeneratorOptions& opts = {});

}  // namespace sea::spe
