// Classical spatial price equilibrium (SPE) problems and their isomorphism
// with elastic constrained matrix problems (paper Sections 2 and 4.1.2,
// Table 5; lineage: Enke 1951, Samuelson 1952, Takayama & Judge 1971).
//
// Markets: m supply markets with linear supply price pi_i(s) = r_i + t_i s,
// n demand markets with linear demand price rho_j(d) = u_j - v_j d, and
// linear transaction costs c_ij(x) = g_ij + h_ij x. A flow pattern (x, s, d)
// is a spatial price equilibrium when supplies/demands balance the flows and
//
//    pi_i(s_i) + c_ij(x_ij)  >= rho_j(d_j),  with equality where x_ij > 0.
//
// Completing the square in the equivalent convex program shows this is the
// elastic diagonal constrained matrix problem with
//
//    gamma_ij = h_ij/2,  x0_ij = -g_ij/h_ij,
//    alpha_i  = t_i/2,   s0_i   = -r_i/t_i,
//    beta_j   = v_j/2,   d0_j   =  u_j/v_j,
//
// under which the row multipliers are lambda_i = -pi_i(s_i) and the column
// multipliers are mu_j = rho_j(d_j) — Stone's 1951 observation that matrix
// balancing and spatial price equilibria are the same computation.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "problems/diagonal_problem.hpp"
#include "problems/solution.hpp"

namespace sea::spe {

struct SpatialPriceProblem {
  // Supply price intercepts/slopes (size m; slopes > 0).
  Vector r, t;
  // Demand price intercepts/slopes (size n; slopes > 0).
  Vector u, v;
  // Transaction cost intercepts/slopes (m x n; slopes > 0).
  DenseMatrix g, h;

  std::size_t m() const { return r.size(); }
  std::size_t n() const { return u.size(); }

  void Validate() const;

  double SupplyPrice(std::size_t i, double s) const { return r[i] + t[i] * s; }
  double DemandPrice(std::size_t j, double d) const { return u[j] - v[j] * d; }
  double TransactionCost(std::size_t i, std::size_t j, double x) const {
    return g(i, j) + h(i, j) * x;
  }

  // The isomorphic elastic constrained matrix problem.
  DiagonalProblem ToDiagonalProblem() const;
};

struct EquilibriumReport {
  // max over trading pairs (x_ij > 0) of |pi_i + c_ij - rho_j|.
  double max_equality_violation = 0.0;
  // max over all pairs of (rho_j - pi_i - c_ij)_+ (profitable untraded arc).
  double max_inequality_violation = 0.0;
  double Max() const;
};

// Verifies the spatial-price equilibrium conditions at a candidate solution
// (s and d are recomputed from x's row/column sums).
EquilibriumReport CheckEquilibrium(const SpatialPriceProblem& p,
                                   const DenseMatrix& x);

}  // namespace sea::spe
