#include "spe/spatial_price.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sea::spe {

void SpatialPriceProblem::Validate() const {
  SEA_CHECK_MSG(!r.empty() && !u.empty(), "empty SPE problem");
  SEA_CHECK(t.size() == r.size());
  SEA_CHECK(v.size() == u.size());
  SEA_CHECK(g.rows() == m() && g.cols() == n());
  SEA_CHECK(h.SameShape(g));
  for (double x : t) SEA_CHECK_MSG(x > 0.0, "supply slopes must be positive");
  for (double x : v) SEA_CHECK_MSG(x > 0.0, "demand slopes must be positive");
  for (double x : h.Flat())
    SEA_CHECK_MSG(x > 0.0, "transaction cost slopes must be positive");
}

DiagonalProblem SpatialPriceProblem::ToDiagonalProblem() const {
  Validate();
  const std::size_t mm = m(), nn = n();
  DenseMatrix x0(mm, nn), gamma(mm, nn);
  for (std::size_t i = 0; i < mm; ++i)
    for (std::size_t j = 0; j < nn; ++j) {
      gamma(i, j) = h(i, j) / 2.0;
      x0(i, j) = -g(i, j) / h(i, j);
    }
  Vector s0(mm), alpha(mm), d0(nn), beta(nn);
  for (std::size_t i = 0; i < mm; ++i) {
    alpha[i] = t[i] / 2.0;
    s0[i] = -r[i] / t[i];
  }
  for (std::size_t j = 0; j < nn; ++j) {
    beta[j] = v[j] / 2.0;
    d0[j] = u[j] / v[j];
  }
  return DiagonalProblem::MakeElastic(std::move(x0), std::move(gamma),
                                      std::move(s0), std::move(alpha),
                                      std::move(d0), std::move(beta));
}

double EquilibriumReport::Max() const {
  return std::max(max_equality_violation, max_inequality_violation);
}

EquilibriumReport CheckEquilibrium(const SpatialPriceProblem& p,
                                   const DenseMatrix& x) {
  p.Validate();
  SEA_CHECK(x.rows() == p.m() && x.cols() == p.n());
  const Vector s = x.RowSums();
  const Vector d = x.ColSums();

  EquilibriumReport rep;
  for (std::size_t i = 0; i < p.m(); ++i) {
    const double pi = p.SupplyPrice(i, s[i]);
    for (std::size_t j = 0; j < p.n(); ++j) {
      const double rho = p.DemandPrice(j, d[j]);
      const double total = pi + p.TransactionCost(i, j, x(i, j));
      if (x(i, j) > 1e-10) {
        rep.max_equality_violation =
            std::max(rep.max_equality_violation, std::abs(total - rho));
      }
      rep.max_inequality_violation =
          std::max(rep.max_inequality_violation, rho - total);
    }
  }
  rep.max_inequality_violation = std::max(0.0, rep.max_inequality_violation);
  return rep;
}

}  // namespace sea::spe
