#include "spe/spe_generator.hpp"

#include "support/check.hpp"

namespace sea::spe {

SpatialPriceProblem Generate(std::size_t m, std::size_t n, Rng& rng,
                             const SpeGeneratorOptions& o) {
  SEA_CHECK(m > 0 && n > 0);
  SpatialPriceProblem p;
  p.r = rng.UniformVector(m, o.r_lo, o.r_hi);
  p.t = rng.UniformVector(m, o.t_lo, o.t_hi);
  p.u = rng.UniformVector(n, o.u_lo, o.u_hi);
  p.v = rng.UniformVector(n, o.v_lo, o.v_hi);
  p.g = DenseMatrix(m, n);
  p.h = DenseMatrix(m, n);
  for (double& x : p.g.Flat()) x = rng.Uniform(o.g_lo, o.g_hi);
  for (double& x : p.h.Flat()) x = rng.Uniform(o.h_lo, o.h_hi);
  p.Validate();
  return p;
}

}  // namespace sea::spe
