#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/profiler.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace sea {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  num_threads_ = n_threads;
  worker_busy_.resize(num_threads_);
  region_chunk_seconds_.resize(num_threads_);
  // Worker 0 is the calling thread; spawn num_threads_ - 1 real workers.
  workers_.reserve(num_threads_ - 1);
  for (std::size_t w = 1; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { WorkerLoop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::RunBody(const Body3& body, std::size_t begin, std::size_t end,
                         std::size_t worker) {
  // A chunk that throws must not tear down the region: capture the first
  // exception for the submitting thread and let every other chunk finish,
  // so the pool's join protocol (and the pool itself) stays intact.
  try {
    SEA_FAILPOINT_SITE("sea.pool.task")
    fail::MaybeThrow("sea.pool.task");
    body(begin, end, worker);
  } catch (...) {
    std::lock_guard lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::RethrowPendingError() {
  std::exception_ptr err;
  {
    std::lock_guard lk(mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::RunChunkRange(const Body3& body, std::size_t begin,
                               std::size_t end, std::size_t worker) {
  if (begin >= end) return;
  obs::ProfScope prof("pool.chunk");
  if (!stats_enabled_) {
    RunBody(body, begin, end, worker);
    return;
  }
  Stopwatch sw;
  RunBody(body, begin, end, worker);
  const double seconds = sw.Seconds();
  // Exclusive slots; the join barrier publishes them to the caller. Under
  // kDynamic a worker accumulates across its claimed chunks.
  worker_busy_[worker].v += seconds;
  region_chunk_seconds_[worker].v += seconds;
}

void ThreadPool::RunShare(const Task& task, std::size_t worker) {
  switch (task.kind) {
    case ScheduleKind::kStatic: {
      // Static partition: part w gets [w*n/parts, (w+1)*n/parts).
      const std::size_t begin = worker * task.n / num_threads_;
      const std::size_t end = (worker + 1) * task.n / num_threads_;
      RunChunkRange(*task.body, begin, end, worker);
      return;
    }
    case ScheduleKind::kCostGuided:
      RunChunkRange(*task.body, task.bounds[worker], task.bounds[worker + 1],
                    worker);
      return;
    case ScheduleKind::kDynamic: {
      for (;;) {
        const std::size_t begin =
            next_index_.fetch_add(task.grain, std::memory_order_relaxed);
        if (begin >= task.n) return;
        RunChunkRange(*task.body, begin, std::min(begin + task.grain, task.n),
                      worker);
      }
    }
  }
}

void ThreadPool::FinishRegionStats(const Task& task, double wall_seconds) {
  ++stat_regions_;
  stat_region_wall_ += wall_seconds;
  // Chunks that ran this region, per schedule; for the static partitions
  // they are not necessarily assigned to the lowest worker indices, so scan
  // every slot (empty chunks contribute zero).
  std::size_t chunks = 0;
  switch (task.kind) {
    case ScheduleKind::kStatic:
      chunks = std::min(task.n, num_threads_);
      break;
    case ScheduleKind::kCostGuided:
      for (std::size_t w = 0; w < num_threads_; ++w)
        if (task.bounds[w + 1] > task.bounds[w]) ++chunks;
      break;
    case ScheduleKind::kDynamic: {
      const std::uint64_t claims =
          (task.n + task.grain - 1) / task.grain;  // grain >= 1
      stat_claims_ += claims;
      chunks = static_cast<std::size_t>(claims);
      break;
    }
  }
  stat_chunks_ += chunks;
  double max_chunk = 0.0, sum_chunk = 0.0;
  for (std::size_t w = 0; w < num_threads_; ++w) {
    max_chunk = std::max(max_chunk, region_chunk_seconds_[w].v);
    sum_chunk += region_chunk_seconds_[w].v;
  }
  // Imbalance compares per-worker shares, so its denominator is the number
  // of workers that held work — for dynamic regions every claim lands on
  // some worker and the per-worker accumulation already folds them in.
  const std::size_t shares =
      std::min(static_cast<std::size_t>(chunks), num_threads_);
  const double mean_chunk =
      shares > 0 ? sum_chunk / static_cast<double>(shares) : 0.0;
  const double imbalance = mean_chunk > 0.0 ? max_chunk / mean_chunk : 1.0;
  stat_imbalance_sum_ += imbalance;
  stat_imbalance_max_ = std::max(stat_imbalance_max_, imbalance);
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || epoch_ > seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    if (task.publish_ns != 0) {
      // The publish instant was stamped because a profiler was attached;
      // record the dispatch gap on this worker's own track.
      if (obs::Profiler* p = obs::Profiler::Current())
        p->RecordSpan("pool.queue_wait", task.publish_ns,
                      obs::prof_internal::NowNs());
    }
    RunShare(task, worker_index);
    {
      std::lock_guard lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelForWorker(std::size_t n, Body3 body,
                                   const ScheduleSpec& sched) {
  if (n == 0) return;
  Stopwatch region_sw;
  Task task;
  task.body = &body;
  task.n = n;
  task.kind = sched.kind;
  if (sched.kind == ScheduleKind::kCostGuided) {
    SEA_CHECK_MSG(sched.bounds.size() == num_threads_ + 1,
                  "cost-guided schedule needs num_threads + 1 bounds");
    SEA_DCHECK(sched.bounds.front() == 0 && sched.bounds.back() == n);
    task.bounds = sched.bounds.data();
  } else if (sched.kind == ScheduleKind::kDynamic) {
    task.grain = sched.grain > 0
                     ? sched.grain
                     : std::max<std::size_t>(1, n / (8 * num_threads_));
  }
  if (num_threads_ == 1) {
    // Inline execution: one chunk covering the range, sharing the
    // capture-then-rethrow path so the exception contract is identical with
    // and without workers. Schedules collapse to a single chunk.
    if (stats_enabled_) region_chunk_seconds_[0].v = 0.0;
    obs::ProfScope prof("pool.chunk");
    if (stats_enabled_) {
      Stopwatch sw;
      RunBody(body, 0, n, 0);
      const double seconds = sw.Seconds();
      worker_busy_[0].v += seconds;
      region_chunk_seconds_[0].v += seconds;
      Task inline_task = task;
      inline_task.kind = ScheduleKind::kStatic;
      FinishRegionStats(inline_task, region_sw.Seconds());
    } else {
      RunBody(body, 0, n, 0);
    }
    RethrowPendingError();
    return;
  }
  if (stats_enabled_)
    for (auto& slot : region_chunk_seconds_) slot.v = 0.0;
  next_index_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard lk(mu_);
    task_ = task;
    task_.publish_ns = obs::Profiler::Current() != nullptr
                           ? obs::prof_internal::NowNs()
                           : 0;
    ++epoch_;
    pending_ = num_threads_ - 1;
  }
  cv_start_.notify_all();
  // The calling thread executes its share as worker 0.
  RunShare(task, 0);
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }
  if (stats_enabled_) FinishRegionStats(task, region_sw.Seconds());
  RethrowPendingError();
}

void ThreadPool::ParallelFor(std::size_t n, Body2 body,
                             const ScheduleSpec& sched) {
  ParallelForWorker(
      n, [&body](std::size_t b, std::size_t e, std::size_t) { body(b, e); },
      sched);
}

PoolStats ThreadPool::Stats() const {
  PoolStats stats;
  stats.threads = num_threads_;
  stats.regions = stat_regions_;
  stats.region_wall_seconds = stat_region_wall_;
  stats.worker_busy_seconds.reserve(num_threads_);
  for (const auto& slot : worker_busy_)
    stats.worker_busy_seconds.push_back(slot.v);
  stats.max_imbalance = stat_imbalance_max_;
  stats.mean_imbalance =
      stat_regions_ > 0
          ? stat_imbalance_sum_ / static_cast<double>(stat_regions_)
          : 0.0;
  stats.chunks = stat_chunks_;
  stats.claims = stat_claims_;
  return stats;
}

void ThreadPool::ResetStats() {
  stat_regions_ = 0;
  stat_region_wall_ = 0.0;
  stat_imbalance_sum_ = 0.0;
  stat_imbalance_max_ = 0.0;
  stat_chunks_ = 0;
  stat_claims_ = 0;
  for (auto& slot : worker_busy_) slot.v = 0.0;
  for (auto& slot : region_chunk_seconds_) slot.v = 0.0;
}

}  // namespace sea
