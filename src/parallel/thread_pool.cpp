#include "parallel/thread_pool.hpp"

#include "support/check.hpp"

namespace sea {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  num_threads_ = n_threads;
  // Worker 0 is the calling thread; spawn num_threads_ - 1 real workers.
  workers_.reserve(num_threads_ - 1);
  for (std::size_t w = 1; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { WorkerLoop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::RunChunk(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t n, std::size_t part, std::size_t parts, std::size_t worker) {
  // Static partition: part p gets [p*n/parts, (p+1)*n/parts).
  const std::size_t begin = part * n / parts;
  const std::size_t end = (part + 1) * n / parts;
  if (begin < end) body(begin, end, worker);
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || epoch_ > seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    RunChunk(*task.body, task.n, worker_index, num_threads_, worker_index);
    {
      std::lock_guard lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelForWorker(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (num_threads_ == 1) {
    body(0, n, 0);
    return;
  }
  {
    std::lock_guard lk(mu_);
    task_.body = &body;
    task_.n = n;
    ++epoch_;
    pending_ = num_threads_ - 1;
  }
  cv_start_.notify_all();
  // The calling thread executes part 0 as worker 0.
  RunChunk(body, n, 0, num_threads_, 0);
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ParallelForWorker(
      n, [&body](std::size_t b, std::size_t e, std::size_t) { body(b, e); });
}

}  // namespace sea
