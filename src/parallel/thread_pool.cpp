#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/profiler.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace sea {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  num_threads_ = n_threads;
  worker_busy_.resize(num_threads_);
  region_chunk_seconds_.resize(num_threads_);
  // Worker 0 is the calling thread; spawn num_threads_ - 1 real workers.
  workers_.reserve(num_threads_ - 1);
  for (std::size_t w = 1; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { WorkerLoop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::RunBody(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t begin, std::size_t end, std::size_t worker) {
  // A chunk that throws must not tear down the region: capture the first
  // exception for the submitting thread and let every other chunk finish,
  // so the pool's join protocol (and the pool itself) stays intact.
  try {
    SEA_FAILPOINT_SITE("sea.pool.task")
    fail::MaybeThrow("sea.pool.task");
    body(begin, end, worker);
  } catch (...) {
    std::lock_guard lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::RethrowPendingError() {
  std::exception_ptr err;
  {
    std::lock_guard lk(mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::RunChunk(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t n, std::size_t part, std::size_t parts, std::size_t worker) {
  // Static partition: part p gets [p*n/parts, (p+1)*n/parts).
  const std::size_t begin = part * n / parts;
  const std::size_t end = (part + 1) * n / parts;
  if (begin >= end) return;
  obs::ProfScope prof("pool.chunk");
  if (!stats_enabled_) {
    RunBody(body, begin, end, worker);
    return;
  }
  Stopwatch sw;
  RunBody(body, begin, end, worker);
  const double seconds = sw.Seconds();
  // Exclusive slots; the join barrier publishes them to the caller.
  worker_busy_[worker].v += seconds;
  region_chunk_seconds_[worker].v = seconds;
}

void ThreadPool::FinishRegionStats(std::size_t n, double wall_seconds) {
  ++stat_regions_;
  stat_region_wall_ += wall_seconds;
  // With the static partition, exactly min(n, parts) chunks are nonempty,
  // but they are not necessarily assigned to the lowest worker indices —
  // scan every slot (empty chunks contribute zero).
  const std::size_t chunks = std::min(n, num_threads_);
  double max_chunk = 0.0, sum_chunk = 0.0;
  for (std::size_t w = 0; w < num_threads_; ++w) {
    max_chunk = std::max(max_chunk, region_chunk_seconds_[w].v);
    sum_chunk += region_chunk_seconds_[w].v;
  }
  const double mean_chunk = sum_chunk / static_cast<double>(chunks);
  const double imbalance = mean_chunk > 0.0 ? max_chunk / mean_chunk : 1.0;
  stat_imbalance_sum_ += imbalance;
  stat_imbalance_max_ = std::max(stat_imbalance_max_, imbalance);
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || epoch_ > seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    if (task.publish_ns != 0) {
      // The publish instant was stamped because a profiler was attached;
      // record the dispatch gap on this worker's own track.
      if (obs::Profiler* p = obs::Profiler::Current())
        p->RecordSpan("pool.queue_wait", task.publish_ns,
                      obs::prof_internal::NowNs());
    }
    RunChunk(*task.body, task.n, worker_index, num_threads_, worker_index);
    {
      std::lock_guard lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelForWorker(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  Stopwatch region_sw;
  if (num_threads_ == 1) {
    // Inline execution shares RunChunk's capture-then-rethrow path so the
    // exception contract is identical with and without workers.
    RunChunk(body, n, 0, 1, 0);
    if (stats_enabled_) FinishRegionStats(1, region_sw.Seconds());
    RethrowPendingError();
    return;
  }
  if (stats_enabled_)
    for (auto& slot : region_chunk_seconds_) slot.v = 0.0;
  {
    std::lock_guard lk(mu_);
    task_.body = &body;
    task_.n = n;
    task_.publish_ns = obs::Profiler::Current() != nullptr
                           ? obs::prof_internal::NowNs()
                           : 0;
    ++epoch_;
    pending_ = num_threads_ - 1;
  }
  cv_start_.notify_all();
  // The calling thread executes part 0 as worker 0.
  RunChunk(body, n, 0, num_threads_, 0);
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }
  if (stats_enabled_) FinishRegionStats(n, region_sw.Seconds());
  RethrowPendingError();
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ParallelForWorker(
      n, [&body](std::size_t b, std::size_t e, std::size_t) { body(b, e); });
}

PoolStats ThreadPool::Stats() const {
  PoolStats stats;
  stats.threads = num_threads_;
  stats.regions = stat_regions_;
  stats.region_wall_seconds = stat_region_wall_;
  stats.worker_busy_seconds.reserve(num_threads_);
  for (const auto& slot : worker_busy_)
    stats.worker_busy_seconds.push_back(slot.v);
  stats.max_imbalance = stat_imbalance_max_;
  stats.mean_imbalance =
      stat_regions_ > 0
          ? stat_imbalance_sum_ / static_cast<double>(stat_regions_)
          : 0.0;
  return stats;
}

void ThreadPool::ResetStats() {
  stat_regions_ = 0;
  stat_region_wall_ = 0.0;
  stat_imbalance_sum_ = 0.0;
  stat_imbalance_max_ = 0.0;
  for (auto& slot : worker_busy_) slot.v = 0.0;
  for (auto& slot : region_chunk_seconds_) slot.v = 0.0;
}

}  // namespace sea
