#include "parallel/task_queue.hpp"

#include <utility>

namespace sea {

TaskQueue::TaskQueue(std::size_t n_threads) {
  if (n_threads == 0) n_threads = 1;
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

TaskQueue::~TaskQueue() { Stop(); }

bool TaskQueue::Submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void TaskQueue::Stop() {
  {
    std::lock_guard lk(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

std::uint64_t TaskQueue::executed() const {
  std::lock_guard lk(mu_);
  return executed_;
}

void TaskQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      // Drain-then-exit: queued work still runs after Stop() flips the
      // flag, so an accepted request is never dropped half-served.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lk(mu_);
      ++executed_;
    }
  }
}

}  // namespace sea
