// Deterministic N-processor schedule simulator.
//
// The paper's parallel results (Tables 6, 9; Figures 5, 7) were measured on a
// 6-way IBM 3090-600E in standalone mode. To reproduce their *shape* on hosts
// with fewer cores, the solvers record an execution trace: a sequence of
// phases, each either
//   * parallel — a set of independent tasks (one per row/column equilibrium
//     subproblem) with exact per-task operation counts, or
//   * serial   — work that runs on one processor (convergence verification,
//     multiplier exchange, projection-step linearization).
// SimulateSchedule() then computes the makespan on N processors using LPT
// (longest-processing-time-first) list scheduling plus a per-task dispatch
// overhead, which is exactly the regime of the paper's Parallel FORTRAN task
// dispatch. Speedup = T(1) / T(N). The paper's own analysis (Section 4.2)
// attributes the efficiency loss to the serial convergence-verification
// phase — this model makes that explanation quantitative.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sea {

struct TracePhase {
  enum class Kind { kParallel, kSerial };
  Kind kind = Kind::kSerial;
  std::string label;
  // kParallel: one entry per task (operation count / cost).
  // kSerial: single total cost in costs[0].
  std::vector<double> costs;
  // Parallel phases whose tasks stream large dense data (the projection
  // step's G matvec): their scaling is limited by shared memory bandwidth
  // rather than by processor count (ScheduleOptions::bandwidth_cap).
  bool bandwidth_bound = false;
};

// Execution trace of one solver run.
class ExecutionTrace {
 public:
  void AddParallelPhase(std::string label, std::vector<double> task_costs,
                        bool bandwidth_bound = false);
  void AddSerialPhase(std::string label, double cost);
  // Number of serial phases (each one is a supervisor synchronization point;
  // see ScheduleOptions::serial_phase_overhead).
  std::size_t SerialPhaseCount() const;
  // Appends all phases of another trace (used to splice inner-solver traces
  // into an outer algorithm's trace).
  void Append(const ExecutionTrace& other);

  const std::vector<TracePhase>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  void Clear() { phases_.clear(); }

  // Total work in the trace (all phases, all tasks).
  double TotalWork() const;
  // Work in serial phases only (the Amdahl bottleneck).
  double SerialWork() const;

 private:
  std::vector<TracePhase> phases_;
};

struct ScheduleOptions {
  // Fixed dispatch cost charged per task, in the same units as task costs
  // (operation counts). Models Parallel FORTRAN task-origination overhead.
  double per_task_overhead = 0.0;
  // Fixed cost charged per parallel phase (fork/join barrier).
  double per_phase_overhead = 0.0;
  // Serial supervisor cost charged per *serial* phase: every convergence
  // verification is also a synchronization point where one processor runs
  // while the others idle. Calibrated once against the paper's measured
  // 2-CPU column for the general experiments (see bench/table9); zero (the
  // ideal machine) by default.
  double serial_phase_overhead = 0.0;
  // Effective parallelism cap for bandwidth-bound phases (dense matvec
  // streams ~1 byte per flop; a shared memory bus saturates before the
  // processor count does). +inf by default (compute-bound machine).
  double bandwidth_cap = 1e30;
};

struct ScheduleResult {
  double makespan = 0.0;      // simulated time on n_processors
  double serial_time = 0.0;   // part contributed by serial phases
  double parallel_time = 0.0; // part contributed by parallel phases
};

// Simulates the trace on n_processors. n_processors >= 1.
ScheduleResult SimulateSchedule(const ExecutionTrace& trace,
                                std::size_t n_processors,
                                const ScheduleOptions& opts = {});

// Convenience: speedup and efficiency rows for a set of processor counts,
// exactly the columns of the paper's Tables 6 and 9.
struct SpeedupRow {
  std::size_t n_processors = 0;
  double speedup = 0.0;     // T(1) / T(N)
  double efficiency = 0.0;  // speedup / N
};

std::vector<SpeedupRow> ComputeSpeedups(const ExecutionTrace& trace,
                                        const std::vector<std::size_t>& procs,
                                        const ScheduleOptions& opts = {});

}  // namespace sea
