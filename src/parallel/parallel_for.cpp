#include "parallel/parallel_for.hpp"

namespace sea {

void ForRange(ThreadPool* pool, std::size_t n,
              const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 1) {
    body(0, n);
    return;
  }
  pool->ParallelFor(n, body);
}

void ForRangeWorker(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 1) {
    body(0, n, 0);
    return;
  }
  pool->ParallelForWorker(n, body);
}

std::size_t WorkerCount(const ThreadPool* pool) {
  return (pool == nullptr) ? 1 : pool->num_threads();
}

}  // namespace sea
