#include "parallel/parallel_for.hpp"

namespace sea {

void ForRange(ThreadPool* pool, std::size_t n, ThreadPool::Body2 body) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 1) {
    body(0, n);
    return;
  }
  pool->ParallelFor(n, body);
}

void ForRangeWorker(ThreadPool* pool, std::size_t n, ThreadPool::Body3 body,
                    const ScheduleSpec& sched) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 1) {
    body(0, n, 0);
    return;
  }
  pool->ParallelForWorker(n, body, sched);
}

std::size_t WorkerCount(const ThreadPool* pool) {
  return (pool == nullptr) ? 1 : pool->num_threads();
}

}  // namespace sea
