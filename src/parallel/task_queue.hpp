// Background task execution for the serving side of the system.
//
// ThreadPool (parallel/thread_pool.hpp) is a data-parallel *region* pool:
// one caller at a time publishes a blocking ParallelFor and the workers are
// otherwise parked. That contract is exactly right for the solver's sweeps
// and exactly wrong for request multiplexing — an HTTP exchange must not
// wait for (or race) a half-finished sweep region, and the pool's
// single-region protocol cannot accept work from a second thread while a
// solve is inside it. TaskQueue is the other half of the parallel layer: a
// small set of dedicated workers draining a FIFO of independent tasks,
// submitted from any thread, with a join-on-destruction shutdown. The
// embedded telemetry server (net/http_server.hpp) dispatches request
// handling onto one, and the future sea_serve daemon multiplexes whole
// solve requests the same way (ROADMAP "Solver-as-a-service").
//
// Shutdown: Stop() (or the destructor) lets already-queued tasks drain,
// then joins the workers. Tasks submitted after Stop() are rejected
// (Submit returns false) instead of being silently dropped mid-queue.
// Tasks must not throw; a throwing task is a programming error and
// terminates (same stance as detached threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sea {

class TaskQueue {
 public:
  // n_threads == 0 selects a single worker.
  explicit TaskQueue(std::size_t n_threads = 1);
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Enqueue a task for some worker. Returns false (task not queued) after
  // Stop() has begun. Safe from any thread, including a worker's own task.
  bool Submit(std::function<void()> task);

  // Stop accepting work, drain the queue, join the workers. Idempotent;
  // safe to call from any thread except a worker's own task.
  void Stop();

  std::size_t num_threads() const { return workers_.size(); }
  // Tasks fully executed so far (monotone; readable from any thread).
  std::uint64_t executed() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace sea
