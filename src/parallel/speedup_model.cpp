#include "parallel/speedup_model.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace sea {

void ExecutionTrace::AddParallelPhase(std::string label,
                                      std::vector<double> task_costs,
                                      bool bandwidth_bound) {
  TracePhase p;
  p.kind = TracePhase::Kind::kParallel;
  p.label = std::move(label);
  p.costs = std::move(task_costs);
  p.bandwidth_bound = bandwidth_bound;
  phases_.push_back(std::move(p));
}

std::size_t ExecutionTrace::SerialPhaseCount() const {
  std::size_t count = 0;
  for (const auto& p : phases_)
    if (p.kind == TracePhase::Kind::kSerial) ++count;
  return count;
}

void ExecutionTrace::AddSerialPhase(std::string label, double cost) {
  TracePhase p;
  p.kind = TracePhase::Kind::kSerial;
  p.label = std::move(label);
  p.costs = {cost};
  phases_.push_back(std::move(p));
}

void ExecutionTrace::Append(const ExecutionTrace& other) {
  phases_.insert(phases_.end(), other.phases_.begin(), other.phases_.end());
}

double ExecutionTrace::TotalWork() const {
  double w = 0.0;
  for (const auto& p : phases_)
    for (double c : p.costs) w += c;
  return w;
}

double ExecutionTrace::SerialWork() const {
  double w = 0.0;
  for (const auto& p : phases_)
    if (p.kind == TracePhase::Kind::kSerial)
      for (double c : p.costs) w += c;
  return w;
}

namespace {

// Makespan of independent tasks on p identical machines under LPT.
double LptMakespan(std::vector<double> costs, std::size_t p) {
  if (costs.empty()) return 0.0;
  if (p == 1) {
    double s = 0.0;
    for (double c : costs) s += c;
    return s;
  }
  std::sort(costs.begin(), costs.end(), std::greater<>());
  // Min-heap of machine loads.
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (std::size_t i = 0; i < p; ++i) loads.push(0.0);
  for (double c : costs) {
    double least = loads.top();
    loads.pop();
    loads.push(least + c);
  }
  double makespan = 0.0;
  while (!loads.empty()) {
    makespan = loads.top();
    loads.pop();
  }
  return makespan;
}

}  // namespace

ScheduleResult SimulateSchedule(const ExecutionTrace& trace,
                                std::size_t n_processors,
                                const ScheduleOptions& opts) {
  SEA_CHECK(n_processors >= 1);
  ScheduleResult r;
  for (const auto& phase : trace.phases()) {
    if (phase.kind == TracePhase::Kind::kSerial) {
      for (double c : phase.costs) r.serial_time += c;
      r.serial_time += opts.serial_phase_overhead;
    } else if (phase.bandwidth_bound) {
      // Bandwidth-bound: effective parallelism saturates at the cap (the
      // longest single task still bounds the makespan from below).
      double total = 0.0, longest = 0.0;
      for (double c : phase.costs) {
        total += c + opts.per_task_overhead;
        longest = std::max(longest, c + opts.per_task_overhead);
      }
      const double eff =
          std::min(static_cast<double>(n_processors), opts.bandwidth_cap);
      r.parallel_time +=
          std::max(longest, total / eff) + opts.per_phase_overhead;
    } else {
      std::vector<double> costs = phase.costs;
      if (opts.per_task_overhead > 0.0)
        for (double& c : costs) c += opts.per_task_overhead;
      r.parallel_time += LptMakespan(std::move(costs), n_processors) +
                         opts.per_phase_overhead;
    }
  }
  r.makespan = r.serial_time + r.parallel_time;
  return r;
}

std::vector<SpeedupRow> ComputeSpeedups(const ExecutionTrace& trace,
                                        const std::vector<std::size_t>& procs,
                                        const ScheduleOptions& opts) {
  const double t1 = SimulateSchedule(trace, 1, opts).makespan;
  std::vector<SpeedupRow> rows;
  rows.reserve(procs.size());
  for (std::size_t p : procs) {
    const double tn = SimulateSchedule(trace, p, opts).makespan;
    SpeedupRow row;
    row.n_processors = p;
    row.speedup = (tn > 0.0) ? t1 / tn : 1.0;
    row.efficiency = row.speedup / static_cast<double>(p);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace sea
