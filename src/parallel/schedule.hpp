// Region schedules for ThreadPool::ParallelFor and the cost-feedback loop
// that drives them.
//
// The paper's parallel phase dispatches the m (resp. n) independent market
// subproblems of one sweep to distinct processors and assumes near-perfect
// load balance (Section 4.2). A plain static equal-count partition delivers
// that only when per-market costs are uniform; on skewed datasets (SPE,
// migration tables) the slowest contiguous chunk bounds the sweep. The
// remedies here:
//
//   kStatic     — the classic equal-count contiguous partition (default).
//   kCostGuided — contiguous chunks whose *total previous-sweep cost* is
//                 balanced: EquilibrateSide already measures exact per-market
//                 operation counts (SweepStats::task_costs), and consecutive
//                 sweeps have strongly correlated cost profiles, so the last
//                 sweep's costs are an excellent predictor for the next.
//   kDynamic    — atomic chunk claiming with a fixed grain; no predictor
//                 needed, used as the fallback for the very first sweep.
//
// All three schedules assign each index to exactly one body invocation, so
// for independent per-index work (each market writes only its own outputs)
// results are bit-identical to the serial path regardless of schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sea {

enum class ScheduleKind {
  kStatic,      // contiguous equal-count chunks, one per worker
  kCostGuided,  // contiguous chunks balanced by per-index costs
  kDynamic,     // atomic chunk claiming with a fixed grain
};

const char* ToString(ScheduleKind k);

// Schedule of one ParallelFor region. Default-constructed = kStatic.
struct ScheduleSpec {
  ScheduleKind kind = ScheduleKind::kStatic;
  // kCostGuided only: workers + 1 ascending chunk boundaries over [0, n]
  // (chunk p is [bounds[p], bounds[p+1])). Must outlive the region.
  std::span<const std::size_t> bounds;
  // kDynamic only: indices per claim; 0 = auto (n / (8 * workers), >= 1).
  std::size_t grain = 0;
};

// Splits [0, costs.size()) into `parts` contiguous chunks whose total costs
// are balanced by a prefix-sum walk (each boundary is placed where the
// running cost crosses the next equal-cost target, with a midpoint rule so
// a task straddling a target goes to the cheaper side). Returns parts + 1
// ascending boundaries. Deterministic in its inputs; degenerate cost
// vectors (all zero / non-finite) fall back to the equal-count split.
std::vector<std::size_t> BalancedPartition(std::span<const double> costs,
                                           std::size_t parts);

// Cost-feedback loop for a repeated sweep over a fixed set of tasks: feed
// each sweep's measured per-task costs back in (Update) and get a balanced
// schedule for the next sweep (Next). Until the first Update — or whenever
// the task count changes — Next falls back to dynamic claiming, which needs
// no predictor. A scheduler constructed with kDynamic always claims
// dynamically. Not thread-safe; owned by the (serial) sweep caller.
class SweepScheduler {
 public:
  explicit SweepScheduler(ScheduleKind kind = ScheduleKind::kCostGuided,
                          std::size_t grain = 0)
      : kind_(kind), grain_(grain) {}

  // Schedule for the next sweep of n tasks on `workers` workers.
  ScheduleSpec Next(std::size_t n, std::size_t workers);

  // Records the just-finished sweep's per-task costs as the predictor for
  // the next Next() call.
  void Update(std::span<const double> costs);

  // Sweeps scheduled from cost feedback (vs. the dynamic fallback).
  std::uint64_t cost_guided_plans() const { return cost_guided_plans_; }
  std::uint64_t dynamic_plans() const { return dynamic_plans_; }

 private:
  ScheduleKind kind_;
  std::size_t grain_;
  std::vector<double> costs_;
  std::vector<std::size_t> bounds_;
  std::uint64_t cost_guided_plans_ = 0;
  std::uint64_t dynamic_plans_ = 0;
};

}  // namespace sea
