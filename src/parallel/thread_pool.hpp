// Shared-memory parallel runtime.
//
// The paper parallelizes SEA with IBM Parallel FORTRAN task constructs on the
// shared-memory IBM 3090-600E: the m row (resp. n column) equilibrium
// subproblems of one half-step are independent and are dispatched to distinct
// processors, with a serial convergence-verification phase between sweeps
// (Section 4.2). This ThreadPool is the modern equivalent: a fixed set of
// workers, blocking ParallelFor regions, and no work executed on pool threads
// outside ParallelFor regions.
//
// Schedules (parallel/schedule.hpp, docs/PARALLELISM.md): a region runs under
// the classic static equal-count partition (default; deterministic chunk
// boundaries), a cost-guided partition whose contiguous chunk boundaries come
// from measured per-index costs, or dynamic chunk claiming (atomic counter,
// configurable grain). Per-index work that writes only its own outputs — the
// equilibration sweeps — produces bit-identical results under every schedule.
//
// Utilization telemetry: EnableStats(true) makes every ParallelFor region
// record per-worker busy seconds, region wall time, static-chunk imbalance,
// and chunk/claim counts, exposed as a PoolStats snapshot — the measured
// counterpart to the schedule simulator's idealized makespans
// (parallel/speedup_model.hpp). Stats are off by default and the disabled
// path adds only a branch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/schedule.hpp"
#include "support/function_ref.hpp"

namespace sea {

// Point-in-time utilization snapshot of a ThreadPool (valid only between
// ParallelFor regions). Imbalance of one region is max worker chunk time /
// mean worker chunk time over the workers that ran — 1.0 is a perfectly even
// split; the gap to 1.0 is wall time the fastest workers spent idle at the
// join.
struct PoolStats {
  std::size_t threads = 0;
  std::uint64_t regions = 0;           // completed ParallelFor regions
  double region_wall_seconds = 0.0;    // summed region wall (incl. dispatch)
  std::vector<double> worker_busy_seconds;  // chunk-body time per worker
  double max_imbalance = 0.0;   // worst region
  double mean_imbalance = 0.0;  // mean over regions
  // Chunk bodies executed across regions: one per worker for the static
  // partitions, one per claim for dynamic regions.
  std::uint64_t chunks = 0;
  // Successful dynamic claims (subset of `chunks` from dynamic regions).
  std::uint64_t claims = 0;

  double BusySecondsTotal() const {
    double total = 0.0;
    for (double s : worker_busy_seconds) total += s;
    return total;
  }
};

class ThreadPool {
 public:
  using Body2 = FunctionRef<void(std::size_t, std::size_t)>;
  using Body3 = FunctionRef<void(std::size_t, std::size_t, std::size_t)>;

  // n_threads == 0 selects the hardware concurrency. n_threads == 1 creates
  // no worker threads; ParallelFor then runs inline on the caller.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  // Runs body(begin, end) over a partition of [0, n) across the pool
  // (including the calling thread). Blocks until every chunk completes.
  // Under the default static schedule, chunks are contiguous and their
  // boundaries depend only on (n, num_threads), never on timing; under
  // kCostGuided they are the caller-supplied bounds; under kDynamic the
  // chunk-to-worker assignment is timing-dependent but every index still
  // runs exactly once.
  //
  // Exception safety (docs/ROBUSTNESS.md): a throw from any chunk is
  // captured, every other chunk still runs to completion (no worker is
  // abandoned mid-region), and the FIRST captured exception is rethrown on
  // the calling thread after the join. The pool remains fully usable for
  // subsequent regions.
  void ParallelFor(std::size_t n, Body2 body,
                   const ScheduleSpec& sched = {});

  // Variant passing the worker index (0 .. num_threads-1) for per-thread
  // scratch buffers. Under kDynamic a worker's body may run several times
  // (once per claimed chunk), always with its own worker index.
  void ParallelForWorker(std::size_t n, Body3 body,
                         const ScheduleSpec& sched = {});

  // Toggle utilization accounting. Call only between regions; the flag is
  // read unsynchronized inside them.
  void EnableStats(bool enabled) { stats_enabled_ = enabled; }
  bool stats_enabled() const { return stats_enabled_; }
  // Snapshot / reset of the accumulated stats; call between regions.
  PoolStats Stats() const;
  void ResetStats();

 private:
  struct Task {
    const Body3* body = nullptr;
    std::size_t n = 0;
    ScheduleKind kind = ScheduleKind::kStatic;
    const std::size_t* bounds = nullptr;  // kCostGuided: num_threads+1 edges
    std::size_t grain = 0;                // kDynamic: resolved (>= 1)
    std::uint64_t epoch = 0;
    // Monotonic instant the region was published to the workers; stamped
    // only while a profiler is attached (0 otherwise). Each worker records
    // the publish -> chunk-start gap as a "pool.queue_wait" span, making
    // pool dispatch overhead a first-class profiled phase.
    std::uint64_t publish_ns = 0;
  };

  // One slot per worker, cache-line padded: each worker writes only its own
  // slot inside a region and the caller reads after the join barrier.
  struct alignas(64) WorkerSeconds {
    double v = 0.0;
  };

  void WorkerLoop(std::size_t worker_index);
  // Runs this worker's share of the region under the task's schedule.
  void RunShare(const Task& task, std::size_t worker);
  // Executes one chunk [begin, end) with profiling/stats accounting.
  void RunChunkRange(const Body3& body, std::size_t begin, std::size_t end,
                     std::size_t worker);
  // Invokes one chunk body, capturing the first exception for the caller.
  void RunBody(const Body3& body, std::size_t begin, std::size_t end,
               std::size_t worker);
  // Rethrows the region's first captured exception, if any (caller thread).
  void RethrowPendingError();
  void FinishRegionStats(const Task& task, double wall_seconds);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::uint64_t epoch_ = 0;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
  // First exception thrown by any chunk of the current region (guarded by
  // mu_); moved out and rethrown on the submitting thread after the join.
  std::exception_ptr first_error_;
  // Claim cursor for kDynamic regions; reset by the submitter while the
  // workers are parked, published with the region under mu_.
  std::atomic<std::size_t> next_index_{0};

  // Utilization accounting (written inside regions only when enabled).
  bool stats_enabled_ = false;
  std::uint64_t stat_regions_ = 0;
  double stat_region_wall_ = 0.0;
  double stat_imbalance_sum_ = 0.0;
  double stat_imbalance_max_ = 0.0;
  std::uint64_t stat_chunks_ = 0;
  std::uint64_t stat_claims_ = 0;
  std::vector<WorkerSeconds> worker_busy_;
  std::vector<WorkerSeconds> region_chunk_seconds_;
};

}  // namespace sea
