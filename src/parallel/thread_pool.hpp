// Shared-memory parallel runtime.
//
// The paper parallelizes SEA with IBM Parallel FORTRAN task constructs on the
// shared-memory IBM 3090-600E: the m row (resp. n column) equilibrium
// subproblems of one half-step are independent and are dispatched to distinct
// processors, with a serial convergence-verification phase between sweeps
// (Section 4.2). This ThreadPool is the modern equivalent: a fixed set of
// workers, blocking ParallelFor with static chunking (deterministic
// assignment, so parallel runs are bit-identical to serial runs), and no
// work executed on pool threads outside ParallelFor regions.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sea {

class ThreadPool {
 public:
  // n_threads == 0 selects the hardware concurrency. n_threads == 1 creates
  // no worker threads; ParallelFor then runs inline on the caller.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  // Runs body(begin, end) over a static partition of [0, n) across the pool
  // (including the calling thread). Blocks until every chunk completes.
  // Chunks are contiguous and their boundaries depend only on (n,
  // num_threads), never on timing — results are deterministic.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& body);

  // Variant passing the worker index (0 .. num_threads-1) for per-thread
  // scratch buffers.
  void ParallelForWorker(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
        nullptr;
    std::size_t n = 0;
    std::uint64_t epoch = 0;
  };

  void WorkerLoop(std::size_t worker_index);
  static void RunChunk(
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
      std::size_t n, std::size_t part, std::size_t parts, std::size_t worker);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::uint64_t epoch_ = 0;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace sea
