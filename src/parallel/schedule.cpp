#include "parallel/schedule.hpp"

#include <cmath>

#include "obs/profiler.hpp"

namespace sea {

const char* ToString(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::kStatic:
      return "static";
    case ScheduleKind::kCostGuided:
      return "cost-guided";
    case ScheduleKind::kDynamic:
      return "dynamic";
  }
  return "?";
}

std::vector<std::size_t> BalancedPartition(std::span<const double> costs,
                                           std::size_t parts) {
  const std::size_t n = costs.size();
  if (parts == 0) parts = 1;
  std::vector<std::size_t> bounds(parts + 1, 0);

  double total = 0.0;
  bool degenerate = false;
  for (double c : costs) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      degenerate = true;
      break;
    }
    total += c;
  }
  if (degenerate || total <= 0.0) {
    for (std::size_t p = 0; p <= parts; ++p) bounds[p] = p * n / parts;
    return bounds;
  }

  // Prefix-sum walk: boundary p sits where the running cost crosses the
  // p-th equal-cost target; the midpoint rule sends a straddling task to
  // whichever side leaves the smaller deviation.
  double cum = 0.0;
  std::size_t i = 0;
  for (std::size_t p = 1; p < parts; ++p) {
    const double target =
        total * static_cast<double>(p) / static_cast<double>(parts);
    while (i < n && cum + 0.5 * costs[i] < target) cum += costs[i++];
    bounds[p] = i;
  }
  bounds[parts] = n;
  return bounds;
}

ScheduleSpec SweepScheduler::Next(std::size_t n, std::size_t workers) {
  ScheduleSpec spec;
  if (kind_ == ScheduleKind::kStatic || workers <= 1) {
    spec.kind = ScheduleKind::kStatic;
    return spec;
  }
  if (kind_ == ScheduleKind::kDynamic || costs_.size() != n) {
    // No predictor for this task count (first sweep, or the sweep shape
    // changed): claim chunks dynamically.
    ++dynamic_plans_;
    spec.kind = ScheduleKind::kDynamic;
    spec.grain = grain_;
    return spec;
  }
  obs::ProfScopeFine prof("sweep.plan");
  bounds_ = BalancedPartition(costs_, workers);
  ++cost_guided_plans_;
  spec.kind = ScheduleKind::kCostGuided;
  spec.bounds = bounds_;
  return spec;
}

void SweepScheduler::Update(std::span<const double> costs) {
  costs_.assign(costs.begin(), costs.end());
}

}  // namespace sea
