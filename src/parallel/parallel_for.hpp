// Convenience wrappers over ThreadPool used by the solvers.
//
// Solvers take an optional ThreadPool*; a null pool means "serial". These
// helpers keep the call sites free of that branching.
#pragma once

#include <cstddef>
#include <functional>

#include "parallel/thread_pool.hpp"

namespace sea {

// Runs body(begin, end) over [0, n), on the pool if given, inline otherwise.
void ForRange(ThreadPool* pool, std::size_t n,
              const std::function<void(std::size_t, std::size_t)>& body);

// Runs body(begin, end, worker) with worker in [0, WorkerCount(pool)).
void ForRangeWorker(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

// Number of workers a ForRangeWorker call will use (>= 1).
std::size_t WorkerCount(const ThreadPool* pool);

}  // namespace sea
