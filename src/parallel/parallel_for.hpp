// Convenience wrappers over ThreadPool used by the solvers.
//
// Solvers take an optional ThreadPool*; a null pool means "serial". These
// helpers keep the call sites free of that branching. Bodies travel as
// FunctionRef (support/function_ref.hpp), so the hot-path sweep lambdas are
// never heap-allocated the way a std::function parameter would force.
#pragma once

#include <cstddef>

#include "parallel/thread_pool.hpp"

namespace sea {

// Runs body(begin, end) over [0, n), on the pool if given, inline otherwise.
void ForRange(ThreadPool* pool, std::size_t n, ThreadPool::Body2 body);

// Runs body(begin, end, worker) with worker in [0, WorkerCount(pool)),
// under the given region schedule (parallel/schedule.hpp; default static).
void ForRangeWorker(ThreadPool* pool, std::size_t n, ThreadPool::Body3 body,
                    const ScheduleSpec& sched = {});

// Number of workers a ForRangeWorker call will use (>= 1).
std::size_t WorkerCount(const ThreadPool* pool);

}  // namespace sea
