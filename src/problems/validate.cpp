#include "problems/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "problems/diagonal_problem.hpp"

namespace sea {

const char* ToString(DiagnosisCode code) {
  switch (code) {
    case DiagnosisCode::kDimensionMismatch:
      return "dimension-mismatch";
    case DiagnosisCode::kNonFiniteEntry:
      return "non-finite-entry";
    case DiagnosisCode::kNonPositiveWeight:
      return "non-positive-weight";
    case DiagnosisCode::kNegativeEntry:
      return "negative-entry";
    case DiagnosisCode::kTotalsImbalance:
      return "totals-imbalance";
    case DiagnosisCode::kZeroSupportRow:
      return "zero-support-row";
    case DiagnosisCode::kZeroSupportCol:
      return "zero-support-col";
    case DiagnosisCode::kBackendUnavailable:
      return "backend-unavailable";
    case DiagnosisCode::kCheckpointMalformed:
      return "checkpoint-malformed";
    case DiagnosisCode::kCheckpointVersionSkew:
      return "checkpoint-version-skew";
    case DiagnosisCode::kCheckpointMismatch:
      return "checkpoint-mismatch";
  }
  return "unknown";
}

bool ValidationReport::Has(DiagnosisCode code) const {
  for (const auto& d : diagnoses)
    if (d.code == code) return true;
  return false;
}

std::string ValidationReport::Summary() const {
  std::string out;
  for (const auto& d : diagnoses) {
    if (!out.empty()) out += '\n';
    out += std::string(ToString(d.code)) + ": " + d.message;
  }
  return out;
}

namespace {

void Add(ValidationReport& rep, DiagnosisCode code, std::size_t row,
         std::size_t col, std::string message) {
  rep.diagnoses.push_back({code, row, col, std::move(message)});
}

std::string Fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// Scans one matrix for NaN/Inf cells and (optionally) sign violations. Each
// class of defect is reported once per matrix at its first offending cell —
// a NaN-filled matrix should not produce a million-line report.
void CheckMatrix(ValidationReport& rep, const DenseMatrix& a,
                 const char* name, bool require_positive,
                 bool require_nonnegative) {
  bool saw_nonfinite = false, saw_sign = false;
  for (std::size_t i = 0; i < a.rows() && !(saw_nonfinite && saw_sign); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double v = a(i, j);
      if (!saw_nonfinite && !std::isfinite(v)) {
        saw_nonfinite = true;
        Add(rep, DiagnosisCode::kNonFiniteEntry, i, j,
            std::string(name) + "(" + std::to_string(i) + "," +
                std::to_string(j) + ") is " + Fmt(v));
      }
      if (!saw_sign && std::isfinite(v)) {
        if (require_positive && v <= 0.0) {
          saw_sign = true;
          Add(rep, DiagnosisCode::kNonPositiveWeight, i, j,
              std::string(name) + "(" + std::to_string(i) + "," +
                  std::to_string(j) + ") = " + Fmt(v) +
                  " must be > 0 (strict convexity)");
        } else if (require_nonnegative && v < 0.0) {
          saw_sign = true;
          Add(rep, DiagnosisCode::kNegativeEntry, i, j,
              std::string(name) + "(" + std::to_string(i) + "," +
                  std::to_string(j) + ") = " + Fmt(v) + " is negative");
        }
      }
    }
  }
}

void CheckVector(ValidationReport& rep, const Vector& v, const char* name,
                 bool require_nonnegative) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      Add(rep, DiagnosisCode::kNonFiniteEntry, i, Diagnosis::kNoIndex,
          std::string(name) + "[" + std::to_string(i) + "] is " + Fmt(v[i]));
    } else if (require_nonnegative && v[i] < 0.0) {
      Add(rep, DiagnosisCode::kNegativeEntry, i, Diagnosis::kNoIndex,
          std::string(name) + "[" + std::to_string(i) + "] = " + Fmt(v[i]) +
              " is negative");
    }
  }
}

void CheckBalance(ValidationReport& rep, const Vector& s0, const Vector& d0) {
  double sum_s = 0.0, sum_d = 0.0;
  for (double v : s0) sum_s += v;
  for (double v : d0) sum_d += v;
  if (!std::isfinite(sum_s) || !std::isfinite(sum_d)) return;  // reported
  const double scale = std::max({1.0, std::abs(sum_s), std::abs(sum_d)});
  if (std::abs(sum_s - sum_d) > 1e-8 * scale)
    Add(rep, DiagnosisCode::kTotalsImbalance, Diagnosis::kNoIndex,
        Diagnosis::kNoIndex,
        "total supply " + Fmt(sum_s) + " != total demand " + Fmt(sum_d) +
            " (fixed totals require a balanced problem)");
}

// A row (column) of all-zero cells cannot carry flow no matter how the
// multipliers scale it; a positive required total on such a line is
// structurally infeasible.
void CheckSupport(ValidationReport& rep, const DenseMatrix& x0,
                  const Vector& s0, const Vector& d0) {
  if (s0.size() == x0.rows()) {
    for (std::size_t i = 0; i < x0.rows(); ++i) {
      if (!(s0[i] > 0.0)) continue;
      bool any = false;
      for (std::size_t j = 0; j < x0.cols() && !any; ++j)
        any = x0(i, j) != 0.0;
      if (!any)
        Add(rep, DiagnosisCode::kZeroSupportRow, i, Diagnosis::kNoIndex,
            "row " + std::to_string(i) + " is all zeros but requires total " +
                Fmt(s0[i]));
    }
  }
  if (d0.size() == x0.cols()) {
    for (std::size_t j = 0; j < x0.cols(); ++j) {
      if (!(d0[j] > 0.0)) continue;
      bool any = false;
      for (std::size_t i = 0; i < x0.rows() && !any; ++i)
        any = x0(i, j) != 0.0;
      if (!any)
        Add(rep, DiagnosisCode::kZeroSupportCol, Diagnosis::kNoIndex, j,
            "column " + std::to_string(j) +
                " is all zeros but requires total " + Fmt(d0[j]));
    }
  }
}

void CheckDims(ValidationReport& rep, const DenseMatrix& x0,
               const DenseMatrix& gamma, const Vector& s0, const Vector& d0,
               std::size_t want_s, std::size_t want_d) {
  if (gamma.rows() != x0.rows() || gamma.cols() != x0.cols())
    Add(rep, DiagnosisCode::kDimensionMismatch, Diagnosis::kNoIndex,
        Diagnosis::kNoIndex,
        "gamma is " + std::to_string(gamma.rows()) + "x" +
            std::to_string(gamma.cols()) + " but x0 is " +
            std::to_string(x0.rows()) + "x" + std::to_string(x0.cols()));
  if (s0.size() != want_s)
    Add(rep, DiagnosisCode::kDimensionMismatch, Diagnosis::kNoIndex,
        Diagnosis::kNoIndex,
        "row totals have " + std::to_string(s0.size()) +
            " entries, expected " + std::to_string(want_s));
  if (d0.size() != want_d)
    Add(rep, DiagnosisCode::kDimensionMismatch, Diagnosis::kNoIndex,
        Diagnosis::kNoIndex,
        "column totals have " + std::to_string(d0.size()) +
            " entries, expected " + std::to_string(want_d));
}

}  // namespace

ValidationReport ValidateProblem(const DenseMatrix& x0,
                                 const DenseMatrix& gamma, const Vector& s0,
                                 const Vector& d0) {
  ValidationReport rep;
  CheckDims(rep, x0, gamma, s0, d0, x0.rows(), x0.cols());
  CheckMatrix(rep, x0, "x0", /*require_positive=*/false,
              /*require_nonnegative=*/true);
  CheckMatrix(rep, gamma, "gamma", /*require_positive=*/true,
              /*require_nonnegative=*/false);
  CheckVector(rep, s0, "row totals", /*require_nonnegative=*/true);
  CheckVector(rep, d0, "column totals", /*require_nonnegative=*/true);
  // Feasibility conditions are only meaningful on shape-consistent input.
  if (s0.size() == x0.rows() && d0.size() == x0.cols()) {
    CheckBalance(rep, s0, d0);
    CheckSupport(rep, x0, s0, d0);
  }
  return rep;
}

ValidationReport ValidateProblem(const DiagonalProblem& p) {
  ValidationReport rep;
  const std::size_t want_s =
      p.mode() == TotalsMode::kSam ? p.n() : p.m();
  CheckDims(rep, p.x0(), p.gamma(), p.s0(),
            p.mode() == TotalsMode::kSam ? p.s0() : p.d0(), want_s, p.n());
  CheckMatrix(rep, p.x0(), "x0", /*require_positive=*/false,
              /*require_nonnegative=*/true);
  CheckMatrix(rep, p.gamma(), "gamma", /*require_positive=*/true,
              /*require_nonnegative=*/false);
  CheckVector(rep, p.s0(), "row totals", /*require_nonnegative=*/true);
  if (p.mode() != TotalsMode::kSam)
    CheckVector(rep, p.d0(), "column totals", /*require_nonnegative=*/true);
  if (p.mode() == TotalsMode::kFixed && p.s0().size() == p.m() &&
      p.d0().size() == p.n()) {
    CheckBalance(rep, p.s0(), p.d0());
    CheckSupport(rep, p.x0(), p.s0(), p.d0());
  }
  return rep;
}

}  // namespace sea
