// The diagonal quadratic constrained matrix problem (paper objectives (5),
// (9), (13)):
//
//   minimize  sum_ij gamma_ij (x_ij - x0_ij)^2
//           + sum_i  alpha_i  (s_i  - s0_i)^2     [elastic, SAM]
//           + sum_j  beta_j   (d_j  - d0_j)^2     [elastic]
//   subject to the row/column constraints of the selected TotalsMode and
//   x_ij >= 0.
//
// All weights must be strictly positive (strict convexity; the paper assumes
// strictly positive definite weight matrices, which in the diagonal case is
// exactly positivity of the diagonal).
//
// This type also serves as the inner subproblem of the general algorithms:
// the projection step (paper eq. (79)) produces problems of exactly this form
// with refreshed centers, so DiagonalProblem deliberately stores *centers*
// (x0, s0, d0) rather than linear coefficients.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "problems/types.hpp"

namespace sea {

class DiagonalProblem {
 public:
  DiagonalProblem() = default;

  // Fixed totals: minimize sum gamma (x - x0)^2 with row sums s0 and column
  // sums d0. Requires sum(s0) == sum(d0) for feasibility (checked by
  // Validate with a relative tolerance).
  static DiagonalProblem MakeFixed(DenseMatrix x0, DenseMatrix gamma,
                                   Vector s0, Vector d0);

  // Elastic totals (objective (5)).
  static DiagonalProblem MakeElastic(DenseMatrix x0, DenseMatrix gamma,
                                     Vector s0, Vector alpha, Vector d0,
                                     Vector beta);

  // SAM estimation (objective (9)); m == n, totals balance by construction.
  static DiagonalProblem MakeSam(DenseMatrix x0, DenseMatrix gamma, Vector s0,
                                 Vector alpha);

  // Interval totals (Harrigan & Buchanan 1984): elastic objective plus box
  // constraints s_lo <= s <= s_hi, d_lo <= d <= d_hi. Requires
  // 0 <= lo <= hi componentwise.
  static DiagonalProblem MakeInterval(DenseMatrix x0, DenseMatrix gamma,
                                      Vector s0, Vector alpha, Vector s_lo,
                                      Vector s_hi, Vector d0, Vector beta,
                                      Vector d_lo, Vector d_hi);

  TotalsMode mode() const { return mode_; }
  std::size_t m() const { return x0_.rows(); }
  std::size_t n() const { return x0_.cols(); }
  std::size_t num_variables() const;

  const DenseMatrix& x0() const { return x0_; }
  const DenseMatrix& gamma() const { return gamma_; }
  const Vector& s0() const { return s0_; }
  const Vector& alpha() const { return alpha_; }
  const Vector& d0() const { return d0_; }
  const Vector& beta() const { return beta_; }
  // Interval bounds (kInterval only; empty otherwise).
  const Vector& s_lo() const { return s_lo_; }
  const Vector& s_hi() const { return s_hi_; }
  const Vector& d_lo() const { return d_lo_; }
  const Vector& d_hi() const { return d_hi_; }

  // Throws InvalidArgument when shapes/signs/feasibility are inconsistent.
  void Validate() const;

  // Objective value. For kFixed, s and d are ignored; for kSam, d is ignored.
  double Objective(const DenseMatrix& x, const Vector& s,
                   const Vector& d) const;

 private:
  TotalsMode mode_ = TotalsMode::kFixed;
  DenseMatrix x0_;     // m x n centers
  DenseMatrix gamma_;  // m x n weights (> 0)
  Vector s0_;          // m (n for SAM) row totals / centers
  Vector alpha_;       // row-total weights (elastic, SAM)
  Vector d0_;          // n column totals / centers (not SAM)
  Vector beta_;        // column-total weights (elastic)
  Vector s_lo_, s_hi_; // row total bounds (kInterval)
  Vector d_lo_, d_hi_; // column total bounds (kInterval)
};

}  // namespace sea
