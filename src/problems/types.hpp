// Shared enums for the constrained matrix problem family (paper Section 2).
#pragma once

namespace sea {

// Which totals regime the constraints follow.
enum class TotalsMode {
  // Row and column totals are known and fixed:
  //   sum_j x_ij = s0_i,  sum_i x_ij = d0_j        (objective (10)/(13))
  kFixed,
  // Totals are estimated along with the matrix:
  //   sum_j x_ij = s_i,   sum_i x_ij = d_j         (objective (1)/(5))
  kElastic,
  // Social accounting matrix: m == n and account i's row total equals its
  // column total (both equal the estimated s_i):
  //   sum_j x_ij = s_i,   sum_i x_ij = s_j         (objective (6)/(9))
  kSam,
  // Interval totals (Harrigan & Buchanan 1984, the generalization the
  // paper's Section 2 cites): totals are estimated as in kElastic but must
  // additionally lie in per-row/column intervals,
  //   s_lo_i <= s_i <= s_hi_i,   d_lo_j <= d_j <= d_hi_j.
  kInterval,
};

const char* ToString(TotalsMode mode);

}  // namespace sea
