// Primal/dual solution of a constrained matrix problem.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "problems/diagonal_problem.hpp"

namespace sea {

struct Solution {
  DenseMatrix x;  // m x n estimate
  Vector s;       // row totals (estimated; equals s0 in the fixed regime)
  Vector d;       // column totals (for SAM: d == s)
  Vector lambda;  // row-constraint multipliers (m)
  Vector mu;      // column-constraint multipliers (n)
};

// Recovers the primal variables that minimize the Lagrangian of a diagonal
// problem at the given multipliers (paper eqs. (23a)-(23c) / (40a)-(40b)):
//
//   x_ij = max(0, x0_ij + (lambda_i + mu_j) / (2 gamma_ij))
//   s_i  = s0_i - lambda_i / (2 alpha_i)                 [elastic]
//   s_i  = s0_i - (lambda_i + mu_i) / (2 alpha_i)        [SAM]
//   d_j  = d0_j - mu_j / (2 beta_j)                      [elastic]
//
// For the fixed regime, s and d are the fixed totals.
Solution RecoverPrimal(const DiagonalProblem& p, Vector lambda, Vector mu);

// Value of the dual function zeta_l(lambda, mu) (paper eqs. (24), (41),
// (51)), including the constant terms so that at optimality it equals the
// primal objective (strong duality).
double DualValue(const DiagonalProblem& p, const Vector& lambda,
                 const Vector& mu);

}  // namespace sea
