#include "problems/general_problem.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace sea {

namespace {

// c = -2 Q z0, constant = z0^T Q z0, so that z^T Q z + c^T z + constant equals
// (z - z0)^T Q (z - z0).
void DeviationToLinear(const DenseMatrix& q, const Vector& z0, Vector& c,
                       double& constant) {
  c.assign(z0.size(), 0.0);
  Gemv(q, z0, c);
  constant = Dot(c, z0);
  for (double& v : c) v *= -2.0;
}

}  // namespace

GeneralProblem GeneralProblem::MakeFixed(std::size_t m, std::size_t n,
                                         DenseMatrix g, Vector cx, Vector s0,
                                         Vector d0) {
  GeneralProblem p;
  p.mode_ = TotalsMode::kFixed;
  p.m_ = m;
  p.n_ = n;
  p.g_ = std::move(g);
  p.cx_ = std::move(cx);
  p.s0_ = std::move(s0);
  p.d0_ = std::move(d0);
  p.Validate();
  return p;
}

GeneralProblem GeneralProblem::MakeFixedFromCenters(const DenseMatrix& x0,
                                                    DenseMatrix g, Vector s0,
                                                    Vector d0) {
  GeneralProblem p;
  p.mode_ = TotalsMode::kFixed;
  p.m_ = x0.rows();
  p.n_ = x0.cols();
  p.g_ = std::move(g);
  Vector x0v(x0.Flat().begin(), x0.Flat().end());
  DeviationToLinear(p.g_, x0v, p.cx_, p.constant_);
  p.s0_ = std::move(s0);
  p.d0_ = std::move(d0);
  p.Validate();
  return p;
}

GeneralProblem GeneralProblem::MakeElasticFromCenters(
    const DenseMatrix& x0, DenseMatrix g, const Vector& s0, DenseMatrix a,
    const Vector& d0, DenseMatrix b) {
  GeneralProblem p;
  p.mode_ = TotalsMode::kElastic;
  p.m_ = x0.rows();
  p.n_ = x0.cols();
  p.g_ = std::move(g);
  p.a_ = std::move(a);
  p.b_ = std::move(b);
  Vector x0v(x0.Flat().begin(), x0.Flat().end());
  double cx_const = 0.0, cs_const = 0.0, cd_const = 0.0;
  DeviationToLinear(p.g_, x0v, p.cx_, cx_const);
  DeviationToLinear(p.a_, s0, p.cs_, cs_const);
  DeviationToLinear(p.b_, d0, p.cd_, cd_const);
  p.constant_ = cx_const + cs_const + cd_const;
  p.Validate();
  return p;
}

GeneralProblem GeneralProblem::MakeSamFromCenters(const DenseMatrix& x0,
                                                  DenseMatrix g,
                                                  const Vector& s0,
                                                  DenseMatrix a) {
  GeneralProblem p;
  p.mode_ = TotalsMode::kSam;
  p.m_ = x0.rows();
  p.n_ = x0.cols();
  p.g_ = std::move(g);
  p.a_ = std::move(a);
  Vector x0v(x0.Flat().begin(), x0.Flat().end());
  double cx_const = 0.0, cs_const = 0.0;
  DeviationToLinear(p.g_, x0v, p.cx_, cx_const);
  DeviationToLinear(p.a_, s0, p.cs_, cs_const);
  p.constant_ = cx_const + cs_const;
  p.Validate();
  return p;
}

void GeneralProblem::Validate() const {
  SEA_CHECK_MSG(m_ > 0 && n_ > 0, "empty problem");
  const std::size_t mn = m_ * n_;
  SEA_CHECK_MSG(g_.rows() == mn && g_.cols() == mn, "G must be mn x mn");
  SEA_CHECK_MSG(cx_.size() == mn, "cx size mismatch");
  for (std::size_t k = 0; k < mn; ++k)
    SEA_CHECK_MSG(g_(k, k) > 0.0, "G diagonal must be strictly positive");

  SEA_CHECK_MSG(mode_ != TotalsMode::kInterval,
                "general problems support fixed/elastic/SAM totals; interval "
                "totals are a diagonal-problem feature");
  switch (mode_) {
    case TotalsMode::kInterval:
      break;  // rejected above
    case TotalsMode::kFixed: {
      SEA_CHECK_MSG(s0_.size() == m_ && d0_.size() == n_,
                    "fixed totals size mismatch");
      double ssum = 0.0, dsum = 0.0;
      for (double v : s0_) ssum += v;
      for (double v : d0_) dsum += v;
      const double scale = std::max({1.0, std::abs(ssum), std::abs(dsum)});
      SEA_CHECK_MSG(std::abs(ssum - dsum) <= 1e-8 * scale,
                    "fixed totals are inconsistent");
      break;
    }
    case TotalsMode::kElastic: {
      SEA_CHECK_MSG(a_.rows() == m_ && a_.cols() == m_, "A must be m x m");
      SEA_CHECK_MSG(b_.rows() == n_ && b_.cols() == n_, "B must be n x n");
      SEA_CHECK_MSG(cs_.size() == m_ && cd_.size() == n_,
                    "linear term size mismatch");
      for (std::size_t i = 0; i < m_; ++i)
        SEA_CHECK_MSG(a_(i, i) > 0.0, "A diagonal must be strictly positive");
      for (std::size_t j = 0; j < n_; ++j)
        SEA_CHECK_MSG(b_(j, j) > 0.0, "B diagonal must be strictly positive");
      break;
    }
    case TotalsMode::kSam: {
      SEA_CHECK_MSG(m_ == n_, "SAM problems must be square");
      SEA_CHECK_MSG(a_.rows() == n_ && a_.cols() == n_, "A must be n x n");
      SEA_CHECK_MSG(cs_.size() == n_, "cs size mismatch");
      for (std::size_t i = 0; i < n_; ++i)
        SEA_CHECK_MSG(a_(i, i) > 0.0, "A diagonal must be strictly positive");
      break;
    }
  }
}

double GeneralProblem::Objective(const Vector& x, const Vector& s,
                                 const Vector& d) const {
  SEA_CHECK(x.size() == num_x());
  Vector tmp(x.size());
  Gemv(g_, x, tmp);
  double obj = Dot(tmp, x) + Dot(cx_, x) + constant_;
  if (mode_ == TotalsMode::kElastic || mode_ == TotalsMode::kSam) {
    SEA_CHECK(s.size() == a_.rows());
    Vector ts(s.size());
    Gemv(a_, s, ts);
    obj += Dot(ts, s) + Dot(cs_, s);
  }
  if (mode_ == TotalsMode::kElastic) {
    SEA_CHECK(d.size() == b_.rows());
    Vector td(d.size());
    Gemv(b_, d, td);
    obj += Dot(td, d) + Dot(cd_, d);
  }
  return obj;
}

void GeneralProblem::GradientX(const Vector& x, Vector& out,
                               ThreadPool* pool) const {
  SEA_CHECK(x.size() == num_x());
  out.resize(x.size());
  GemvParallel(g_, x, out, pool);
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = 2.0 * out[k] + cx_[k];
}

void GeneralProblem::GradientS(const Vector& s, Vector& out) const {
  SEA_CHECK(mode_ != TotalsMode::kFixed);
  out.resize(s.size());
  Gemv(a_, s, out);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = 2.0 * out[i] + cs_[i];
}

void GeneralProblem::GradientD(const Vector& d, Vector& out) const {
  SEA_CHECK(mode_ == TotalsMode::kElastic);
  out.resize(d.size());
  Gemv(b_, d, out);
  for (std::size_t j = 0; j < out.size(); ++j) out[j] = 2.0 * out[j] + cd_[j];
}

DiagonalProblem GeneralProblem::Diagonalize(const Vector& x_prev,
                                            const Vector& s_prev,
                                            const Vector& d_prev,
                                            ThreadPool* pool) const {
  const std::size_t mn = num_x();
  SEA_CHECK(x_prev.size() == mn);

  // x-part: gamma_k = G_kk, center_k = z_k - grad_k / (2 gamma_k).
  DenseMatrix gamma(m_, n_);
  DenseMatrix centers(m_, n_);
  Vector grad(mn);
  GradientX(x_prev, grad, pool);
  {
    auto gam = gamma.Flat();
    auto cen = centers.Flat();
    for (std::size_t k = 0; k < mn; ++k) {
      const double gkk = g_(k, k);
      gam[k] = gkk;
      cen[k] = x_prev[k] - grad[k] / (2.0 * gkk);
    }
  }

  switch (mode_) {
    case TotalsMode::kInterval:
      break;  // rejected by Validate
    case TotalsMode::kFixed:
      return DiagonalProblem::MakeFixed(std::move(centers), std::move(gamma),
                                        s0_, d0_);
    case TotalsMode::kElastic: {
      SEA_CHECK(s_prev.size() == m_ && d_prev.size() == n_);
      Vector alpha(m_), sc(m_), beta(n_), dc(n_), gs, gd;
      GradientS(s_prev, gs);
      GradientD(d_prev, gd);
      for (std::size_t i = 0; i < m_; ++i) {
        alpha[i] = a_(i, i);
        sc[i] = s_prev[i] - gs[i] / (2.0 * alpha[i]);
      }
      for (std::size_t j = 0; j < n_; ++j) {
        beta[j] = b_(j, j);
        dc[j] = d_prev[j] - gd[j] / (2.0 * beta[j]);
      }
      return DiagonalProblem::MakeElastic(std::move(centers), std::move(gamma),
                                          std::move(sc), std::move(alpha),
                                          std::move(dc), std::move(beta));
    }
    case TotalsMode::kSam: {
      SEA_CHECK(s_prev.size() == n_);
      Vector alpha(n_), sc(n_), gs;
      GradientS(s_prev, gs);
      for (std::size_t i = 0; i < n_; ++i) {
        alpha[i] = a_(i, i);
        sc[i] = s_prev[i] - gs[i] / (2.0 * alpha[i]);
      }
      return DiagonalProblem::MakeSam(std::move(centers), std::move(gamma),
                                      std::move(sc), std::move(alpha));
    }
  }
  SEA_INTERNAL_CHECK(false);
  return {};
}

}  // namespace sea
