// Feasibility and optimality (KKT) measurement.
//
// The paper's convergence checks are constraint-residual based — equivalent,
// by eqs. (27)/(43)/(52), to the dual gradient norm. These helpers are shared
// by the solvers' stopping rules, the benchmark harness, and the test suite's
// optimality assertions.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "problems/diagonal_problem.hpp"
#include "problems/general_problem.hpp"
#include "problems/solution.hpp"

namespace sea {

struct FeasibilityReport {
  double max_row_abs = 0.0;  // max_i |sum_j x_ij - s_i|
  double max_row_rel = 0.0;  // max_i |sum_j x_ij - s_i| / max(1, |s_i|)
  double max_col_abs = 0.0;
  double max_col_rel = 0.0;
  double min_x = 0.0;        // most negative entry (>= 0 when feasible)

  double MaxAbs() const;
  double MaxRel() const;
};

// Residuals of x against row targets s and column targets d.
FeasibilityReport CheckFeasibility(const DenseMatrix& x, const Vector& s,
                                   const Vector& d);

// Residuals of a solution against its problem's constraint regime
// (for SAM the column targets are the estimated s).
FeasibilityReport CheckFeasibility(const DiagonalProblem& p,
                                   const Solution& sol);

// Maximum KKT violation of (x, s, d, lambda, mu) for a diagonal problem:
// stationarity (20)-(22)/(38)-(39), complementarity, and nonnegativity.
// Constraint residuals are NOT included (report them via CheckFeasibility);
// this isolates "is this point the Lagrangian minimizer for its multipliers".
double KktStationarityError(const DiagonalProblem& p, const Solution& sol);

// Maximum KKT violation for the general problem at (x, s, d, lambda, mu):
// |grad_x F - lambda_i - mu_j| on the support, one-sided off the support,
// |grad_s F + lambda|, |grad_d F + mu| (mode-dependent).
double KktStationarityError(const GeneralProblem& p, const Solution& sol);

}  // namespace sea
