#include "problems/solution.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sea {

Solution RecoverPrimal(const DiagonalProblem& p, Vector lambda, Vector mu) {
  const std::size_t m = p.m(), n = p.n();
  SEA_CHECK(lambda.size() == m);
  SEA_CHECK(mu.size() == n);

  Solution sol;
  sol.x = DenseMatrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto x0 = p.x0().Row(i);
    const auto g = p.gamma().Row(i);
    auto xi = sol.x.Row(i);
    const double li = lambda[i];
    for (std::size_t j = 0; j < n; ++j)
      xi[j] = std::max(0.0, x0[j] + (li + mu[j]) / (2.0 * g[j]));
  }

  switch (p.mode()) {
    case TotalsMode::kFixed:
      sol.s = p.s0();
      sol.d = p.d0();
      break;
    case TotalsMode::kElastic:
      sol.s.resize(m);
      sol.d.resize(n);
      for (std::size_t i = 0; i < m; ++i)
        sol.s[i] = p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]);
      for (std::size_t j = 0; j < n; ++j)
        sol.d[j] = p.d0()[j] - mu[j] / (2.0 * p.beta()[j]);
      break;
    case TotalsMode::kInterval:
      // The elastic response clamped to the interval (the Lagrangian
      // minimizer over the box).
      sol.s.resize(m);
      sol.d.resize(n);
      for (std::size_t i = 0; i < m; ++i)
        sol.s[i] = std::clamp(p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]),
                              p.s_lo()[i], p.s_hi()[i]);
      for (std::size_t j = 0; j < n; ++j)
        sol.d[j] = std::clamp(p.d0()[j] - mu[j] / (2.0 * p.beta()[j]),
                              p.d_lo()[j], p.d_hi()[j]);
      break;
    case TotalsMode::kSam:
      sol.s.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        sol.s[i] = p.s0()[i] - (lambda[i] + mu[i]) / (2.0 * p.alpha()[i]);
      sol.d = sol.s;
      break;
  }
  sol.lambda = std::move(lambda);
  sol.mu = std::move(mu);
  return sol;
}

double DualValue(const DiagonalProblem& p, const Vector& lambda,
                 const Vector& mu) {
  const std::size_t m = p.m(), n = p.n();
  SEA_CHECK(lambda.size() == m && mu.size() == n);

  // Common x-part: -sum_ij (2 gamma x0 + lambda_i + mu_j)_+^2 / (4 gamma)
  //                + sum_ij gamma x0^2.
  double val = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto x0 = p.x0().Row(i);
    const auto g = p.gamma().Row(i);
    const double li = lambda[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double t = 2.0 * g[j] * x0[j] + li + mu[j];
      if (t > 0.0) val -= t * t / (4.0 * g[j]);
      val += g[j] * x0[j] * x0[j];
    }
  }

  switch (p.mode()) {
    case TotalsMode::kFixed:
      // zeta_3 (paper eq. (51)).
      for (std::size_t i = 0; i < m; ++i) val += lambda[i] * p.s0()[i];
      for (std::size_t j = 0; j < n; ++j) val += mu[j] * p.d0()[j];
      break;
    case TotalsMode::kElastic:
      // zeta_1 (paper eq. (24)).
      for (std::size_t i = 0; i < m; ++i) {
        const double t = 2.0 * p.alpha()[i] * p.s0()[i] - lambda[i];
        val -= t * t / (4.0 * p.alpha()[i]);
        val += p.alpha()[i] * p.s0()[i] * p.s0()[i];
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double t = 2.0 * p.beta()[j] * p.d0()[j] - mu[j];
        val -= t * t / (4.0 * p.beta()[j]);
        val += p.beta()[j] * p.d0()[j] * p.d0()[j];
      }
      break;
    case TotalsMode::kSam:
      // zeta_2 (paper eq. (41)).
      for (std::size_t i = 0; i < n; ++i) {
        const double t =
            2.0 * p.alpha()[i] * p.s0()[i] - lambda[i] - mu[i];
        val -= t * t / (4.0 * p.alpha()[i]);
        val += p.alpha()[i] * p.s0()[i] * p.s0()[i];
      }
      break;
    case TotalsMode::kInterval:
      // min over lo <= s <= hi of alpha (s - s0)^2 + lambda s: attained at
      // the clamped elastic response; evaluate directly (no closed square
      // completion once the clamp binds).
      for (std::size_t i = 0; i < m; ++i) {
        const double s = std::clamp(
            p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]), p.s_lo()[i],
            p.s_hi()[i]);
        const double dev = s - p.s0()[i];
        val += p.alpha()[i] * dev * dev + lambda[i] * s;
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double d = std::clamp(
            p.d0()[j] - mu[j] / (2.0 * p.beta()[j]), p.d_lo()[j],
            p.d_hi()[j]);
        const double dev = d - p.d0()[j];
        val += p.beta()[j] * dev * dev + mu[j] * d;
      }
      break;
  }
  return val;
}

}  // namespace sea
