// Pre-flight problem validation with structured diagnoses.
//
// DiagonalProblem::Validate() throws on the first inconsistency it finds —
// right for library internals, useless for a user who wants to know
// everything wrong with their input at once. ValidateProblem instead walks
// the whole problem and returns a ValidationReport: one Diagnosis per
// defect, each carrying a machine-readable code plus the offending row or
// column, so a tool can print every problem and exit with
// SolveStatus::kInfeasible before burning iterations on an input the
// paper's Section 3 feasibility conditions already rule out.
//
// Checked conditions:
//   - dimension mismatches between the matrix and the totals vectors
//   - non-finite entries (NaN/Inf) in x0, gamma, or the totals
//   - non-positive weights gamma (strict convexity requires gamma > 0)
//   - negative entries in x0 or the totals (Section 3 nonnegativity)
//   - fixed regime: total supply != total demand (Σs ≠ Σd)
//   - zero-support rows/columns: every cell of the row (column) is zero
//     while its required total is positive — no scaling can ever meet it
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "problems/types.hpp"

namespace sea {

class DiagonalProblem;

enum class DiagnosisCode {
  kDimensionMismatch,
  kNonFiniteEntry,
  kNonPositiveWeight,
  kNegativeEntry,
  kTotalsImbalance,   // fixed regime: Σs != Σd
  kZeroSupportRow,    // row of zeros with a positive required total
  kZeroSupportCol,    // column of zeros with a positive required total
  // Not an input defect: a requested kernel backend (--backend simd /
  // SEA_BACKEND) that this build or CPU cannot run; the solve proceeds on
  // the scalar backend and tools surface this as a warning.
  kBackendUnavailable,
  // Checkpoint-file defects (src/core/checkpoint.hpp). Malformed covers
  // bad magic, truncation, and CRC mismatch; version skew is a well-formed
  // file written by an incompatible format revision; mismatch is a valid
  // checkpoint whose fingerprint/shape/criterion does not fit the problem
  // being resumed.
  kCheckpointMalformed,
  kCheckpointVersionSkew,
  kCheckpointMismatch,
};

const char* ToString(DiagnosisCode code);

// One defect. row/col are 0-based indices into the offending structure;
// kNoIndex marks "not applicable" (e.g. a whole-vector dimension mismatch).
struct Diagnosis {
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  DiagnosisCode code = DiagnosisCode::kDimensionMismatch;
  std::size_t row = kNoIndex;
  std::size_t col = kNoIndex;
  std::string message;  // human-readable, self-contained
};

struct ValidationReport {
  std::vector<Diagnosis> diagnoses;

  bool ok() const { return diagnoses.empty(); }
  bool Has(DiagnosisCode code) const;
  // One line per diagnosis, newline-separated; empty string when ok().
  std::string Summary() const;
};

// Validates the fixed-totals regime directly from its raw parts — the form
// the CLI tools assemble from CSV before a DiagonalProblem exists.
ValidationReport ValidateProblem(const DenseMatrix& x0,
                                 const DenseMatrix& gamma, const Vector& s0,
                                 const Vector& d0);

// Validates a constructed problem in any totals mode. The Σs = Σd balance
// and zero-support checks apply only where the mode fixes the totals
// (kFixed; kSam balances by construction).
ValidationReport ValidateProblem(const DiagonalProblem& p);

}  // namespace sea
