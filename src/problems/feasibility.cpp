#include "problems/feasibility.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sea {

double FeasibilityReport::MaxAbs() const {
  return std::max(max_row_abs, max_col_abs);
}

double FeasibilityReport::MaxRel() const {
  return std::max(max_row_rel, max_col_rel);
}

FeasibilityReport CheckFeasibility(const DenseMatrix& x, const Vector& s,
                                   const Vector& d) {
  SEA_CHECK(s.size() == x.rows());
  SEA_CHECK(d.size() == x.cols());
  FeasibilityReport r;
  Vector colsum(x.cols(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.Row(i);
    double rowsum = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double v = row[j];
      rowsum += v;
      colsum[j] += v;
      r.min_x = std::min(r.min_x, v);
    }
    const double abs_res = std::abs(rowsum - s[i]);
    r.max_row_abs = std::max(r.max_row_abs, abs_res);
    r.max_row_rel =
        std::max(r.max_row_rel, abs_res / std::max(1.0, std::abs(s[i])));
  }
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const double abs_res = std::abs(colsum[j] - d[j]);
    r.max_col_abs = std::max(r.max_col_abs, abs_res);
    r.max_col_rel =
        std::max(r.max_col_rel, abs_res / std::max(1.0, std::abs(d[j])));
  }
  return r;
}

FeasibilityReport CheckFeasibility(const DiagonalProblem& p,
                                   const Solution& sol) {
  switch (p.mode()) {
    case TotalsMode::kFixed:
      return CheckFeasibility(sol.x, p.s0(), p.d0());
    case TotalsMode::kElastic:
    case TotalsMode::kInterval:
      return CheckFeasibility(sol.x, sol.s, sol.d);
    case TotalsMode::kSam:
      return CheckFeasibility(sol.x, sol.s, sol.s);
  }
  SEA_INTERNAL_CHECK(false);
  return {};
}

namespace {

// Stationarity violation for one x entry given its partial derivative
// residual "resid" (should be 0 where x > 0, >= 0 where x == 0).
double EntryViolation(double x, double resid) {
  constexpr double kSupportTol = 1e-12;
  if (x > kSupportTol) return std::abs(resid);
  return std::max(0.0, -resid);
}

}  // namespace

double KktStationarityError(const DiagonalProblem& p, const Solution& sol) {
  const std::size_t m = p.m(), n = p.n();
  SEA_CHECK(sol.x.rows() == m && sol.x.cols() == n);
  SEA_CHECK(sol.lambda.size() == m && sol.mu.size() == n);
  double err = 0.0;

  for (std::size_t i = 0; i < m; ++i) {
    const auto x0 = p.x0().Row(i);
    const auto g = p.gamma().Row(i);
    const auto xi = sol.x.Row(i);
    const double li = sol.lambda[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double resid =
          2.0 * g[j] * (xi[j] - x0[j]) - li - sol.mu[j];  // eq. (20)/(38)
      err = std::max(err, EntryViolation(xi[j], resid));
      err = std::max(err, -xi[j]);  // nonnegativity
    }
  }

  // One-sided stationarity of a box-constrained total: interior => 0,
  // at the lower bound the derivative may point up (resid >= 0), at the
  // upper bound down (resid <= 0).
  const auto box_violation = [](double value, double lo, double hi,
                                double resid) {
    constexpr double kEdgeTol = 1e-12;
    if (value <= lo + kEdgeTol) return std::max(0.0, -resid);
    if (value >= hi - kEdgeTol) return std::max(0.0, resid);
    return std::abs(resid);
  };

  switch (p.mode()) {
    case TotalsMode::kFixed:
      break;
    case TotalsMode::kElastic:
      for (std::size_t i = 0; i < m; ++i) {
        const double resid =
            2.0 * p.alpha()[i] * (sol.s[i] - p.s0()[i]) + sol.lambda[i];
        err = std::max(err, std::abs(resid));  // eq. (21)
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double resid =
            2.0 * p.beta()[j] * (sol.d[j] - p.d0()[j]) + sol.mu[j];
        err = std::max(err, std::abs(resid));  // eq. (22)
      }
      break;
    case TotalsMode::kInterval:
      for (std::size_t i = 0; i < m; ++i) {
        const double resid =
            2.0 * p.alpha()[i] * (sol.s[i] - p.s0()[i]) + sol.lambda[i];
        err = std::max(err, box_violation(sol.s[i], p.s_lo()[i], p.s_hi()[i],
                                          resid));
        err = std::max(err, p.s_lo()[i] - sol.s[i]);
        err = std::max(err, sol.s[i] - p.s_hi()[i]);
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double resid =
            2.0 * p.beta()[j] * (sol.d[j] - p.d0()[j]) + sol.mu[j];
        err = std::max(err, box_violation(sol.d[j], p.d_lo()[j], p.d_hi()[j],
                                          resid));
        err = std::max(err, p.d_lo()[j] - sol.d[j]);
        err = std::max(err, sol.d[j] - p.d_hi()[j]);
      }
      break;
    case TotalsMode::kSam:
      for (std::size_t i = 0; i < n; ++i) {
        const double resid = 2.0 * p.alpha()[i] * (sol.s[i] - p.s0()[i]) +
                             sol.lambda[i] + sol.mu[i];
        err = std::max(err, std::abs(resid));  // eq. (39)
      }
      break;
  }
  return err;
}

double KktStationarityError(const GeneralProblem& p, const Solution& sol) {
  const std::size_t m = p.m(), n = p.n();
  SEA_CHECK(sol.x.rows() == m && sol.x.cols() == n);
  Vector xv(sol.x.Flat().begin(), sol.x.Flat().end());
  Vector grad;
  p.GradientX(xv, grad);
  double err = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double li = sol.lambda[i];
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t k = i * n + j;
      const double resid = grad[k] - li - sol.mu[j];
      err = std::max(err, EntryViolation(xv[k], resid));
      err = std::max(err, -xv[k]);
    }
  }
  if (p.mode() == TotalsMode::kElastic) {
    Vector gs, gd;
    p.GradientS(sol.s, gs);
    p.GradientD(sol.d, gd);
    for (std::size_t i = 0; i < m; ++i)
      err = std::max(err, std::abs(gs[i] + sol.lambda[i]));
    for (std::size_t j = 0; j < n; ++j)
      err = std::max(err, std::abs(gd[j] + sol.mu[j]));
  } else if (p.mode() == TotalsMode::kSam) {
    Vector gs;
    p.GradientS(sol.s, gs);
    for (std::size_t i = 0; i < n; ++i)
      err = std::max(err, std::abs(gs[i] + sol.lambda[i] + sol.mu[i]));
  }
  return err;
}

}  // namespace sea
