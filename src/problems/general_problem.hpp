// The general quadratic constrained matrix problem (paper objective (1)):
//
//   minimize  x^T G x + cx^T x                       (x = vec(X), mn vars)
//           + s^T A s + cs^T s                       [elastic, SAM]
//           + d^T B d + cd^T d                       [elastic]
//           + constant
//   subject to the row/column constraints of the TotalsMode and x >= 0,
//
// with G (mn x mn), A (m x m), B (n x n) symmetric strictly positive
// definite. Constructing from deviation form — (x-x0)^T G (x-x0) etc. — sets
// c = -2 G x0 and the constant so that Objective() equals the paper's
// weighted-squared-deviation value exactly. The paper's Table 7 instances
// are instead generated directly in (G, c) form, which this type supports
// natively.
//
// The key operation for the general SEA and RC algorithms is Diagonalize():
// the projection-method subproblem (paper eq. (79)) with fixed diagonal parts
// diag(A), diag(G), diag(B) and linear terms refreshed at the current
// iterate. Expressed in center form, the subproblem's x-centers are
//
//   c_k = z_k - (2 G z + cx)_k / (2 G_kk),
//
// i.e. current iterate minus the (diagonally preconditioned) gradient — and
// analogously for s and d.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "problems/diagonal_problem.hpp"
#include "problems/types.hpp"

namespace sea {

class ThreadPool;

class GeneralProblem {
 public:
  GeneralProblem() = default;

  // Fixed totals, direct (G, c) form (Table 7 generation protocol).
  static GeneralProblem MakeFixed(std::size_t m, std::size_t n, DenseMatrix g,
                                  Vector cx, Vector s0, Vector d0);

  // Fixed totals, deviation form with base matrix X0.
  static GeneralProblem MakeFixedFromCenters(const DenseMatrix& x0,
                                             DenseMatrix g, Vector s0,
                                             Vector d0);

  // Elastic totals, deviation form (objective (1)).
  static GeneralProblem MakeElasticFromCenters(const DenseMatrix& x0,
                                               DenseMatrix g, const Vector& s0,
                                               DenseMatrix a, const Vector& d0,
                                               DenseMatrix b);

  // SAM, deviation form (objective (6)).
  static GeneralProblem MakeSamFromCenters(const DenseMatrix& x0,
                                           DenseMatrix g, const Vector& s0,
                                           DenseMatrix a);

  TotalsMode mode() const { return mode_; }
  std::size_t m() const { return m_; }
  std::size_t n() const { return n_; }
  std::size_t num_x() const { return m_ * n_; }

  const DenseMatrix& G() const { return g_; }
  const DenseMatrix& A() const { return a_; }
  const DenseMatrix& B() const { return b_; }
  const Vector& cx() const { return cx_; }
  const Vector& cs() const { return cs_; }
  const Vector& cd() const { return cd_; }
  const Vector& s0() const { return s0_; }
  const Vector& d0() const { return d0_; }
  double constant() const { return constant_; }

  void Validate() const;

  // Full objective value (includes the constant term).
  double Objective(const Vector& x, const Vector& s, const Vector& d) const;

  // Gradient of the x-part: out = 2 G x + cx. Optional pool parallelizes the
  // dense matvec (the dominant cost of one projection step).
  void GradientX(const Vector& x, Vector& out, ThreadPool* pool = nullptr) const;
  // Gradients of the s/d parts (elastic, SAM).
  void GradientS(const Vector& s, Vector& out) const;
  void GradientD(const Vector& d, Vector& out) const;

  // Builds the diagonalized (projection-step) subproblem at iterate
  // (x_prev, s_prev, d_prev). For kFixed, s_prev/d_prev are ignored.
  DiagonalProblem Diagonalize(const Vector& x_prev, const Vector& s_prev,
                              const Vector& d_prev,
                              ThreadPool* pool = nullptr) const;

 private:
  TotalsMode mode_ = TotalsMode::kFixed;
  std::size_t m_ = 0, n_ = 0;
  DenseMatrix g_;      // mn x mn
  Vector cx_;          // mn
  DenseMatrix a_;      // m x m (elastic) or n x n (SAM); empty for fixed
  Vector cs_;
  DenseMatrix b_;      // n x n (elastic only)
  Vector cd_;
  Vector s0_, d0_;     // fixed totals (kFixed only)
  double constant_ = 0.0;
};

}  // namespace sea
