#include "problems/diagonal_problem.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sea {

const char* ToString(TotalsMode mode) {
  switch (mode) {
    case TotalsMode::kFixed:
      return "fixed";
    case TotalsMode::kElastic:
      return "elastic";
    case TotalsMode::kSam:
      return "sam";
    case TotalsMode::kInterval:
      return "interval";
  }
  return "?";
}

DiagonalProblem DiagonalProblem::MakeFixed(DenseMatrix x0, DenseMatrix gamma,
                                           Vector s0, Vector d0) {
  DiagonalProblem p;
  p.mode_ = TotalsMode::kFixed;
  p.x0_ = std::move(x0);
  p.gamma_ = std::move(gamma);
  p.s0_ = std::move(s0);
  p.d0_ = std::move(d0);
  p.Validate();
  return p;
}

DiagonalProblem DiagonalProblem::MakeElastic(DenseMatrix x0, DenseMatrix gamma,
                                             Vector s0, Vector alpha,
                                             Vector d0, Vector beta) {
  DiagonalProblem p;
  p.mode_ = TotalsMode::kElastic;
  p.x0_ = std::move(x0);
  p.gamma_ = std::move(gamma);
  p.s0_ = std::move(s0);
  p.alpha_ = std::move(alpha);
  p.d0_ = std::move(d0);
  p.beta_ = std::move(beta);
  p.Validate();
  return p;
}

DiagonalProblem DiagonalProblem::MakeInterval(DenseMatrix x0,
                                              DenseMatrix gamma, Vector s0,
                                              Vector alpha, Vector s_lo,
                                              Vector s_hi, Vector d0,
                                              Vector beta, Vector d_lo,
                                              Vector d_hi) {
  DiagonalProblem p;
  p.mode_ = TotalsMode::kInterval;
  p.x0_ = std::move(x0);
  p.gamma_ = std::move(gamma);
  p.s0_ = std::move(s0);
  p.alpha_ = std::move(alpha);
  p.s_lo_ = std::move(s_lo);
  p.s_hi_ = std::move(s_hi);
  p.d0_ = std::move(d0);
  p.beta_ = std::move(beta);
  p.d_lo_ = std::move(d_lo);
  p.d_hi_ = std::move(d_hi);
  p.Validate();
  return p;
}

DiagonalProblem DiagonalProblem::MakeSam(DenseMatrix x0, DenseMatrix gamma,
                                         Vector s0, Vector alpha) {
  DiagonalProblem p;
  p.mode_ = TotalsMode::kSam;
  p.x0_ = std::move(x0);
  p.gamma_ = std::move(gamma);
  p.s0_ = std::move(s0);
  p.alpha_ = std::move(alpha);
  p.Validate();
  return p;
}

std::size_t DiagonalProblem::num_variables() const {
  std::size_t nv = m() * n();
  if (mode_ == TotalsMode::kElastic || mode_ == TotalsMode::kInterval)
    nv += m() + n();
  if (mode_ == TotalsMode::kSam) nv += n();
  return nv;
}

void DiagonalProblem::Validate() const {
  SEA_CHECK_MSG(x0_.rows() > 0 && x0_.cols() > 0, "empty matrix");
  SEA_CHECK_MSG(gamma_.SameShape(x0_), "gamma shape mismatch");
  for (double g : gamma_.Flat())
    SEA_CHECK_MSG(g > 0.0, "gamma weights must be strictly positive");

  SEA_CHECK_MSG(s0_.size() == m(), "s0 size mismatch");
  switch (mode_) {
    case TotalsMode::kFixed: {
      SEA_CHECK_MSG(d0_.size() == n(), "d0 size mismatch");
      double ssum = 0.0, dsum = 0.0;
      for (double v : s0_) {
        SEA_CHECK_MSG(v >= 0.0, "fixed row totals must be nonnegative");
        ssum += v;
      }
      for (double v : d0_) {
        SEA_CHECK_MSG(v >= 0.0, "fixed column totals must be nonnegative");
        dsum += v;
      }
      const double scale = std::max({1.0, std::abs(ssum), std::abs(dsum)});
      SEA_CHECK_MSG(std::abs(ssum - dsum) <= 1e-8 * scale,
                    "fixed totals are inconsistent: sum(s0) != sum(d0)");
      break;
    }
    case TotalsMode::kInterval:
      SEA_CHECK_MSG(s_lo_.size() == m() && s_hi_.size() == m(),
                    "row interval size mismatch");
      SEA_CHECK_MSG(d_lo_.size() == n() && d_hi_.size() == n(),
                    "column interval size mismatch");
      for (std::size_t i = 0; i < m(); ++i)
        SEA_CHECK_MSG(0.0 <= s_lo_[i] && s_lo_[i] <= s_hi_[i],
                      "row interval must satisfy 0 <= lo <= hi");
      for (std::size_t j = 0; j < n(); ++j)
        SEA_CHECK_MSG(0.0 <= d_lo_[j] && d_lo_[j] <= d_hi_[j],
                      "column interval must satisfy 0 <= lo <= hi");
      [[fallthrough]];  // interval shares the elastic shape requirements
    case TotalsMode::kElastic: {
      SEA_CHECK_MSG(alpha_.size() == m(), "alpha size mismatch");
      SEA_CHECK_MSG(d0_.size() == n(), "d0 size mismatch");
      SEA_CHECK_MSG(beta_.size() == n(), "beta size mismatch");
      for (double a : alpha_)
        SEA_CHECK_MSG(a > 0.0, "alpha weights must be strictly positive");
      for (double b : beta_)
        SEA_CHECK_MSG(b > 0.0, "beta weights must be strictly positive");
      break;
    }
    case TotalsMode::kSam: {
      SEA_CHECK_MSG(m() == n(), "SAM problems must be square");
      SEA_CHECK_MSG(alpha_.size() == n(), "alpha size mismatch");
      for (double a : alpha_)
        SEA_CHECK_MSG(a > 0.0, "alpha weights must be strictly positive");
      break;
    }
  }
}

double DiagonalProblem::Objective(const DenseMatrix& x, const Vector& s,
                                  const Vector& d) const {
  SEA_CHECK(x.SameShape(x0_));
  double obj = 0.0;
  const auto xf = x.Flat();
  const auto x0f = x0_.Flat();
  const auto gf = gamma_.Flat();
  for (std::size_t k = 0; k < xf.size(); ++k) {
    const double dev = xf[k] - x0f[k];
    obj += gf[k] * dev * dev;
  }
  if (mode_ != TotalsMode::kFixed) {
    SEA_CHECK(s.size() == s0_.size());
    for (std::size_t i = 0; i < s0_.size(); ++i) {
      const double dev = s[i] - s0_[i];
      obj += alpha_[i] * dev * dev;
    }
  }
  if (mode_ == TotalsMode::kElastic || mode_ == TotalsMode::kInterval) {
    SEA_CHECK(d.size() == d0_.size());
    for (std::size_t j = 0; j < d0_.size(); ++j) {
      const double dev = d[j] - d0_[j];
      obj += beta_[j] * dev * dev;
    }
  }
  return obj;
}

}  // namespace sea
