// Synthetic US state-to-state migration table instances mirroring the
// paper's Tables 4 (diagonal, elastic totals) and 8 (general, dense G).
//
// SUBSTITUTION NOTE. The paper uses Tobler's 1955-60 / 1965-70 / 1975-80
// state-to-state migration tables (48x48 after removing Alaska, Hawaii and
// DC). We synthesize 48x48 tables from a gravity model — flows proportional
// to origin/destination populations over squared distance, zero diagonal
// (stayers excluded) — with a distinct stream per "period", and apply the
// paper's exact perturbation protocols:
//
//   a: each row/column total grown by its own factor in [0, 10%];
//      entries unchanged. Totals become inconsistent -> elastic regime.
//   b: as (a) with growth factors in [0, 100%].
//   c: totals kept at the base sums; each entry perturbed by [0, 10%].
//
// Table 4 uses objective (5) with all weights equal to one (as the paper
// states). Table 8 wraps the same tables in a general problem with a dense
// 2304x2304 strictly-diagonally-dominant G ("GMIG*" instances, fixed
// totals).
#pragma once

#include <string>
#include <vector>

#include "problems/diagonal_problem.hpp"
#include "problems/general_problem.hpp"
#include "support/rng.hpp"

namespace sea::datasets {

inline constexpr std::size_t kStates = 48;

struct MigrationSpec {
  std::string name;
  std::uint64_t period_seed = 5560;  // one synthetic stream per period
  char protocol = 'a';               // 'a', 'b', or 'c'
};

// The nine Table 4 rows (MIG5560a ... MIG7580c).
std::vector<MigrationSpec> Table4Specs();

// The six Table 8 rows (GMIG5560a/b, GMIG6570a/b, GMIG7580a/b).
std::vector<MigrationSpec> Table8Specs();

// Gravity-model base table for a period (48x48, zero diagonal).
DenseMatrix MakeMigrationBase(std::uint64_t period_seed);

// Table 4 instance: elastic diagonal problem, unit weights.
DiagonalProblem MakeMigration(const MigrationSpec& spec);

// Table 8 instance: fixed-totals general problem with dense G generated per
// the paper's Section 5.1.1 protocol (diagonal in [500, 800], mixed-sign
// off-diagonals, strictly diagonally dominant).
GeneralProblem MakeGeneralMigration(const MigrationSpec& spec);

}  // namespace sea::datasets
