#include "datasets/general_dense.hpp"

#include "linalg/spd_generators.hpp"
#include "support/check.hpp"

namespace sea::datasets {

std::vector<std::size_t> Table7Sizes() { return {10, 20, 30, 50, 70, 100, 120}; }

GeneralProblem MakeGeneralDense(std::size_t m, std::size_t n, Rng& rng,
                                const GeneralDenseOptions& opts) {
  SEA_CHECK(m > 0 && n > 0);
  const std::size_t mn = m * n;

  DenseMatrix g = MakeDiagonallyDominantSpd(mn, rng, SpdOptions{});

  Vector cx = rng.UniformVector(mn, opts.lin_lo, opts.lin_hi);

  // Totals from a random nonnegative reference plan (guarantees a nonempty,
  // consistent transportation polytope).
  Vector s0(m, 0.0), d0(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = rng.Uniform(opts.plan_lo, opts.plan_hi);
      s0[i] += v;
      d0[j] += v;
    }
  }

  return GeneralProblem::MakeFixed(m, n, std::move(g), std::move(cx),
                                   std::move(s0), std::move(d0));
}

}  // namespace sea::datasets
