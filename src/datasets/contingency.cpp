#include "datasets/contingency.hpp"

#include <cmath>

#include "datasets/weights.hpp"
#include "support/check.hpp"

namespace sea::datasets {

namespace {

// Poisson draw via inversion for small means, normal approximation for
// large ones (adequate for synthetic sampling).
double PoissonDraw(double mean, Rng& rng) {
  if (mean <= 0.0) return 0.0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = rng.NextDouble();
    double k = 0.0;
    while (prod > limit) {
      prod *= rng.NextDouble();
      k += 1.0;
    }
    return k;
  }
  return std::max(0.0, std::round(mean + std::sqrt(mean) * rng.Normal()));
}

}  // namespace

ContingencyInstance MakeContingency(const ContingencySpec& spec) {
  SEA_CHECK(spec.rows > 0 && spec.cols > 0);
  SEA_CHECK(spec.population > 0.0);
  SEA_CHECK(spec.sample_rate > 0.0 && spec.sample_rate <= 1.0);
  SEA_CHECK(spec.association >= 0.0 && spec.association <= 1.0);
  Rng rng(spec.seed);

  // Row/column profiles (Dirichlet-ish via normalized uniforms).
  Vector r = rng.UniformVector(spec.rows, 0.2, 1.0);
  Vector c = rng.UniformVector(spec.cols, 0.2, 1.0);
  double rsum = 0.0, csum = 0.0;
  for (double v : r) rsum += v;
  for (double v : c) csum += v;

  ContingencyInstance inst;
  inst.population = DenseMatrix(spec.rows, spec.cols);
  for (std::size_t i = 0; i < spec.rows; ++i) {
    for (std::size_t j = 0; j < spec.cols; ++j) {
      // Independence baseline times an association tilt that favours cells
      // near the "diagonal" of the category orderings.
      const double indep = (r[i] / rsum) * (c[j] / csum);
      const double fi = double(i) / double(spec.rows);
      const double fj = double(j) / double(spec.cols);
      const double tilt =
          std::exp(-spec.association * 6.0 * (fi - fj) * (fi - fj));
      inst.population(i, j) = indep * tilt;
    }
  }
  // Normalize to the population size.
  double total = 0.0;
  for (double v : inst.population.Flat()) total += v;
  for (double& v : inst.population.Flat())
    v = v / total * spec.population;

  inst.row_margins = inst.population.RowSums();
  inst.col_margins = inst.population.ColSums();

  // Simulated sample: independent Poisson draws with mean rate*cell.
  inst.sample = DenseMatrix(spec.rows, spec.cols);
  for (std::size_t i = 0; i < spec.rows; ++i)
    for (std::size_t j = 0; j < spec.cols; ++j)
      inst.sample(i, j) =
          PoissonDraw(spec.sample_rate * inst.population(i, j), rng);
  return inst;
}

DiagonalProblem MakeAdjustmentProblem(const ContingencyInstance& instance) {
  // Scale the population margins to the realized sample size so the target
  // totals and the sample counts live on the same scale (Deming & Stephan's
  // setting: margins known as proportions).
  double sample_total = 0.0;
  for (double v : instance.sample.Flat()) sample_total += v;
  SEA_CHECK_MSG(sample_total > 0.0, "empty sample");
  double pop_total = 0.0;
  for (double v : instance.row_margins) pop_total += v;

  const double scale = sample_total / pop_total;
  Vector s0 = instance.row_margins;
  Vector d0 = instance.col_margins;
  for (double& v : s0) v *= scale;
  for (double& v : d0) v *= scale;

  DenseMatrix gamma = ChiSquareWeights(instance.sample);
  return DiagonalProblem::MakeFixed(instance.sample, std::move(gamma),
                                    std::move(s0), std::move(d0));
}

}  // namespace sea::datasets
