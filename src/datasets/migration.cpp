#include "datasets/migration.hpp"

#include <cmath>

#include "datasets/weights.hpp"
#include "linalg/spd_generators.hpp"
#include "support/check.hpp"

namespace sea::datasets {

namespace {

std::vector<MigrationSpec> MakeSpecs(const char* prefix,
                                     std::initializer_list<char> protocols) {
  const std::pair<const char*, std::uint64_t> periods[] = {
      {"5560", 5560}, {"6570", 6570}, {"7580", 7580}};
  std::vector<MigrationSpec> specs;
  for (const auto& [label, seed] : periods) {
    for (char proto : protocols) {
      MigrationSpec s;
      s.name = std::string(prefix) + label + proto;
      s.period_seed = seed;
      s.protocol = proto;
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

}  // namespace

std::vector<MigrationSpec> Table4Specs() {
  return MakeSpecs("MIG", {'a', 'b', 'c'});
}

std::vector<MigrationSpec> Table8Specs() {
  return MakeSpecs("GMIG", {'a', 'b'});
}

DenseMatrix MakeMigrationBase(std::uint64_t period_seed) {
  Rng rng(period_seed);
  // State populations (log-uniform across roughly 0.5M..20M, scaled to the
  // magnitude of five-year gross migration flows) and planar coordinates.
  Vector pop(kStates), px(kStates), py(kStates);
  for (std::size_t i = 0; i < kStates; ++i) {
    pop[i] = 0.5e6 * std::exp(rng.Uniform(0.0, std::log(40.0)));
    px[i] = rng.Uniform(0.0, 4000.0);  // km, continental-US scale
    py[i] = rng.Uniform(0.0, 2500.0);
  }
  DenseMatrix x(kStates, kStates, 0.0);
  for (std::size_t i = 0; i < kStates; ++i) {
    for (std::size_t j = 0; j < kStates; ++j) {
      if (j == i) continue;  // stayers are not part of the table
      const double dx = px[i] - px[j], dy = py[i] - py[j];
      const double dist2 = std::max(dx * dx + dy * dy, 100.0 * 100.0);
      // Gravity flow, scaled so typical entries land in the 10^2..10^5
      // range of the historical state-to-state tables.
      x(i, j) = 2e-8 * pop[i] * pop[j] / dist2;
    }
  }
  return x;
}

DiagonalProblem MakeMigration(const MigrationSpec& spec) {
  DenseMatrix x0 = MakeMigrationBase(spec.period_seed);
  Rng rng(spec.period_seed * 0x9e3779b9ULL + spec.protocol);

  Vector s0 = x0.RowSums();
  Vector d0 = x0.ColSums();

  switch (spec.protocol) {
    case 'a':
      for (double& v : s0) v *= 1.0 + rng.Uniform(0.0, 0.10);
      for (double& v : d0) v *= 1.0 + rng.Uniform(0.0, 0.10);
      break;
    case 'b':
      for (double& v : s0) v *= 1.0 + rng.Uniform(0.0, 1.00);
      for (double& v : d0) v *= 1.0 + rng.Uniform(0.0, 1.00);
      break;
    case 'c':
      for (double& v : x0.Flat())
        if (v > 0.0) v *= 1.0 + rng.Uniform(0.0, 0.10);
      break;
    default:
      SEA_CHECK_MSG(false, "unknown migration protocol");
  }

  // Table 4 protocol: all weights equal to one.
  const std::size_t n = kStates;
  return DiagonalProblem::MakeElastic(std::move(x0), UnitWeights(n, n),
                                      std::move(s0), Vector(n, 1.0),
                                      std::move(d0), Vector(n, 1.0));
}

GeneralProblem MakeGeneralMigration(const MigrationSpec& spec) {
  DenseMatrix x0 = MakeMigrationBase(spec.period_seed);
  Rng rng(spec.period_seed * 0x51ed270bULL + spec.protocol);

  Vector s0 = x0.RowSums();
  Vector d0 = x0.ColSums();
  // Fixed-totals regime: grow every total by its own factor in [0, 10%],
  // then rescale the column totals for consistency.
  for (double& v : s0) v *= 1.0 + rng.Uniform(0.0, 0.10);
  for (double& v : d0) v *= 1.0 + rng.Uniform(0.0, 0.10);
  double ssum = 0.0, dsum = 0.0;
  for (double v : s0) ssum += v;
  for (double v : d0) dsum += v;
  for (double& v : d0) v *= ssum / dsum;

  if (spec.protocol == 'b') {
    // Additionally perturb each entry by its own factor in [0, 10%].
    for (double& v : x0.Flat())
      if (v > 0.0) v *= 1.0 + rng.Uniform(0.0, 0.10);
  }

  Rng grng = rng.Split();
  DenseMatrix g =
      MakeDiagonallyDominantSpd(kStates * kStates, grng, SpdOptions{});
  return GeneralProblem::MakeFixedFromCenters(x0, std::move(g), std::move(s0),
                                              std::move(d0));
}

}  // namespace sea::datasets
