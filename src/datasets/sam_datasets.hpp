// Synthetic social accounting matrix (SAM) estimation instances mirroring
// the paper's Table 3 datasets (Section 4.1.2).
//
// SUBSTITUTION NOTE. The paper's SAMs (Stone's classic 5-account example,
// the 1973 Turkish SAM, the 1970 Sri Lanka SAM, the perturbed USDA 1982 US
// SAM, and three random large SAMs) are not redistributable. These
// generators match them on the reported structure:
//
//   STONE    5 accounts,   12 transactions
//   TURK     8 accounts,   19 transactions
//   SRI      6 accounts,   20 transactions
//   USDA82E  133 accounts, 17,689 transactions (fully dense, "difficult")
//   S500     500 accounts, fully dense
//   S750     750 accounts, fully dense
//   S1000    1000 accounts, fully dense
//
// Each instance starts from a *consistent* synthetic SAM (row total i equals
// column total i exactly), then perturbs the transactions so the observed
// data are inconsistent — the estimation problem (objective (9), constraints
// (7)-(8)) must rebalance the accounts.
#pragma once

#include <string>
#include <vector>

#include "problems/diagonal_problem.hpp"
#include "support/rng.hpp"

namespace sea::datasets {

struct SamSpec {
  std::string name;
  std::size_t accounts = 5;
  // Number of nonzero transactions; 0 = fully dense (off-diagonal).
  std::size_t transactions = 0;
  double perturbation = 0.10;  // relative entry perturbation magnitude
  std::uint64_t seed = 1985;
};

// The seven Table 3 rows.
std::vector<SamSpec> Table3Specs();

// Builds a SAM estimation problem (TotalsMode::kSam).
DiagonalProblem MakeSam(const SamSpec& spec);

}  // namespace sea::datasets
