#include "datasets/large_diagonal.hpp"

#include "datasets/weights.hpp"
#include "support/check.hpp"

namespace sea::datasets {

DiagonalProblem MakeLargeDiagonal(std::size_t m, std::size_t n, Rng& rng,
                                  const LargeDiagonalOptions& opts) {
  SEA_CHECK(m > 0 && n > 0);
  SEA_CHECK(opts.value_lo > 0.0 && opts.value_hi >= opts.value_lo);
  SEA_CHECK(opts.density > 0.0 && opts.density <= 1.0);
  SEA_CHECK(opts.total_factor > 0.0);

  DenseMatrix x0(m, n, 0.0);
  for (double& v : x0.Flat())
    if (opts.density >= 1.0 || rng.Bernoulli(opts.density))
      v = rng.Uniform(opts.value_lo, opts.value_hi);

  Vector s0 = x0.RowSums();
  Vector d0 = x0.ColSums();
  for (double& v : s0) v *= opts.total_factor;
  for (double& v : d0) v *= opts.total_factor;

  DenseMatrix gamma = ChiSquareWeights(x0);
  return DiagonalProblem::MakeFixed(std::move(x0), std::move(gamma),
                                    std::move(s0), std::move(d0));
}

}  // namespace sea::datasets
