// Synthetic contingency-table adjustment instances — the statistics
// application in the paper's opening list ("the treatment of census data
// ... and the estimation of contingency tables in statistics"), and the
// problem Deming & Stephan (1940) originally posed: adjust a sampled
// cross-tabulation to known population margins while disturbing the sample
// proportions as little as possible (their weighting gamma_ij = 1/x0_ij is
// the paper's chi-square scheme).
//
// The generator draws a "population" table from independent-ish row/column
// profiles with controllable association, then simulates a sample of given
// size from it. The estimation problem is: given the sample counts and the
// *population* margins, recover the cell structure.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "problems/diagonal_problem.hpp"
#include "support/rng.hpp"

namespace sea::datasets {

struct ContingencySpec {
  std::size_t rows = 6;
  std::size_t cols = 8;
  double population = 1e6;   // total population count
  double sample_rate = 0.01; // expected sampling fraction
  // Association strength: 0 = independent rows/columns, 1 = strongly
  // associated (block-diagonal-ish affinity).
  double association = 0.3;
  std::uint64_t seed = 1940;
};

struct ContingencyInstance {
  DenseMatrix population;  // the (unknown-in-practice) population table
  DenseMatrix sample;      // simulated sample counts (the observed X0)
  Vector row_margins;      // known population row totals
  Vector col_margins;      // known population column totals
};

ContingencyInstance MakeContingency(const ContingencySpec& spec);

// The Deming-Stephan adjustment problem for an instance: chi-square weights
// on the sample counts, fixed population margins (scaled to the sample size
// so the adjustment is comparable to the sample).
DiagonalProblem MakeAdjustmentProblem(const ContingencyInstance& instance);

}  // namespace sea::datasets
