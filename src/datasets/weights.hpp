// Weighting schemes for constrained matrix objectives (paper Section 2).
#pragma once

#include <cmath>

#include "linalg/dense_matrix.hpp"
#include "support/check.hpp"

namespace sea::datasets {

// Chi-square weights gamma_ij = 1 / x0_ij (Deming & Stephan 1940; the
// weighting used throughout the paper's experiments). Cells with x0_ij = 0
// get weight 1/zero_value — a stiff spring keeping near-structural zeros
// near zero while preserving strict convexity.
inline DenseMatrix ChiSquareWeights(const DenseMatrix& x0,
                                    double zero_value = 1e-3) {
  SEA_CHECK(zero_value > 0.0);
  DenseMatrix g(x0.rows(), x0.cols());
  auto out = g.Flat();
  const auto in = x0.Flat();
  for (std::size_t k = 0; k < in.size(); ++k) {
    SEA_CHECK_MSG(in[k] >= 0.0, "base matrix must be nonnegative");
    out[k] = 1.0 / (in[k] > 0.0 ? in[k] : zero_value);
  }
  return g;
}

// Uniform (least-squares) weights (Friedlander 1961).
inline DenseMatrix UnitWeights(std::size_t m, std::size_t n) {
  return DenseMatrix(m, n, 1.0);
}

// Square-root weights gamma_ij = 1 / sqrt(x0_ij) — the paper's alternative
// mixed scheme.
inline DenseMatrix SqrtWeights(const DenseMatrix& x0,
                               double zero_value = 1e-3) {
  SEA_CHECK(zero_value > 0.0);
  DenseMatrix g(x0.rows(), x0.cols());
  auto out = g.Flat();
  const auto in = x0.Flat();
  for (std::size_t k = 0; k < in.size(); ++k) {
    SEA_CHECK_MSG(in[k] >= 0.0, "base matrix must be nonnegative");
    out[k] = 1.0 / std::sqrt(in[k] > 0.0 ? in[k] : zero_value);
  }
  return g;
}

}  // namespace sea::datasets
