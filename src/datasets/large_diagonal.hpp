// Generator for the paper's Table 1 instances: very large diagonal quadratic
// constrained matrix problems with fixed row and column totals.
//
// Protocol (paper Section 4.1.1): m x n matrices from 750x750 to 3000x3000,
// 100% dense, each x0_ij uniform in [.1, 10000] "to simulate the wide spread
// of the initial data characteristic of both input/output and social
// accounting matrices"; weights gamma_ij = 1/x0_ij; row totals
// s0_i = 2 * sum_j x0_ij and column totals d0_j = 2 * sum_i x0_ij (totals are
// consistent by construction: both sum to twice the grand total).
#pragma once

#include "problems/diagonal_problem.hpp"
#include "support/rng.hpp"

namespace sea::datasets {

struct LargeDiagonalOptions {
  double value_lo = 0.1;
  double value_hi = 10000.0;
  double density = 1.0;       // fraction of positive cells
  double total_factor = 2.0;  // totals = factor * base sums
};

DiagonalProblem MakeLargeDiagonal(std::size_t m, std::size_t n, Rng& rng,
                                  const LargeDiagonalOptions& opts = {});

}  // namespace sea::datasets
