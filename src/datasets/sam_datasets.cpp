#include "datasets/sam_datasets.hpp"

#include <algorithm>

#include "datasets/weights.hpp"
#include "support/check.hpp"

namespace sea::datasets {

std::vector<SamSpec> Table3Specs() {
  std::vector<SamSpec> specs;
  auto add = [&specs](std::string name, std::size_t accounts,
                      std::size_t transactions, std::uint64_t seed) {
    SamSpec s;
    s.name = std::move(name);
    s.accounts = accounts;
    s.transactions = transactions;
    s.seed = seed;
    specs.push_back(std::move(s));
  };
  add("STONE", 5, 12, 1962);
  add("TURK", 8, 19, 1973);
  add("SRI", 6, 20, 1970);
  add("USDA82E", 133, 0, 1982);  // fully dense
  add("S500", 500, 0, 500);
  add("S750", 750, 0, 750);
  add("S1000", 1000, 0, 1000);
  return specs;
}

namespace {

// Adds `value` along the directed cycle accounts[0] -> accounts[1] -> ... ->
// accounts[0]. A circulation keeps every account's receipts equal to its
// expenditures, so sums of circulations are exactly balanced SAMs.
void AddCycle(DenseMatrix& x, const std::vector<std::size_t>& accounts,
              double value) {
  for (std::size_t k = 0; k < accounts.size(); ++k) {
    const std::size_t from = accounts[k];
    const std::size_t to = accounts[(k + 1) % accounts.size()];
    x(from, to) += value;
  }
}

// Exactly balanced base SAM. Dense instances start from a symmetric dense
// core (symmetric matrices are trivially balanced) plus random circulations
// that break the symmetry; sparse instances are built from circulations
// alone until the requested transaction count is reached.
DenseMatrix MakeBalancedBase(const SamSpec& spec, Rng& rng) {
  const std::size_t n = spec.accounts;
  DenseMatrix x(n, n, 0.0);

  if (spec.transactions == 0) {
    // Fully dense: symmetric core ...
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double v = rng.Uniform(0.1, 1000.0);
        x(i, j) += v;
        if (j != i) x(j, i) += v;
      }
    }
    // ... plus 4n random circulations to break symmetry.
    std::vector<std::size_t> cyc(3);
    for (std::size_t c = 0; c < 4 * n; ++c) {
      cyc[0] = rng.NextIndex(n);
      do cyc[1] = rng.NextIndex(n); while (cyc[1] == cyc[0]);
      do cyc[2] = rng.NextIndex(n); while (cyc[2] == cyc[0] || cyc[2] == cyc[1]);
      AddCycle(x, cyc, rng.Uniform(10.0, 2000.0));
    }
    return x;
  }

  // Sparse: circulations until the support reaches the transaction count.
  SEA_CHECK_MSG(spec.transactions >= 2, "need at least one 2-cycle");
  std::size_t nnz = 0;
  std::vector<std::size_t> cyc;
  while (nnz < spec.transactions) {
    const std::size_t len = 2 + rng.NextIndex(std::min<std::size_t>(n, 4) - 1);
    cyc.clear();
    while (cyc.size() < len) {
      const std::size_t a = rng.NextIndex(n);
      if (std::find(cyc.begin(), cyc.end(), a) == cyc.end()) cyc.push_back(a);
    }
    AddCycle(x, cyc, rng.Uniform(1.0, 100.0));
    nnz = 0;
    for (double v : x.Flat())
      if (v > 0.0) ++nnz;
  }
  return x;
}

}  // namespace

DiagonalProblem MakeSam(const SamSpec& spec) {
  SEA_CHECK(spec.accounts >= 2);
  Rng rng(spec.seed);
  DenseMatrix x0 = MakeBalancedBase(spec, rng);

  // Perturb the observed transactions so the data are inconsistent (the
  // disparate-sources problem that motivates SAM estimation).
  for (double& v : x0.Flat())
    if (v > 0.0) v *= 1.0 + rng.Uniform(-spec.perturbation, spec.perturbation);

  // Observed total estimates: the average of the (now inconsistent) row and
  // column sums of each account.
  const Vector rows = x0.RowSums();
  const Vector cols = x0.ColSums();
  Vector s0(spec.accounts);
  for (std::size_t i = 0; i < spec.accounts; ++i)
    s0[i] = 0.5 * (rows[i] + cols[i]);

  // Chi-square weights on both transactions and totals.
  Vector alpha(spec.accounts);
  for (std::size_t i = 0; i < spec.accounts; ++i)
    alpha[i] = 1.0 / std::max(s0[i], 1e-3);

  DenseMatrix gamma = ChiSquareWeights(x0);
  return DiagonalProblem::MakeSam(std::move(x0), std::move(gamma),
                                  std::move(s0), std::move(alpha));
}

}  // namespace sea::datasets
