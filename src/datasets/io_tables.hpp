// Synthetic input/output table instances mirroring the paper's Table 2
// datasets (Section 4.1.2).
//
// SUBSTITUTION NOTE. The paper uses the 1972/1977 US construction-activity
// I/O matrices (205 sectors, 52%/58% dense) and the 485-sector 1972 US I/O
// matrix (16% dense), provided by Polenske & Rockler — data we cannot
// redistribute. These generators produce synthetic I/O tables matched on the
// properties SEA's behaviour depends on: dimension, density, value spread,
// chi-square weighting, and the a/b/c update protocols. The dataset names
// keep the paper's labels with their defining parameters:
//
//   IOC72a/IOC72b : 205x205, 52% dense; totals grown by per-row/column
//                   factors drawn from [0, 10%] (a) or [0, 100%] (b).
//   IOC72c        : average over 10 instances; entries additively perturbed
//                   by U[1, 10]; totals kept at the base sums.
//   IOC77*        : as above at 58% density (different base seed).
//   IO72*         : 485x485 at 16% density.
#pragma once

#include <string>
#include <vector>

#include "problems/diagonal_problem.hpp"
#include "support/rng.hpp"

namespace sea::datasets {

struct IoTableSpec {
  std::string name;
  std::size_t size = 205;
  double density = 0.52;
  // Update protocol: 'a'/'b' = grown totals, 'c' = perturbed entries.
  char protocol = 'a';
  double growth_lo = 0.0;
  double growth_hi = 0.10;
  double perturb_lo = 1.0;  // protocol 'c' additive range
  double perturb_hi = 10.0;
  std::size_t replications = 1;  // 'c' averages over 10 in the paper
  std::uint64_t base_seed = 1972;
};

// The nine Table 2 rows.
std::vector<IoTableSpec> Table2Specs();

// Builds one fixed-totals I/O update problem from a spec and a replication
// index (varies the perturbation stream, not the base table).
DiagonalProblem MakeIoTable(const IoTableSpec& spec, std::size_t replication);

// The synthetic base table for a spec (shared across replications).
DenseMatrix MakeIoBase(const IoTableSpec& spec);

}  // namespace sea::datasets
