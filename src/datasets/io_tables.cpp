#include "datasets/io_tables.hpp"

#include "datasets/weights.hpp"
#include "support/check.hpp"

namespace sea::datasets {

std::vector<IoTableSpec> Table2Specs() {
  std::vector<IoTableSpec> specs;
  auto add = [&specs](std::string name, std::size_t size, double density,
                      char protocol, double ghi, std::uint64_t seed) {
    IoTableSpec s;
    s.name = std::move(name);
    s.size = size;
    s.density = density;
    s.protocol = protocol;
    s.growth_hi = ghi;
    if (protocol == 'c') s.replications = 10;
    s.base_seed = seed;
    specs.push_back(std::move(s));
  };
  add("IOC72a", 205, 0.52, 'a', 0.10, 1972);
  add("IOC72b", 205, 0.52, 'b', 1.00, 1972);
  add("IOC72c", 205, 0.52, 'c', 0.0, 1972);
  add("IOC77a", 205, 0.58, 'a', 0.10, 1977);
  add("IOC77b", 205, 0.58, 'b', 1.00, 1977);
  add("IOC77c", 205, 0.58, 'c', 0.0, 1977);
  add("IO72a", 485, 0.16, 'a', 0.10, 4851972);
  add("IO72b", 485, 0.16, 'b', 1.00, 4851972);
  add("IO72c", 485, 0.16, 'c', 0.0, 4851972);
  return specs;
}

DenseMatrix MakeIoBase(const IoTableSpec& spec) {
  SEA_CHECK(spec.size > 0);
  SEA_CHECK(spec.density > 0.0 && spec.density <= 1.0);
  Rng rng(spec.base_seed);
  DenseMatrix x0(spec.size, spec.size, 0.0);
  for (double& v : x0.Flat())
    if (rng.Bernoulli(spec.density)) v = rng.Uniform(0.1, 10000.0);
  return x0;
}

DiagonalProblem MakeIoTable(const IoTableSpec& spec, std::size_t replication) {
  DenseMatrix x0 = MakeIoBase(spec);
  // A distinct stream per replication, independent of the base table.
  Rng rng(spec.base_seed * 0x9e3779b9ULL + 0xD1CE + replication);

  Vector s0 = x0.RowSums();
  Vector d0 = x0.ColSums();

  if (spec.protocol == 'a' || spec.protocol == 'b') {
    // Grow each total by its own factor, then rescale the column totals so
    // the fixed-totals problem stays consistent (sum s0 == sum d0).
    for (double& v : s0) v *= 1.0 + rng.Uniform(spec.growth_lo, spec.growth_hi);
    for (double& v : d0) v *= 1.0 + rng.Uniform(spec.growth_lo, spec.growth_hi);
    double ssum = 0.0, dsum = 0.0;
    for (double v : s0) ssum += v;
    for (double v : d0) dsum += v;
    const double rescale = ssum / dsum;
    for (double& v : d0) v *= rescale;
  } else {
    SEA_CHECK_MSG(spec.protocol == 'c', "unknown protocol");
    // Perturb the entries; keep the base totals (the estimation problem is
    // to pull the perturbed matrix back onto the base margins). Only the
    // table's support is perturbed — structural zeros stay zero.
    for (double& v : x0.Flat())
      if (v > 0.0) v += rng.Uniform(spec.perturb_lo, spec.perturb_hi);
  }

  DenseMatrix gamma = ChiSquareWeights(x0);
  return DiagonalProblem::MakeFixed(std::move(x0), std::move(gamma),
                                    std::move(s0), std::move(d0));
}

}  // namespace sea::datasets
