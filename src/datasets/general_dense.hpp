// Generator for the paper's Table 7 instances: general quadratic constrained
// matrix problems with 100% dense G, used for the SEA / RC / B-K comparison.
//
// Protocol (paper Section 5.1.1): X0 matrices from 10x10 to 120x120 (G from
// 100x100 to 14400x14400); G symmetric, strictly diagonally dominant, diagonal
// terms in [500, 800], negative off-diagonal elements allowed (simulating
// variance-covariance structure); linear term coefficients uniform in
// [100, 1000]. Row/column totals are taken from a random nonnegative
// reference plan so the transportation polytope is nonempty.
#pragma once

#include <vector>

#include "problems/general_problem.hpp"
#include "support/rng.hpp"

namespace sea::datasets {

struct GeneralDenseOptions {
  double lin_lo = 100.0;
  double lin_hi = 1000.0;
  double plan_lo = 0.1;   // reference plan entries for the totals
  double plan_hi = 100.0;
};

GeneralProblem MakeGeneralDense(std::size_t m, std::size_t n, Rng& rng,
                                const GeneralDenseOptions& opts = {});

// The Table 7 sweep: X0 sizes 10, 20, 30, 50, 70, 100, 120 (G dimensions
// 100 ... 14400).
std::vector<std::size_t> Table7Sizes();

}  // namespace sea::datasets
