#include "entropy/entropy_sea.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

void EntropyProblem::Validate() const {
  SEA_CHECK_MSG(x0.rows() > 0 && x0.cols() > 0, "empty problem");
  for (double v : x0.Flat())
    SEA_CHECK_MSG(v >= 0.0, "base matrix must be nonnegative");
  SEA_CHECK_MSG(s0.size() == x0.rows() && d0.size() == x0.cols(),
                "totals size mismatch");
  double ssum = 0.0, dsum = 0.0;
  for (double v : s0) {
    SEA_CHECK_MSG(v >= 0.0, "totals must be nonnegative");
    ssum += v;
  }
  for (double v : d0) {
    SEA_CHECK_MSG(v >= 0.0, "totals must be nonnegative");
    dsum += v;
  }
  SEA_CHECK_MSG(std::abs(ssum - dsum) <= 1e-8 * std::max({1.0, ssum, dsum}),
                "totals are inconsistent");
}

double EntropyObjective(const DenseMatrix& x, const DenseMatrix& x0) {
  SEA_CHECK(x.SameShape(x0));
  double obj = 0.0;
  const auto xf = x.Flat();
  const auto bf = x0.Flat();
  for (std::size_t k = 0; k < xf.size(); ++k) {
    SEA_CHECK_MSG(xf[k] >= 0.0, "estimate must be nonnegative");
    if (bf[k] == 0.0) {
      SEA_CHECK_MSG(xf[k] == 0.0,
                    "estimate must vanish on the base matrix's zeros");
      continue;
    }
    if (xf[k] > 0.0) obj += xf[k] * std::log(xf[k] / bf[k]) - xf[k];
    obj += bf[k];
  }
  return obj;
}

double EntropyDualValue(const EntropyProblem& p, const Vector& lambda,
                        const Vector& mu) {
  const std::size_t m = p.x0.rows(), n = p.x0.cols();
  SEA_CHECK(lambda.size() == m && mu.size() == n);
  double val = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = p.x0.Row(i);
    for (std::size_t j = 0; j < n; ++j)
      if (row[j] > 0.0)
        val += row[j] * (1.0 - std::exp(lambda[i] + mu[j]));
  }
  for (std::size_t i = 0; i < m; ++i) val += lambda[i] * p.s0[i];
  for (std::size_t j = 0; j < n; ++j) val += mu[j] * p.d0[j];
  return val;
}

EntropySeaRun SolveEntropy(const EntropyProblem& p, const SeaOptions& opts) {
  p.Validate();
  SEA_CHECK(opts.epsilon > 0.0);
  SEA_CHECK(opts.check_every >= 1);
  const std::size_t m = p.x0.rows(), n = p.x0.cols();

  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  EntropySeaRun run;
  run.lambda.assign(m, 0.0);
  run.mu.assign(n, 0.0);
  run.x = p.x0;
  SeaResult& result = run.result;

  // A row (column) with empty support but a positive target makes the
  // problem infeasible regardless of iteration; detect up front.
  {
    const Vector rows = p.x0.RowSums();
    const Vector cols = p.x0.ColSums();
    for (std::size_t i = 0; i < m; ++i)
      if (rows[i] == 0.0 && p.s0[i] > 0.0) return run;
    for (std::size_t j = 0; j < n; ++j)
      if (cols[j] == 0.0 && p.d0[j] > 0.0) return run;
  }

  DenseMatrix x_prev;
  bool have_prev = false;
  Vector exp_mu(n), exp_lambda(m);

  for (std::size_t t = 1; t <= opts.max_iterations; ++t) {
    const bool check_now =
        (t % opts.check_every == 0) || (t == opts.max_iterations);

    // ---- Row step: exact dual maximization over lambda (a row scaling).
    for (std::size_t j = 0; j < n; ++j) exp_mu[j] = std::exp(run.mu[j]);
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = p.x0.Row(i);
      double denom = 0.0;
      for (std::size_t j = 0; j < n; ++j) denom += row[j] * exp_mu[j];
      if (denom > 0.0) {
        // s0 == 0 legitimately drives the scaling to -inf; divergent
        // (infeasible) instances drive it to +inf. Clamp to +-700 so the
        // iterate stays finite and the residual check reports the failure
        // instead of silently comparing NaNs.
        run.lambda[i] =
            (p.s0[i] > 0.0)
                ? std::clamp(std::log(p.s0[i] / denom), -700.0, 700.0)
                : -700.0;
      }
      result.ops.flops += 2 * n + 2;
    }

    // ---- Column step: exact dual maximization over mu (a column scaling),
    // materializing x for the convergence check.
    for (std::size_t i = 0; i < m; ++i)
      exp_lambda[i] = std::exp(run.lambda[i]);
    for (std::size_t j = 0; j < n; ++j) {
      double denom = 0.0;
      for (std::size_t i = 0; i < m; ++i)
        denom += p.x0(i, j) * exp_lambda[i];
      if (denom > 0.0)
        run.mu[j] =
            (p.d0[j] > 0.0)
                ? std::clamp(std::log(p.d0[j] / denom), -700.0, 700.0)
                : -700.0;
      result.ops.flops += 2 * m + 2;
    }
    result.iterations = t;

    if (!check_now) continue;

    for (std::size_t j = 0; j < n; ++j) exp_mu[j] = std::exp(run.mu[j]);
    for (std::size_t i = 0; i < m; ++i) {
      const auto base = p.x0.Row(i);
      auto xi = run.x.Row(i);
      for (std::size_t j = 0; j < n; ++j)
        xi[j] = base[j] * exp_lambda[i] * exp_mu[j];
    }

    double measure = 0.0;
    if (opts.criterion == StopCriterion::kXChange) {
      measure = have_prev ? run.x.MaxAbsDiff(x_prev)
                          : std::numeric_limits<double>::infinity();
      x_prev = run.x;
      have_prev = true;
    } else {
      // Columns are exact after the column step; measure row residuals.
      const Vector rows = run.x.RowSums();
      for (std::size_t i = 0; i < m; ++i) {
        double r = std::abs(rows[i] - p.s0[i]);
        if (opts.criterion == StopCriterion::kResidualRel)
          r /= std::max(1.0, std::abs(p.s0[i]));
        measure = std::max(measure, r);
      }
    }
    result.ops.flops += 2 * static_cast<std::uint64_t>(m) * n;
    result.final_residual = measure;
    if (measure <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }

  // On divergent (infeasible-support) runs the scalings blow up and the
  // iterate is not a valid estimate; report an infinite objective instead of
  // tripping the objective's own validation.
  bool finite = true;
  for (double v : run.x.Flat())
    if (!std::isfinite(v) || v < 0.0) finite = false;
  result.objective = (result.converged && finite)
                         ? EntropyObjective(run.x, p.x0)
                         : std::numeric_limits<double>::infinity();
  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  return run;
}

EntropySamRun SolveEntropySam(const DenseMatrix& x0, const SeaOptions& opts) {
  SEA_CHECK_MSG(x0.rows() == x0.cols(), "SAM balancing needs a square matrix");
  for (double v : x0.Flat())
    SEA_CHECK_MSG(v >= 0.0, "base matrix must be nonnegative");
  SEA_CHECK(opts.epsilon > 0.0);
  const std::size_t n = x0.rows();

  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  EntropySamRun run;
  run.nu.assign(n, 0.0);
  run.x = x0;
  SeaResult& result = run.result;

  Vector expp(n, 1.0), expm(n, 1.0);  // e^{nu}, e^{-nu}

  for (std::size_t t = 1; t <= opts.max_iterations; ++t) {
    const bool check_now =
        (t % opts.check_every == 0) || (t == opts.max_iterations);

    // Gauss-Seidel over the potentials with exact coordinate maximization.
    for (std::size_t i = 0; i < n; ++i) {
      double receipts = 0.0;   // sum_j x0_ji e^{nu_j}, j != i
      double expenses = 0.0;   // sum_j x0_ij e^{-nu_j}, j != i
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        receipts += x0(j, i) * expp[j];
        expenses += x0(i, j) * expm[j];
      }
      result.ops.flops += 4 * n;
      if (receipts > 0.0 && expenses > 0.0) {
        const double nu =
            std::clamp(0.5 * std::log(receipts / expenses), -700.0, 700.0);
        run.nu[i] = nu;
        expp[i] = std::exp(nu);
        expm[i] = 1.0 / expp[i];
      }
      // An account with one empty off-diagonal side balances trivially
      // (its flows all vanish or are diagonal); keep nu_i = 0.
    }
    result.iterations = t;
    if (!check_now) continue;

    // Materialize and measure the worst relative account imbalance.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        run.x(i, j) = x0(i, j) * expp[i] * expm[j];
    double measure = 0.0;
    const Vector rows = run.x.RowSums();
    const Vector cols = run.x.ColSums();
    for (std::size_t i = 0; i < n; ++i)
      measure = std::max(measure, std::abs(rows[i] - cols[i]) /
                                      std::max(1.0, rows[i]));
    result.ops.flops += 3 * static_cast<std::uint64_t>(n) * n;
    result.final_residual = measure;
    if (measure <= opts.epsilon) {
      result.converged = true;
      break;
    }
  }

  result.objective = result.converged ? EntropyObjective(run.x, x0)
                                      : std::numeric_limits<double>::infinity();
  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  return run;
}

}  // namespace sea
