#include "entropy/entropy_sea.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/iteration_engine.hpp"
#include "core/stopping.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"

namespace sea {

void EntropyProblem::Validate() const {
  SEA_CHECK_MSG(x0.rows() > 0 && x0.cols() > 0, "empty problem");
  for (double v : x0.Flat())
    SEA_CHECK_MSG(v >= 0.0, "base matrix must be nonnegative");
  SEA_CHECK_MSG(s0.size() == x0.rows() && d0.size() == x0.cols(),
                "totals size mismatch");
  double ssum = 0.0, dsum = 0.0;
  for (double v : s0) {
    SEA_CHECK_MSG(v >= 0.0, "totals must be nonnegative");
    ssum += v;
  }
  for (double v : d0) {
    SEA_CHECK_MSG(v >= 0.0, "totals must be nonnegative");
    dsum += v;
  }
  SEA_CHECK_MSG(std::abs(ssum - dsum) <= 1e-8 * std::max({1.0, ssum, dsum}),
                "totals are inconsistent");
}

double EntropyObjective(const DenseMatrix& x, const DenseMatrix& x0) {
  SEA_CHECK(x.SameShape(x0));
  double obj = 0.0;
  const auto xf = x.Flat();
  const auto bf = x0.Flat();
  for (std::size_t k = 0; k < xf.size(); ++k) {
    SEA_CHECK_MSG(xf[k] >= 0.0, "estimate must be nonnegative");
    if (bf[k] == 0.0) {
      SEA_CHECK_MSG(xf[k] == 0.0,
                    "estimate must vanish on the base matrix's zeros");
      continue;
    }
    if (xf[k] > 0.0) obj += xf[k] * std::log(xf[k] / bf[k]) - xf[k];
    obj += bf[k];
  }
  return obj;
}

double EntropyDualValue(const EntropyProblem& p, const Vector& lambda,
                        const Vector& mu) {
  const std::size_t m = p.x0.rows(), n = p.x0.cols();
  SEA_CHECK(lambda.size() == m && mu.size() == n);
  double val = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = p.x0.Row(i);
    for (std::size_t j = 0; j < n; ++j)
      if (row[j] > 0.0)
        val += row[j] * (1.0 - std::exp(lambda[i] + mu[j]));
  }
  for (std::size_t i = 0; i < m; ++i) val += lambda[i] * p.s0[i];
  for (std::size_t j = 0; j < n; ++j) val += mu[j] * p.d0[j];
  return val;
}

namespace {

// Entropy (RAS) backend for the shared iteration engine. The sweeps are
// closed-form row/column scalings (no breakpoints, no per-market task
// costs); x is only materialized at check time, from the scaling factors.
class EntropyBackend final : public SeaIterationBackend {
 public:
  EntropyBackend(const EntropyProblem& p, Vector& lambda, Vector& mu,
                 DenseMatrix& x)
      : p_(p),
        lambda_(lambda),
        mu_(mu),
        x_(x),
        exp_mu_(p.x0.cols()),
        exp_lambda_(p.x0.rows()),
        lambda_good_(p.x0.rows(), 0.0),
        mu_good_(p.x0.cols(), 0.0) {}

  // Row step: exact dual maximization over lambda (a row scaling).
  SweepStats RowSweep() override {
    const std::size_t m = p_.x0.rows(), n = p_.x0.cols();
    SweepStats stats;
    for (std::size_t j = 0; j < n; ++j) exp_mu_[j] = std::exp(mu_[j]);
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = p_.x0.Row(i);
      double denom = 0.0;
      for (std::size_t j = 0; j < n; ++j) denom += row[j] * exp_mu_[j];
      if (denom > 0.0) {
        // s0 == 0 legitimately drives the scaling to -inf; divergent
        // (infeasible) instances drive it to +inf. Clamp to +-700 so the
        // iterate stays finite and the residual check reports the failure
        // instead of silently comparing NaNs.
        lambda_[i] =
            (p_.s0[i] > 0.0)
                ? std::clamp(std::log(p_.s0[i] / denom), -700.0, 700.0)
                : -700.0;
      }
      stats.total_ops.flops += 2 * n + 2;
    }
    // Fault injection AFTER the sweep so the poison survives into the
    // check (the sweep body overwrites every lambda it computes).
    SEA_FAILPOINT_SITE("sea.entropy.poison_lambda")
    if (fail::Triggered("sea.entropy.poison_lambda"))
      lambda_[0] = std::numeric_limits<double>::quiet_NaN();
    return stats;
  }

  // Column step: exact dual maximization over mu (a column scaling).
  SweepStats ColSweep(bool /*materialize*/) override {
    const std::size_t m = p_.x0.rows(), n = p_.x0.cols();
    SweepStats stats;
    for (std::size_t i = 0; i < m; ++i)
      exp_lambda_[i] = std::exp(lambda_[i]);
    for (std::size_t j = 0; j < n; ++j) {
      double denom = 0.0;
      for (std::size_t i = 0; i < m; ++i)
        denom += p_.x0(i, j) * exp_lambda_[i];
      if (denom > 0.0)
        mu_[j] = (p_.d0[j] > 0.0)
                     ? std::clamp(std::log(p_.d0[j] / denom), -700.0, 700.0)
                     : -700.0;
      stats.total_ops.flops += 2 * m + 2;
    }
    return stats;
  }

  // Materialize x = x0 .* exp(lambda_i + mu_j) for the check.
  void BeginCheck() override {
    const std::size_t m = p_.x0.rows(), n = p_.x0.cols();
    for (std::size_t j = 0; j < n; ++j) exp_mu_[j] = std::exp(mu_[j]);
    for (std::size_t i = 0; i < m; ++i) {
      const auto base = p_.x0.Row(i);
      auto xi = x_.Row(i);
      for (std::size_t j = 0; j < n; ++j)
        xi[j] = base[j] * exp_lambda_[i] * exp_mu_[j];
    }
  }

  double ResidualMeasure(StopCriterion c) override {
    // Columns are exact after the column step; measure row residuals
    // against the fixed targets.
    const Vector rows = x_.RowSums();
    ResidualTargets targets;
    targets.mode = TotalsMode::kFixed;
    targets.s0 = p_.s0;
    return MaxRowResidual(c, rows, targets);
  }

  double DiffFromSnapshot() override { return x_.MaxAbsDiff(x_prev_); }
  void SnapshotIterate() override { x_prev_ = x_; }

  std::uint64_t CheckCost() const override {
    return 2 * static_cast<std::uint64_t>(p_.x0.rows()) * p_.x0.cols();
  }

  // Breakdown recovery: the duals are the whole iterate state, so capturing
  // them is O(m + n); restore re-derives the scalings and re-materializes x.
  void SaveGoodIterate() override {
    lambda_good_ = lambda_;
    mu_good_ = mu_;
  }
  void RestoreGoodIterate() override {
    lambda_ = lambda_good_;
    mu_ = mu_good_;
    for (std::size_t i = 0; i < lambda_.size(); ++i)
      exp_lambda_[i] = std::exp(lambda_[i]);
    BeginCheck();  // rebuilds exp_mu_ and x from the restored duals
  }

 private:
  const EntropyProblem& p_;
  Vector& lambda_;
  Vector& mu_;
  DenseMatrix& x_;
  Vector exp_mu_, exp_lambda_;
  DenseMatrix x_prev_;
  // Last duals that passed a finite check (initialized to the start point,
  // so a first-check breakdown still restores to x = x0 scalings).
  Vector lambda_good_, mu_good_;
};

}  // namespace

EntropySeaRun SolveEntropy(const EntropyProblem& p, const SeaOptions& opts) {
  p.Validate();
  const std::size_t m = p.x0.rows(), n = p.x0.cols();

  EntropySeaRun run;
  run.lambda.assign(m, 0.0);
  run.mu.assign(n, 0.0);
  run.x = p.x0;
  SeaResult& result = run.result;

  // A row (column) with empty support but a positive target makes the
  // problem infeasible regardless of iteration; diagnose up front and skip
  // the solve entirely (the returned estimate is the base matrix).
  {
    const Vector rows = p.x0.RowSums();
    const Vector cols = p.x0.ColSums();
    bool infeasible = false;
    for (std::size_t i = 0; i < m; ++i)
      if (rows[i] == 0.0 && p.s0[i] > 0.0) infeasible = true;
    for (std::size_t j = 0; j < n; ++j)
      if (cols[j] == 0.0 && p.d0[j] > 0.0) infeasible = true;
    if (infeasible) {
      result.status = SolveStatus::kInfeasible;
      result.objective = std::numeric_limits<double>::infinity();
      return run;
    }
  }

  EntropyBackend backend(p, run.lambda, run.mu, run.x);
  result = RunIterationEngine(backend, opts);

  // Degraded terminations (the engine's stall / breakdown / budget guards)
  // return the last good iterate but no valid estimate; the objective is
  // defined only at convergence.
  result.objective = result.converged()
                         ? EntropyObjective(run.x, p.x0)
                         : std::numeric_limits<double>::infinity();
  return run;
}

namespace {

// Entropy SAM-balancing backend. The whole iteration is one Gauss-Seidel
// pass over the potentials, so it runs as the engine's row half-step and
// the column half-step is empty; the native stopping measure is the worst
// relative account imbalance regardless of the requested criterion.
class EntropySamBackend final : public SeaIterationBackend {
 public:
  EntropySamBackend(const DenseMatrix& x0, Vector& nu, DenseMatrix& x)
      : x0_(x0),
        nu_(nu),
        x_(x),
        expp_(x0.rows(), 1.0),    // e^{nu}
        expm_(x0.rows(), 1.0),    // e^{-nu}
        nu_good_(x0.rows(), 0.0) {}

  // Gauss-Seidel over the potentials with exact coordinate maximization.
  SweepStats RowSweep() override {
    const std::size_t n = x0_.rows();
    SweepStats stats;
    for (std::size_t i = 0; i < n; ++i) {
      double receipts = 0.0;   // sum_j x0_ji e^{nu_j}, j != i
      double expenses = 0.0;   // sum_j x0_ij e^{-nu_j}, j != i
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        receipts += x0_(j, i) * expp_[j];
        expenses += x0_(i, j) * expm_[j];
      }
      stats.total_ops.flops += 4 * n;
      if (receipts > 0.0 && expenses > 0.0) {
        const double nu =
            std::clamp(0.5 * std::log(receipts / expenses), -700.0, 700.0);
        nu_[i] = nu;
        expp_[i] = std::exp(nu);
        expm_[i] = 1.0 / expp_[i];
      }
      // An account with one empty off-diagonal side balances trivially
      // (its flows all vanish or are diagonal); keep nu_i = 0.
    }
    return stats;
  }

  SweepStats ColSweep(bool /*materialize*/) override { return {}; }

  void BeginCheck() override {
    const std::size_t n = x0_.rows();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        x_(i, j) = x0_(i, j) * expp_[i] * expm_[j];
  }

  // Account balancing has one native measure; honor it for any request.
  StopCriterion EffectiveCriterion(StopCriterion /*c*/) const override {
    return StopCriterion::kResidualRel;
  }

  // Worst relative account imbalance of the materialized iterate.
  double ResidualMeasure(StopCriterion /*c*/) override {
    const std::size_t n = x0_.rows();
    double measure = 0.0;
    const Vector rows = x_.RowSums();
    const Vector cols = x_.ColSums();
    for (std::size_t i = 0; i < n; ++i)
      measure = std::max(measure, std::abs(rows[i] - cols[i]) /
                                      std::max(1.0, rows[i]));
    return measure;
  }

  // Unreachable: EffectiveCriterion never selects kXChange.
  double DiffFromSnapshot() override { return 0.0; }
  void SnapshotIterate() override {}

  std::uint64_t CheckCost() const override {
    return 3 * static_cast<std::uint64_t>(x0_.rows()) * x0_.rows();
  }

  void SaveGoodIterate() override { nu_good_ = nu_; }
  void RestoreGoodIterate() override {
    nu_ = nu_good_;
    for (std::size_t i = 0; i < nu_.size(); ++i) {
      expp_[i] = std::exp(nu_[i]);
      expm_[i] = 1.0 / expp_[i];
    }
    BeginCheck();  // re-materialize x from the restored potentials
  }

 private:
  const DenseMatrix& x0_;
  Vector& nu_;
  DenseMatrix& x_;
  Vector expp_, expm_;
  Vector nu_good_;
};

}  // namespace

EntropySamRun SolveEntropySam(const DenseMatrix& x0, const SeaOptions& opts) {
  SEA_CHECK_MSG(x0.rows() == x0.cols(), "SAM balancing needs a square matrix");
  for (double v : x0.Flat())
    SEA_CHECK_MSG(v >= 0.0, "base matrix must be nonnegative");
  const std::size_t n = x0.rows();

  EntropySamRun run;
  run.nu.assign(n, 0.0);
  run.x = x0;

  EntropySamBackend backend(x0, run.nu, run.x);
  run.result = RunIterationEngine(backend, opts);
  SeaResult& result = run.result;

  result.objective = result.converged()
                         ? EntropyObjective(run.x, x0)
                         : std::numeric_limits<double>::infinity();
  return run;
}

}  // namespace sea
