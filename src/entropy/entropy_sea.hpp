// Minimum cross-entropy constrained matrix estimation — the RAS objective,
// computed as a splitting equilibration.
//
// The paper's introduction identifies RAS (Deming & Stephan 1940; Bacharach
// 1970) as the most widely applied method in practice and contrasts it with
// SEA's quadratic objective. The two sit in one framework: RAS solves
//
//   minimize  sum_ij x_ij (ln(x_ij / x0_ij) - 1)
//   subject to  sum_j x_ij = s0_i,  sum_i x_ij = d0_j,  x >= 0,
//
// and the *same* dual block-coordinate maximization that gives SEA gives
// RAS. Stationarity yields the biproportional form
// x_ij = x0_ij e^{lambda_i} e^{mu_j}; the row step's exact block maximization
// has the closed form e^{lambda_i} = s0_i / sum_j x0_ij e^{mu_j} — a row
// scaling. Alternating row/column steps IS the RAS iteration, so this solver
// makes the paper's "RAS is the entropy member of the family" claim
// executable: same splitting, different Bregman geometry, no sorting needed
// (the entropy market clears in closed form without breakpoints).
//
// Unlike the quadratic SEA, the entropy estimate cannot move off the support
// of X0 (structural zeros are fixed points of scaling), which is exactly why
// RAS fails on the Mohr-Crown-Polenske instances — certify feasibility first
// with sparse/feasibility_flow.hpp.
#pragma once

#include "core/options.hpp"
#include "core/result.hpp"
#include "linalg/dense_matrix.hpp"

namespace sea {

struct EntropyProblem {
  DenseMatrix x0;  // nonnegative base matrix
  Vector s0, d0;   // fixed totals, consistent (sum s0 == sum d0)

  void Validate() const;
};

// KL divergence objective: sum over the support of
// x ln(x/x0) - x + x0 (nonnegative; zero at x == x0).
double EntropyObjective(const DenseMatrix& x, const DenseMatrix& x0);

// Dual function of the entropy problem at (lambda, mu):
// -sum_ij x0 e^{lambda_i + mu_j} + sum_i lambda_i s0_i + sum_j mu_j d0_j
// + sum_ij x0   (so that strong duality gives the primal objective).
double EntropyDualValue(const EntropyProblem& p, const Vector& lambda,
                        const Vector& mu);

struct EntropySeaRun {
  DenseMatrix x;
  Vector lambda, mu;  // log scaling factors: x = x0 .* exp(lambda_i + mu_j)
  SeaResult result;
};

// Alternating exact row/column dual maximization (== RAS). Uses
// opts.epsilon / opts.criterion / opts.max_iterations / opts.check_every;
// sort_policy is ignored (entropy markets clear in closed form).
// A zero-support row/column with a positive target is diagnosed up front as
// SolveStatus::kInfeasible (no iteration runs); supports on which the
// scaling iteration pins at a non-solution fixed point terminate with
// kStalled (or kNumericalBreakdown if the iterate overflows), with the last
// good iterate returned — see docs/ROBUSTNESS.md.
EntropySeaRun SolveEntropy(const EntropyProblem& problem,
                           const SeaOptions& opts);

// Entropy SAM balancing: minimize the cross-entropy distance to X0 subject
// only to the balance constraints (account i's receipts equal its
// expenditures; totals free) —
//
//   minimize  sum_ij x_ij (ln(x_ij/x0_ij) - 1)
//   s.t.      sum_j x_ij = sum_j x_ji  for all i.
//
// Stationarity gives x_ij = x0_ij e^{nu_i - nu_j}; coordinatewise exact dual
// maximization has the closed form
// e^{2 nu_i} = (sum_j x0_ji e^{nu_j}) / (sum_j x0_ij e^{-nu_j}) — the
// classical biproportional account-balancing iteration. Diagonal cells are
// invariant (e^{nu_i - nu_i} = 1), matching their role in SAMs.
struct EntropySamRun {
  DenseMatrix x;
  Vector nu;  // log potentials: x = x0 .* exp(nu_i - nu_j)
  SeaResult result;
};

EntropySamRun SolveEntropySam(const DenseMatrix& x0, const SeaOptions& opts);

}  // namespace sea
