// Fault-injection failpoints (docs/ROBUSTNESS.md).
//
// A failpoint is a named site in production code where a test can inject a
// failure: NaN-poison an iterate at iteration k, throw inside a thread-pool
// task, fail a trace-sink write mid-run. The registry exists so the
// guardrail layer's degradation paths are provable — every recovery branch
// has a test that actually forces the failure through it.
//
// Usage (tests only; see tests/test_faults.cpp):
//   sea::fail::Arm("sea.pool.task", 3);   // fire from the 3rd hit onward
//   ... run the solve ...
//   sea::fail::DisarmAll();
//
// Sites call Triggered(name) — or MaybeThrow(name) for throw-style faults —
// at the injection point. The disarmed fast path is a single relaxed atomic
// load shared by all sites, so shipping the hooks in release builds costs
// one predictable branch per site visit.
//
// Registered sites (append-only; grep SEA_FAILPOINT_SITE for ground truth):
//   sea.engine.poison_measure   check measure becomes NaN (iteration engine)
//   sea.engine.freeze_measure   check measure pinned at the previous check's
//                               value (drives the stall detector)
//   sea.entropy.poison_lambda   lambda[0] becomes NaN before a row sweep
//   sea.pool.task               throws std::runtime_error inside a pool chunk
//   sea.obs.trace_write         JSONL trace sink stream enters a failed state
//   sea.obs.profile_write       profiler Chrome-trace export stream fails
//   sea.obs.postmortem_write    flight-recorder postmortem write fails
//   sea.support.atomic_write    an AtomicFileWriter attempt's stream fails
//                               (each armed visit fails one write attempt)
//   sea.support.atomic_append   an AtomicFileWriter::Append attempt's
//                               stream fails (wide-event solve log path)
//   sea.engine.crash_after_checkpoint  std::abort() right after a checkpoint
//                               write lands (the CI crash-resume smoke)
//
// CLI fault injection: tools call ArmFromEnv() at startup, so CI smokes can
// force a failure class on a production binary via the SEA_FAILPOINTS
// environment variable ("site[:at_hit[:count]],..."). Library code never
// reads the environment.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sea::fail {

namespace internal {
// Count of currently armed failpoints; the fast path for every site.
extern std::atomic<int> armed_count;
bool TriggeredSlow(const char* name);
}  // namespace internal

// Arm `name` to fire on the at_hit-th visit (1-based) and every visit after,
// until disarmed. Re-arming resets the hit counter. A finite `fire_count`
// bounds the window: the site fires on visits [at_hit, at_hit + fire_count)
// and then goes quiet again — transient-fault injection (a recovery that
// should eventually *succeed* arms a window, not a permanent failure).
// fire_count = 0 means unbounded (the default, the historical behavior).
void Arm(const std::string& name, std::uint64_t at_hit = 1,
         std::uint64_t fire_count = 0);

// Disarm one site / all sites (hit counters reset).
void Disarm(const std::string& name);
void DisarmAll();

// Visits observed since the site was armed (0 when disarmed).
std::uint64_t HitCount(const std::string& name);

// Records a visit to the site and reports whether the fault should fire.
inline bool Triggered(const char* name) {
  if (internal::armed_count.load(std::memory_order_relaxed) == 0)
    return false;
  return internal::TriggeredSlow(name);
}

// Throw-style site: throws std::runtime_error("failpoint <name> fired").
void MaybeThrow(const char* name);

// Arms every failpoint named in a "site[:at_hit[:count]],..." spec
// (whitespace around separators tolerated; empty entries skipped; a missing
// or unparsable :at_hit defaults to 1; a missing :count defaults to
// unbounded). Returns the number of sites armed.
std::size_t ArmFromSpec(const std::string& spec);

// ArmFromSpec over the SEA_FAILPOINTS environment variable; unset or empty
// arms nothing. Call from tool main()s only.
std::size_t ArmFromEnv();

}  // namespace sea::fail

// Marker for grep-ability at injection sites; expands to nothing.
#define SEA_FAILPOINT_SITE(name)
