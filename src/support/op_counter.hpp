// Operation accounting for the equilibration kernels.
//
// The paper's complexity analysis (Section 3.1) charges each row/column exact
// equilibration 7n + n ln n + 2n operations and predicts the parallel speedup
// from how this work distributes over processors against the serial
// convergence-verification phase. We instrument the kernels with exact
// per-subproblem counts so the schedule simulator (parallel/speedup_model.hpp)
// can reproduce the paper's Tables 6 and 9 on any host.
#pragma once

#include <cstdint>

namespace sea {

struct OpCounts {
  std::uint64_t comparisons = 0;  // sort + sweep comparisons
  std::uint64_t flops = 0;        // floating-point add/mul in kernel + sweeps
  std::uint64_t breakpoints = 0;  // segments examined
  // Element moves performed by the sort-reuse repair pass (SortPolicy::
  // kReuse): how far the market's breakpoint order drifted since the
  // previous sweep. Near zero once the multipliers converge.
  std::uint64_t inversions = 0;

  OpCounts& operator+=(const OpCounts& o) {
    comparisons += o.comparisons;
    flops += o.flops;
    breakpoints += o.breakpoints;
    inversions += o.inversions;
    return *this;
  }

  // Difference of cumulative counts (telemetry per-check deltas); callers
  // guarantee o is an earlier snapshot of the same accumulation.
  OpCounts& operator-=(const OpCounts& o) {
    comparisons -= o.comparisons;
    flops -= o.flops;
    breakpoints -= o.breakpoints;
    inversions -= o.inversions;
    return *this;
  }

  // Scalar "work" used as the task cost by the schedule simulator.
  double Work() const {
    return static_cast<double>(comparisons) + static_cast<double>(flops);
  }
};

inline OpCounts operator+(OpCounts a, const OpCounts& b) { return a += b; }
inline OpCounts operator-(OpCounts a, const OpCounts& b) { return a -= b; }

}  // namespace sea
