// Wall-clock and CPU timing utilities used by the solvers and the benchmark
// harness. All times are reported in seconds.
#pragma once

#include <chrono>
#include <cstdint>

namespace sea {

// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Process CPU time in seconds (user + system), mirroring the paper's
// "CPU time exclusive of input and output" reporting convention.
double ProcessCpuSeconds();

// Accumulates time attributed to named solver phases (row equilibration,
// column equilibration, convergence verification, ...). The serial/parallel
// phase breakdown feeds the speedup model for the parallel experiments.
class PhaseTimer {
 public:
  void Add(double seconds) { total_ += seconds; ++count_; }
  double total() const { return total_; }
  std::uint64_t count() const { return count_; }
  void Reset() { total_ = 0.0; count_ = 0; }

 private:
  double total_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace sea
