#include "support/crc32.hpp"

#include <array>

namespace sea::support {

namespace {

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sea::support
