// CRC-32 (IEEE 802.3 polynomial, reflected), the integrity trailer on the
// binary checkpoint format (src/core/checkpoint.hpp). Table-driven, one
// byte per step — checkpoints are O(m + n) doubles, so checksum cost is
// noise next to the write itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sea::support {

// CRC-32 of `len` bytes at `data`, continuing from `seed` (0 for a fresh
// checksum). Chainable: Crc32(b, nb, Crc32(a, na)) == Crc32(ab, na + nb).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

inline std::uint32_t Crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace sea::support
