// Cooperative cancellation for long-running solves.
//
// A CancelToken is shared between the thread driving a solve and any thread
// that may want to stop it (a deadline watcher, a signal handler's
// dispatcher, an RPC teardown path). Cancel() is async-safe with respect to
// the solver: the iteration engine polls cancelled() at check iterations
// only — never inside a parallel sweep — so cancellation is prompt
// (one check interval) and the solver always returns a consistent result
// with SolveStatus::kCancelled (docs/ROBUSTNESS.md).
#pragma once

#include <atomic>

namespace sea {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Request cancellation. Safe from any thread; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // Re-arm the token for a new solve (only between solves).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace sea
