#include "support/simd.hpp"

#include <atomic>

namespace sea::simd {

const char* ToString(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa CompiledIsa() {
#if SEA_SIMD_COMPILED_AVX2
  return Isa::kAvx2;
#elif SEA_SIMD_COMPILED_NEON
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

namespace {

Isa DetectIsa() {
#if SEA_SIMD_COMPILED_AVX2
  // The AVX2 bodies are compiled behind per-function target attributes, so
  // this probe is the only thing standing between them and SIGILL on an
  // older x86-64 host.
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
#elif SEA_SIMD_COMPILED_NEON
  // Advanced SIMD is part of the aarch64 baseline: compiled implies runnable.
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

// -1 = no override; otherwise the forced Isa (already capped at compiled).
std::atomic<int> g_isa_override{-1};

}  // namespace

Isa RuntimeIsa() {
  const int forced = g_isa_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa detected = DetectIsa();
  return detected;
}

void SetRuntimeIsaForTest(Isa isa) {
  // Never force an ISA the build cannot execute: the override widens test
  // coverage of the degradation paths, not of illegal instructions.
  if (isa != Isa::kScalar && isa != CompiledIsa()) isa = Isa::kScalar;
  g_isa_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ClearRuntimeIsaForTest() {
  g_isa_override.store(-1, std::memory_order_relaxed);
}

}  // namespace sea::simd
