#include "support/rng.hpp"

#include <cmath>

#include "support/check.hpp"

namespace sea {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SEA_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextIndex(std::uint64_t n) {
  SEA_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(NextU64()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(NextU64()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

std::vector<double> Rng::UniformVector(std::size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (auto& x : out) x = Uniform(lo, hi);
  return out;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace sea
