// FNV-1a 64-bit accumulator, used for problem fingerprints: a checkpoint
// records the fingerprint of the problem it was captured from, and resume
// refuses to graft an iterate onto different data
// (src/core/checkpoint.hpp). Not cryptographic — it guards against
// operator error, not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sea::support {

class Fnv1a {
 public:
  void MixBytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ull;
    }
  }

  void MixU64(std::uint64_t v) { MixBytes(&v, sizeof(v)); }

  // Length-prefixed, so {1.0} followed by {} hashes differently from {}
  // followed by {1.0}.
  void MixDoubles(std::span<const double> v) {
    MixU64(v.size());
    MixBytes(v.data(), v.size() * sizeof(double));
  }

  void MixSizes(const std::vector<std::size_t>& v) {
    MixU64(v.size());
    for (std::size_t s : v) MixU64(static_cast<std::uint64_t>(s));
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;  // FNV offset basis
};

}  // namespace sea::support
