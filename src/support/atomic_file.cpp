#include "support/atomic_file.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <ios>
#include <thread>

#include "support/failpoint.hpp"

namespace sea::support {

namespace {

bool TryWriteOnce(const std::string& path,
                  FunctionRef<void(std::ostream&)> body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    SEA_FAILPOINT_SITE("sea.support.atomic_write")
    if (fail::Triggered("sea.support.atomic_write"))
      f.setstate(std::ios::badbit);
    if (f.good()) body(f);
    if (!f.good()) {
      f.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool TryAppendOnce(const std::string& path,
                   FunctionRef<void(std::ostream&)> body) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  SEA_FAILPOINT_SITE("sea.support.atomic_append")
  if (fail::Triggered("sea.support.atomic_append"))
    f.setstate(std::ios::badbit);
  if (f.good()) body(f);
  if (f.good()) f.flush();
  return f.good();
}

}  // namespace

bool AtomicFileWriter::Write(const std::string& path,
                             FunctionRef<void(std::ostream&)> body) {
  double backoff_ms = retry_.initial_backoff_ms;
  const int max_attempts = retry_.max_attempts < 1 ? 1 : retry_.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= retry_.backoff_multiplier;
    }
    ++attempts_;
    if (TryWriteOnce(path, body)) return true;
  }
  return false;
}

bool AtomicFileWriter::Append(const std::string& path,
                              FunctionRef<void(std::ostream&)> body) {
  double backoff_ms = retry_.initial_backoff_ms;
  const int max_attempts = retry_.max_attempts < 1 ? 1 : retry_.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= retry_.backoff_multiplier;
    }
    ++attempts_;
    if (TryAppendOnce(path, body)) return true;
  }
  return false;
}

}  // namespace sea::support
