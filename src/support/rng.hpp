// Deterministic pseudo-random number generation for dataset synthesis.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64 so
// that every synthetic dataset in the repository is reproducible from a single
// 64-bit seed, independent of the standard library's unspecified
// distributions. All distribution helpers here are exact specifications: the
// same seed yields bit-identical streams on every platform.
#pragma once

#include <cstdint>
#include <vector>

namespace sea {

// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ea5ea5ea5ea5eaULL);

  // Raw 64 random bits.
  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Rejection-free Lemire method.
  std::uint64_t NextIndex(std::uint64_t n);

  // Standard normal via Marsaglia polar method (deterministic given stream).
  double Normal();

  // Normal with mean/stddev.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Bernoulli(p).
  bool Bernoulli(double p) { return NextDouble() < p; }

  // A vector of n Uniform(lo, hi) draws.
  std::vector<double> UniformVector(std::size_t n, double lo, double hi);

  // Derive an independent child generator (for per-dataset streams).
  Rng Split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sea
