// Process resource accounting, thin and queryable from anywhere: the bench
// provenance header and the wide-event solve log both stamp peak RSS, and
// they must agree on the unit conversion. Linux getrusage reports
// ru_maxrss in KiB; this is the one place that knows that.
#pragma once

#include <cstdint>

namespace sea::support {

// High-water-mark resident set size of this process, in bytes; 0 when the
// kernel query fails.
std::uint64_t PeakRssBytes();

}  // namespace sea::support
