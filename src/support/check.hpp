// Lightweight precondition / invariant checking for the SEA library.
//
// SEA_CHECK is always on (public-API argument validation); SEA_DCHECK compiles
// away in release builds and guards internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sea {

// Thrown when a public-API precondition is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Thrown when an internal invariant fails (indicates a library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void ThrowInvalidArgument(const char* expr, const char* file,
                                              int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void ThrowInternal(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail

}  // namespace sea

#define SEA_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::sea::detail::ThrowInvalidArgument(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define SEA_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond))                                                             \
      ::sea::detail::ThrowInvalidArgument(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SEA_INTERNAL_CHECK(cond)                                     \
  do {                                                               \
    if (!(cond))                                                     \
      ::sea::detail::ThrowInternal(#cond, __FILE__, __LINE__, "");   \
  } while (0)

#ifdef NDEBUG
#define SEA_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define SEA_DCHECK(cond) SEA_INTERNAL_CHECK(cond)
#endif
