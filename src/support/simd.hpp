// Portable SIMD capability layer for the kernel backends
// (equilibration/kernel_backend.hpp, docs/KERNELS.md).
//
// Dispatch is two-staged:
//   - compile time: the build either can emit AVX2/NEON bodies or it cannot
//     (CompiledIsa; the SEA_SIMD=OFF build and unknown architectures compile
//     scalar bodies only). AVX2 bodies are compiled with per-function target
//     attributes, so the binary itself stays runnable on any x86-64.
//   - run time: the host CPU either executes the compiled ISA or it does not
//     (RuntimeIsa; cached cpuid probe on x86-64, baseline on aarch64).
// RuntimeIsa() never exceeds CompiledIsa(), so callers can branch on it
// alone; when it reports kScalar the SIMD backend degrades to the scalar
// bodies instead of faulting on an illegal instruction.
#pragma once

#include <cstddef>

// Which vector bodies this translation unit MAY contain. SEA_NO_SIMD (the
// SEA_SIMD=OFF CMake leg) forces the scalar-only build on any architecture.
#if !defined(SEA_NO_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define SEA_SIMD_COMPILED_AVX2 1
#else
#define SEA_SIMD_COMPILED_AVX2 0
#endif
#if !defined(SEA_NO_SIMD) && defined(__aarch64__)
#define SEA_SIMD_COMPILED_NEON 1
#else
#define SEA_SIMD_COMPILED_NEON 0
#endif

namespace sea::simd {

enum class Isa {
  kScalar,  // no vector bodies available (or CPU cannot run them)
  kAvx2,    // x86-64 AVX2, 4 doubles per lane group
  kNeon,    // aarch64 Advanced SIMD, 2 doubles per lane group
};

const char* ToString(Isa isa);

// Widest lane group any backend uses; sorted sweep arrays are padded by this
// many elements so vector blocks may run past the logical end
// (kernel_backend.cpp pads with +inf breakpoints and zero arcs).
inline constexpr std::size_t kPadLanes = 4;

// Best ISA the build can emit (fixed at compile time).
Isa CompiledIsa();

// Best ISA the build can emit AND this CPU can execute; cached after the
// first probe. Never exceeds CompiledIsa().
Isa RuntimeIsa();

// Test hooks: force RuntimeIsa() to report `isa` (capped at CompiledIsa())
// until cleared, to exercise the scalar-degradation paths on capable hosts.
void SetRuntimeIsaForTest(Isa isa);
void ClearRuntimeIsaForTest();

}  // namespace sea::simd
