#include "support/rusage.hpp"

#include <sys/resource.h>

namespace sea::support {

std::uint64_t PeakRssBytes() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  if (ru.ru_maxrss < 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

}  // namespace sea::support
