#include "support/failpoint.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace sea::fail {

namespace internal {

std::atomic<int> armed_count{0};

namespace {

struct Site {
  std::uint64_t fire_at = 1;     // 1-based visit ordinal
  std::uint64_t fire_count = 0;  // 0 = fire forever once reached
  std::uint64_t hits = 0;
};

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Site>& Sites() {
  static std::map<std::string, Site> sites;
  return sites;
}

}  // namespace

bool TriggeredSlow(const char* name) {
  std::lock_guard lk(Mutex());
  auto it = Sites().find(name);
  if (it == Sites().end()) return false;
  Site& site = it->second;
  ++site.hits;
  if (site.hits < site.fire_at) return false;
  return site.fire_count == 0 ||
         site.hits < site.fire_at + site.fire_count;
}

}  // namespace internal

void Arm(const std::string& name, std::uint64_t at_hit,
         std::uint64_t fire_count) {
  std::lock_guard lk(internal::Mutex());
  auto [it, inserted] = internal::Sites().insert_or_assign(
      name, internal::Site{at_hit == 0 ? 1 : at_hit, fire_count, 0});
  (void)it;
  if (inserted)
    internal::armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  std::lock_guard lk(internal::Mutex());
  if (internal::Sites().erase(name) > 0)
    internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard lk(internal::Mutex());
  const int n = static_cast<int>(internal::Sites().size());
  internal::Sites().clear();
  internal::armed_count.fetch_sub(n, std::memory_order_relaxed);
}

std::uint64_t HitCount(const std::string& name) {
  std::lock_guard lk(internal::Mutex());
  auto it = internal::Sites().find(name);
  return it == internal::Sites().end() ? 0 : it->second.hits;
}

void MaybeThrow(const char* name) {
  if (Triggered(name))
    throw std::runtime_error(std::string("failpoint ") + name + " fired");
}

std::size_t ArmFromSpec(const std::string& spec) {
  std::size_t armed = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    // Trim surrounding whitespace.
    const std::size_t b = entry.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::size_t e = entry.find_last_not_of(" \t");
    entry = entry.substr(b, e - b + 1);
    std::uint64_t at_hit = 1;
    std::uint64_t fire_count = 0;
    const std::size_t colon = entry.find(':');
    std::string name = entry.substr(0, colon);
    if (colon != std::string::npos) {
      char* end = nullptr;
      const std::uint64_t parsed =
          std::strtoull(entry.c_str() + colon + 1, &end, 10);
      if (parsed > 0) at_hit = parsed;
      if (end != nullptr && *end == ':')
        fire_count = std::strtoull(end + 1, nullptr, 10);
    }
    if (name.empty()) continue;
    Arm(name, at_hit, fire_count);
    ++armed;
  }
  return armed;
}

std::size_t ArmFromEnv() {
  const char* spec = std::getenv("SEA_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return 0;
  return ArmFromSpec(spec);
}

}  // namespace sea::fail
