#include "support/failpoint.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

namespace sea::fail {

namespace internal {

std::atomic<int> armed_count{0};

namespace {

struct Site {
  std::uint64_t fire_at = 1;  // 1-based visit ordinal
  std::uint64_t hits = 0;
};

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Site>& Sites() {
  static std::map<std::string, Site> sites;
  return sites;
}

}  // namespace

bool TriggeredSlow(const char* name) {
  std::lock_guard lk(Mutex());
  auto it = Sites().find(name);
  if (it == Sites().end()) return false;
  ++it->second.hits;
  return it->second.hits >= it->second.fire_at;
}

}  // namespace internal

void Arm(const std::string& name, std::uint64_t at_hit) {
  std::lock_guard lk(internal::Mutex());
  auto [it, inserted] = internal::Sites().insert_or_assign(
      name, internal::Site{at_hit == 0 ? 1 : at_hit, 0});
  (void)it;
  if (inserted)
    internal::armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  std::lock_guard lk(internal::Mutex());
  if (internal::Sites().erase(name) > 0)
    internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard lk(internal::Mutex());
  const int n = static_cast<int>(internal::Sites().size());
  internal::Sites().clear();
  internal::armed_count.fetch_sub(n, std::memory_order_relaxed);
}

std::uint64_t HitCount(const std::string& name) {
  std::lock_guard lk(internal::Mutex());
  auto it = internal::Sites().find(name);
  return it == internal::Sites().end() ? 0 : it->second.hits;
}

void MaybeThrow(const char* name) {
  if (Triggered(name))
    throw std::runtime_error(std::string("failpoint ") + name + " fired");
}

}  // namespace sea::fail
