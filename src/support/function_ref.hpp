// Non-owning, non-allocating reference to a callable.
//
// The parallel runtime's region bodies used to travel as `const
// std::function&`, which type-erases through a heap allocation on every
// sweep invocation — measurable overhead on the equilibration hot path,
// where a solve runs thousands of ParallelFor regions. FunctionRef erases
// through two words (object pointer + trampoline) with no allocation and no
// virtual dispatch. It does NOT extend lifetimes: the referenced callable
// must outlive every call, which holds for blocking ParallelFor regions
// (the body is a stack lambda alive across the join).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace sea {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  // Implicit by design: call sites pass lambdas directly, exactly as they
  // would to a std::function parameter.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace sea
