#include "support/stopwatch.hpp"

#include <ctime>

namespace sea {

double ProcessCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace sea
