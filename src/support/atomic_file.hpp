// Atomic whole-file writes: write to `<path>.tmp`, fsync-free close, then
// rename over `path`, so a reader (or a crash) sees either the previous
// complete file or the new complete file — never a torn half-write. This is
// the one implementation behind every durable artifact the solver leaves on
// disk: flight-recorder postmortems, --status-file snapshots, and
// checkpoints (docs/ROBUSTNESS.md).
//
// Transient-failure policy: a RetryPolicy retries the whole
// open/write/rename attempt with exponential backoff. Artifacts pick their
// own policy — checkpoints and postmortems retry (losing one is losing
// durability or forensics), status snapshots do not (the next throttled
// snapshot supersedes a lost one).
//
// Failpoint: `sea.support.atomic_write` fails one attempt's stream per
// armed visit, which is how tests prove both the retry path (finite fire
// window -> eventual success) and the degradation path (unbounded window ->
// Write returns false, caller carries on).
//
// Append(path, body) is the log-structured sibling: open `path` in append
// mode, run `body`, flush, and report stream health. POSIX O_APPEND makes a
// single sub-PIPE_BUF write atomic against concurrent appenders, and a
// crash can only lose the tail line — the right trade for JSONL artifacts
// (the wide-event solve log) where rewriting the whole file per event would
// be O(n^2). Failpoint: `sea.support.atomic_append`. Same RetryPolicy;
// `body` runs once per attempt, so it must render the same bytes each time.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "support/function_ref.hpp"

namespace sea::support {

struct RetryPolicy {
  int max_attempts = 1;             // total attempts, not retries
  double initial_backoff_ms = 1.0;  // sleep before the 2nd attempt
  double backoff_multiplier = 4.0;  // growth per subsequent attempt
};

class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  explicit AtomicFileWriter(RetryPolicy retry) : retry_(retry) {}

  // Runs `body` against a fresh `<path>.tmp` stream and renames it over
  // `path`. Returns false (after exhausting the retry policy) if the
  // stream fails — including a body that set failbit/badbit — or the
  // rename fails; the tmp file is removed on every failed attempt.
  bool Write(const std::string& path, FunctionRef<void(std::ostream&)> body);

  // Appends `body`'s output to `path` (creating it if absent) and flushes.
  // Returns false after exhausting the retry policy if the open, the body,
  // or the flush fails. Unlike Write there is no tmp/rename dance: appends
  // never rewrite existing bytes.
  bool Append(const std::string& path, FunctionRef<void(std::ostream&)> body);

  std::uint64_t attempts() const { return attempts_; }

 private:
  RetryPolicy retry_;
  std::uint64_t attempts_ = 0;  // cumulative across Write calls
};

}  // namespace sea::support
