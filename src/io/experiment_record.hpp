// Paper-vs-measured experiment records.
//
// Every bench emits one record per table row: the paper's reported value
// (CPU seconds, speedup, ...) side by side with this build's measurement.
// Records can be printed as a table and appended to a CSV so EXPERIMENTS.md
// can be regenerated from bench output.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace sea {

struct ExperimentRecord {
  std::string experiment;  // e.g. "table1"
  std::string dataset;     // e.g. "1000x1000"
  std::string metric;      // e.g. "cpu_seconds"
  double measured = 0.0;
  std::optional<double> paper;  // the paper's reported value, if any
  std::string note;
};

class ExperimentLog {
 public:
  void Add(ExperimentRecord rec) { records_.push_back(std::move(rec)); }

  void Add(std::string experiment, std::string dataset, std::string metric,
           double measured, std::optional<double> paper = std::nullopt,
           std::string note = {});

  const std::vector<ExperimentRecord>& records() const { return records_; }

  // Paper-vs-measured table (includes the measured/paper ratio, the number
  // the "shape holds" judgement rests on).
  void Print(std::ostream& os) const;

  // Appends to a CSV (writes the header only if the file does not exist;
  // repeated appends — same or different logs — share one header). Text
  // fields are CSV-escaped, so notes may contain commas/quotes.
  void AppendCsv(const std::string& path) const;

 private:
  std::vector<ExperimentRecord> records_;
};

}  // namespace sea
