#include "io/csv.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace sea {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

}  // namespace

void WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  SEA_CHECK_MSG(f.good(), "cannot open file for writing: " + path);
  auto write_row = [&f](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      f << CsvEscape(row[c]);
    }
    f << '\n';
  };
  if (!header.empty()) write_row(header);
  for (const auto& row : rows) write_row(row);
}

std::vector<std::vector<std::string>> ReadCsv(const std::string& path) {
  std::ifstream f(path);
  SEA_CHECK_MSG(f.good(), "cannot open file for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(SplitLine(line));
  }
  return rows;
}

void WriteMatrixCsv(const std::string& path, const DenseMatrix& m) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::vector<std::string> row;
    row.reserve(m.cols());
    for (double v : m.Row(i)) {
      std::ostringstream os;
      os.precision(17);
      os << v;
      row.push_back(os.str());
    }
    rows.push_back(std::move(row));
  }
  WriteCsv(path, {}, rows);
}

double ParseNumericCell(const std::string& cell, const std::string& path,
                        std::size_t row, std::size_t col) {
  const std::string where =
      path + ": row " + std::to_string(row) + ", column " +
      std::to_string(col);
  SEA_CHECK_MSG(!cell.empty(), "empty cell at " + where);
  const char* begin = cell.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  SEA_CHECK_MSG(end == begin + cell.size(),
                "malformed number '" + cell + "' at " + where);
  // strtod accepts "nan"/"inf" spellings; a non-finite matrix entry or
  // total can only poison the solve, so reject it at the boundary.
  SEA_CHECK_MSG(std::isfinite(v),
                "non-finite value '" + cell + "' at " + where);
  return v;
}

DenseMatrix ReadMatrixCsv(const std::string& path) {
  const auto rows = ReadCsv(path);
  SEA_CHECK_MSG(!rows.empty(), "empty matrix file: " + path);
  DenseMatrix m(rows.size(), rows.front().size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SEA_CHECK_MSG(rows[i].size() == m.cols(),
                  "ragged matrix file " + path + ": row " +
                      std::to_string(i + 1) + " has " +
                      std::to_string(rows[i].size()) + " cells, expected " +
                      std::to_string(m.cols()));
    for (std::size_t j = 0; j < m.cols(); ++j)
      m(i, j) = ParseNumericCell(rows[i][j], path, i + 1, j + 1);
  }
  return m;
}

std::vector<double> ReadVectorCsv(const std::string& path) {
  const auto rows = ReadCsv(path);
  std::vector<double> v;
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < rows[i].size(); ++j)
      if (!rows[i][j].empty())
        v.push_back(ParseNumericCell(rows[i][j], path, i + 1, j + 1));
  SEA_CHECK_MSG(!v.empty(), "empty vector file: " + path);
  return v;
}

}  // namespace sea
