#include "io/experiment_record.hpp"

#include <filesystem>
#include <fstream>

#include "io/csv.hpp"
#include "io/table_printer.hpp"
#include "support/check.hpp"

namespace sea {

void ExperimentLog::Add(std::string experiment, std::string dataset,
                        std::string metric, double measured,
                        std::optional<double> paper, std::string note) {
  ExperimentRecord rec;
  rec.experiment = std::move(experiment);
  rec.dataset = std::move(dataset);
  rec.metric = std::move(metric);
  rec.measured = measured;
  rec.paper = paper;
  rec.note = std::move(note);
  records_.push_back(std::move(rec));
}

void ExperimentLog::Print(std::ostream& os) const {
  TablePrinter t({"experiment", "dataset", "metric", "measured", "paper",
                  "measured/paper", "note"});
  for (const auto& r : records_) {
    std::string paper = "-", ratio = "-";
    if (r.paper.has_value()) {
      paper = TablePrinter::Num(*r.paper, 4);
      if (*r.paper != 0.0)
        ratio = TablePrinter::Num(r.measured / *r.paper, 4);
    }
    t.AddRow({r.experiment, r.dataset, r.metric,
              TablePrinter::Num(r.measured, 4), paper, ratio, r.note});
  }
  t.Print(os);
}

void ExperimentLog::AppendCsv(const std::string& path) const {
  const bool exists = std::filesystem::exists(path);
  std::ofstream f(path, std::ios::app);
  SEA_CHECK_MSG(f.good(), "cannot open file for append: " + path);
  if (!exists)
    f << "experiment,dataset,metric,measured,paper,note\n";
  for (const auto& r : records_) {
    f << CsvEscape(r.experiment) << ',' << CsvEscape(r.dataset) << ','
      << CsvEscape(r.metric) << ',' << r.measured << ',';
    if (r.paper.has_value()) f << *r.paper;
    // Free-text field: protocol notes may legitimately contain commas or
    // quotes, which would shear the row without escaping.
    f << ',' << CsvEscape(r.note) << '\n';
  }
}

}  // namespace sea
