#include "io/table_printer.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace sea {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SEA_CHECK(!headers_.empty());
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TablePrinter::Int(long long value) { return std::to_string(value); }

TablePrinter& TablePrinter::AddRow(std::vector<std::string> cells) {
  SEA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' && c != 'E')
      return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) ||
         s.front() == '-' || s.front() == '.' || s.front() == '+';
}

}  // namespace

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (LooksNumeric(row[c]))
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sea
