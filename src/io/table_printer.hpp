// Fixed-width table formatting for the benchmark harness, so the benches
// print rows in the same shape as the paper's tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sea {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Cell helpers.
  static std::string Num(double value, int precision = 4);
  static std::string Int(long long value);

  TablePrinter& AddRow(std::vector<std::string> cells);

  // Renders with column widths fitted to contents, a header rule, and
  // right-aligned numeric-looking cells.
  void Print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sea
