// Minimal CSV reading/writing for matrices and result records.
#pragma once

#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sea {

// Quotes a single cell when it contains commas, quotes, or newlines
// (doubling embedded quotes); returns it unchanged otherwise.
std::string CsvEscape(const std::string& cell);

// Writes rows of string cells; cells containing commas/quotes are quoted.
void WriteCsv(const std::string& path,
              const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

// Reads a CSV file into rows of cells (handles quoted cells; no embedded
// newlines inside cells).
std::vector<std::vector<std::string>> ReadCsv(const std::string& path);

// Parses one numeric cell, rejecting garbage, trailing junk, and non-finite
// values (NaN/Inf have no meaning as matrix entries or totals). Throws
// InvalidArgument naming the file and the 1-based row/column of the bad
// cell. Exposed for the CLI tools' own value parsing.
double ParseNumericCell(const std::string& cell, const std::string& path,
                        std::size_t row, std::size_t col);

// Matrix round trip (no header row). ReadMatrixCsv rejects empty files,
// ragged rows (message names the file, the offending 1-based row, and the
// expected vs. actual widths), and malformed or non-finite cells.
void WriteMatrixCsv(const std::string& path, const DenseMatrix& m);
DenseMatrix ReadMatrixCsv(const std::string& path);

// Reads a vector: one value per line, or any mix of rows where every
// non-empty cell is one entry (a single CSV row also works). Same cell
// validation as ReadMatrixCsv. Shared by sea_solve and check_totals for
// totals files.
std::vector<double> ReadVectorCsv(const std::string& path);

}  // namespace sea
