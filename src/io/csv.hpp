// Minimal CSV reading/writing for matrices and result records.
#pragma once

#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sea {

// Quotes a single cell when it contains commas, quotes, or newlines
// (doubling embedded quotes); returns it unchanged otherwise.
std::string CsvEscape(const std::string& cell);

// Writes rows of string cells; cells containing commas/quotes are quoted.
void WriteCsv(const std::string& path,
              const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

// Reads a CSV file into rows of cells (handles quoted cells; no embedded
// newlines inside cells).
std::vector<std::vector<std::string>> ReadCsv(const std::string& path);

// Matrix round trip (no header row).
void WriteMatrixCsv(const std::string& path, const DenseMatrix& m);
DenseMatrix ReadMatrixCsv(const std::string& path);

}  // namespace sea
