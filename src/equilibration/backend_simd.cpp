// The vectorized kernel backend: AVX2 on x86-64, Advanced SIMD on aarch64,
// the scalar bodies everywhere else (including per-call degradation when the
// CPU cannot run the compiled ISA — see support/simd.hpp).
//
// Bit-identity with the scalar backend (kernel_backend.hpp contract) is by
// construction: every lane performs the exact scalar operation sequence —
// negate-then-divide breakpoints, separate multiply and add (this file and
// backend_scalar.cpp are compiled with -ffp-contract=off, so neither side
// fuses), max forms chosen to reproduce std::max(0.0, v) on ±0/NaN, and
// sequential prefix sums feeding a per-lane copy of the multiply-form
// acceptance test. AVX2 bodies carry per-function target attributes instead
// of a global -mavx2, so the object file links and runs on any x86-64; the
// probe in simd::RuntimeIsa() guards every entry.
#include <cstddef>
#include <span>

#include "equilibration/kernel_backend.hpp"
#include "equilibration/kernel_scalar_ops.hpp"
#include "support/simd.hpp"

#if SEA_SIMD_COMPILED_AVX2
#include <immintrin.h>
#endif
#if SEA_SIMD_COMPILED_NEON
#include <arm_neon.h>
#endif

namespace sea {

namespace {

#if SEA_SIMD_COMPILED_AVX2

#define SEA_TARGET_AVX2 __attribute__((target("avx2")))

SEA_TARGET_AVX2 void BuildArcsAvx2(std::span<const double> centers,
                                   std::span<const double> weights,
                                   std::span<const double> other_mult,
                                   std::span<double> p, std::span<double> q) {
  const std::size_t n = centers.size();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d w = _mm256_loadu_pd(weights.data() + j);
    const __m256d qj = _mm256_div_pd(one, _mm256_mul_pd(two, w));
    const __m256d m = _mm256_loadu_pd(other_mult.data() + j);
    const __m256d c = _mm256_loadu_pd(centers.data() + j);
    _mm256_storeu_pd(q.data() + j, qj);
    _mm256_storeu_pd(p.data() + j, _mm256_add_pd(c, _mm256_mul_pd(m, qj)));
  }
  kernel_ops::BuildArcsScalar(centers.subspan(j), weights.subspan(j),
                              other_mult.subspan(j), p.subspan(j),
                              q.subspan(j));
}

SEA_TARGET_AVX2 void BuildArcsGatherAvx2(std::span<const double> centers,
                                         std::span<const double> weights,
                                         std::span<const double> other_mult,
                                         std::span<const std::size_t> cols,
                                         std::span<double> p,
                                         std::span<double> q) {
  static_assert(sizeof(std::size_t) == 8, "i64 gather expects 64-bit ids");
  const std::size_t n = centers.size();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d w = _mm256_loadu_pd(weights.data() + k);
    const __m256d qk = _mm256_div_pd(one, _mm256_mul_pd(two, w));
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cols.data() + k));
    const __m256d m = _mm256_i64gather_pd(other_mult.data(), idx, 8);
    const __m256d c = _mm256_loadu_pd(centers.data() + k);
    _mm256_storeu_pd(q.data() + k, qk);
    _mm256_storeu_pd(p.data() + k, _mm256_add_pd(c, _mm256_mul_pd(m, qk)));
  }
  kernel_ops::BuildArcsGatherScalar(centers.subspan(k), weights.subspan(k),
                                    other_mult, cols.subspan(k), p.subspan(k),
                                    q.subspan(k));
}

SEA_TARGET_AVX2 void BreakpointsAvx2(std::span<const double> p,
                                     std::span<const double> q,
                                     std::span<double> b) {
  const std::size_t n = p.size();
  // XOR with the sign mask is exact negation — bit-identical to scalar -p
  // (0.0 - p would flip the sign of -0.0 breakpoints).
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d pj = _mm256_loadu_pd(p.data() + j);
    const __m256d qj = _mm256_loadu_pd(q.data() + j);
    _mm256_storeu_pd(b.data() + j,
                     _mm256_div_pd(_mm256_xor_pd(pj, sign), qj));
  }
  kernel_ops::BreakpointsScalar(p.subspan(j), q.subspan(j), b.subspan(j));
}

SEA_TARGET_AVX2 void WritebackAvx2(std::span<const double> p,
                                   std::span<const double> q, double lambda,
                                   std::span<double> x) {
  const std::size_t n = p.size();
  const __m256d lam = _mm256_set1_pd(lambda);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d val = _mm256_add_pd(
        _mm256_loadu_pd(p.data() + j),
        _mm256_mul_pd(_mm256_loadu_pd(q.data() + j), lam));
    // max_pd returns its SECOND operand on NaN or equal-valued inputs, so
    // (val, zero) reproduces std::max(0.0, val): NaN -> +0.0, -0.0 -> +0.0.
    _mm256_storeu_pd(x.data() + j, _mm256_max_pd(val, zero));
  }
  kernel_ops::WritebackScalar(p.subspan(j), q.subspan(j), lambda, x.subspan(j));
}

SEA_TARGET_AVX2 KernelBackend::SweepHit SweepSearchAvx2(
    std::span<const double> bs, std::span<const double> ps,
    std::span<const double> qs, std::size_t n, double u, double v) {
  KernelBackend::SweepHit hit;
  const __m256d u4 = _mm256_set1_pd(u);
  const __m256d v4 = _mm256_set1_pd(v);
  double p_sum = 0.0;
  double q_sum = 0.0;
  for (std::size_t k = 0; k < n; k += 4) {
    // Prefix sums stay sequential (scalar addition order = scalar backend)
    // and live in registers — a store/vector-reload here forwards badly and
    // costs more than the vector compare saves. The pad arcs are zero, so
    // lanes past the end replicate the last sums.
    const double p0 = p_sum + ps[k];
    const double p1 = p0 + ps[k + 1];
    const double p2 = p1 + ps[k + 2];
    const double p3 = p2 + ps[k + 3];
    const double q0 = q_sum + qs[k];
    const double q1 = q0 + qs[k + 1];
    const double q2 = q1 + qs[k + 2];
    const double q3 = q2 + qs[k + 3];
    p_sum = p3;
    q_sum = q3;
    const __m256d pl = _mm256_set_pd(p3, p2, p1, p0);
    const __m256d ql = _mm256_set_pd(q3, q2, q1, q0);
    const __m256d denom = _mm256_sub_pd(ql, v4);
    const __m256d rhs =
        _mm256_mul_pd(_mm256_loadu_pd(bs.data() + k + 1), denom);
    const __m256d lhs = _mm256_sub_pd(u4, pl);
    // Per lane this is exactly the scalar acceptance test (ordered <=, so
    // NaN lanes never accept); the first set lane is the first accepting
    // segment. The +inf pad keeps any accepting pad lane behind the real
    // last segment, which itself always accepts on finite data.
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(lhs, rhs, _CMP_LE_OQ));
    if (mask != 0) {
      alignas(32) double plb[4];
      alignas(32) double qlb[4];
      _mm256_store_pd(plb, pl);
      _mm256_store_pd(qlb, ql);
      const std::size_t lane =
          static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
      hit.k = k + lane;
      hit.lambda = (u - plb[lane]) / (qlb[lane] - v);
      hit.found = true;
      return hit;
    }
  }
  return hit;
}

#undef SEA_TARGET_AVX2

#endif  // SEA_SIMD_COMPILED_AVX2

#if SEA_SIMD_COMPILED_NEON

void BuildArcsNeon(std::span<const double> centers,
                   std::span<const double> weights,
                   std::span<const double> other_mult, std::span<double> p,
                   std::span<double> q) {
  const std::size_t n = centers.size();
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t two = vdupq_n_f64(2.0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t w = vld1q_f64(weights.data() + j);
    const float64x2_t qj = vdivq_f64(one, vmulq_f64(two, w));
    const float64x2_t m = vld1q_f64(other_mult.data() + j);
    const float64x2_t c = vld1q_f64(centers.data() + j);
    vst1q_f64(q.data() + j, qj);
    vst1q_f64(p.data() + j, vaddq_f64(c, vmulq_f64(m, qj)));
  }
  kernel_ops::BuildArcsScalar(centers.subspan(j), weights.subspan(j),
                              other_mult.subspan(j), p.subspan(j),
                              q.subspan(j));
}

void BreakpointsNeon(std::span<const double> p, std::span<const double> q,
                     std::span<double> b) {
  const std::size_t n = p.size();
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t pj = vld1q_f64(p.data() + j);
    const float64x2_t qj = vld1q_f64(q.data() + j);
    vst1q_f64(b.data() + j, vdivq_f64(vnegq_f64(pj), qj));
  }
  kernel_ops::BreakpointsScalar(p.subspan(j), q.subspan(j), b.subspan(j));
}

void WritebackNeon(std::span<const double> p, std::span<const double> q,
                   double lambda, std::span<double> x) {
  const std::size_t n = p.size();
  const float64x2_t lam = vdupq_n_f64(lambda);
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t val =
        vaddq_f64(vld1q_f64(p.data() + j),
                  vmulq_f64(vld1q_f64(q.data() + j), lam));
    // Compare-and-select rather than vmaxq (which would propagate NaN):
    // val > 0 ? val : +0.0 matches std::max(0.0, val) on ±0 and NaN.
    vst1q_f64(x.data() + j, vbslq_f64(vcgtq_f64(val, zero), val, zero));
  }
  kernel_ops::WritebackScalar(p.subspan(j), q.subspan(j), lambda, x.subspan(j));
}

KernelBackend::SweepHit SweepSearchNeon(std::span<const double> bs,
                                        std::span<const double> ps,
                                        std::span<const double> qs,
                                        std::size_t n, double u, double v) {
  KernelBackend::SweepHit hit;
  const float64x2_t u2 = vdupq_n_f64(u);
  const float64x2_t v2 = vdupq_n_f64(v);
  double p_sum = 0.0;
  double q_sum = 0.0;
  for (std::size_t k = 0; k < n; k += 2) {
    // Sequential register-resident prefix sums, as in the AVX2 body.
    const double p0 = p_sum + ps[k];
    const double p1 = p0 + ps[k + 1];
    const double q0 = q_sum + qs[k];
    const double q1 = q0 + qs[k + 1];
    p_sum = p1;
    q_sum = q1;
    float64x2_t pl = vsetq_lane_f64(p1, vdupq_n_f64(p0), 1);
    float64x2_t ql = vsetq_lane_f64(q1, vdupq_n_f64(q0), 1);
    const float64x2_t denom = vsubq_f64(ql, v2);
    const float64x2_t rhs = vmulq_f64(vld1q_f64(bs.data() + k + 1), denom);
    const float64x2_t lhs = vsubq_f64(u2, pl);
    const uint64x2_t le = vcleq_f64(lhs, rhs);
    const std::size_t lane =
        vgetq_lane_u64(le, 0) != 0 ? 0 : (vgetq_lane_u64(le, 1) != 0 ? 1 : 2);
    if (lane < 2) {
      hit.k = k + lane;
      hit.lambda = lane == 0 ? (u - p0) / (q0 - v) : (u - p1) / (q1 - v);
      hit.found = true;
      return hit;
    }
  }
  return hit;
}

#endif  // SEA_SIMD_COMPILED_NEON

class SimdBackend final : public KernelBackend {
 public:
  const char* name() const override { return "simd"; }

  // Below this many elements the vector bodies' setup and tail handling
  // cost more than they save; the scalar bodies are bit-identical, so the
  // cutover is invisible to results.
  static constexpr std::size_t kSmallMarket = 16;

  void BuildArcs(std::span<const double> centers,
                 std::span<const double> weights,
                 std::span<const double> other_mult, std::span<double> p,
                 std::span<double> q) const override {
#if SEA_SIMD_COMPILED_AVX2
    if (Avx2() && centers.size() >= kSmallMarket)
      return BuildArcsAvx2(centers, weights, other_mult, p, q);
#elif SEA_SIMD_COMPILED_NEON
    if (Neon() && centers.size() >= kSmallMarket)
      return BuildArcsNeon(centers, weights, other_mult, p, q);
#endif
    kernel_ops::BuildArcsScalar(centers, weights, other_mult, p, q);
  }

  void BuildArcsGather(std::span<const double> centers,
                       std::span<const double> weights,
                       std::span<const double> other_mult,
                       std::span<const std::size_t> cols, std::span<double> p,
                       std::span<double> q) const override {
#if SEA_SIMD_COMPILED_AVX2
    if (Avx2() && centers.size() >= kSmallMarket)
      return BuildArcsGatherAvx2(centers, weights, other_mult, cols, p, q);
#endif
    // aarch64 has no gather; the scalar body is the vector body there.
    kernel_ops::BuildArcsGatherScalar(centers, weights, other_mult, cols, p,
                                      q);
  }

  void Breakpoints(std::span<const double> p, std::span<const double> q,
                   std::span<double> b) const override {
#if SEA_SIMD_COMPILED_AVX2
    if (Avx2() && p.size() >= kSmallMarket) return BreakpointsAvx2(p, q, b);
#elif SEA_SIMD_COMPILED_NEON
    if (Neon() && p.size() >= kSmallMarket) return BreakpointsNeon(p, q, b);
#endif
    kernel_ops::BreakpointsScalar(p, q, b);
  }

  void Writeback(std::span<const double> p, std::span<const double> q,
                 double lambda, std::span<double> x) const override {
#if SEA_SIMD_COMPILED_AVX2
    if (Avx2() && p.size() >= kSmallMarket)
      return WritebackAvx2(p, q, lambda, x);
#elif SEA_SIMD_COMPILED_NEON
    if (Neon() && p.size() >= kSmallMarket)
      return WritebackNeon(p, q, lambda, x);
#endif
    kernel_ops::WritebackScalar(p, q, lambda, x);
  }

  SweepHit SweepSearch(std::span<const double> bs, std::span<const double> ps,
                       std::span<const double> qs, std::size_t n, double u,
                       double v) const override {
#if SEA_SIMD_COMPILED_AVX2
    if (Avx2() && n >= kSmallMarket)
      return SweepSearchAvx2(bs, ps, qs, n, u, v);
#elif SEA_SIMD_COMPILED_NEON
    if (Neon() && n >= kSmallMarket)
      return SweepSearchNeon(bs, ps, qs, n, u, v);
#endif
    return kernel_ops::SweepSearchScalar(bs, ps, qs, n, u, v);
  }

 private:
  // Per-call probes (one cached atomic load) so a test override of the
  // runtime ISA takes effect immediately, even mid-solve.
#if SEA_SIMD_COMPILED_AVX2
  static bool Avx2() { return simd::RuntimeIsa() == simd::Isa::kAvx2; }
#endif
#if SEA_SIMD_COMPILED_NEON
  static bool Neon() { return simd::RuntimeIsa() == simd::Isa::kNeon; }
#endif
};

}  // namespace

const KernelBackend& SimdKernel() {
  static const SimdBackend backend;
  return backend;
}

}  // namespace sea
