// Runtime-selectable kernel backends for the equilibration hot path
// (docs/KERNELS.md).
//
// The market solve decomposes into four elementwise stages that vectorize —
// arc construction p_j = c_j + mu_j*q_j, breakpoint construction
// b_j = -p_j/q_j, the prefix-sum/search clearing sweep, and the post-clearing
// allocation writeback x_j = max(0, p_j + q_j*lambda) — plus one stage that
// does not: the breakpoint sort, whose comparison counts feed the paper's
// complexity model. A KernelBackend implements the elementwise stages; the
// shared non-virtual Solve/SolveBox drivers own the sort, the sort-reuse
// repair, the edge cases, and the operation accounting, so every backend
// inherits them unchanged (the mf_pogs sinkhorn_knopp.h/.cuh shape: one
// algorithm, one implementation file per backend).
//
// Bit-identity contract: every backend MUST produce bit-identical results to
// ScalarKernel() on every input — same clearing multiplier, same active
// count, same operation counts. The drivers guarantee the shared parts (one
// tie-breaking total order for the sort, sequential prefix sums); backends
// guarantee the elementwise parts by performing the exact same IEEE-754
// operations per element as the scalar bodies (same division/multiply/add
// sequence, no FMA contraction — backend_scalar.cpp and backend_simd.cpp are
// compiled with -ffp-contract=off — and max forms that agree on ±0 and NaN).
// tests/test_kernel_backend.cpp enforces the contract on the fixture suite.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>

#include "equilibration/breakpoint_solver.hpp"

namespace sea {

// Which backend a solve should use (SeaOptions::backend, sea_solve
// --backend). kAuto picks the vectorized backend when the build and the CPU
// support one (overridable via the SEA_BACKEND environment variable) —
// always safe, because backends are bit-identical by contract.
enum class KernelBackendKind {
  kAuto,
  kScalar,
  kSimd,
};

const char* ToString(KernelBackendKind kind);
// Strict parse of "auto"/"scalar"/"simd"; nullopt on anything else.
std::optional<KernelBackendKind> ParseKernelBackendKind(std::string_view text);

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  // Stable identifier recorded in SeaResult::kernel_backend and the
  // sea.kernel.* metrics: "scalar" or "simd".
  virtual const char* name() const = 0;

  // ---- Elementwise stages (each backend supplies vector bodies). ----
  // All spans are length n unless noted; outputs may not alias inputs.

  // p[j] = centers[j] + other_mult[j]*q[j], q[j] = 1/(2*weights[j]).
  virtual void BuildArcs(std::span<const double> centers,
                         std::span<const double> weights,
                         std::span<const double> other_mult,
                         std::span<double> p, std::span<double> q) const = 0;

  // Sparse-row (CSR) variant: other_mult is indexed through cols.
  virtual void BuildArcsGather(std::span<const double> centers,
                               std::span<const double> weights,
                               std::span<const double> other_mult,
                               std::span<const std::size_t> cols,
                               std::span<double> p,
                               std::span<double> q) const = 0;

  // b[j] = -p[j]/q[j] (exact negation, then division).
  virtual void Breakpoints(std::span<const double> p,
                           std::span<const double> q,
                           std::span<double> b) const = 0;

  // x[j] = max(0, p[j] + q[j]*lambda), with std::max(0.0, v) semantics on
  // ±0 and NaN.
  virtual void Writeback(std::span<const double> p, std::span<const double> q,
                         double lambda, std::span<double> x) const = 0;

  // ---- The clearing sweep over the sorted market. ----

  struct SweepHit {
    std::size_t k = 0;      // accepted segment: nodes[0..k] active
    double lambda = 0.0;    // (u - P_k) / (Q_k - v)
    bool found = false;     // false only on non-finite input (breakdown)
  };

  // Finds the first segment k whose clearing candidate does not overshoot
  // its right edge. bs/ps/qs are the sorted arrays, padded to at least
  // n + simd::kPadLanes with bs = +inf and ps = qs = 0 so the last segment
  // (and any vector block over the tail) always accepts. The acceptance
  // test is the multiply form  u - P_k <= bs[k+1] * (Q_k - v)  — equivalent
  // to comparing the candidate against the segment edge with one division
  // per *accepted* segment instead of one per swept segment, and elementwise
  // (so the vector backends evaluate the identical operation per lane).
  // Prefix sums P/Q are sequential in every backend.
  virtual SweepHit SweepSearch(std::span<const double> bs,
                               std::span<const double> ps,
                               std::span<const double> qs, std::size_t n,
                               double u, double v) const = 0;

  // ---- Shared drivers (sort + edge cases + accounting; non-virtual). ----

  // See SolveMarket / SolveMarketBox in breakpoint_solver.hpp for the
  // contracts; the market is ws.p()/ws.q() after the caller's Resize+fill.
  BreakpointResult Solve(BreakpointWorkspace& ws, double u, double v,
                         SortPolicy policy = SortPolicy::kAuto,
                         MarketOrder* order = nullptr) const;
  BreakpointResult SolveBox(BreakpointWorkspace& ws, double u, double v,
                            double lo, double hi,
                            SortPolicy policy = SortPolicy::kAuto,
                            MarketOrder* order = nullptr) const;
};

// The backend singletons. SimdKernel() dispatches per call on
// simd::RuntimeIsa(), so it degrades to the scalar bodies (not to a crash)
// when the CPU cannot execute the compiled vector ISA.
const KernelBackend& ScalarKernel();
const KernelBackend& SimdKernel();

// Outcome of resolving a requested backend against build and CPU support.
struct KernelResolution {
  const KernelBackend* kernel = nullptr;
  KernelBackendKind requested = KernelBackendKind::kAuto;
  // True when simd was explicitly requested (flag/option or SEA_BACKEND)
  // but is unavailable; `note` then says why. kAuto quietly picks the best
  // available backend and never sets this.
  bool fell_back = false;
  std::string note;
};

// Resolves `requested` to a concrete backend: kScalar/kSimd honor the
// request (simd falls back to scalar with a note when the build or CPU
// lacks vector support); kAuto consults the SEA_BACKEND environment
// variable (scalar|simd|auto) and otherwise picks simd when available.
KernelResolution ResolveKernelBackend(KernelBackendKind requested);

// True when SimdKernel() would actually run vector bodies on this host.
bool SimdKernelAvailable();

}  // namespace sea
