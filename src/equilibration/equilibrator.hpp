// Row/column equilibration sweeps (Steps 1 and 2 of SEA, paper Section 3.1).
//
// One sweep solves all m row markets (or all n column markets)
// *independently* — this is exactly the parallel phase the paper allocates to
// distinct processors. The same function serves both directions: the caller
// passes centers/weights in sweep-major layout (row-major for row sweeps, the
// transposed copies for column sweeps) so every market reads contiguous
// memory.
//
// For row sweeps over a fixed-totals problem, market i solves
//
//   min  sum_j gamma_ij (x_ij - c_ij)^2 - sum_j mu_j x_ij
//   s.t. sum_j x_ij = s0_i, x >= 0
//
// whose KKT allocation is x_ij = max(0, c_ij + (lambda_i + mu_j)/(2 gamma_ij))
// — an Arc with q_j = 1/(2 gamma_ij), p_j = c_ij + mu_j * q_j. The elastic
// and SAM variants change only the right-hand side of the clearing equation
// (see MarketSide below).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "equilibration/breakpoint_solver.hpp"
#include "linalg/dense_matrix.hpp"
#include "problems/types.hpp"

namespace sea {

class ThreadPool;
class SweepScheduler;

namespace obs {
class MarketAttribution;
}  // namespace obs

// Per-market breakpoint orders persisted across sweeps for
// SortPolicy::kReuse (docs/PARALLELISM.md, "Sort reuse"). One cache per
// sweep side (markets keep their index between sweeps); each market is
// touched by exactly one worker per sweep, so slots need no synchronization.
class SortOrderCache {
 public:
  // Drops all learned orders and sizes the cache for `markets` markets.
  void Reset(std::size_t markets) {
    orders_.clear();
    orders_.resize(markets);
  }
  std::size_t size() const { return orders_.size(); }
  MarketOrder* At(std::size_t market) {
    return market < orders_.size() ? &orders_[market] : nullptr;
  }
  // Total repair-instead-of-sort solves across all markets.
  std::uint64_t TotalReuses() const {
    std::uint64_t total = 0;
    for (const auto& o : orders_) total += o.reuses;
    return total;
  }

 private:
  std::vector<MarketOrder> orders_;
};

// Describes the constraint side being equilibrated.
struct MarketSide {
  TotalsMode mode = TotalsMode::kFixed;
  // Row sweep: s0; column sweep: d0 (elastic/fixed) or s0 (SAM).
  std::span<const double> t0;
  // Row sweep: alpha; column sweep: beta (elastic) or alpha (SAM).
  // Ignored for kFixed.
  std::span<const double> weight;
  // SAM only: the opposite side's multiplier at the *same* account index
  // (mu for row sweeps, the freshly-computed lambda for column sweeps),
  // entering the elastic response S_i = t0_i - (own + coupling_i)/(2 w_i).
  std::span<const double> coupling;
  // Interval mode only: box bounds on the totals; the clearing response is
  // the clamped elastic response.
  std::span<const double> lo;
  std::span<const double> hi;
};

struct SweepStats {
  OpCounts total_ops;
  // Per-market work (operation counts) for the schedule simulator; filled
  // only when requested.
  std::vector<double> task_costs;
  // Markets solved by repairing a persisted breakpoint order this sweep
  // (SortPolicy::kReuse; 0 otherwise).
  std::uint64_t order_reuses = 0;
  // Markets solved this sweep (feeds SeaResult::kernel_markets and the
  // sea.kernel.<backend>.markets counter).
  std::uint64_t markets = 0;
};

struct SweepOptions {
  SortPolicy sort_policy = SortPolicy::kAuto;
  bool record_task_costs = false;
  ThreadPool* pool = nullptr;
  // Cost-feedback scheduler (parallel/schedule.hpp): when set, the sweep is
  // partitioned by the scheduler (cost-guided once costs exist, dynamic
  // claiming before) and this sweep's measured per-market costs are fed
  // back for the next one. Null = the classic static partition.
  SweepScheduler* scheduler = nullptr;
  // Persisted per-market breakpoint orders; required for sort_policy ==
  // kReuse to take effect (kReuse without a cache degrades to kAuto). Must
  // be sized to this side's market count.
  SortOrderCache* sort_cache = nullptr;
  // Profiler span name wrapping each worker's chunk of the sweep (string
  // literal; nullptr = unnamed "equilibrate.sweep"). Lets the profile tell
  // row from column sweeps per worker track (obs/profiler.hpp).
  const char* profile_phase = nullptr;
  // Kernel backend executing the market solves (kernel_backend.hpp);
  // null = ScalarKernel(). Typically ResolveKernelBackend(opts.backend).
  const KernelBackend* kernel = nullptr;
  // Per-market attribution (obs/market_stats.hpp): when set, every market
  // solve records its active-set size, breakpoint count, and kernel seconds
  // under slot attribution_base + market index (the caller maps sweep sides
  // into the table: rows at base 0, columns at base m). Each market is
  // touched by exactly one worker per sweep, so the recording is
  // synchronization-free; null costs one branch per market.
  obs::MarketAttribution* attribution = nullptr;
  std::size_t attribution_base = 0;
};

// Equilibrates all markets of one side.
//   centers, weights : sweep-major (market index = row of these matrices)
//   other_mult       : multiplier of the crossing constraints (length =
//                      centers.cols())
//   side             : clearing-equation description (length = centers.rows())
//   mult_out         : this side's multipliers (length = centers.rows())
//   x_out            : if non-null, materialized allocations in sweep-major
//                      layout (same shape as centers)
SweepStats EquilibrateSide(const DenseMatrix& centers,
                           const DenseMatrix& weights,
                           std::span<const double> other_mult,
                           const MarketSide& side, std::span<double> mult_out,
                           DenseMatrix* x_out, const SweepOptions& opts);

// Clearing-equation coefficients (u, v) for market i of a side, i.e. the
// right-hand side u + v*lambda of the market's scalar equation. Shared by
// the dense sweeps here and the sparse solver (sparse/sparse_sea.hpp).
void ClearingTarget(const MarketSide& side, std::size_t i, double& u,
                    double& v);

// Solves a single market (used by the RC baseline's per-row projections and
// by tests): arcs from one center/weight row with the cross multipliers, then
// clears against the side's response. Returns the market multiplier.
BreakpointResult EquilibrateMarket(std::span<const double> centers,
                                   std::span<const double> weights,
                                   std::span<const double> other_mult,
                                   double u, double v, BreakpointWorkspace& ws,
                                   std::span<double> x_out,
                                   SortPolicy policy = SortPolicy::kAuto,
                                   MarketOrder* order = nullptr,
                                   const KernelBackend* kernel = nullptr);

}  // namespace sea
