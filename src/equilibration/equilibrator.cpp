#include "equilibration/equilibrator.hpp"

#include <algorithm>
#include <cmath>

#include "equilibration/kernel_backend.hpp"
#include "obs/market_stats.hpp"
#include "obs/profiler.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/schedule.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

// Clearing target for market i of the given side.
void ClearingTarget(const MarketSide& side, std::size_t i, double& u,
                    double& v) {
  switch (side.mode) {
    case TotalsMode::kFixed:
      u = side.t0[i];
      v = 0.0;
      break;
    case TotalsMode::kElastic:
    case TotalsMode::kInterval:
      u = side.t0[i];
      v = -1.0 / (2.0 * side.weight[i]);
      break;
    case TotalsMode::kSam: {
      const double inv2a = 1.0 / (2.0 * side.weight[i]);
      u = side.t0[i] - side.coupling[i] * inv2a;
      v = -inv2a;
      break;
    }
  }
}

BreakpointResult EquilibrateMarket(std::span<const double> centers,
                                   std::span<const double> weights,
                                   std::span<const double> other_mult,
                                   double u, double v, BreakpointWorkspace& ws,
                                   std::span<double> x_out,
                                   SortPolicy policy, MarketOrder* order,
                                   const KernelBackend* kernel) {
  SEA_DCHECK(centers.size() == weights.size());
  SEA_DCHECK(centers.size() == other_mult.size());
  const KernelBackend& kb = kernel != nullptr ? *kernel : ScalarKernel();
  ws.Resize(centers.size());
  kb.BuildArcs(centers, weights, other_mult, ws.p(), ws.q());
  BreakpointResult res = kb.Solve(ws, u, v, policy, order);
  res.ops.flops += 2 * centers.size();  // arc construction
  if (!x_out.empty()) {
    SEA_DCHECK(x_out.size() == centers.size());
    kb.Writeback(ws.p(), ws.q(), res.lambda, x_out);
    res.ops.flops += 2 * centers.size();
  }
  return res;
}

SweepStats EquilibrateSide(const DenseMatrix& centers,
                           const DenseMatrix& weights,
                           std::span<const double> other_mult,
                           const MarketSide& side, std::span<double> mult_out,
                           DenseMatrix* x_out, const SweepOptions& opts) {
  const std::size_t markets = centers.rows();
  const std::size_t arcs = centers.cols();
  SEA_CHECK(weights.SameShape(centers));
  SEA_CHECK(other_mult.size() == arcs);
  SEA_CHECK(mult_out.size() == markets);
  SEA_CHECK(side.t0.size() == markets);
  if (side.mode != TotalsMode::kFixed)
    SEA_CHECK(side.weight.size() == markets);
  if (side.mode == TotalsMode::kSam)
    SEA_CHECK(side.coupling.size() == markets);
  if (side.mode == TotalsMode::kInterval)
    SEA_CHECK(side.lo.size() == markets && side.hi.size() == markets);
  if (x_out != nullptr) SEA_CHECK(x_out->SameShape(centers));

  SweepStats stats;
  // The scheduler's cost feedback rides on the same per-market work numbers
  // the simulator uses, so its presence forces recording.
  const bool record_costs = opts.record_task_costs || opts.scheduler != nullptr;
  if (record_costs) stats.task_costs.assign(markets, 0.0);
  if (opts.sort_cache != nullptr)
    SEA_CHECK_MSG(opts.sort_cache->size() == markets,
                  "sort cache not sized for this sweep side");

  const KernelBackend& kb =
      opts.kernel != nullptr ? *opts.kernel : ScalarKernel();
  const std::size_t workers = WorkerCount(opts.pool);
  std::vector<BreakpointWorkspace> ws(workers);
  std::vector<OpCounts> worker_ops(workers);
  std::vector<std::uint64_t> worker_reuses(workers, 0);

  ScheduleSpec sched;
  if (opts.scheduler != nullptr) sched = opts.scheduler->Next(markets, workers);

  const char* phase =
      opts.profile_phase != nullptr ? opts.profile_phase : "equilibrate.sweep";
  // Under a dynamic schedule a worker runs this body once per claimed chunk,
  // so per-worker accumulators use += throughout.
  obs::MarketAttribution* attr = opts.attribution;
  ForRangeWorker(opts.pool, markets,
                 [&](std::size_t begin, std::size_t end, std::size_t w) {
    obs::ProfScope prof(phase);
    BreakpointWorkspace& wksp = ws[w];
    OpCounts local;
    std::uint64_t reuses = 0;
    Stopwatch market_sw;
    for (std::size_t i = begin; i < end; ++i) {
      double u = 0.0, v = 0.0;
      ClearingTarget(side, i, u, v);
      std::span<double> xrow =
          (x_out != nullptr) ? x_out->Row(i) : std::span<double>{};
      MarketOrder* order =
          opts.sort_cache != nullptr ? opts.sort_cache->At(i) : nullptr;
      if (attr != nullptr) market_sw.Restart();
      BreakpointResult res;
      if (side.mode == TotalsMode::kInterval) {
        wksp.Resize(arcs);
        kb.BuildArcs(centers.Row(i), weights.Row(i), other_mult, wksp.p(),
                     wksp.q());
        res = kb.SolveBox(wksp, u, v, side.lo[i], side.hi[i], opts.sort_policy,
                          order);
        res.ops.flops += 2 * arcs;
        if (!xrow.empty()) {
          kb.Writeback(wksp.p(), wksp.q(), res.lambda, xrow);
          res.ops.flops += 2 * arcs;
        }
      } else {
        res = EquilibrateMarket(centers.Row(i), weights.Row(i), other_mult, u,
                                v, wksp, xrow, opts.sort_policy, order, &kb);
      }
      SEA_INTERNAL_CHECK(res.feasible);
      mult_out[i] = res.lambda;
      if (attr != nullptr)
        attr->RecordSolve(opts.attribution_base + i, res.active_count,
                          res.ops.breakpoints, market_sw.Seconds());
      if (record_costs) stats.task_costs[i] = res.ops.Work();
      if (res.order_reused) ++reuses;
      local += res.ops;
    }
    worker_ops[w] += local;
    worker_reuses[w] += reuses;
  }, sched);

  for (const auto& o : worker_ops) stats.total_ops += o;
  for (std::uint64_t r : worker_reuses) stats.order_reuses += r;
  stats.markets = markets;
  if (opts.scheduler != nullptr) {
    opts.scheduler->Update(stats.task_costs);
    if (!opts.record_task_costs) stats.task_costs.clear();
  }
  return stats;
}

}  // namespace sea
