// Compatibility shims over the kernel-backend interface: SolveMarket and
// SolveMarketBox predate the multi-backend refactor and now forward to the
// scalar backend's shared drivers (equilibration/kernel_backend.hpp). The
// solver implementation itself lives in kernel_backend.cpp (drivers) and
// kernel_scalar_ops.hpp / backend_simd.cpp (elementwise stages).
#include "equilibration/breakpoint_solver.hpp"

#include "equilibration/kernel_backend.hpp"

namespace sea {

double EvaluateSupply(std::span<const Arc> arcs, double lambda) {
  double s = 0.0;
  for (const Arc& a : arcs) {
    const double x = a.p + a.q * lambda;
    if (x > 0.0) s += x;
  }
  return s;
}

double EvaluateSupply(std::span<const double> p, std::span<const double> q,
                      double lambda) {
  double s = 0.0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    const double x = p[j] + q[j] * lambda;
    if (x > 0.0) s += x;
  }
  return s;
}

BreakpointResult SolveMarket(BreakpointWorkspace& ws, double u, double v,
                             SortPolicy policy, MarketOrder* order) {
  return ScalarKernel().Solve(ws, u, v, policy, order);
}

BreakpointResult SolveMarketBox(BreakpointWorkspace& ws, double u, double v,
                                double lo, double hi, SortPolicy policy,
                                MarketOrder* order) {
  return ScalarKernel().SolveBox(ws, u, v, lo, hi, policy, order);
}

}  // namespace sea
