#include "equilibration/breakpoint_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/profiler.hpp"
#include "support/check.hpp"

namespace sea {

double EvaluateSupply(std::span<const Arc> arcs, double lambda) {
  double s = 0.0;
  for (const Arc& a : arcs) {
    const double x = a.p + a.q * lambda;
    if (x > 0.0) s += x;
  }
  return s;
}

namespace detail {

// Strict weak order on breakpoint nodes: by breakpoint value, ties broken
// by original arc index. One TOTAL order shared by every sort policy, so
// the prefix sums of the segment sweep — and therefore the clearing
// multiplier — are bit-identical whichever sort produced the array.
template <typename NodeT>
inline bool NodeLess(const NodeT& a, const NodeT& b) {
  return a.b < b.b || (a.b == b.b && a.idx < b.idx);
}

// Straight insertion sort. `moves`, when non-null, receives the number of
// element shifts — for a nearly-sorted input this is the inversion count
// the sort-reuse path reports.
template <typename NodeT>
std::uint64_t InsertionSort(std::vector<NodeT>& v,
                            std::uint64_t* moves = nullptr) {
  std::uint64_t comparisons = 0;
  std::uint64_t shifted = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    NodeT key = v[i];
    std::size_t j = i;
    while (j > 0) {
      ++comparisons;
      if (!NodeLess(key, v[j - 1])) break;
      v[j] = v[j - 1];
      ++shifted;
      --j;
    }
    v[j] = key;
  }
  if (moves != nullptr) *moves += shifted;
  return comparisons;
}

template <typename NodeT>
std::uint64_t Heapsort(std::vector<NodeT>& v) {
  std::uint64_t comparisons = 0;
  const std::size_t n = v.size();
  if (n < 2) return 0;

  auto sift_down = [&](std::size_t start, std::size_t end) {
    std::size_t root = start;
    for (;;) {
      std::size_t child = 2 * root + 1;
      if (child > end) break;
      if (child < end) {
        ++comparisons;
        if (NodeLess(v[child], v[child + 1])) ++child;
      }
      ++comparisons;
      if (!NodeLess(v[root], v[child])) break;
      std::swap(v[root], v[child]);
      root = child;
    }
  };

  for (std::size_t start = n / 2; start-- > 0;) sift_down(start, n - 1);
  for (std::size_t end = n - 1; end > 0; --end) {
    std::swap(v[0], v[end]);
    sift_down(0, end - 1);
  }
  return comparisons;
}

}  // namespace detail

BreakpointResult SolveMarket(BreakpointWorkspace& ws, double u, double v,
                             SortPolicy policy, MarketOrder* order) {
  obs::ProfScopeFine prof("breakpoint.solve");
  const auto& arcs = ws.arcs_;
  auto& nodes = ws.nodes_;
  const std::size_t n = arcs.size();

  BreakpointResult result;
  SEA_CHECK_MSG(v <= 0.0, "elastic slope must be nonpositive");
  if (n == 0) {
    // No arcs: total supply is 0; clearing requires u + v*lambda = 0.
    if (v < 0.0) {
      result.lambda = -u / v;
    } else {
      result.feasible = (u == 0.0);
      result.lambda = 0.0;
    }
    return result;
  }
  if (v == 0.0 && u < 0.0) {
    result.feasible = false;
    return result;
  }

  // Build breakpoint nodes — in the persisted order when reusing (the array
  // is then nearly sorted and insertion repairs it in O(n + inversions)),
  // in natural arc order otherwise.
  const bool reuse = policy == SortPolicy::kReuse && order != nullptr &&
                     order->perm.size() == n;
  nodes.resize(n);
  if (reuse) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint32_t j = order->perm[k];
      SEA_DCHECK(j < n && arcs[j].q > 0.0);
      nodes[k] = {-arcs[j].p / arcs[j].q, arcs[j].p, arcs[j].q, j};
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      SEA_DCHECK(arcs[j].q > 0.0);
      nodes[j] = {-arcs[j].p / arcs[j].q, arcs[j].p, arcs[j].q,
                  static_cast<std::uint32_t>(j)};
    }
  }
  result.ops.flops += n;  // breakpoint divisions
  result.ops.breakpoints = n;

  if (reuse) {
    result.ops.comparisons +=
        detail::InsertionSort(nodes, &result.ops.inversions);
    result.order_reused = true;
    ++order->reuses;
  } else {
    const bool use_insertion =
        policy == SortPolicy::kInsertion ||
        (policy != SortPolicy::kHeapsort && n <= kInsertionThreshold);
    result.ops.comparisons +=
        use_insertion ? detail::InsertionSort(nodes) : detail::Heapsort(nodes);
  }
  if (policy == SortPolicy::kReuse && order != nullptr) {
    // Persist the (repaired or freshly established) order for the next sweep.
    order->perm.resize(n);
    for (std::size_t k = 0; k < n; ++k) order->perm[k] = nodes[k].idx;
  }

  // Segment before the first breakpoint: supply is 0.
  // Clearing: 0 = u + v*lambda.
  if (v < 0.0) {
    const double lam = -u / v;
    ++result.ops.flops;
    ++result.ops.comparisons;
    if (lam <= nodes.front().b) {
      result.lambda = lam;
      result.active_count = 0;
      return result;
    }
  } else if (u == 0.0) {
    // Degenerate fixed total of zero: every lambda <= first breakpoint
    // clears; return the boundary (all allocations zero).
    result.lambda = nodes.front().b;
    result.active_count = 0;
    return result;
  }

  // Sweep segments. After activating nodes[0..k], supply(lambda) =
  // P + Q*lambda on [nodes[k].b, nodes[k+1].b].
  double p_sum = 0.0;
  double q_sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    p_sum += nodes[k].p;
    q_sum += nodes[k].q;
    result.ops.flops += 4;
    const double denom = q_sum - v;  // > 0
    const double lam = (u - p_sum) / denom;
    const double seg_end =
        (k + 1 < n) ? nodes[k + 1].b : std::numeric_limits<double>::infinity();
    ++result.ops.comparisons;
    // lam >= nodes[k].b holds automatically given monotonicity; accept the
    // first segment whose candidate does not overshoot its right edge.
    if (lam <= seg_end) {
      result.lambda = lam;
      result.active_count = k + 1;
      return result;
    }
  }
  SEA_INTERNAL_CHECK(false);  // unreachable: last segment always accepts
  return result;
}

BreakpointResult SolveMarketBox(BreakpointWorkspace& ws, double u, double v,
                                double lo, double hi, SortPolicy policy,
                                MarketOrder* order) {
  obs::ProfScopeFine prof("breakpoint.solve");
  SEA_CHECK_MSG(v < 0.0, "interval clearing needs a strictly elastic slope");
  SEA_CHECK_MSG(0.0 <= lo && lo <= hi, "invalid total interval");

  // The response u + v*lambda is decreasing (v < 0): it sits at hi while
  // u + v*lambda >= hi, i.e. lambda <= (hi - u)/v, follows the affine middle
  // piece in between, and sits at lo for lambda >= (lo - u)/v. Solve against
  // each piece and accept the candidate that lands on its own piece;
  // monotonicity guarantees exactly one does (ties at junctions agree).
  // With sort reuse, the first inner solve repairs the persisted order and
  // the later pieces start from an already-sorted permutation.
  const double enter_mid = (hi - u) / v;  // lambda where response leaves hi
  const double leave_mid = (lo - u) / v;  // lambda where response hits lo

  // Upper piece: constant hi.
  BreakpointResult r = SolveMarket(ws, hi, 0.0, policy, order);
  if (r.lambda <= enter_mid) return r;
  OpCounts ops = r.ops;
  const bool reused = r.order_reused;

  // Middle piece: the affine response itself.
  r = SolveMarket(ws, u, v, policy, order);
  ops += r.ops;
  if (r.lambda >= enter_mid && r.lambda <= leave_mid) {
    r.ops = ops;
    r.order_reused = reused;
    return r;
  }

  // Lower piece: constant lo.
  r = SolveMarket(ws, lo, 0.0, policy, order);
  ops += r.ops;
  r.ops = ops;
  r.order_reused = reused;
  SEA_INTERNAL_CHECK(r.feasible);
  // On this piece the candidate must sit at or beyond the junction; clamp
  // against degenerate ties.
  if (r.lambda < leave_mid) r.lambda = leave_mid;
  return r;
}

}  // namespace sea
