#include "equilibration/kernel_backend.hpp"

#include <cstdlib>
#include <limits>

#include "obs/profiler.hpp"
#include "support/check.hpp"
#include "support/simd.hpp"

namespace sea {

const char* ToString(KernelBackendKind kind) {
  switch (kind) {
    case KernelBackendKind::kAuto:
      return "auto";
    case KernelBackendKind::kScalar:
      return "scalar";
    case KernelBackendKind::kSimd:
      return "simd";
  }
  return "unknown";
}

std::optional<KernelBackendKind> ParseKernelBackendKind(std::string_view text) {
  if (text == "auto") return KernelBackendKind::kAuto;
  if (text == "scalar") return KernelBackendKind::kScalar;
  if (text == "simd") return KernelBackendKind::kSimd;
  return std::nullopt;
}

namespace {

using detail::SortKey;

// Strict weak order on sort keys: by breakpoint value, ties broken by
// original arc index. One TOTAL order shared by every sort policy, so the
// prefix sums of the segment sweep — and therefore the clearing multiplier —
// are bit-identical whichever sort produced the array.
inline bool KeyLess(const SortKey& a, const SortKey& b) {
  return a.b < b.b || (a.b == b.b && a.idx < b.idx);
}

// Straight insertion sort. `moves`, when non-null, receives the number of
// element shifts — for a nearly-sorted input this is the inversion count
// the sort-reuse path reports.
std::uint64_t InsertionSort(std::vector<SortKey>& v,
                            std::uint64_t* moves = nullptr) {
  std::uint64_t comparisons = 0;
  std::uint64_t shifted = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    SortKey key = v[i];
    std::size_t j = i;
    while (j > 0) {
      ++comparisons;
      if (!KeyLess(key, v[j - 1])) break;
      v[j] = v[j - 1];
      ++shifted;
      --j;
    }
    v[j] = key;
  }
  if (moves != nullptr) *moves += shifted;
  return comparisons;
}

std::uint64_t Heapsort(std::vector<SortKey>& v) {
  std::uint64_t comparisons = 0;
  const std::size_t n = v.size();
  if (n < 2) return 0;

  auto sift_down = [&](std::size_t start, std::size_t end) {
    std::size_t root = start;
    for (;;) {
      std::size_t child = 2 * root + 1;
      if (child > end) break;
      if (child < end) {
        ++comparisons;
        if (KeyLess(v[child], v[child + 1])) ++child;
      }
      ++comparisons;
      if (!KeyLess(v[root], v[child])) break;
      std::swap(v[root], v[child]);
      root = child;
    }
  };

  for (std::size_t start = n / 2; start-- > 0;) sift_down(start, n - 1);
  for (std::size_t end = n - 1; end > 0; --end) {
    std::swap(v[0], v[end]);
    sift_down(0, end - 1);
  }
  return comparisons;
}

}  // namespace

BreakpointResult KernelBackend::Solve(BreakpointWorkspace& ws, double u,
                                      double v, SortPolicy policy,
                                      MarketOrder* order) const {
  obs::ProfScopeFine prof("breakpoint.solve");
  const std::size_t n = ws.n_;

  BreakpointResult result;
  SEA_CHECK_MSG(v <= 0.0, "elastic slope must be nonpositive");
  if (n == 0) {
    // No arcs: total supply is 0; clearing requires u + v*lambda = 0.
    if (v < 0.0) {
      result.lambda = -u / v;
    } else {
      result.feasible = (u == 0.0);
      result.lambda = 0.0;
    }
    return result;
  }
  if (v == 0.0 && u < 0.0) {
    result.feasible = false;
    return result;
  }

  // Breakpoints b_j = -p_j/q_j, elementwise (backend-vectorized), in natural
  // arc order.
  auto& b = ws.b_;
  if (b.size() < n) b.resize(n);
  Breakpoints(std::span<const double>(ws.p_.data(), n),
              std::span<const double>(ws.q_.data(), n),
              std::span<double>(b.data(), n));
  result.ops.flops += n;  // breakpoint divisions
  result.ops.breakpoints = n;

  // Build sort keys — in the persisted order when reusing (the array is then
  // nearly sorted and insertion repairs it in O(n + inversions)), in natural
  // arc order otherwise.
  auto& keys = ws.keys_;
  keys.resize(n);
  const bool reuse = policy == SortPolicy::kReuse && order != nullptr &&
                     order->perm.size() == n;
  if (reuse) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint32_t j = order->perm[k];
      SEA_DCHECK(j < n && ws.q_[j] > 0.0);
      keys[k] = {b[j], j};
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      SEA_DCHECK(ws.q_[j] > 0.0);
      keys[j] = {b[j], static_cast<std::uint32_t>(j)};
    }
  }

  // The sort stays scalar in every backend: its comparison count is part of
  // the complexity model, and a shared sort is what makes the total order —
  // and thus the multiplier — backend-independent by construction.
  if (reuse) {
    result.ops.comparisons += InsertionSort(keys, &result.ops.inversions);
    result.order_reused = true;
    ++order->reuses;
  } else {
    const bool use_insertion =
        policy == SortPolicy::kInsertion ||
        (policy != SortPolicy::kHeapsort && n <= kInsertionThreshold);
    result.ops.comparisons +=
        use_insertion ? InsertionSort(keys) : Heapsort(keys);
  }
  if (policy == SortPolicy::kReuse && order != nullptr) {
    // Persist the (repaired or freshly established) order for the next sweep.
    order->perm.resize(n);
    for (std::size_t k = 0; k < n; ++k) order->perm[k] = keys[k].idx;
  }

  // Gather the sorted SoA view, padded so vector sweep blocks may run past
  // the logical end: +inf breakpoints make the tail always-accepting, zero
  // arcs leave the prefix sums untouched.
  const std::size_t padded = n + simd::kPadLanes;
  if (ws.bs_.size() < padded) {
    ws.bs_.resize(padded);
    ws.ps_.resize(padded);
    ws.qs_.resize(padded);
  }
  for (std::size_t k = 0; k < n; ++k) {
    ws.bs_[k] = keys[k].b;
    ws.ps_[k] = ws.p_[keys[k].idx];
    ws.qs_[k] = ws.q_[keys[k].idx];
  }
  for (std::size_t k = n; k < padded; ++k) {
    ws.bs_[k] = std::numeric_limits<double>::infinity();
    ws.ps_[k] = 0.0;
    ws.qs_[k] = 0.0;
  }

  // Segment before the first breakpoint: supply is 0.
  // Clearing: 0 = u + v*lambda.
  if (v < 0.0) {
    const double lam = -u / v;
    ++result.ops.flops;
    ++result.ops.comparisons;
    if (lam <= ws.bs_[0]) {
      result.lambda = lam;
      result.active_count = 0;
      return result;
    }
  } else if (u == 0.0) {
    // Degenerate fixed total of zero: every lambda <= first breakpoint
    // clears; return the boundary (all allocations zero).
    result.lambda = ws.bs_[0];
    result.active_count = 0;
    return result;
  }

  // Sweep segments (backend-vectorized search). After activating nodes
  // [0..k], supply(lambda) = P_k + Q_k*lambda on [bs[k], bs[k+1]].
  const SweepHit hit =
      SweepSearch(std::span<const double>(ws.bs_.data(), padded),
                  std::span<const double>(ws.ps_.data(), padded),
                  std::span<const double>(ws.qs_.data(), padded), n, u, v);
  // The last segment always accepts (its right edge is +inf), so a miss can
  // only mean non-finite arc data poisoned the prefix sums.
  SEA_INTERNAL_CHECK(hit.found);
  result.ops.flops += 4 * (hit.k + 1);
  result.ops.comparisons += hit.k + 1;
  result.lambda = hit.lambda;
  result.active_count = hit.k + 1;
  return result;
}

BreakpointResult KernelBackend::SolveBox(BreakpointWorkspace& ws, double u,
                                         double v, double lo, double hi,
                                         SortPolicy policy,
                                         MarketOrder* order) const {
  obs::ProfScopeFine prof("breakpoint.solve");
  SEA_CHECK_MSG(v < 0.0, "interval clearing needs a strictly elastic slope");
  SEA_CHECK_MSG(0.0 <= lo && lo <= hi, "invalid total interval");

  // The response u + v*lambda is decreasing (v < 0): it sits at hi while
  // u + v*lambda >= hi, i.e. lambda <= (hi - u)/v, follows the affine middle
  // piece in between, and sits at lo for lambda >= (lo - u)/v. Solve against
  // each piece and accept the candidate that lands on its own piece;
  // monotonicity guarantees exactly one does (ties at junctions agree).
  // With sort reuse, the first inner solve repairs the persisted order and
  // the later pieces start from an already-sorted permutation.
  const double enter_mid = (hi - u) / v;  // lambda where response leaves hi
  const double leave_mid = (lo - u) / v;  // lambda where response hits lo

  // Upper piece: constant hi.
  BreakpointResult r = Solve(ws, hi, 0.0, policy, order);
  if (r.lambda <= enter_mid) return r;
  OpCounts ops = r.ops;
  const bool reused = r.order_reused;

  // Middle piece: the affine response itself.
  r = Solve(ws, u, v, policy, order);
  ops += r.ops;
  if (r.lambda >= enter_mid && r.lambda <= leave_mid) {
    r.ops = ops;
    r.order_reused = reused;
    return r;
  }

  // Lower piece: constant lo.
  r = Solve(ws, lo, 0.0, policy, order);
  ops += r.ops;
  r.ops = ops;
  r.order_reused = reused;
  SEA_INTERNAL_CHECK(r.feasible);
  // On this piece the candidate must sit at or beyond the junction; clamp
  // against degenerate ties.
  if (r.lambda < leave_mid) r.lambda = leave_mid;
  return r;
}

bool SimdKernelAvailable() {
  return simd::RuntimeIsa() != simd::Isa::kScalar;
}

KernelResolution ResolveKernelBackend(KernelBackendKind requested) {
  KernelResolution res;
  res.requested = requested;

  KernelBackendKind effective = requested;
  const char* via = "requested";
  if (effective == KernelBackendKind::kAuto) {
    // Deployment override without recompiling callers; unknown values are
    // ignored (auto), never fatal — this is a tuning knob, not an input.
    if (const char* env = std::getenv("SEA_BACKEND");
        env != nullptr && *env != '\0') {
      if (const auto parsed = ParseKernelBackendKind(env);
          parsed.has_value() && *parsed != KernelBackendKind::kAuto) {
        effective = *parsed;
        via = "SEA_BACKEND";
      }
    }
  }

  if (effective == KernelBackendKind::kScalar) {
    res.kernel = &ScalarKernel();
    return res;
  }
  if (SimdKernelAvailable()) {
    res.kernel = &SimdKernel();
    return res;
  }
  res.kernel = &ScalarKernel();
  if (effective == KernelBackendKind::kSimd) {
    res.fell_back = true;
    res.note = std::string("simd backend ") + via +
               " but unavailable (build supports " +
               simd::ToString(simd::CompiledIsa()) + ", this CPU runs " +
               simd::ToString(simd::RuntimeIsa()) +
               "); falling back to scalar";
  }
  return res;
}

}  // namespace sea
