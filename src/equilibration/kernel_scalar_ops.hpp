// Scalar bodies of the elementwise kernel stages, shared by the scalar
// backend and by the SIMD backend's degradation/tail paths. Both including
// translation units are compiled with -ffp-contract=off (src/CMakeLists.txt)
// so these bodies have ONE floating-point meaning everywhere — the reference
// semantics the bit-identity contract in kernel_backend.hpp is stated
// against. Internal header: not part of the public surface.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "equilibration/kernel_backend.hpp"

namespace sea::kernel_ops {

inline void BuildArcsScalar(std::span<const double> centers,
                            std::span<const double> weights,
                            std::span<const double> other_mult,
                            std::span<double> p, std::span<double> q) {
  const std::size_t n = centers.size();
  for (std::size_t j = 0; j < n; ++j) {
    const double qj = 1.0 / (2.0 * weights[j]);
    q[j] = qj;
    p[j] = centers[j] + other_mult[j] * qj;
  }
}

inline void BuildArcsGatherScalar(std::span<const double> centers,
                                  std::span<const double> weights,
                                  std::span<const double> other_mult,
                                  std::span<const std::size_t> cols,
                                  std::span<double> p, std::span<double> q) {
  const std::size_t n = centers.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double qk = 1.0 / (2.0 * weights[k]);
    q[k] = qk;
    p[k] = centers[k] + other_mult[cols[k]] * qk;
  }
}

inline void BreakpointsScalar(std::span<const double> p,
                              std::span<const double> q,
                              std::span<double> b) {
  const std::size_t n = p.size();
  for (std::size_t j = 0; j < n; ++j) b[j] = -p[j] / q[j];
}

inline void WritebackScalar(std::span<const double> p,
                            std::span<const double> q, double lambda,
                            std::span<double> x) {
  const std::size_t n = p.size();
  // std::max(0.0, v) returns +0.0 for v in {-0.0, NaN}; the vector bodies
  // reproduce exactly this (docs/KERNELS.md, "Writeback semantics").
  for (std::size_t j = 0; j < n; ++j)
    x[j] = std::max(0.0, p[j] + q[j] * lambda);
}

inline KernelBackend::SweepHit SweepSearchScalar(std::span<const double> bs,
                                                 std::span<const double> ps,
                                                 std::span<const double> qs,
                                                 std::size_t n, double u,
                                                 double v) {
  KernelBackend::SweepHit hit;
  double p_sum = 0.0;
  double q_sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    p_sum += ps[k];
    q_sum += qs[k];
    const double denom = q_sum - v;  // > 0
    // Multiply-form acceptance (kernel_backend.hpp): equivalent to
    // (u - P)/denom <= bs[k+1] since denom > 0, but division-free per
    // segment and elementwise for the vector backends. bs[n] is the +inf
    // pad, so the last segment always accepts on finite data.
    if (u - p_sum <= bs[k + 1] * denom) {
      hit.k = k;
      hit.lambda = (u - p_sum) / denom;
      hit.found = true;
      return hit;
    }
  }
  return hit;  // non-finite data poisoned the sums; driver reports breakdown
}

}  // namespace sea::kernel_ops
