// Exact equilibration of a single market: the closed-form solver that every
// row/column equilibrium subproblem of SEA reduces to.
//
// Problem: each row (supply market) or column (demand market) subproblem of
// the splitting equilibration algorithm is a singly-constrained quadratic
// knapsack. Its KKT conditions (paper eqs. (20)-(23)) say the optimal
// allocations are a piecewise-linear function of the constraint's multiplier:
//
//    x_j(lambda) = max(0, p_j + q_j * lambda),   q_j > 0,
//
// and the multiplier solves the scalar "market clearing" equation
//
//    sum_j x_j(lambda) = u + v * lambda,         v <= 0,
//
// where the right-hand side is a fixed total (v = 0, paper Section 3.1.3) or
// an elastic affine supply/demand response (v < 0, Sections 3.1.1-3.1.2).
// The left side is piecewise-linear and nondecreasing with breakpoints
// b_j = -p_j / q_j; the right side is affine nonincreasing, so the crossing
// is unique and is found *exactly* by sorting the breakpoints and sweeping
// (Eydeland & Nagurney 1989's "exact equilibration").
//
// Sorting: the paper uses HEAPSORT for long arrays (Section 4.1.1) and
// STRAIGHT INSERTION for arrays of 10..120 elements (Section 5.1.1). We
// implement both and pick by length (overridable), and count comparisons so
// the complexity model (7n + n ln n + 2n per market) can be validated.
//
// Sort reuse (SortPolicy::kReuse, docs/PARALLELISM.md): across SEA sweeps a
// market's breakpoint ORDER stabilizes as the multipliers converge — the same
// nearly-sorted regime accelerated iterative-scaling methods exploit. When a
// MarketOrder carrying the previous sweep's permutation is supplied, the
// solver builds the breakpoint array already permuted and repairs it with
// straight insertion — O(n + inversions) instead of a fresh O(n log n)
// heapsort — then persists the updated permutation for the next sweep. Ties
// are broken by original arc index in EVERY policy, so all sort paths produce
// one total order and bit-identical clearing multipliers.
//
// Since the multi-backend refactor (docs/KERNELS.md), the workspace holds the
// market as a structure of arrays (contiguous p[], q[] the caller fills, plus
// breakpoint/sort/sweep scratch) and the solve itself lives behind the
// runtime sea::KernelBackend interface (equilibration/kernel_backend.hpp).
// The free functions below are thin compatibility shims over the scalar
// backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "support/op_counter.hpp"

namespace sea {

class KernelBackend;

// One allocation arc of the market: x_j(lambda) = max(0, p + q*lambda).
// Convenience AoS view for tests and one-off callers; the hot paths fill the
// workspace's SoA arrays directly.
struct Arc {
  double p = 0.0;
  double q = 0.0;  // must be > 0
};

enum class SortPolicy {
  kAuto,       // insertion sort below kInsertionThreshold, heapsort above
  kInsertion,  // straight insertion sort (paper Section 5.1.1)
  kHeapsort,   // heapsort (paper Section 4.1.1)
  kReuse,      // repair the previous sweep's order; needs a MarketOrder
               // (falls back to kAuto when none is supplied)
};

// kAuto crossover between straight insertion and heapsort. The paper quotes
// insertion for 10..120 elements (Section 5.1.1) — on its 1989 testbed; the
// measured crossover on current x86-64 (bench/micro_kernels.cpp,
// BM_MarketSolveInsertion vs BM_MarketSolveHeapsort) sits at roughly 100-150
// elements, so we keep the next binary magnitude above the paper's 120. If
// the microbenches move the crossover on new hardware, re-tune here.
inline constexpr std::size_t kInsertionThreshold = 128;

struct BreakpointResult {
  double lambda = 0.0;
  std::size_t active_count = 0;  // arcs with x_j(lambda) > 0
  bool feasible = true;          // false only if v == 0 and u < 0
  bool order_reused = false;     // solved by repairing a persisted order
  OpCounts ops;
};

// One market's breakpoint order, persisted across sweeps for
// SortPolicy::kReuse. `perm` is the sorted order as indices into the arc
// array (empty until the first solve establishes it; invalidated by the
// solver whenever the arc count changes).
struct MarketOrder {
  std::vector<std::uint32_t> perm;
  std::uint64_t reuses = 0;  // solves that repaired instead of re-sorting
};

namespace detail {

// Sort element: breakpoint value plus the original arc index that breaks
// ties (16 bytes — half the old {b,p,q,idx} node, so every sort moves half
// the data; p/q are gathered into sweep order after the sort instead).
struct SortKey {
  double b = 0.0;
  std::uint32_t idx = 0;
};

}  // namespace detail

// Reusable per-worker scratch arena for market solves; reuse across calls to
// avoid per-market allocation on the hot path. The market itself is the SoA
// pair p()/q(): callers Resize() then fill the spans (typically through
// KernelBackend::BuildArcs), and the solver keeps its breakpoint, sort-key,
// and sorted-sweep arrays alongside.
class BreakpointWorkspace {
 public:
  // Sizes the market to n arcs; existing p/q contents beyond n are dropped.
  void Resize(std::size_t n) {
    n_ = n;
    if (p_.size() < n) {
      p_.resize(n);
      q_.resize(n);
    }
  }
  std::size_t size() const { return n_; }

  // The market bundle, valid after Resize: x_j(lambda) = max(0, p[j] +
  // q[j]*lambda) with q[j] > 0.
  std::span<double> p() { return {p_.data(), n_}; }
  std::span<double> q() { return {q_.data(), n_}; }
  std::span<const double> p() const { return {p_.data(), n_}; }
  std::span<const double> q() const { return {q_.data(), n_}; }

  // AoS convenience for tests and one-off callers.
  void Assign(std::span<const Arc> arcs) {
    Resize(arcs.size());
    for (std::size_t j = 0; j < arcs.size(); ++j) {
      p_[j] = arcs[j].p;
      q_[j] = arcs[j].q;
    }
  }
  void Assign(std::initializer_list<Arc> arcs) {
    Assign(std::span<const Arc>(arcs.begin(), arcs.size()));
  }

 private:
  friend class KernelBackend;
  std::size_t n_ = 0;
  // The market bundle (caller-filled; only the first n_ entries are live).
  std::vector<double> p_;
  std::vector<double> q_;
  // Solver scratch: unsorted breakpoints, sort keys, and the sorted SoA view
  // (padded by simd::kPadLanes so vector sweeps may run past the end).
  std::vector<double> b_;
  std::vector<detail::SortKey> keys_;
  std::vector<double> bs_;
  std::vector<double> ps_;
  std::vector<double> qs_;
};

// Solves sum_j max(0, p_j + q_j*lambda) = u + v*lambda over the market
// currently in ws. Preconditions: all q_j > 0, v <= 0, and u >= 0 when
// v == 0. The p/q arrays are left unchanged. With policy == kReuse and a
// non-null order, the previous permutation seeds the sort (see header
// comment); the updated permutation is written back to *order.
// Compatibility shim over ScalarKernel().Solve (kernel_backend.hpp).
BreakpointResult SolveMarket(BreakpointWorkspace& ws, double u, double v,
                             SortPolicy policy = SortPolicy::kAuto,
                             MarketOrder* order = nullptr);

// Interval-total variant (Harrigan & Buchanan 1984 extension): clears
// against the *clamped* response
//
//    sum_j max(0, p_j + q_j*lambda) = clamp(u + v*lambda, lo, hi),
//
// the closed form of a market whose total is both penalized and box
// constrained (lo <= total <= hi). Requires v < 0 and 0 <= lo <= hi. The
// left side is nondecreasing and the right side nonincreasing, so the
// crossing is unique; it is found by testing the three response pieces.
// Compatibility shim over ScalarKernel().SolveBox (kernel_backend.hpp).
BreakpointResult SolveMarketBox(BreakpointWorkspace& ws, double u, double v,
                                double lo, double hi,
                                SortPolicy policy = SortPolicy::kAuto,
                                MarketOrder* order = nullptr);

// Evaluates sum_j max(0, p_j + q_j*lambda) — the left-hand side of the
// clearing equation, used by tests and by callers that need allocations
// after solving. Sequential summation (order-dependent), deliberately NOT a
// backend method.
double EvaluateSupply(std::span<const Arc> arcs, double lambda);
double EvaluateSupply(std::span<const double> p, std::span<const double> q,
                      double lambda);

}  // namespace sea
