// Exact equilibration of a single market: the closed-form solver that every
// row/column equilibrium subproblem of SEA reduces to.
//
// Problem: each row (supply market) or column (demand market) subproblem of
// the splitting equilibration algorithm is a singly-constrained quadratic
// knapsack. Its KKT conditions (paper eqs. (20)-(23)) say the optimal
// allocations are a piecewise-linear function of the constraint's multiplier:
//
//    x_j(lambda) = max(0, p_j + q_j * lambda),   q_j > 0,
//
// and the multiplier solves the scalar "market clearing" equation
//
//    sum_j x_j(lambda) = u + v * lambda,         v <= 0,
//
// where the right-hand side is a fixed total (v = 0, paper Section 3.1.3) or
// an elastic affine supply/demand response (v < 0, Sections 3.1.1-3.1.2).
// The left side is piecewise-linear and nondecreasing with breakpoints
// b_j = -p_j / q_j; the right side is affine nonincreasing, so the crossing
// is unique and is found *exactly* by sorting the breakpoints and sweeping
// (Eydeland & Nagurney 1989's "exact equilibration").
//
// Sorting: the paper uses HEAPSORT for long arrays (Section 4.1.1) and
// STRAIGHT INSERTION for arrays of 10..120 elements (Section 5.1.1). We
// implement both and pick by length (overridable), and count comparisons so
// the complexity model (7n + n ln n + 2n per market) can be validated.
//
// Sort reuse (SortPolicy::kReuse, docs/PARALLELISM.md): across SEA sweeps a
// market's breakpoint ORDER stabilizes as the multipliers converge — the same
// nearly-sorted regime accelerated iterative-scaling methods exploit. When a
// MarketOrder carrying the previous sweep's permutation is supplied, the
// solver builds the breakpoint array already permuted and repairs it with
// straight insertion — O(n + inversions) instead of a fresh O(n log n)
// heapsort — then persists the updated permutation for the next sweep. Ties
// are broken by original arc index in EVERY policy, so all sort paths produce
// one total order and bit-identical clearing multipliers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/op_counter.hpp"

namespace sea {

// One allocation arc of the market: x_j(lambda) = max(0, p + q*lambda).
struct Arc {
  double p = 0.0;
  double q = 0.0;  // must be > 0
};

enum class SortPolicy {
  kAuto,       // insertion sort below kInsertionThreshold, heapsort above
  kInsertion,  // straight insertion sort (paper Section 5.1.1)
  kHeapsort,   // heapsort (paper Section 4.1.1)
  kReuse,      // repair the previous sweep's order; needs a MarketOrder
               // (falls back to kAuto when none is supplied)
};

inline constexpr std::size_t kInsertionThreshold = 128;

struct BreakpointResult {
  double lambda = 0.0;
  std::size_t active_count = 0;  // arcs with x_j(lambda) > 0
  bool feasible = true;          // false only if v == 0 and u < 0
  bool order_reused = false;     // solved by repairing a persisted order
  OpCounts ops;
};

// One market's breakpoint order, persisted across sweeps for
// SortPolicy::kReuse. `perm` is the sorted order as indices into the arc
// array (empty until the first solve establishes it; invalidated by the
// solver whenever the arc count changes).
struct MarketOrder {
  std::vector<std::uint32_t> perm;
  std::uint64_t reuses = 0;  // solves that repaired instead of re-sorting
};

// Reusable scratch for one solver call; reuse across calls to avoid
// per-market allocation on the hot path.
class BreakpointWorkspace {
 public:
  // Arcs for the caller to fill before Solve (resized as needed).
  std::vector<Arc>& arcs() { return arcs_; }

 private:
  friend BreakpointResult SolveMarket(BreakpointWorkspace&, double, double,
                                      SortPolicy, MarketOrder*);
  struct Node {
    double b;  // breakpoint -p/q
    double p;
    double q;
    std::uint32_t idx;  // original arc index; total-order tie break
  };
  std::vector<Arc> arcs_;
  std::vector<Node> nodes_;
};

// Solves sum_j max(0, p_j + q_j*lambda) = u + v*lambda over the arcs
// currently in ws.arcs(). Preconditions: all q_j > 0, v <= 0, and u >= 0
// when v == 0. The arcs vector is left unchanged. With policy == kReuse and
// a non-null order, the previous permutation seeds the sort (see header
// comment); the updated permutation is written back to *order.
BreakpointResult SolveMarket(BreakpointWorkspace& ws, double u, double v,
                             SortPolicy policy = SortPolicy::kAuto,
                             MarketOrder* order = nullptr);

// Interval-total variant (Harrigan & Buchanan 1984 extension): clears
// against the *clamped* response
//
//    sum_j max(0, p_j + q_j*lambda) = clamp(u + v*lambda, lo, hi),
//
// the closed form of a market whose total is both penalized and box
// constrained (lo <= total <= hi). Requires v < 0 and 0 <= lo <= hi. The
// left side is nondecreasing and the right side nonincreasing, so the
// crossing is unique; it is found by testing the three response pieces.
BreakpointResult SolveMarketBox(BreakpointWorkspace& ws, double u, double v,
                                double lo, double hi,
                                SortPolicy policy = SortPolicy::kAuto,
                                MarketOrder* order = nullptr);

// Evaluates sum_j max(0, p_j + q_j*lambda) for the given arcs — the
// left-hand side of the clearing equation, used by tests and by callers that
// need allocations after solving.
double EvaluateSupply(std::span<const Arc> arcs, double lambda);

}  // namespace sea
