// The scalar kernel backend: the reference implementation of the
// elementwise stages (kernel_scalar_ops.hpp bodies, unvectorized). Compiled
// with -ffp-contract=off so its arithmetic is the fixed point the SIMD
// backend must match bit for bit.
#include "equilibration/kernel_backend.hpp"
#include "equilibration/kernel_scalar_ops.hpp"

namespace sea {

namespace {

class ScalarBackend final : public KernelBackend {
 public:
  const char* name() const override { return "scalar"; }

  void BuildArcs(std::span<const double> centers,
                 std::span<const double> weights,
                 std::span<const double> other_mult, std::span<double> p,
                 std::span<double> q) const override {
    kernel_ops::BuildArcsScalar(centers, weights, other_mult, p, q);
  }

  void BuildArcsGather(std::span<const double> centers,
                       std::span<const double> weights,
                       std::span<const double> other_mult,
                       std::span<const std::size_t> cols, std::span<double> p,
                       std::span<double> q) const override {
    kernel_ops::BuildArcsGatherScalar(centers, weights, other_mult, cols, p,
                                      q);
  }

  void Breakpoints(std::span<const double> p, std::span<const double> q,
                   std::span<double> b) const override {
    kernel_ops::BreakpointsScalar(p, q, b);
  }

  void Writeback(std::span<const double> p, std::span<const double> q,
                 double lambda, std::span<double> x) const override {
    kernel_ops::WritebackScalar(p, q, lambda, x);
  }

  SweepHit SweepSearch(std::span<const double> bs, std::span<const double> ps,
                       std::span<const double> qs, std::size_t n, double u,
                       double v) const override {
    return kernel_ops::SweepSearchScalar(bs, ps, qs, n, u, v);
  }
};

}  // namespace

const KernelBackend& ScalarKernel() {
  static const ScalarBackend backend;
  return backend;
}

}  // namespace sea
