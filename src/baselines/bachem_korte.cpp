#include "baselines/bachem_korte.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/factorizations.hpp"
#include "obs/profiler.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

namespace {

// Residual summary for the stopping rule.
struct Residuals {
  double max_rel = 0.0;  // constraint residuals, relative
  double neg = 0.0;      // most negative entry, as a positive number
  double Max() const { return std::max(max_rel, neg); }
};

Residuals ComputeResiduals(const Vector& x, const GeneralProblem& p) {
  const std::size_t m = p.m(), n = p.n();
  Residuals r;
  Vector colsum(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = x[i * n + j];
      rowsum += v;
      colsum[j] += v;
      if (v < 0.0) r.neg = std::max(r.neg, -v);
    }
    r.max_rel = std::max(r.max_rel, std::abs(rowsum - p.s0()[i]) /
                                        std::max(1.0, std::abs(p.s0()[i])));
  }
  for (std::size_t j = 0; j < n; ++j)
    r.max_rel = std::max(r.max_rel, std::abs(colsum[j] - p.d0()[j]) /
                                        std::max(1.0, std::abs(p.d0()[j])));
  return r;
}

}  // namespace

BachemKorteRun SolveBachemKorte(const GeneralProblem& problem,
                                const BachemKorteOptions& opts) {
  problem.Validate();
  SEA_CHECK_MSG(problem.mode() == TotalsMode::kFixed,
                "B-K handles the fixed-totals regime");
  const std::size_t m = problem.m(), n = problem.n();
  const std::size_t mn = m * n;
  SEA_CHECK_MSG(mn <= 4096,
                "B-K materializes Q^{-1}; use SEA or RC at this scale "
                "(the paper likewise stopped B-K at G = 900x900)");

  obs::ProfScope prof_solve("baseline.bk.solve");
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  // Q = 2G; factor once and materialize Q^{-1} (symmetric).
  DenseMatrix q(mn, mn);
  for (std::size_t a = 0; a < mn; ++a)
    for (std::size_t b = 0; b < mn; ++b) q(a, b) = 2.0 * problem.G()(a, b);
  auto chol = Cholesky::Factor(q);
  SEA_CHECK_MSG(chol.has_value(), "G must be positive definite for B-K");

  DenseMatrix qinv(mn, mn);
  {
    obs::ProfScope prof("bk.materialize_qinv");
    Vector e(mn, 0.0);
    for (std::size_t k = 0; k < mn; ++k) {
      e[k] = 1.0;
      Vector col = chol->Solve(e);
      for (std::size_t a = 0; a < mn; ++a) qinv(a, k) = col[a];
      e[k] = 0.0;
    }
  }

  // Per-constraint Q^{-1} a_k columns and curvatures D_k = a_k^T Q^{-1} a_k.
  // Row i: a = indicator of {i*n + j : j}; column j: indicator of
  // {i*n + j : i}; nonnegativity k: a = -e_k.
  DenseMatrix row_dir(m, mn, 0.0);  // Q^{-1} a for each row constraint
  Vector row_curv(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    auto dir = row_dir.Row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const auto qcol = qinv.Row(i * n + j);  // symmetric: row == column
      for (std::size_t a = 0; a < mn; ++a) dir[a] += qcol[a];
    }
    for (std::size_t j = 0; j < n; ++j) row_curv[i] += dir[i * n + j];
  }
  DenseMatrix col_dir(n, mn, 0.0);
  Vector col_curv(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    auto dir = col_dir.Row(j);
    for (std::size_t i = 0; i < m; ++i) {
      const auto qcol = qinv.Row(i * n + j);
      for (std::size_t a = 0; a < mn; ++a) dir[a] += qcol[a];
    }
    for (std::size_t i = 0; i < m; ++i) col_curv[j] += dir[i * n + j];
  }

  // Dual variables: lambda (rows, free), mu (columns, free), z (>= 0).
  Vector lambda(m, 0.0), mu(n, 0.0), z(mn, 0.0);

  // Primal for the initial duals: x = -Q^{-1} q.
  Vector x(mn, 0.0);
  {
    const Vector& qlin = problem.cx();
    for (std::size_t a = 0; a < mn; ++a) {
      double acc = 0.0;
      const auto row = qinv.Row(a);
      for (std::size_t b = 0; b < mn; ++b) acc += row[b] * qlin[b];
      x[a] = -acc;
    }
  }

  BachemKorteRun run;
  BachemKorteResult& res = run.result;

  for (std::size_t sweep = 1; sweep <= opts.max_sweeps; ++sweep) {
    obs::ProfScopeFine prof("bk.sweep");
    // Row equality multipliers: enforce a^T x = s0_i exactly.
    for (std::size_t i = 0; i < m; ++i) {
      double ax = 0.0;
      for (std::size_t j = 0; j < n; ++j) ax += x[i * n + j];
      const double delta = (ax - problem.s0()[i]) / row_curv[i];
      if (delta == 0.0) continue;
      lambda[i] += delta;
      const auto dir = row_dir.Row(i);
      for (std::size_t a = 0; a < mn; ++a) x[a] -= delta * dir[a];
    }
    // Column equality multipliers.
    for (std::size_t j = 0; j < n; ++j) {
      double ax = 0.0;
      for (std::size_t i = 0; i < m; ++i) ax += x[i * n + j];
      const double delta = (ax - problem.d0()[j]) / col_curv[j];
      if (delta == 0.0) continue;
      mu[j] += delta;
      const auto dir = col_dir.Row(j);
      for (std::size_t a = 0; a < mn; ++a) x[a] -= delta * dir[a];
    }
    // Nonnegativity multipliers (projected update: z_k >= 0).
    for (std::size_t k = 0; k < mn; ++k) {
      // Constraint -x_k <= 0: violation is -x_k; curvature qinv(k,k).
      const double delta_raw = -x[k] / qinv(k, k);
      const double z_new = std::max(0.0, z[k] + delta_raw);
      const double applied = z_new - z[k];
      if (applied == 0.0) continue;
      z[k] = z_new;
      // a = -e_k, so x <- x - Q^{-1} a * applied = x + Q^{-1} e_k * applied.
      const auto qcol = qinv.Row(k);
      for (std::size_t a = 0; a < mn; ++a) x[a] += applied * qcol[a];
    }

    res.sweeps = sweep;
    const Residuals r = ComputeResiduals(x, problem);
    res.final_residual = r.Max();
    if (r.Max() <= opts.epsilon) {
      res.converged = true;
      break;
    }
  }

  run.solution.x = DenseMatrix(m, n);
  for (std::size_t k = 0; k < mn; ++k)
    run.solution.x.Flat()[k] = std::max(0.0, x[k]);
  run.solution.s = problem.s0();
  run.solution.d = problem.d0();
  // Hildreth's multipliers relate to the KKT multipliers of the row/column
  // constraints with a sign flip (we ascend on Ax <= b form).
  run.solution.lambda.resize(m);
  run.solution.mu.resize(n);
  for (std::size_t i = 0; i < m; ++i) run.solution.lambda[i] = -lambda[i];
  for (std::size_t j = 0; j < n; ++j) run.solution.mu[j] = -mu[j];

  res.objective = problem.Objective(x, {}, {});
  res.wall_seconds = wall.Seconds();
  res.cpu_seconds = ProcessCpuSeconds() - cpu0;
  return run;
}

}  // namespace sea
