// RAS / iterative proportional fitting (Deming & Stephan 1940; Bacharach
// 1970) — the classical method the paper's introduction identifies as "the
// most widely applied computational method in practice", along with its
// known failure modes (nonconvergence on infeasible supports, Mohr, Crown &
// Polenske 1987) that motivate SEA.
//
// RAS alternately scales rows and columns of X0 to match the fixed totals:
//   x_ij <- x_ij * s0_i / rowsum_i,   then   x_ij <- x_ij * d0_j / colsum_j.
// It solves a *different* objective than SEA (minimum cross-entropy /
// biproportional fit rather than weighted least squares); it is provided as
// a baseline for the library's users and for the nonconvergence
// demonstrations, not as an optimizer of objective (13).
#pragma once

#include "linalg/dense_matrix.hpp"

namespace sea {

struct RasOptions {
  double epsilon = 1e-8;  // max relative total mismatch to declare converged
  std::size_t max_iterations = 10000;
};

enum class RasStatus {
  kConverged,
  kIterationLimit,
  // A row/column has zero base-matrix sum but a positive target total: no
  // biproportional fit exists (the structural-zero infeasibility of the RAS
  // literature).
  kInfeasibleSupport,
  // Targets are inconsistent (sum of row totals != sum of column totals) —
  // RAS then oscillates and cannot converge.
  kInconsistentTotals,
};

const char* ToString(RasStatus s);

struct RasResult {
  RasStatus status = RasStatus::kIterationLimit;
  std::size_t iterations = 0;
  double final_residual = 0.0;
  DenseMatrix x;
  Vector row_multipliers;  // r_i: accumulated row scalings
  Vector col_multipliers;  // c_j
};

// Requires x0 >= 0 elementwise and s0, d0 >= 0.
RasResult SolveRas(const DenseMatrix& x0, const Vector& s0, const Vector& d0,
                   const RasOptions& opts = {});

}  // namespace sea
