// Method-independent reference solvers used by the test suite as oracles.
//
// Neither is part of the paper's algorithm set; they exist so SEA, RC and
// B-K can be validated against solutions obtained by entirely different
// means.
//
//  * SolveEnumerativeKkt — exact: enumerates active sets of the
//    nonnegativity constraints, solves each candidate KKT equality system by
//    dense LU, and returns the (unique, by strict convexity) candidate that
//    satisfies all sign conditions. Exponential in m*n; guarded to tiny
//    problems.
//  * SolveDualGradient — independent iterative method: plain gradient ascent
//    with Armijo backtracking on the explicit dual zeta_l(lambda, mu)
//    (paper eqs. (24)/(41)/(51)), no coordinate maximization involved.
#pragma once

#include <optional>

#include "problems/diagonal_problem.hpp"
#include "problems/solution.hpp"

namespace sea {

// Exact solution for problems with m*n <= kEnumerativeLimit.
inline constexpr std::size_t kEnumerativeLimit = 16;

// Returns std::nullopt only if no active set passes the KKT sign tests at
// the given tolerance (which would indicate an infeasible or degenerate
// instance).
std::optional<Solution> SolveEnumerativeKkt(const DiagonalProblem& p,
                                            double tol = 1e-9);

struct DualGradientOptions {
  double grad_tol = 1e-8;       // stop when ||grad zeta||_inf <= grad_tol
  std::size_t max_iterations = 200000;
};

struct DualGradientResult {
  Solution solution;
  bool converged = false;
  std::size_t iterations = 0;
  double final_grad_norm = 0.0;
};

DualGradientResult SolveDualGradient(const DiagonalProblem& p,
                                     const DualGradientOptions& opts = {});

}  // namespace sea
