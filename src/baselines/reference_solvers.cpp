#include "baselines/reference_solvers.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/factorizations.hpp"
#include "support/check.hpp"

namespace sea {

namespace {

// Variable layout of the enumerative KKT system, by mode:
//   kFixed:   [x (mn), lambda (m), mu (n)]
//   kElastic: [x (mn), s (m), d (n), lambda (m), mu (n)]
//   kSam:     [x (nn), s (n), lambda (n), mu (n)]
struct Layout {
  std::size_t mn, m, n;
  std::size_t x0 = 0, s0 = 0, d0 = 0, l0 = 0, u0 = 0, dim = 0;
};

Layout MakeLayout(const DiagonalProblem& p) {
  SEA_CHECK_MSG(p.mode() != TotalsMode::kInterval,
                "the enumerative oracle does not enumerate total-bound "
                "active sets; use SolveDualGradient for interval problems");
  Layout L;
  L.m = p.m();
  L.n = p.n();
  L.mn = L.m * L.n;
  L.x0 = 0;
  switch (p.mode()) {
    case TotalsMode::kFixed:
      L.l0 = L.mn;
      L.u0 = L.mn + L.m;
      L.dim = L.mn + L.m + L.n;
      break;
    case TotalsMode::kElastic:
      L.s0 = L.mn;
      L.d0 = L.mn + L.m;
      L.l0 = L.mn + L.m + L.n;
      L.u0 = L.l0 + L.m;
      L.dim = L.mn + 2 * L.m + 2 * L.n;
      break;
    case TotalsMode::kSam:
      L.s0 = L.mn;
      L.l0 = L.mn + L.n;
      L.u0 = L.l0 + L.n;
      L.dim = L.mn + 3 * L.n;
      break;
    case TotalsMode::kInterval:
      break;  // rejected above
  }
  return L;
}

// Builds and solves the KKT equality system for the given active mask
// (bit k set => x_k fixed to zero). Returns the solution vector or nullopt
// if singular.
std::optional<Vector> SolveCandidate(const DiagonalProblem& p, const Layout& L,
                                     std::uint64_t mask) {
  DenseMatrix a(L.dim, L.dim, 0.0);
  Vector b(L.dim, 0.0);
  std::size_t row = 0;

  const auto gam = p.gamma().Flat();
  const auto cen = p.x0().Flat();

  // Stationarity or activity for each x_k.
  for (std::size_t k = 0; k < L.mn; ++k, ++row) {
    const std::size_t i = k / L.n, j = k % L.n;
    if (mask & (1ULL << k)) {
      a(row, L.x0 + k) = 1.0;  // x_k = 0
    } else {
      // 2 gamma_k x_k - lambda_i - mu_j = 2 gamma_k c_k
      a(row, L.x0 + k) = 2.0 * gam[k];
      a(row, L.l0 + i) = -1.0;
      a(row, L.u0 + j) = -1.0;
      b[row] = 2.0 * gam[k] * cen[k];
    }
  }

  // Row constraints.
  for (std::size_t i = 0; i < L.m; ++i, ++row) {
    for (std::size_t j = 0; j < L.n; ++j) a(row, L.x0 + i * L.n + j) = 1.0;
    if (p.mode() == TotalsMode::kFixed) {
      b[row] = p.s0()[i];
    } else {
      a(row, L.s0 + i) = -1.0;  // sum_j x_ij - s_i = 0
    }
  }

  // Column constraints. For the fixed and SAM regimes the constraint system
  // carries one dependency (the sum of the row constraints equals the sum of
  // the column constraints) and the dual the matching gauge freedom
  // (lambda + c, mu - c) — the invariance behind the paper's
  // connected-component modification. Drop the last column constraint and
  // pin the gauge with mu_{n-1} = 0.
  const bool gauged = (p.mode() != TotalsMode::kElastic);
  const std::size_t col_count = gauged ? L.n - 1 : L.n;
  for (std::size_t j = 0; j < col_count; ++j, ++row) {
    for (std::size_t i = 0; i < L.m; ++i) a(row, L.x0 + i * L.n + j) = 1.0;
    switch (p.mode()) {
      case TotalsMode::kInterval:
        break;  // rejected by MakeLayout
      case TotalsMode::kFixed:
        b[row] = p.d0()[j];
        break;
      case TotalsMode::kElastic:
        a(row, L.d0 + j) = -1.0;
        break;
      case TotalsMode::kSam:
        a(row, L.s0 + j) = -1.0;  // column j total equals s_j
        break;
    }
  }
  if (gauged) {
    a(row, L.u0 + L.n - 1) = 1.0;  // gauge: mu_{n-1} = 0
    ++row;
  }

  // Totals stationarity.
  if (p.mode() == TotalsMode::kElastic) {
    for (std::size_t i = 0; i < L.m; ++i, ++row) {
      a(row, L.s0 + i) = 2.0 * p.alpha()[i];
      a(row, L.l0 + i) = 1.0;
      b[row] = 2.0 * p.alpha()[i] * p.s0()[i];
    }
    for (std::size_t j = 0; j < L.n; ++j, ++row) {
      a(row, L.d0 + j) = 2.0 * p.beta()[j];
      a(row, L.u0 + j) = 1.0;
      b[row] = 2.0 * p.beta()[j] * p.d0()[j];
    }
  } else if (p.mode() == TotalsMode::kSam) {
    for (std::size_t i = 0; i < L.n; ++i, ++row) {
      a(row, L.s0 + i) = 2.0 * p.alpha()[i];
      a(row, L.l0 + i) = 1.0;
      a(row, L.u0 + i) = 1.0;
      b[row] = 2.0 * p.alpha()[i] * p.s0()[i];
    }
  }
  SEA_INTERNAL_CHECK(row == L.dim);

  auto lu = PartialPivLU::Factor(a);
  if (!lu) return std::nullopt;
  return lu->Solve(b);
}

}  // namespace

std::optional<Solution> SolveEnumerativeKkt(const DiagonalProblem& p,
                                            double tol) {
  p.Validate();
  const Layout L = MakeLayout(p);
  SEA_CHECK_MSG(L.mn <= kEnumerativeLimit,
                "enumerative oracle is exponential in m*n");

  const auto gam = p.gamma().Flat();
  const auto cen = p.x0().Flat();

  for (std::uint64_t mask = 0; mask < (1ULL << L.mn); ++mask) {
    auto sol = SolveCandidate(p, L, mask);
    if (!sol) continue;
    const Vector& v = *sol;

    bool ok = true;
    for (std::size_t k = 0; k < L.mn && ok; ++k) {
      const std::size_t i = k / L.n, j = k % L.n;
      if (mask & (1ULL << k)) {
        // Active: gradient condition 2 gamma (0 - c) - lambda - mu >= 0.
        const double g =
            2.0 * gam[k] * (0.0 - cen[k]) - v[L.l0 + i] - v[L.u0 + j];
        if (g < -tol) ok = false;
      } else {
        if (v[L.x0 + k] < -tol) ok = false;
      }
    }
    if (!ok) continue;

    Solution out;
    out.x = DenseMatrix(L.m, L.n);
    for (std::size_t k = 0; k < L.mn; ++k)
      out.x.Flat()[k] = std::max(0.0, v[L.x0 + k]);
    out.lambda.assign(v.begin() + static_cast<long>(L.l0),
                      v.begin() + static_cast<long>(L.l0 + L.m));
    out.mu.assign(v.begin() + static_cast<long>(L.u0),
                  v.begin() + static_cast<long>(L.u0 + L.n));
    switch (p.mode()) {
      case TotalsMode::kInterval:
        break;  // rejected by MakeLayout
      case TotalsMode::kFixed:
        out.s = p.s0();
        out.d = p.d0();
        break;
      case TotalsMode::kElastic:
        out.s.assign(v.begin() + static_cast<long>(L.s0),
                     v.begin() + static_cast<long>(L.s0 + L.m));
        out.d.assign(v.begin() + static_cast<long>(L.d0),
                     v.begin() + static_cast<long>(L.d0 + L.n));
        break;
      case TotalsMode::kSam:
        out.s.assign(v.begin() + static_cast<long>(L.s0),
                     v.begin() + static_cast<long>(L.s0 + L.n));
        out.d = out.s;
        break;
    }
    return out;
  }
  return std::nullopt;
}

namespace {

// Gradient of zeta_l at (lambda, mu); returns the max-norm.
double DualGradient(const DiagonalProblem& p, const Vector& lambda,
                    const Vector& mu, Vector& glam, Vector& gmu) {
  const std::size_t m = p.m(), n = p.n();
  glam.assign(m, 0.0);
  gmu.assign(n, 0.0);

  // Allocation sums: rowsum_i(X(lambda,mu)), colsum_j(X(lambda,mu)).
  Vector rowsum(m, 0.0), colsum(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto cen = p.x0().Row(i);
    const auto gam = p.gamma().Row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double x =
          cen[j] + (lambda[i] + mu[j]) / (2.0 * gam[j]);
      if (x > 0.0) {
        rowsum[i] += x;
        colsum[j] += x;
      }
    }
  }

  switch (p.mode()) {
    case TotalsMode::kFixed:
      for (std::size_t i = 0; i < m; ++i) glam[i] = p.s0()[i] - rowsum[i];
      for (std::size_t j = 0; j < n; ++j) gmu[j] = p.d0()[j] - colsum[j];
      break;
    case TotalsMode::kElastic:
      for (std::size_t i = 0; i < m; ++i)
        glam[i] =
            (p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i])) - rowsum[i];
      for (std::size_t j = 0; j < n; ++j)
        gmu[j] = (p.d0()[j] - mu[j] / (2.0 * p.beta()[j])) - colsum[j];
      break;
    case TotalsMode::kSam:
      for (std::size_t i = 0; i < n; ++i) {
        const double s =
            p.s0()[i] - (lambda[i] + mu[i]) / (2.0 * p.alpha()[i]);
        glam[i] = s - rowsum[i];
        gmu[i] = s - colsum[i];
      }
      break;
    case TotalsMode::kInterval:
      // Envelope theorem: the gradient uses the clamped responses.
      for (std::size_t i = 0; i < m; ++i)
        glam[i] = std::clamp(p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]),
                             p.s_lo()[i], p.s_hi()[i]) -
                  rowsum[i];
      for (std::size_t j = 0; j < n; ++j)
        gmu[j] = std::clamp(p.d0()[j] - mu[j] / (2.0 * p.beta()[j]),
                            p.d_lo()[j], p.d_hi()[j]) -
                 colsum[j];
      break;
  }

  double norm = 0.0;
  for (double v : glam) norm = std::max(norm, std::abs(v));
  for (double v : gmu) norm = std::max(norm, std::abs(v));
  return norm;
}

}  // namespace

DualGradientResult SolveDualGradient(const DiagonalProblem& p,
                                     const DualGradientOptions& opts) {
  p.Validate();
  const std::size_t m = p.m(), n = p.n();
  Vector lambda(m, 0.0), mu(n, 0.0);
  Vector glam, gmu, glam_prev, gmu_prev, lam_try(m), mu_try(n);
  Vector slam(m, 0.0), smu(n, 0.0);  // iterate differences

  DualGradientResult res;
  double value = DualValue(p, lambda, mu);
  double step = 1.0;

  for (std::size_t iter = 1; iter <= opts.max_iterations; ++iter) {
    res.iterations = iter;
    const double gnorm = DualGradient(p, lambda, mu, glam, gmu);
    res.final_grad_norm = gnorm;
    if (gnorm <= opts.grad_tol) {
      res.converged = true;
      break;
    }

    // Barzilai-Borwein spectral step from the previous (s, y) pair; the dual
    // is concave piecewise quadratic, so BB converges quickly where plain
    // ascent crawls. Safeguarded by an Armijo backtrack on the dual value.
    if (iter > 1) {
      double ss = 0.0, sy = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        ss += slam[i] * slam[i];
        sy += slam[i] * (glam_prev[i] - glam[i]);  // y = -(g - g_prev)
      }
      for (std::size_t j = 0; j < n; ++j) {
        ss += smu[j] * smu[j];
        sy += smu[j] * (gmu_prev[j] - gmu[j]);
      }
      if (sy > 1e-300 && std::isfinite(ss / sy))
        step = std::min(1e12, std::max(1e-12, ss / sy));
    }

    // Nonmonotone acceptance: near the optimum the per-step improvement
    // t*||g||^2 falls below the floating-point resolution of the dual value,
    // so a strictly monotone Armijo rule stalls; tolerating a scale-aware
    // slack lets the BB iteration drive the gradient further down.
    const double slack = 1e-11 * (1.0 + std::abs(value));
    bool accepted = false;
    double t = step;
    for (int bt = 0; bt < 80; ++bt) {
      for (std::size_t i = 0; i < m; ++i)
        lam_try[i] = lambda[i] + t * glam[i];
      for (std::size_t j = 0; j < n; ++j) mu_try[j] = mu[j] + t * gmu[j];
      const double v_try = DualValue(p, lam_try, mu_try);
      if (v_try >= value - slack) {
        for (std::size_t i = 0; i < m; ++i) slam[i] = t * glam[i];
        for (std::size_t j = 0; j < n; ++j) smu[j] = t * gmu[j];
        lambda.swap(lam_try);
        mu.swap(mu_try);
        value = std::max(value, v_try);
        accepted = true;
        break;
      }
      t *= 0.5;
    }
    glam_prev = glam;
    gmu_prev = gmu;
    if (!accepted) break;  // step underflow: numerically converged
  }

  res.solution = RecoverPrimal(p, std::move(lambda), std::move(mu));
  return res;
}

}  // namespace sea
