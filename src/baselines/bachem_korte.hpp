// The Bachem–Korte (1978) baseline: quadratic optimization over
// transportation polytopes, the "much-cited" comparator of the paper's
// Table 7.
//
// RECONSTRUCTION NOTE (see DESIGN.md §2.3). The original two-page report
// (ZAMM 58, T459–T461) is not redistributable; following the paper's
// description and the single-constraint dual-relaxation lineage it cites
// (Hildreth 1957; Ohuchi & Kaji 1984; Cottle, Duvall & Zikan 1986), we
// implement B-K as Hildreth-style cyclic dual coordinate ascent on the full
// constraint system of
//
//   min  1/2 x^T Q x + q^T x    (Q = 2G, q = cx)
//   s.t. row totals (m equalities), column totals (n equalities),
//        x >= 0 (mn inequalities),
//
// updating ONE multiplier per step with an exact one-dimensional dual
// maximization and an immediate O(mn) primal refresh. This preserves the
// relevant behaviour for the reproduction: identical fixed points (the KKT
// points of the same QP), but per-sweep cost Θ((mn)^2) with slow linear
// convergence — versus SEA's block-exact equilibration — reproducing the
// roughly two-orders-of-magnitude gap and the "prohibitively expensive
// beyond G = 900×900" cutoff of Table 7.
//
// The method materializes Q^{-1} (via dense Cholesky), so it is only
// applicable at B-K-scale problems — exactly how the paper used it.
#pragma once

#include "core/result.hpp"
#include "problems/general_problem.hpp"
#include "problems/solution.hpp"

namespace sea {

struct BachemKorteOptions {
  // Stop when all constraint residuals (relative row/column residuals and
  // the most negative x entry) are within epsilon.
  double epsilon = 1e-3;
  std::size_t max_sweeps = 20000;
};

struct BachemKorteResult {
  bool converged = false;
  std::size_t sweeps = 0;
  double final_residual = 0.0;
  double objective = 0.0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

struct BachemKorteRun {
  Solution solution;
  BachemKorteResult result;
};

// Requires problem.mode() == TotalsMode::kFixed and G positive definite.
BachemKorteRun SolveBachemKorte(const GeneralProblem& problem,
                                const BachemKorteOptions& opts);

}  // namespace sea
