#include "baselines/ras.hpp"

#include <algorithm>
#include <cmath>

#include "obs/profiler.hpp"
#include "support/check.hpp"

namespace sea {

const char* ToString(RasStatus s) {
  switch (s) {
    case RasStatus::kConverged:
      return "converged";
    case RasStatus::kIterationLimit:
      return "iteration-limit";
    case RasStatus::kInfeasibleSupport:
      return "infeasible-support";
    case RasStatus::kInconsistentTotals:
      return "inconsistent-totals";
  }
  return "?";
}

RasResult SolveRas(const DenseMatrix& x0, const Vector& s0, const Vector& d0,
                   const RasOptions& opts) {
  obs::ProfScope prof_solve("baseline.ras.solve");
  const std::size_t m = x0.rows(), n = x0.cols();
  SEA_CHECK(s0.size() == m && d0.size() == n);
  for (double v : x0.Flat())
    SEA_CHECK_MSG(v >= 0.0, "RAS requires a nonnegative base matrix");

  RasResult res;
  res.x = x0;
  res.row_multipliers.assign(m, 1.0);
  res.col_multipliers.assign(n, 1.0);

  double ssum = 0.0, dsum = 0.0;
  for (double v : s0) ssum += v;
  for (double v : d0) dsum += v;
  if (std::abs(ssum - dsum) > 1e-10 * std::max({1.0, ssum, dsum})) {
    res.status = RasStatus::kInconsistentTotals;
    return res;
  }

  for (std::size_t iter = 1; iter <= opts.max_iterations; ++iter) {
    res.iterations = iter;
    // Row scaling.
    {
      obs::ProfScopeFine prof("ras.row_scale");
      for (std::size_t i = 0; i < m; ++i) {
        auto row = res.x.Row(i);
        double sum = 0.0;
        for (double v : row) sum += v;
        if (sum == 0.0) {
          if (s0[i] > 0.0) {
            res.status = RasStatus::kInfeasibleSupport;
            return res;
          }
          continue;
        }
        const double f = s0[i] / sum;
        for (double& v : row) v *= f;
        res.row_multipliers[i] *= f;
      }
    }
    // Column scaling.
    {
      obs::ProfScopeFine prof("ras.col_scale");
      Vector colsum(n, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        const auto row = res.x.Row(i);
        for (std::size_t j = 0; j < n; ++j) colsum[j] += row[j];
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (colsum[j] == 0.0) {
          if (d0[j] > 0.0) {
            res.status = RasStatus::kInfeasibleSupport;
            return res;
          }
          continue;
        }
        const double f = d0[j] / colsum[j];
        if (f != 1.0)
          for (std::size_t i = 0; i < m; ++i) res.x(i, j) *= f;
        res.col_multipliers[j] *= f;
      }
    }
    // Residual: after column scaling columns are exact; check rows.
    double max_rel = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      double sum = 0.0;
      for (double v : res.x.Row(i)) sum += v;
      max_rel = std::max(max_rel, std::abs(sum - s0[i]) /
                                      std::max(1.0, std::abs(s0[i])));
    }
    res.final_residual = max_rel;
    if (max_rel <= opts.epsilon) {
      res.status = RasStatus::kConverged;
      return res;
    }
  }
  res.status = RasStatus::kIterationLimit;
  return res;
}

}  // namespace sea
