#include "baselines/rc_algorithm.hpp"

#include <algorithm>
#include <cmath>

#include "equilibration/equilibrator.hpp"
#include "obs/profiler.hpp"
#include "problems/feasibility.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

namespace {

// Shared state for one RC solve.
struct RcState {
  const GeneralProblem* problem = nullptr;
  const RcOptions* opts = nullptr;
  std::size_t m = 0, n = 0;

  Vector x;     // current iterate, row-major flat
  Vector grad;  // scratch gradient of F
  Vector lambda;  // row-constraint multipliers
  Vector mu;      // column-constraint multipliers

  DenseMatrix gamma_rm;  // diag(G) reshaped m x n
  DenseMatrix gamma_cm;  // and its transpose
  DenseMatrix centers;   // projection-step centers, phase-major layout
  DenseMatrix xs;        // phase-major allocations scratch
  Vector mult;           // per-market multipliers scratch (max(m, n))

  RcResult result;
};

// One phase of RC. The row phase (by_rows = true) runs the projection method
// to convergence on
//
//   min F(x) - sum_j mu_j (sum_i x_ij)   s.t.  sum_j x_ij = s0_i,  x >= 0,
//
// exactly the relaxed problem of SEA's Step 1 but with the *general*
// objective; each projection iteration diagonalizes F at the current iterate
// and the subproblem separates into per-row exact-equilibration markets (the
// mu_j relaxation enters as the market's cross multipliers). On return,
// st.lambda holds the phase's Lagrange multipliers — the market multipliers
// of the final projection iterate. The column phase is symmetric.
std::size_t RunPhase(RcState& st, bool by_rows, double projection_epsilon) {
  obs::ProfScope prof(by_rows ? "rc.row_phase" : "rc.col_phase");
  const std::size_t markets = by_rows ? st.m : st.n;
  const std::size_t arcs = by_rows ? st.n : st.m;
  const GeneralProblem& p = *st.problem;
  const Vector& cross = by_rows ? st.mu : st.lambda;
  Vector& own = by_rows ? st.lambda : st.mu;

  MarketSide side;
  side.mode = TotalsMode::kFixed;
  side.t0 = by_rows ? p.s0() : p.d0();

  SweepOptions sweep_opts;
  sweep_opts.sort_policy = st.opts->sort_policy;
  sweep_opts.pool = st.opts->pool;
  sweep_opts.record_task_costs = st.opts->record_trace;
  sweep_opts.profile_phase =
      by_rows ? "equilibrate.rows" : "equilibrate.cols";

  const DenseMatrix& gamma = by_rows ? st.gamma_rm : st.gamma_cm;
  st.centers = DenseMatrix(markets, arcs);
  st.xs = DenseMatrix(markets, arcs);
  st.mult.resize(markets);

  std::size_t iters = 0;
  for (std::size_t it = 1; it <= st.opts->max_projection_iterations; ++it) {
    ++iters;
    // Projection step: centers c_k = x_k - grad_k / (2 G_kk), written
    // directly in phase-major layout. The relaxation term is linear and is
    // carried by the markets' cross multipliers instead of the centers.
    {
      obs::ProfScope prof_lin("rc.linearize");
      p.GradientX(st.x, st.grad, st.opts->pool);
    }
    st.result.ops.flops +=
        2 * static_cast<std::uint64_t>(st.m * st.n) * (st.m * st.n);
    if (st.opts->record_trace)
      st.result.trace.AddParallelPhase(
          by_rows ? "rc-linearize-row" : "rc-linearize-col",
          std::vector<double>(st.m * st.n,
                              2.0 * static_cast<double>(st.m * st.n)),
          /*bandwidth_bound=*/true);
    for (std::size_t i = 0; i < st.m; ++i) {
      for (std::size_t j = 0; j < st.n; ++j) {
        const std::size_t k = i * st.n + j;
        const double c = st.x[k] - st.grad[k] / (2.0 * st.gamma_rm(i, j));
        if (by_rows)
          st.centers(i, j) = c;
        else
          st.centers(j, i) = c;
      }
    }

    // Parallel equilibration of the phase's markets.
    SweepStats stats =
        EquilibrateSide(st.centers, gamma, cross, side,
                        {st.mult.data(), markets}, &st.xs, sweep_opts);
    st.result.ops += stats.total_ops;
    if (st.opts->record_trace)
      st.result.trace.AddParallelPhase(by_rows ? "rc-row" : "rc-col",
                                       std::move(stats.task_costs));

    // Serial projection-convergence verification (RC's extra serial stage,
    // absent from general SEA — cf. Figures 4 and 6).
    double change = 0.0;
    for (std::size_t a = 0; a < markets; ++a) {
      const auto xrow = st.xs.Row(a);
      for (std::size_t b = 0; b < arcs; ++b) {
        const std::size_t k = by_rows ? a * st.n + b : b * st.n + a;
        change = std::max(change, std::abs(xrow[b] - st.x[k]));
        st.x[k] = xrow[b];
      }
    }
    st.result.ops.flops += static_cast<std::uint64_t>(st.m) * st.n;
    if (st.opts->record_trace)
      st.result.trace.AddSerialPhase("rc-projection-check",
                                     static_cast<double>(st.m * st.n));
    if (change <= projection_epsilon) break;
  }
  std::copy(st.mult.begin(), st.mult.begin() + markets, own.begin());
  return iters;
}

}  // namespace

RcRun SolveRc(const GeneralProblem& problem, const RcOptions& opts) {
  obs::ProfScope prof_solve("baseline.rc.solve");
  problem.Validate();
  SEA_CHECK_MSG(problem.mode() == TotalsMode::kFixed,
                "RC handles the fixed-totals regime");
  SEA_CHECK(opts.epsilon > 0.0);

  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  RcState st;
  st.problem = &problem;
  st.opts = &opts;
  st.m = problem.m();
  st.n = problem.n();
  st.lambda.assign(st.m, 0.0);
  st.mu.assign(st.n, 0.0);

  st.gamma_rm = DenseMatrix(st.m, st.n);
  for (std::size_t k = 0; k < st.m * st.n; ++k)
    st.gamma_rm.Flat()[k] = problem.G()(k, k);
  st.gamma_cm = st.gamma_rm.Transposed();

  // Feasible start: the rank-one transportation plan (paper Step 0).
  double total = 0.0;
  for (double v : problem.s0()) total += v;
  st.x.assign(st.m * st.n, 0.0);
  if (total > 0.0)
    for (std::size_t i = 0; i < st.m; ++i)
      for (std::size_t j = 0; j < st.n; ++j)
        st.x[i * st.n + j] = problem.s0()[i] * problem.d0()[j] / total;

  const double proj_eps = (opts.projection_epsilon > 0.0)
                              ? opts.projection_epsilon
                              : opts.epsilon / 10.0;

  RcRun run;
  for (std::size_t outer = 1; outer <= opts.max_outer_iterations; ++outer) {
    st.result.projection_iterations_per_phase.push_back(
        RunPhase(st, /*by_rows=*/true, proj_eps));
    st.result.projection_iterations_per_phase.push_back(
        RunPhase(st, /*by_rows=*/false, proj_eps));
    st.result.outer_iterations = outer;

    // Overall convergence: after the column phase the column totals hold to
    // projection accuracy; measure the row residual (serial stage).
    double max_rel = 0.0;
    for (std::size_t i = 0; i < st.m; ++i) {
      double rowsum = 0.0;
      for (std::size_t j = 0; j < st.n; ++j) rowsum += st.x[i * st.n + j];
      const double r = std::abs(rowsum - problem.s0()[i]) /
                       std::max(1.0, std::abs(problem.s0()[i]));
      max_rel = std::max(max_rel, r);
    }
    st.result.ops.flops += static_cast<std::uint64_t>(st.m) * st.n;
    if (opts.record_trace)
      st.result.trace.AddSerialPhase("rc-outer-check",
                                     static_cast<double>(st.m * st.n));
    st.result.final_residual = max_rel;
    if (max_rel <= opts.epsilon) {
      st.result.converged = true;
      break;
    }
  }

  run.solution.x = DenseMatrix(st.m, st.n);
  std::copy(st.x.begin(), st.x.end(), run.solution.x.Flat().begin());
  run.solution.s = problem.s0();
  run.solution.d = problem.d0();
  run.solution.lambda = st.lambda;
  run.solution.mu = st.mu;

  st.result.objective = problem.Objective(st.x, {}, {});
  st.result.wall_seconds = wall.Seconds();
  st.result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  run.result = std::move(st.result);
  return run;
}

}  // namespace sea
