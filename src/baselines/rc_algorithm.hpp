// The RC (row/column) equilibration algorithm of Nagurney, Kim & Robinson
// (1990) for general quadratic constrained matrix problems with fixed row and
// column totals — the primary comparator of the paper's Tables 7 and 9
// (Figure 6 is its flowchart).
//
// Like general SEA, RC is built on the Dafermos projection method, but it
// applies it differently: each outer iteration solves
//
//   (row phase)    min F(x)  s.t.  sum_j x_ij = s0_i,  x >= 0
//   (column phase) min F(x)  s.t.  sum_i x_ij = d0_j,  x >= 0
//
// each *to projection-method convergence*, alternating until both constraint
// families hold. Inside a phase, each projection iteration diagonalizes F at
// the current iterate and the resulting subproblem separates by row (resp.
// column) into exact-equilibration markets with no cross multipliers. The
// projection-convergence verification inside *both* phases is a serial stage
// not present in SEA (which verifies once per outer iteration) — the source
// of RC's lower parallel efficiency in Table 9.
//
// For diagonal problems RC coincides with diagonal SEA (paper Section 3.1.3),
// so only the general fixed-totals version lives here.
#pragma once

#include "core/options.hpp"
#include "core/result.hpp"
#include "problems/general_problem.hpp"
#include "problems/solution.hpp"

namespace sea {

struct RcOptions {
  // Overall tolerance: stop when, after a column phase, the row constraints
  // hold to epsilon (relative residual) — the column constraints are then
  // exact. Matches the common criterion used for Table 7 (epsilon' = .001).
  double epsilon = 1e-3;
  std::size_t max_outer_iterations = 200;
  // Projection-method tolerance inside a phase: max |x - x_prev| <= this.
  // 0 derives epsilon/10.
  double projection_epsilon = 0.0;
  std::size_t max_projection_iterations = 200;
  SortPolicy sort_policy = SortPolicy::kAuto;
  ThreadPool* pool = nullptr;
  bool record_trace = false;
};

struct RcResult {
  bool converged = false;
  std::size_t outer_iterations = 0;
  // Projection-method iterations per phase, in execution order (the paper
  // reports e.g. "4 iterations of the projection method for row
  // equilibration and 3 for column equilibration").
  std::vector<std::size_t> projection_iterations_per_phase;
  double final_residual = 0.0;
  double objective = 0.0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  OpCounts ops;
  ExecutionTrace trace;
};

struct RcRun {
  Solution solution;
  RcResult result;
};

// Requires problem.mode() == TotalsMode::kFixed.
RcRun SolveRc(const GeneralProblem& problem, const RcOptions& opts);

}  // namespace sea
