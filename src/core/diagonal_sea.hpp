// The Splitting Equilibration Algorithm for diagonal constrained matrix
// problems (paper Section 3.1; Figures 2 and 3).
//
// Dual interpretation (paper eqs. (28), (44), (53)): block-coordinate
// maximization of the explicit concave dual zeta_l(lambda, mu) —
//
//   lambda^{t+1} -> argmax_lambda zeta_l(lambda, mu^t)     (row step)
//   mu^{t+1}     -> argmax_mu     zeta_l(lambda^{t+1}, mu) (column step)
//
// Each block maximization decomposes into m (respectively n) independent
// markets solved exactly in closed form (equilibration/), which is what
// makes the method embarrassingly parallel within a half-step. Convergence
// is geometric (paper eqs. (64), (76)-(77)).
#pragma once

#include <utility>

#include "core/options.hpp"
#include "core/result.hpp"
#include "problems/diagonal_problem.hpp"
#include "problems/solution.hpp"

namespace sea {

struct DiagonalSeaRun {
  Solution solution;
  SeaResult result;
};

// Solver object. Construction builds the transposed copies of the centers
// and weights (so column sweeps read contiguous memory); reuse one solver
// across repeated solves of same-structure problems (the general algorithm's
// inner loop) to amortize that cost.
class DiagonalSea {
 public:
  explicit DiagonalSea(const DiagonalProblem& problem);

  // Replaces centers/totals while keeping shapes and weights-layout work.
  // Requires identical dimensions and mode.
  void ResetProblem(const DiagonalProblem& problem);

  const DiagonalProblem& problem() const { return *problem_; }

  // Runs SEA from mu = 0 (paper Step 0).
  DiagonalSeaRun Solve(const SeaOptions& opts);

  // Runs SEA warm-started from the given column multipliers (used by the
  // general algorithm to chain inner solves).
  DiagonalSeaRun SolveWarm(const SeaOptions& opts, const Vector& mu0);

 private:
  const DiagonalProblem* problem_ = nullptr;
  // Sweep-major copies: row sweeps read x0/gamma, column sweeps read the
  // transposes.
  DenseMatrix x0_t_;
  DenseMatrix gamma_t_;
};

// One-shot convenience wrapper.
DiagonalSeaRun SolveDiagonal(const DiagonalProblem& problem,
                             const SeaOptions& opts);

}  // namespace sea
