// The paper's "Modified Algorithm" (Section 3.1): keeping the dual iterates
// in a bounded set for the SAM and fixed-totals regimes.
//
// For l = 2, 3 the dual zeta_l is invariant under shifting all lambda's of a
// *connected component* of the support graph by a constant and the
// component's mu's by the opposite constant (the gauge freedom of the
// transportation dual). The support graph G^t joins row node i and column
// node j whenever x_ij(lambda, mu) > 0. The modification: whenever some
// |lambda_i| exceeds a chosen bound R, subtract that lambda_i from every
// lambda in its component and add it to every mu in the component — the
// primal allocations within the component and the dual value are unchanged,
// and the multipliers return to a data-dependent cube (paper eq. (78)).
#pragma once

#include <cstddef>
#include <vector>

#include "problems/diagonal_problem.hpp"

namespace sea {

struct RebalanceResult {
  std::size_t components = 0;          // connected components of G^t
  std::size_t shifted_components = 0;  // components that needed a shift
};

// Applies the paper's modification in place. Only meaningful for the kFixed
// and kSam regimes (kElastic has no gauge freedom and is rejected).
RebalanceResult RebalanceMultipliers(const DiagonalProblem& p, Vector& lambda,
                                     Vector& mu, double bound);

// Connected components of the support graph at (lambda, mu): returns for
// every row node (0..m-1) and column node (m..m+n-1) its component id, and
// the number of components. Exposed for tests and diagnostics.
std::size_t SupportComponents(const DiagonalProblem& p, const Vector& lambda,
                              const Vector& mu,
                              std::vector<std::size_t>& component_of);

}  // namespace sea
