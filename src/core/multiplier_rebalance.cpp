#include "core/multiplier_rebalance.hpp"

#include <cmath>
#include <numeric>
#include <vector>

#include "support/check.hpp"

namespace sea {

namespace {

// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t Find(std::size_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }

  void Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

std::size_t SupportComponents(const DiagonalProblem& p, const Vector& lambda,
                              const Vector& mu,
                              std::vector<std::size_t>& component_of) {
  const std::size_t m = p.m(), n = p.n();
  SEA_CHECK(lambda.size() == m && mu.size() == n);
  UnionFind uf(m + n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto x0 = p.x0().Row(i);
    const auto g = p.gamma().Row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double x = x0[j] + (lambda[i] + mu[j]) / (2.0 * g[j]);
      if (x > 0.0) uf.Union(i, m + j);
    }
  }
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  component_of.assign(m + n, 0);
  std::vector<std::size_t> root_to_id(m + n, kNone);
  std::size_t next_id = 0;
  for (std::size_t v = 0; v < m + n; ++v) {
    const std::size_t r = uf.Find(v);
    if (root_to_id[r] == kNone) root_to_id[r] = next_id++;
    component_of[v] = root_to_id[r];
  }
  return next_id;
}

RebalanceResult RebalanceMultipliers(const DiagonalProblem& p, Vector& lambda,
                                     Vector& mu, double bound) {
  SEA_CHECK_MSG(p.mode() == TotalsMode::kFixed || p.mode() == TotalsMode::kSam,
                "only the fixed and SAM duals have gauge freedom");
  SEA_CHECK(bound > 0.0);
  const std::size_t m = p.m(), n = p.n();

  std::vector<std::size_t> comp;
  RebalanceResult res;
  res.components = SupportComponents(p, lambda, mu, comp);

  // Per component, the shift is the first out-of-bound lambda (the paper's
  // lambda-tilde); after the shift that lambda is exactly zero and every
  // other multiplier in the component moves by the same constant, keeping
  // lambda_i + mu_j invariant inside the component.
  std::vector<double> shift(res.components, 0.0);
  std::vector<bool> needs(res.components, false);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t c = comp[i];
    if (!needs[c] && std::abs(lambda[i]) > bound) {
      needs[c] = true;
      shift[c] = lambda[i];
      ++res.shifted_components;
    }
  }
  if (res.shifted_components == 0) return res;

  for (std::size_t i = 0; i < m; ++i)
    if (needs[comp[i]]) lambda[i] -= shift[comp[i]];
  for (std::size_t j = 0; j < n; ++j)
    if (needs[comp[m + j]]) mu[j] += shift[comp[m + j]];
  return res;
}

}  // namespace sea
