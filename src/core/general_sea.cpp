#include "core/general_sea.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "linalg/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

void FeasibleStart(const GeneralProblem& problem, Vector& x, Vector& s,
                   Vector& d) {
  const std::size_t m = problem.m(), n = problem.n();
  x.assign(m * n, 0.0);
  if (problem.mode() == TotalsMode::kFixed) {
    s = problem.s0();
    d = problem.d0();
    double total = 0.0;
    for (double v : s) total += v;
    if (total > 0.0) {
      for (std::size_t i = 0; i < m; ++i) {
        const double si = s[i] / total;
        for (std::size_t j = 0; j < n; ++j) x[i * n + j] = si * d[j];
      }
    }
  } else {
    s.assign(m, 0.0);
    d.assign(n, 0.0);
    if (problem.mode() == TotalsMode::kSam) d = s;
  }
}

GeneralSeaRun SolveGeneral(const GeneralProblem& problem,
                           const GeneralSeaOptions& opts) {
  problem.Validate();
  SEA_CHECK(opts.outer_epsilon > 0.0);
  const std::size_t m = problem.m(), n = problem.n();
  const std::size_t mn = m * n;

  obs::ProfScope prof_solve("general.solve");
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  Vector x, s, d;
  FeasibleStart(problem, x, s, d);

  SeaOptions inner = opts.inner;
  if (opts.inner_epsilon > 0.0) inner.epsilon = opts.inner_epsilon;
  // Inner tolerance defaults to a decade tighter than the outer one: the
  // projection step only needs the subproblem solved to the accuracy at
  // which we measure the outer fixed point.
  if (opts.inner_epsilon == 0.0 && inner.epsilon > opts.outer_epsilon / 10.0)
    inner.epsilon = opts.outer_epsilon / 10.0;

  GeneralSeaResult result;
  GeneralSeaRun run;
  Vector mu_warm(n, 0.0);

  // One inner solver reused across outer iterations: every projection
  // subproblem has the same shape and mode, so ResetProblem swaps in the
  // refreshed centers while the engine-driven inner solves chain through
  // mu_warm (the warm-start path of DiagonalSea::SolveWarm).
  DiagonalProblem diag;
  std::optional<DiagonalSea> inner_solver;

  for (std::size_t t = 1; t <= opts.max_outer_iterations; ++t) {
    // Guardrail polls between projection steps. The first step always runs
    // (so the returned solution is populated); afterwards an expired budget
    // or cancelled token ends the outer loop, and each inner solve receives
    // only the remaining budget so it stops from inside as well.
    if (t > 1 && inner.cancel && inner.cancel->cancelled()) {
      result.status = SolveStatus::kCancelled;
      break;
    }
    if (opts.inner.time_budget_seconds > 0.0) {
      const double remaining = opts.inner.time_budget_seconds - wall.Seconds();
      if (t > 1 && remaining <= 0.0) {
        result.status = SolveStatus::kTimeBudgetExceeded;
        break;
      }
      // An already-expired budget on the first step still passes a sliver so
      // the inner engine terminates at its first check poll.
      inner.time_budget_seconds = std::max(remaining, 1e-9);
    }

    // ---- Projection step: refresh linear terms at the current iterate
    // (one dense matvec with G and, in the elastic regimes, A/B). This is a
    // parallelizable phase: G's rows partition across processors.
    Stopwatch lin_sw;
    {
      obs::ProfScope prof("general.linearize");
      diag = problem.Diagonalize(x, s, d, inner.pool);
    }
    result.linearization_seconds += lin_sw.Seconds();
    result.ops.flops += 2 * static_cast<std::uint64_t>(mn) * mn;
    if (inner.record_trace) {
      // One task per row of G, each a dense dot of length mn; streaming the
      // dense G makes this phase memory-bandwidth-bound.
      result.trace.AddParallelPhase(
          "linearize", std::vector<double>(mn, 2.0 * static_cast<double>(mn)),
          /*bandwidth_bound=*/true);
    }

    // ---- Inner solve: diagonal SEA on the constructed subproblem, warm-
    // started from the previous outer iteration's column multipliers.
    if (inner_solver) {
      inner_solver->ResetProblem(diag);
    } else {
      inner_solver.emplace(diag);
    }
    DiagonalSeaRun inner_run = [&] {
      obs::ProfScope prof("general.inner_solve");
      return inner_solver->SolveWarm(inner, mu_warm);
    }();
    mu_warm = inner_run.solution.mu;
    result.total_inner_iterations += inner_run.result.iterations;
    result.ops += inner_run.result.ops;
    if (inner.record_trace) result.trace.Append(inner_run.result.trace);

    // ---- Convergence verification (single serial phase; paper Fig. 4).
    const auto xf = inner_run.solution.x.Flat();
    double change = 0.0;
    {
      obs::ProfScope prof("general.outer_check");
      for (std::size_t k = 0; k < mn; ++k)
        change = std::max(change, std::abs(xf[k] - x[k]));
    }
    if (inner.record_trace)
      result.trace.AddSerialPhase("outer-check", static_cast<double>(mn));
    result.ops.flops += mn;

    x.assign(xf.begin(), xf.end());
    s = inner_run.solution.s;
    d = inner_run.solution.d;
    run.solution = std::move(inner_run.solution);

    result.outer_iterations = t;
    result.final_outer_change = change;
    // An abnormal inner termination (cancellation, expired budget, numerical
    // breakdown, stall, infeasibility) propagates unchanged and outranks the
    // outer change test — a projection step the inner solver could not
    // actually solve says nothing about the outer fixed point. A plain inner
    // kMaxIterations keeps the historical change-based behavior.
    switch (inner_run.result.status) {
      case SolveStatus::kCancelled:
      case SolveStatus::kTimeBudgetExceeded:
      case SolveStatus::kNumericalBreakdown:
      case SolveStatus::kStalled:
      case SolveStatus::kInfeasible:
        result.status = inner_run.result.status;
        break;
      case SolveStatus::kConverged:
      case SolveStatus::kMaxIterations:
        if (change <= opts.outer_epsilon)
          result.status = SolveStatus::kConverged;
        break;
    }

    // One structured trace event per projection step (the inner solves
    // already streamed their own per-check events through the same sink).
    if (inner.trace_sink) {
      obs::OuterStepEvent ev;
      ev.outer_iteration = t;
      ev.change = change;
      ev.converged = result.converged();
      ev.inner_iterations = inner_run.result.iterations;
      ev.inner_iterations_total = result.total_inner_iterations;
      ev.linearize_seconds = result.linearization_seconds;
      inner.trace_sink->OnOuterStep(ev);
    }

    if (result.status != SolveStatus::kMaxIterations) break;
  }

  result.objective = problem.Objective(x, s, d);
  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;

  if (inner.metrics) {
    obs::MetricsRegistry& m = *inner.metrics;
    m.GetCounter("sea.general.outer_iterations").Add(result.outer_iterations);
    m.GetGauge("sea.general.linearization_seconds")
        .Add(result.linearization_seconds);
    m.GetGauge("sea.general.final_outer_change")
        .Set(result.final_outer_change);
    m.GetGauge("sea.general.converged").Set(result.converged() ? 1.0 : 0.0);
  }
  run.result = std::move(result);
  return run;
}

}  // namespace sea
