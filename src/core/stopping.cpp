#include "core/stopping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace sea {

double RowTarget(const ResidualTargets& t, std::size_t i) {
  switch (t.mode) {
    case TotalsMode::kFixed:
      return t.s0[i];
    case TotalsMode::kElastic:
      return t.s0[i] - t.lambda[i] / (2.0 * t.alpha[i]);
    case TotalsMode::kSam:
      return t.s0[i] - (t.lambda[i] + t.mu[i]) / (2.0 * t.alpha[i]);
    case TotalsMode::kInterval:
      return std::clamp(t.s0[i] - t.lambda[i] / (2.0 * t.alpha[i]),
                        t.s_lo[i], t.s_hi[i]);
  }
  SEA_INTERNAL_CHECK(false);
  return 0.0;
}

double FoldRowResidual(StopCriterion c, double rowsum, double target,
                       double measure) {
  double r = std::abs(rowsum - target);
  if (c == StopCriterion::kResidualRel) r /= std::max(1.0, std::abs(target));
  // std::max drops NaN operands (the comparison is false), which would let
  // a NaN-poisoned row slip past the engine's breakdown guard; propagate it
  // so the measure itself reports the breakdown.
  if (std::isnan(r)) return r;
  return std::max(measure, r);
}

double MaxRowResidual(StopCriterion c, std::span<const double> rowsums,
                      const ResidualTargets& t) {
  double measure = 0.0;
  for (std::size_t i = 0; i < rowsums.size(); ++i)
    measure = FoldRowResidual(c, rowsums[i], RowTarget(t, i), measure);
  return measure;
}

double EstimateItersToEpsilon(std::size_t it0, double m0, std::size_t it1,
                              double m1, double epsilon) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  if (!(m0 > 0.0) || !(m1 > 0.0) || !std::isfinite(m0) ||
      !std::isfinite(m1) || it1 <= it0)
    return nan;
  if (m1 <= epsilon) return 0.0;
  const double rho =
      std::pow(m1 / m0, 1.0 / static_cast<double>(it1 - it0));
  if (!(rho < 1.0)) return nan;  // no contraction: extrapolation is undefined
  const double eta = std::log(epsilon / m1) / std::log(rho);
  // rho can sit so close to 1 that log(rho) underflows to -0.0 and the
  // division yields +Inf (or epsilon<=0 makes the numerator -Inf). Callers
  // render estimates as JSON, where Inf/NaN must become null — keep the
  // contract "finite estimate or NaN" here rather than at every caller.
  if (!std::isfinite(eta) || eta < 0.0) return nan;
  return eta;
}

}  // namespace sea
