#include "core/options.hpp"

namespace sea {

const char* ToString(StopCriterion c) {
  switch (c) {
    case StopCriterion::kXChange:
      return "x-change";
    case StopCriterion::kResidualAbs:
      return "residual-abs";
    case StopCriterion::kResidualRel:
      return "residual-rel";
  }
  return "?";
}

}  // namespace sea
