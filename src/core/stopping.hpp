// Stopping-measure helpers shared by the iteration-engine backends.
//
// Every SEA variant measures convergence the same way: after the column
// half-step the column constraints hold exactly, so (paper eq. (25)) the
// remaining row residual of the materialized iterate is the dual-gradient
// component, and its clearing target is the row side's response at the
// current multipliers. That mode-dependent target computation used to be
// cloned in the dense and sparse check phases; it lives here once.
#pragma once

#include <cstddef>
#include <span>

#include "core/options.hpp"
#include "problems/types.hpp"

namespace sea {

// Inputs for the row-side clearing targets of the materialized
// (column-feasible) iterate. Spans the mode does not use may be empty
// (alpha for kFixed, mu outside kSam, bounds outside kInterval).
struct ResidualTargets {
  TotalsMode mode = TotalsMode::kFixed;
  std::span<const double> s0;
  std::span<const double> alpha;
  std::span<const double> lambda;
  std::span<const double> mu;    // kSam: opposite-side multiplier, same index
  std::span<const double> s_lo;  // kInterval box bounds
  std::span<const double> s_hi;
};

// Target row total of row i: s0_i (fixed), the elastic response
// s0_i - lambda_i / (2 alpha_i) (elastic; clamped to [s_lo_i, s_hi_i] for
// interval), or s0_i - (lambda_i + mu_i) / (2 alpha_i) (SAM).
double RowTarget(const ResidualTargets& t, std::size_t i);

// Folds one row's |rowsum - target| (relative when c == kResidualRel) into
// the running max measure. c must be a residual criterion.
double FoldRowResidual(StopCriterion c, double rowsum, double target,
                       double measure);

// Max residual of precomputed row sums against the mode-dependent targets.
double MaxRowResidual(StopCriterion c, std::span<const double> rowsums,
                      const ResidualTargets& t);

// ETA model for live introspection (obs/status_file.hpp): assuming the
// linear-convergence regime measure_t ~ C * rho^t of iterative scaling,
// fits rho to two consecutive defined measures (it0, m0) and (it1, m1) and
// returns the expected number of FURTHER iterations until the measure
// reaches epsilon. Returns 0 when m1 <= epsilon already, and NaN when no
// estimate exists (non-positive or non-finite measures, it1 <= it0, or no
// contraction observed — rho >= 1).
double EstimateItersToEpsilon(std::size_t it0, double m0, std::size_t it1,
                              double m1, double epsilon);

}  // namespace sea
