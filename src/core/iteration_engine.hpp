// The shared SEA iteration engine (paper Section 3.1, Figures 2 and 3).
//
// Every SEA variant — dense diagonal, sparse, entropy/RAS, and entropy SAM
// balancing — runs the same outer loop: a row half-step, a column half-step,
// check-every scheduling of the serial convergence-verification phase,
// stopping-measure evaluation, optional multiplier rebalancing (the paper's
// Modified Algorithm), dual-value recording, per-phase stopwatches, operation
// accounting, execution-trace recording, and wall/CPU totals. The engine
// owns all of that once; a variant supplies only its sweep kernels and
// check primitives through the SeaIterationBackend interface below.
//
// Engine phase -> paper step mapping:
//   RowSweep        Step 1, row equilibration   (parallel over m markets)
//   ColSweep        Step 2, column equilibration (parallel over n markets)
//   check phase     Step 3, convergence verification (serial; Section 4.2)
//   RebalanceDuals  the Modified Algorithm's gauge shift (Section 3.1)
//
// The engine is also the instrumentation point: on every check iteration it
// builds one IterationEvent (residual trajectory, phase times, op deltas)
// and hands it to SeaOptions::progress and SeaOptions::trace_sink, and it
// accumulates counters/histograms into SeaOptions::metrics — the hooks
// future acceleration / stagnation-detection layers (Allen-Zhu et al. 2017;
// Aristodemo & Gemignani 2018) attach to. All three observers are optional
// and cost nothing when unset (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "equilibration/equilibrator.hpp"

namespace sea {

// What a variant must provide to run on the engine. One instance drives one
// solve; backends hold references to the problem and the dual iterates.
class SeaIterationBackend {
 public:
  virtual ~SeaIterationBackend() = default;

  // Step 1: the row half-step. Returns the sweep's operation counts and
  // (when tracing) per-market task costs.
  virtual SweepStats RowSweep() = 0;

  // Step 2: the column half-step. When materialize is true the engine will
  // evaluate the stopping measure afterwards, so the backend must make the
  // primal iterate available to the check primitives below.
  virtual SweepStats ColSweep(bool materialize) = 0;

  // Called at the start of every check phase, before the measure is
  // evaluated (e.g. the entropy backends materialize x here, since their
  // sweeps never form the primal).
  virtual void BeginCheck() {}

  // Lets a backend override the requested criterion (entropy SAM balancing
  // has a single native measure — the relative account imbalance).
  virtual StopCriterion EffectiveCriterion(StopCriterion c) const {
    return c;
  }

  // Residual-style stopping measure of the materialized iterate
  // (c is kResidualAbs or kResidualRel; see core/stopping.hpp).
  virtual double ResidualMeasure(StopCriterion c) = 0;

  // kXChange support: max |x - x_snapshot| against the last snapshot, and
  // snapshotting the current iterate. The engine guarantees DiffFromSnapshot
  // is only called after at least one SnapshotIterate.
  virtual double DiffFromSnapshot() = 0;
  virtual void SnapshotIterate() = 0;

  // Flops charged per evaluated stopping measure (the serial check phase's
  // cost: 2mn dense, 2nnz sparse, ...). Only charged when the measure had a
  // defined value — no comparison, no charge.
  virtual std::uint64_t CheckCost() const = 0;

  // Breakdown recovery (docs/ROBUSTNESS.md): the engine calls
  // SaveGoodIterate after every check whose measure was finite, and
  // RestoreGoodIterate once if a later check observes a non-finite measure —
  // so a NaN-poisoned run still hands back a usable point. Saving should be
  // O(m + n) (capture the dual iterates, not the primal). Default: no-op;
  // such a backend returns whatever state it holds at breakdown.
  virtual void SaveGoodIterate() {}
  virtual void RestoreGoodIterate() {}

  // The Modified Algorithm's gauge rebalance of the dual iterates; invoked
  // after every iteration that did not converge. Default: no modification.
  virtual void RebalanceDuals(const SeaOptions& opts) { (void)opts; }

  // Appends the dual value at the current iterates (invoked once per
  // iteration when SeaOptions::record_dual_values is set). Default: the
  // backend records nothing.
  virtual void RecordDualValue(std::vector<double>& out) { (void)out; }

  // --- Durability hooks (core/checkpoint.hpp; docs/ROBUSTNESS.md). ---
  // Fills the iterate portion of a checkpoint: dual multipliers, the
  // kXChange previous-check snapshot (in whatever flat layout the backend
  // uses — RestoreIterate is its only consumer), the problem fingerprint,
  // and the dimensions. Returning false means the variant does not
  // checkpoint (the engine then skips writes entirely).
  virtual bool CaptureIterate(CheckpointState& out) {
    (void)out;
    return false;
  }
  // Restores exactly what CaptureIterate saved, and re-seats the last-good
  // iterate to the restored duals. Returns false when the state does not
  // fit this problem (wrong lengths); the engine treats that as a usage
  // error.
  virtual bool RestoreIterate(const CheckpointState& in) {
    (void)in;
    return false;
  }

  // --- Recovery-ladder hooks (docs/ROBUSTNESS.md "Recovery ladder"). ---
  // Whether the variant supports the ladder at all; when false, guardrail
  // trips terminate exactly as before even under SeaOptions::recover.
  virtual bool SupportsRecovery() const { return false; }
  // Copies the current row duals out / blends them back:
  // lambda <- prev + keep * (lambda - prev), elementwise. The engine calls
  // Snapshot before and Blend after RowSweep during a damping window, so
  // the subsequent ColSweep computes the column duals (and the check
  // iterate) consistently for the damped lambda.
  virtual void SnapshotRowDuals(std::vector<double>& out) const {
    (void)out;
  }
  virtual void BlendRowDuals(const std::vector<double>& prev, double keep) {
    (void)prev;
    (void)keep;
  }
  // Rung-3 remediation: gauge-rebalance the multipliers unconditionally
  // (no SeaOptions::multiplier_bound gate). No-op where the regime has no
  // gauge freedom.
  virtual void ForceRebalance() {}

  // Per-market attribution (obs/market_stats.hpp): fills out[i] with ROW
  // market i's residual contribution of the materialized check iterate —
  // |rowsum_i - target_i| under criterion c, exactly the per-row term
  // FoldRowResidual folds into the aggregate measure — and returns the
  // sequential (index-ascending) sum of the filled values, so the export's
  // per-market contributions re-sum bit-identically to the returned
  // aggregate. Column markets contribute zero by construction (the column
  // half-step satisfies them exactly) and are not represented. Called only
  // at check iterations with a finite measure, after ResidualMeasure /
  // DiffFromSnapshot. Returns a negative value when the variant does not
  // support attribution (the engine then commits nothing).
  virtual double AttributeResidual(StopCriterion c, std::span<double> out) {
    (void)c;
    (void)out;
    return -1.0;
  }
};

// Runs the t-loop on the backend and returns the filled result (everything
// except the primal recovery and objective, which remain variant-specific).
SeaResult RunIterationEngine(SeaIterationBackend& backend,
                             const SeaOptions& opts);

}  // namespace sea
