#include "core/result.hpp"

// Result types are aggregates; this translation unit exists so the target
// layout stays one-.cpp-per-header as the module grows (e.g. serialization).
