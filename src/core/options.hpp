// Solver configuration.
#pragma once

#include <cstddef>
#include <functional>

#include "equilibration/breakpoint_solver.hpp"
#include "equilibration/kernel_backend.hpp"
#include "parallel/schedule.hpp"
#include "support/cancel.hpp"
#include "support/op_counter.hpp"

namespace sea {

class ThreadPool;
class CheckpointWriter;
struct CheckpointState;

namespace obs {
class TraceSink;
class MetricsRegistry;
class MarketAttribution;
class FlightRecorder;
class StatusFileWriter;
}  // namespace obs

// Stopping rules used in the paper's experiments.
enum class StopCriterion {
  // max_ij |x^t_ij - x^{t-1}_ij| <= epsilon (paper Step 3, Section 3.1.1;
  // Table 1/5 runs with epsilon = .01). Compared across consecutive checks.
  kXChange,
  // max_i |sum_j x_ij - s_i| <= epsilon (absolute constraint residual; by
  // eq. (27) equivalent to the dual gradient norm).
  kResidualAbs,
  // max_i |sum_j x_ij - s_i| / max(1, |s_i|) <= epsilon (paper Step 3,
  // Section 3.1.2; Table 3 runs with epsilon = .001).
  kResidualRel,
};

const char* ToString(StopCriterion c);

// Snapshot handed to SeaOptions::progress — and to the structured trace
// sink (obs/trace_sink.hpp) — on every check iteration of the shared
// iteration engine (core/iteration_engine.hpp). This is the attachment
// point for progress reporting and, later, acceleration / stagnation
// heuristics that need the residual trajectory.
struct IterationEvent {
  std::size_t iteration = 0;
  // False on the first kXChange check, where no previous iterate exists yet
  // and the measure has no value.
  bool measure_defined = false;
  double measure = 0.0;  // active stopping measure, valid if measure_defined
  bool converged = false;
  // Checks whose measure had a defined value so far (== the number of
  // events with measure_defined, including this one).
  std::size_t checks_compared = 0;
  // Cumulative per-phase wall times so far.
  double row_phase_seconds = 0.0;
  double col_phase_seconds = 0.0;
  double check_phase_seconds = 0.0;
  // Operation counts: since the previous event (delta, including this
  // check's own verification cost) and since the start of the solve.
  OpCounts ops_delta;
  OpCounts ops_total;
};

using IterationCallback = std::function<void(const IterationEvent&)>;

struct SeaOptions {
  double epsilon = 1e-2;
  StopCriterion criterion = StopCriterion::kResidualRel;
  std::size_t max_iterations = 200000;
  // Verify convergence only every k-th iteration. The paper checks every
  // iteration for the fixed examples and every other iteration for the
  // elastic ones (Section 4.2) — the check is the serial phase, so spacing
  // it improves parallel efficiency.
  std::size_t check_every = 1;
  SortPolicy sort_policy = SortPolicy::kAuto;
  // Kernel backend for the market solves (equilibration/kernel_backend.hpp).
  // kAuto picks the vectorized backend when the build and CPU support one
  // (overridable via SEA_BACKEND); safe because backends are bit-identical
  // by contract. kSimd on unsupported hardware falls back to scalar (the
  // resolution records it; sea_solve surfaces a diagnosis).
  KernelBackendKind backend = KernelBackendKind::kAuto;
  // Optional shared-memory pool for the row/column sweeps; null = serial.
  ThreadPool* pool = nullptr;
  // How each sweep is partitioned over the pool (docs/PARALLELISM.md).
  // kStatic = contiguous equal-count chunks (the default; fixed boundaries).
  // kCostGuided = re-partition each sweep by the previous sweep's measured
  // per-market costs (dynamic claiming on the first sweep of each side).
  // kDynamic = atomic chunk claiming every sweep. Results are bit-identical
  // across all three. Ignored without a pool.
  ScheduleKind sweep_schedule = ScheduleKind::kStatic;
  // Chunk size for dynamic claiming; 0 = auto (n / (8 * workers)).
  std::size_t sweep_grain = 0;
  // Record the phase-by-phase execution trace (per-market operation counts)
  // for the N-processor schedule simulator.
  bool record_trace = false;
  // Record the dual value zeta_l(lambda, mu) after every iteration (used by
  // the convergence-theory tests; costs one O(mn) pass per iteration).
  bool record_dual_values = false;
  // The paper's "Modified Algorithm" (Section 3.1): when positive, and the
  // regime is kFixed or kSam, multipliers are rebalanced across support-graph
  // connected components whenever some |lambda_i| exceeds this bound —
  // keeping the dual iterates in a bounded set without changing the primal
  // trajectory. 0 disables the modification.
  double multiplier_bound = 0.0;
  // Guardrails (docs/ROBUSTNESS.md). The wall-clock budget for the whole
  // solve; 0 = unlimited. Polled at check iterations, so overshoot is at
  // most one check interval; on expiry the result carries
  // SolveStatus::kTimeBudgetExceeded and the best iterate so far.
  double time_budget_seconds = 0.0;
  // Cooperative cancellation, polled at check iterations (never inside a
  // parallel sweep). Null = not cancellable.
  CancelToken* cancel = nullptr;
  // Stall detector: terminate with SolveStatus::kStalled when the stopping
  // measure fails to improve on the PREVIOUS check by a relative stall_rtol
  // over stall_checks consecutive compared checks — the signature of a
  // scaling iteration pinned at a non-solution fixed point (infeasible
  // support). Check-to-check comparison (rather than best-so-far) keeps a
  // transient residual rise from parking an unreachable low-water mark.
  // stall_checks = 0 disables the detector.
  std::size_t stall_checks = 50;
  double stall_rtol = 1e-9;
  // Invoked by the iteration engine on check iterations only (never on
  // skipped iterations). Empty = no reporting overhead.
  IterationCallback progress;
  // Structured trace sink (obs/trace_sink.hpp): receives the same per-check
  // events as `progress`, plus one event per general-SEA projection step.
  // Null = no tracing overhead.
  obs::TraceSink* trace_sink = nullptr;
  // Metrics registry (obs/metrics.hpp): the engine accumulates op counters,
  // phase-seconds gauges, and per-check residual / check-interval
  // histograms into it. Null = no metrics overhead.
  obs::MetricsRegistry* metrics = nullptr;
  // Per-market attribution table (obs/market_stats.hpp): the backend sizes
  // it for the problem, the sweeps record per-market solve tallies, and the
  // engine commits residual contributions + active-set churn at every check
  // whose measure is finite. Null = no attribution overhead (the sweeps pay
  // one branch per market). Exported via sea_solve --attribution-json and
  // summarized by tools/market_report.
  obs::MarketAttribution* attribution = nullptr;
  // Flight recorder (obs/flight_recorder.hpp): receives begin/check/
  // guardrail/termination events; on a guardrail failure (stall, breakdown,
  // cancel, time budget) it dumps a postmortem if a dump path is set.
  // Null = no recording.
  obs::FlightRecorder* flight_recorder = nullptr;
  // Live status snapshot (obs/status_file.hpp): rewritten atomically on
  // check iterations and at termination. Null = no status file.
  obs::StatusFileWriter* status_file = nullptr;
  // Durability + self-healing (core/checkpoint.hpp; docs/ROBUSTNESS.md).
  // Checkpoint writer: the engine captures the full resume state (dual
  // iterate, kXChange snapshot, stall-detector + recovery-ladder state) at
  // the end of every cadence-eligible compared check — after the rebalance,
  // so resume continues at exactly the next iteration — and also when the
  // solve ends in kCancelled / kTimeBudgetExceeded / kMaxIterations. Null =
  // no checkpointing.
  CheckpointWriter* checkpoint = nullptr;
  // Resume state: restored into the engine and backend before iteration
  // resume->iteration + 1 runs; the continued run is bit-identical to the
  // uninterrupted one. Callers should gate on ValidateCheckpointFor first
  // (the engine only size-checks). Null = start from scratch.
  const CheckpointState* resume = nullptr;
  // Recovery ladder: when true, a stall or breakdown trip walks escalating
  // remediation — restore last-good iterate, then a damped half-step
  // window, then multiplier rebalance + restart from the last checkpoint —
  // instead of terminating, with recovery_retries rescue attempts per rung
  // before escalating; only after the ladder is exhausted does the solve
  // end with the historical kStalled / kNumericalBreakdown (and
  // postmortem). Requires backend support (dense + sparse; the entropy
  // variants terminate as before). Provenance lands on
  // SeaResult::recovered_count / recovery_rungs.
  bool recover = false;
  std::size_t recovery_retries = 2;
  // Damped half-step rung: after a rescue, the row duals move only
  // recovery_damping of the way to each sweep's block-optimal point for
  // the next recovery_damp_iters iterations — the safeguarded step that
  // breaks the period-2 limit cycles of pure iterative scaling (Aas).
  double recovery_damping = 0.5;
  std::size_t recovery_damp_iters = 8;
};

struct GeneralSeaOptions {
  // Outer (projection-method) tolerance on max |x^t - x^{t-1}|.
  double outer_epsilon = 1e-3;
  std::size_t max_outer_iterations = 500;
  // Inner diagonal-SEA settings. The inner stopping rule is residual-based;
  // inner_epsilon is tightened relative to outer_epsilon if left at 0.
  SeaOptions inner;
  double inner_epsilon = 0.0;  // 0 = derive from outer_epsilon
};

}  // namespace sea
