// Crash-safe checkpoint/resume for the iteration engine
// (docs/ROBUSTNESS.md).
//
// The SEA iterate is compact, self-describing state: the dual multipliers
// (lambda, mu) determine the primal matrix in closed form, and the only
// other cross-iteration memory the engine keeps is the stopping-detector
// state (previous-check measure, stall streak, the kXChange snapshot) and
// the recovery-ladder position. A CheckpointState captures exactly that,
// so a run restored from a checkpoint continues **bit-identically** to the
// uninterrupted run — at any thread count, sweep schedule, and kernel
// backend, because none of those affect the numerical trajectory (see
// docs/PARALLELISM.md and docs/KERNELS.md for why).
//
// On-disk format (version 1, native-endian, little on every supported
// target):
//
//   "SEACKPT\0"  8-byte magic
//   u32          format version
//   u32          stop criterion
//   u64          problem fingerprint (FNV-1a over mode/shape/data)
//   u64 m, u64 n
//   u64 iteration, u64 checks_compared, u64 stall_streak
//   f64 stall_prev, f64 final_residual
//   u8  have_snapshot, u8 recovery rung
//   u64 rung_attempts, u64 damp_iters_left, u64 recovered_count
//   u64 count + u8[]   recovery_rungs (provenance, one byte per rescue)
//   u64 count + f64[]  lambda
//   u64 count + f64[]  mu
//   u64 count + f64[]  snapshot (previous check's primal; kXChange only)
//   u32          CRC-32 of every preceding byte
//
// Writes are atomic (support::AtomicFileWriter tmp+rename) with retry +
// exponential backoff, so a crash mid-write leaves the previous checkpoint
// intact. The loader never crashes on hostile bytes: every defect comes
// back as a structured Diagnosis (kCheckpointMalformed /
// kCheckpointVersionSkew), and ValidateCheckpointFor reports
// kCheckpointMismatch when a well-formed checkpoint belongs to a different
// problem. `tools/checkpoint_info` pretty-prints any checkpoint file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "problems/validate.hpp"
#include "support/atomic_file.hpp"

namespace sea {

class DiagonalProblem;

inline constexpr std::uint32_t kCheckpointVersion = 1;

// Everything the engine + backend need to continue a run at iteration
// `iteration + 1` as if it had never stopped.
struct CheckpointState {
  // Identity: which problem this iterate belongs to.
  std::uint64_t fingerprint = 0;
  std::uint64_t m = 0;
  std::uint64_t n = 0;
  StopCriterion criterion = StopCriterion::kResidualRel;

  // Engine progress.
  std::uint64_t iteration = 0;
  std::uint64_t checks_compared = 0;
  double final_residual = 0.0;

  // Stall-detector state (docs/ROBUSTNESS.md "Stall detection").
  std::uint64_t stall_streak = 0;
  double stall_prev = 0.0;  // +inf until the first compared check

  // kXChange bookkeeping: whether a previous-check snapshot exists.
  bool have_snapshot = false;

  // Recovery-ladder position + provenance.
  std::uint8_t rung = 1;
  std::uint64_t rung_attempts = 0;
  std::uint64_t damp_iters_left = 0;
  std::uint64_t recovered_count = 0;
  std::vector<std::uint8_t> recovery_rungs;

  // Backend iterate: dual multipliers and, under kXChange, the previous
  // check's primal snapshot (dense: row-major n x m transposed layout;
  // sparse: nnz values in storage order — whatever the backend captured).
  std::vector<double> lambda;
  std::vector<double> mu;
  std::vector<double> snapshot;
};

struct CheckpointLoadResult {
  CheckpointState state;  // meaningful only when ok()
  std::optional<Diagnosis> diagnosis;

  bool ok() const { return !diagnosis.has_value(); }
};

// Serialization. Decode rejects (with a Diagnosis, never a crash) bad
// magic, unsupported versions, truncation, CRC mismatches, and
// inconsistent vector lengths.
std::string EncodeCheckpoint(const CheckpointState& state);
CheckpointLoadResult DecodeCheckpoint(std::string_view bytes);

// Whole-file read + decode; unreadable files come back kCheckpointMalformed.
CheckpointLoadResult LoadCheckpoint(const std::string& path);

// Checks a decoded checkpoint against the problem about to be resumed:
// fingerprint, dimensions, and stop criterion must all match (the stopping
// measure is part of the trajectory — resuming a kXChange checkpoint under
// a residual criterion would not be the same run). Returns the mismatch
// diagnosis, or nullopt when the checkpoint fits.
std::optional<Diagnosis> ValidateCheckpointFor(const CheckpointState& state,
                                               std::uint64_t fingerprint,
                                               std::size_t m, std::size_t n,
                                               StopCriterion criterion);

// Problem fingerprint: FNV-1a 64 over the mode tag, shape, and every data
// vector. The sparse overload lives in sparse/sparse_sea.hpp.
std::uint64_t FingerprintProblem(const DiagonalProblem& p);

// Structure fingerprint: like FingerprintProblem but EXCLUDING the target
// totals s0/d0 (and their interval bounds). Two problems share it exactly
// when they pose the same constrained-matrix structure — mode, shape,
// centers, weights — with possibly different totals, which is the
// "perturbed repeat request" the sea_serve warm cache's nearby tier
// matches: such problems re-converge along nearby dual trajectories, so
// the cached multipliers are a profitable warm start. Domain-separated
// from FingerprintProblem by the leading tag.
std::uint64_t FingerprintProblemStructure(const DiagonalProblem& p);

// Owns the checkpoint path + cadence for one solve. The engine calls
// ShouldWrite() once per compared check and Write() when it returns true;
// a final checkpoint on cancellation / budget expiry / iteration cap goes
// through Write() directly (duplicate states are skipped).
class CheckpointWriter {
 public:
  static support::RetryPolicy DefaultRetry() {
    return support::RetryPolicy{3, 1.0, 4.0};
  }

  explicit CheckpointWriter(std::string path, std::uint64_t every_checks = 1,
                            support::RetryPolicy retry = DefaultRetry())
      : path_(std::move(path)),
        every_(every_checks == 0 ? 1 : every_checks),
        writer_(retry) {}

  // Cadence gate: true on every every_checks-th call.
  bool ShouldWrite() { return ++checks_seen_ % every_ == 0; }

  // Encodes + atomically writes `state`; returns false after the retry
  // policy is exhausted. A state for an iteration already on disk is
  // skipped (returns true without touching the file).
  bool Write(const CheckpointState& state);

  const std::string& path() const { return path_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t write_failures() const { return write_failures_; }

 private:
  std::string path_;
  std::uint64_t every_;
  support::AtomicFileWriter writer_;
  std::uint64_t checks_seen_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t write_failures_ = 0;
  std::optional<std::uint64_t> last_written_iteration_;
};

}  // namespace sea
