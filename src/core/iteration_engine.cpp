#include "core/iteration_engine.hpp"

#include <utility>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

SeaResult RunIterationEngine(SeaIterationBackend& backend,
                             const SeaOptions& opts) {
  SEA_CHECK(opts.epsilon > 0.0);
  SEA_CHECK(opts.check_every >= 1);

  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  SeaResult result;
  bool have_snapshot = false;

  for (std::size_t t = 1; t <= opts.max_iterations; ++t) {
    const bool check_now =
        (t % opts.check_every == 0) || (t == opts.max_iterations);

    // ---- Step 1: row equilibration (parallel across the row markets).
    {
      Stopwatch sw;
      SweepStats stats = backend.RowSweep();
      result.ops += stats.total_ops;
      result.row_phase_seconds += sw.Seconds();
      if (opts.record_trace && !stats.task_costs.empty())
        result.trace.AddParallelPhase("row", std::move(stats.task_costs));
    }

    // ---- Step 2: column equilibration (parallel across the column
    // markets); materializes the primal iterate on check iterations.
    {
      Stopwatch sw;
      SweepStats stats = backend.ColSweep(check_now);
      result.ops += stats.total_ops;
      result.col_phase_seconds += sw.Seconds();
      if (opts.record_trace && !stats.task_costs.empty())
        result.trace.AddParallelPhase("col", std::move(stats.task_costs));
    }

    result.iterations = t;
    if (opts.record_dual_values) backend.RecordDualValue(result.dual_values);

    if (!check_now) {
      backend.RebalanceDuals(opts);
      continue;
    }

    // ---- Step 3: convergence verification (the serial phase; Sec. 4.2).
    Stopwatch check_sw;
    backend.BeginCheck();
    const StopCriterion criterion =
        backend.EffectiveCriterion(opts.criterion);
    double measure = 0.0;
    bool defined = true;
    if (criterion == StopCriterion::kXChange) {
      // Compared across consecutive checks; the first check only snapshots,
      // so its measure is undefined (nothing to compare against) and no
      // comparison flops are charged.
      if (have_snapshot) {
        measure = backend.DiffFromSnapshot();
      } else {
        defined = false;
      }
      backend.SnapshotIterate();
      have_snapshot = true;
    } else {
      measure = backend.ResidualMeasure(criterion);
    }
    result.check_phase_seconds += check_sw.Seconds();

    if (defined) {
      ++result.checks_compared;
      result.final_residual = measure;
      result.ops.flops += backend.CheckCost();
      if (opts.record_trace)
        result.trace.AddSerialPhase("check",
                                    static_cast<double>(backend.CheckCost()));
      if (measure <= opts.epsilon) result.converged = true;
    }

    if (opts.progress) {
      IterationEvent ev;
      ev.iteration = t;
      ev.measure_defined = defined;
      ev.measure = measure;
      ev.converged = result.converged;
      ev.row_phase_seconds = result.row_phase_seconds;
      ev.col_phase_seconds = result.col_phase_seconds;
      ev.check_phase_seconds = result.check_phase_seconds;
      opts.progress(ev);
    }

    if (result.converged) break;
    backend.RebalanceDuals(opts);
  }

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  return result;
}

}  // namespace sea
