#include "core/iteration_engine.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "equilibration/kernel_backend.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/market_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/status_file.hpp"
#include "obs/trace_sink.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace sea {

namespace {

// Decade buckets for the residual trajectory; the measure spans many orders
// of magnitude between the first check and convergence.
std::vector<double> ResidualBounds() {
  return {1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0, 1e2, 1e4, 1e6};
}

// Observed gap between consecutive checks, in iterations (check_every plus
// the final-iteration forced check).
std::vector<double> CheckIntervalBounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
}

// Stable names for the recovery-ladder rungs (metrics suffixes, status-file
// field, docs/ROBUSTNESS.md).
const char* RungName(std::uint8_t rung) {
  switch (rung) {
    case 1:
      return "restore";
    case 2:
      return "damp";
    case 3:
      return "restart";
  }
  return "unknown";
}

}  // namespace

SeaResult RunIterationEngine(SeaIterationBackend& backend,
                             const SeaOptions& opts) {
  SEA_CHECK_MSG(opts.epsilon > 0.0, "epsilon must be > 0");
  SEA_CHECK_MSG(std::isfinite(opts.epsilon), "epsilon must be finite");
  SEA_CHECK_MSG(opts.check_every >= 1, "check_every must be >= 1");
  SEA_CHECK_MSG(opts.max_iterations > 0, "max_iterations must be >= 1");
  SEA_CHECK_MSG(opts.time_budget_seconds >= 0.0 &&
                    !std::isnan(opts.time_budget_seconds),
                "time_budget_seconds must be >= 0");

  obs::ProfScope prof_solve("engine.solve");
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  SeaResult result;
  // The backends resolve opts.backend themselves when building their sweep
  // options; resolution is deterministic per process + environment, so
  // re-resolving here names the same kernel the sweeps use.
  result.kernel_backend = ResolveKernelBackend(opts.backend).kernel->name();
  bool have_snapshot = false;

  // Stall detection state: the previous check's measure and the run of
  // compared checks that failed to improve on their predecessor by at least
  // stall_rtol relatively (docs/ROBUSTNESS.md).
  double stall_prev = std::numeric_limits<double>::infinity();
  std::size_t stall_streak = 0;

  // Recovery-ladder state (docs/ROBUSTNESS.md "Recovery ladder"). The rung
  // only escalates — a rescue that later re-trips does not re-earn the
  // cheaper rungs — so total rescues are bounded by 3 * recovery_retries
  // and iteration count stays monotone (max_iterations still bounds the
  // whole run).
  std::uint8_t rung = 1;
  std::size_t rung_attempts = 0;
  std::size_t damp_left = 0;
  std::vector<double> damp_prev;  // row duals entering a damped sweep
  // Last checkpoint state successfully captured this run; rung 3 restarts
  // from it (falling back to the last-good iterate when no checkpoint
  // writer is attached).
  std::optional<CheckpointState> last_ckpt;

  // Telemetry is pay-for-use: everything below is skipped when no observer
  // is attached (acceptance bar: a plain solve must not slow down).
  const bool observing = opts.progress || opts.trace_sink || opts.metrics ||
                         opts.flight_recorder || opts.status_file;
  obs::FlightRecorder* recorder = opts.flight_recorder;
  if (recorder)
    recorder->Record(obs::FlightRecorder::EventKind::kBegin, 0,
                     static_cast<double>(opts.max_iterations));
  OpCounts ops_at_last_event;
  std::size_t last_check_iteration = 0;
  obs::Histogram* residual_hist = nullptr;
  obs::Histogram* interval_hist = nullptr;
  // Progress counters commit check-to-check deltas DURING the solve — a
  // /metrics scrape or the sampler's rate rings must see a running solve
  // move, not a burst at termination. The terminal block commits whatever
  // accrued after the last check, so the totals match the old end-only
  // flush exactly. Resolved once here: Get*() takes the registry lock.
  obs::Counter* iter_counter = nullptr;
  obs::Counter* checks_counter = nullptr;
  obs::Counter* flops_counter = nullptr;
  obs::Counter* comparisons_counter = nullptr;
  obs::Counter* breakpoints_counter = nullptr;
  obs::Counter* inversions_counter = nullptr;
  if (opts.metrics) {
    residual_hist =
        &opts.metrics->GetHistogram("sea.check.residual", ResidualBounds());
    interval_hist = &opts.metrics->GetHistogram("sea.check.interval_iters",
                                                CheckIntervalBounds());
    iter_counter = &opts.metrics->GetCounter("sea.iterations");
    checks_counter = &opts.metrics->GetCounter("sea.checks_compared");
    flops_counter = &opts.metrics->GetCounter("sea.ops.flops");
    comparisons_counter = &opts.metrics->GetCounter("sea.ops.comparisons");
    breakpoints_counter = &opts.metrics->GetCounter("sea.ops.breakpoints");
    inversions_counter = &opts.metrics->GetCounter("sea.ops.inversions");
  }
  std::size_t iters_committed = 0;
  std::size_t checks_committed = 0;
  OpCounts ops_committed;

  // Fills the engine-owned portion of a checkpoint; the backend adds the
  // iterate, fingerprint, and dimensions via CaptureIterate.
  const auto fill_engine_state = [&](CheckpointState& ck) {
    ck.criterion = opts.criterion;
    ck.iteration = result.iterations;
    ck.checks_compared = result.checks_compared;
    ck.final_residual = result.final_residual;
    ck.stall_streak = stall_streak;
    ck.stall_prev = stall_prev;
    ck.have_snapshot = have_snapshot;
    ck.rung = rung;
    ck.rung_attempts = rung_attempts;
    ck.damp_iters_left = damp_left;
    ck.recovered_count = result.recovered_count;
    ck.recovery_rungs = result.recovery_rungs;
  };

  // Captures + writes a checkpoint of the current (post-rebalance) state;
  // returns whether a checkpoint landed. Live counters, not end-of-run
  // flushes, so --status-file dashboards and Prometheus scrapes see
  // durability activity as it happens.
  const auto write_checkpoint = [&]() {
    CheckpointState ck;
    fill_engine_state(ck);
    if (!backend.CaptureIterate(ck)) return false;
    const bool ok = opts.checkpoint->Write(ck);
    if (opts.metrics)
      opts.metrics
          ->GetCounter(ok ? "sea.checkpoint.writes"
                          : "sea.checkpoint.write_failures")
          .Add(1);
    if (ok) last_ckpt = std::move(ck);
    return ok;
  };

  // One rescue attempt of the ladder. Returns false when recovery is off,
  // unsupported, or exhausted — the caller then terminates exactly as the
  // pre-ladder engine did. The caller has already restored the last-good
  // iterate where that is the remediation's starting point.
  const auto try_recover = [&](std::size_t t) {
    if (!opts.recover || !backend.SupportsRecovery()) return false;
    if (rung_attempts >= opts.recovery_retries) {
      ++rung;
      rung_attempts = 0;
    }
    if (rung > 3) return false;  // ladder exhausted: give up
    ++rung_attempts;
    switch (rung) {
      case 1:
        // Restore last-good + reset the detector (below); the cheapest
        // remediation, sufficient for transient measure poisoning.
        backend.RestoreGoodIterate();
        break;
      case 2:
        // Safeguarded step: damp the row half-steps for a window of
        // iterations to break a limit cycle (Aas).
        backend.RestoreGoodIterate();
        damp_left = opts.recovery_damp_iters;
        break;
      case 3:
        // Strongest remediation: rewind to the last durable checkpoint
        // (when one exists), re-gauge the multipliers, and re-approach
        // damped.
        if (last_ckpt.has_value()) {
          backend.RestoreIterate(*last_ckpt);
        } else {
          backend.RestoreGoodIterate();
        }
        backend.ForceRebalance();
        damp_left = opts.recovery_damp_iters;
        break;
    }
    stall_prev = std::numeric_limits<double>::infinity();
    stall_streak = 0;
    ++result.recovered_count;
    result.recovery_rungs.push_back(rung);
    if (recorder)
      recorder->Record(obs::FlightRecorder::EventKind::kRecovery, t,
                       static_cast<double>(rung));
    if (opts.metrics) {
      opts.metrics->GetCounter("sea.recovery.rescues").Add(1);
      opts.metrics
          ->GetCounter(std::string("sea.recovery.rung.") + RungName(rung))
          .Add(1);
      opts.metrics->GetGauge("sea.recovery.active_rung")
          .Set(static_cast<double>(rung));
    }
    if (opts.status_file)
      opts.status_file->OnRecovery(t, RungName(rung), result.recovered_count);
    return true;
  };

  // Resume (core/checkpoint.hpp): re-seat engine + backend state and
  // continue at the checkpoint's next iteration. With unchanged options the
  // continuation is bit-identical to the uninterrupted run — the captured
  // state is the complete cross-iteration memory of the loop below.
  std::size_t t_begin = 1;
  if (opts.resume != nullptr) {
    const CheckpointState& ck = *opts.resume;
    SEA_CHECK_MSG(backend.RestoreIterate(ck),
                  "resume checkpoint does not fit this problem "
                  "(run ValidateCheckpointFor first)");
    t_begin = static_cast<std::size_t>(ck.iteration) + 1;
    result.iterations = static_cast<std::size_t>(ck.iteration);
    result.checks_compared = static_cast<std::size_t>(ck.checks_compared);
    result.final_residual = ck.final_residual;
    result.recovered_count = ck.recovered_count;
    result.recovery_rungs = ck.recovery_rungs;
    stall_prev = ck.stall_prev;
    stall_streak = static_cast<std::size_t>(ck.stall_streak);
    have_snapshot = ck.have_snapshot;
    rung = ck.rung;
    rung_attempts = static_cast<std::size_t>(ck.rung_attempts);
    damp_left = static_cast<std::size_t>(ck.damp_iters_left);
    last_check_iteration = static_cast<std::size_t>(ck.iteration);
    if (recorder)
      recorder->Record(obs::FlightRecorder::EventKind::kResume,
                       static_cast<std::size_t>(ck.iteration),
                       ck.final_residual);
    if (opts.metrics) opts.metrics->GetCounter("sea.checkpoint.resumes").Add(1);
  }

  for (std::size_t t = t_begin; t <= opts.max_iterations; ++t) {
    const bool check_now =
        (t % opts.check_every == 0) || (t == opts.max_iterations);

    // Guardrail polls ride the check schedule, before the sweeps, so an
    // expired budget or a cancelled token stops the solve without paying
    // for another iteration. Both are cooperative: worst-case latency is
    // one check interval.
    if (check_now) {
      if (opts.cancel && opts.cancel->cancelled()) {
        result.status = SolveStatus::kCancelled;
        if (recorder)
          recorder->Record(obs::FlightRecorder::EventKind::kCancelPoll, t,
                           0.0);
        break;
      }
      if (opts.time_budget_seconds > 0.0 &&
          wall.Seconds() >= opts.time_budget_seconds) {
        result.status = SolveStatus::kTimeBudgetExceeded;
        if (recorder)
          recorder->Record(obs::FlightRecorder::EventKind::kBudgetPoll, t,
                           wall.Seconds());
        break;
      }
    }

    // ---- Step 1: row equilibration (parallel across the row markets).
    // During a rung-2/3 damping window the row duals move only
    // recovery_damping of the way to the sweep's block-optimal point; the
    // column sweep then computes its duals (and the check iterate) for the
    // blended lambda, so the stopping measure still describes a consistent
    // point.
    const bool damp_now = damp_left > 0;
    if (damp_now) {
      backend.SnapshotRowDuals(damp_prev);
      --damp_left;
    }
    {
      obs::ProfScope prof("engine.row_sweep");
      Stopwatch sw;
      SweepStats stats = backend.RowSweep();
      if (damp_now) backend.BlendRowDuals(damp_prev, opts.recovery_damping);
      result.ops += stats.total_ops;
      result.order_reuses += stats.order_reuses;
      result.kernel_markets += stats.markets;
      result.row_phase_seconds += sw.Seconds();
      if (opts.record_trace && !stats.task_costs.empty())
        result.trace.AddParallelPhase("row", std::move(stats.task_costs));
    }

    // ---- Step 2: column equilibration (parallel across the column
    // markets); materializes the primal iterate on check iterations.
    {
      obs::ProfScope prof("engine.col_sweep");
      Stopwatch sw;
      SweepStats stats = backend.ColSweep(check_now);
      result.ops += stats.total_ops;
      result.order_reuses += stats.order_reuses;
      result.kernel_markets += stats.markets;
      result.col_phase_seconds += sw.Seconds();
      if (opts.record_trace && !stats.task_costs.empty())
        result.trace.AddParallelPhase("col", std::move(stats.task_costs));
    }

    result.iterations = t;
    if (opts.record_dual_values) backend.RecordDualValue(result.dual_values);

    if (!check_now) {
      backend.RebalanceDuals(opts);
      continue;
    }

    // ---- Step 3: convergence verification (the serial phase; Sec. 4.2).
    Stopwatch check_sw;
    double measure = 0.0;
    bool defined = true;
    const StopCriterion criterion = backend.EffectiveCriterion(opts.criterion);
    {
      obs::ProfScope prof("engine.check");
      backend.BeginCheck();
      if (criterion == StopCriterion::kXChange) {
        // Compared across consecutive checks; the first check only
        // snapshots, so its measure is undefined (nothing to compare
        // against) and no comparison flops are charged.
        if (have_snapshot) {
          measure = backend.DiffFromSnapshot();
        } else {
          defined = false;
        }
        backend.SnapshotIterate();
        have_snapshot = true;
      } else {
        measure = backend.ResidualMeasure(criterion);
      }
    }
    result.check_phase_seconds += check_sw.Seconds();

    SEA_FAILPOINT_SITE("sea.engine.poison_measure")
    if (defined && fail::Triggered("sea.engine.poison_measure"))
      measure = std::numeric_limits<double>::quiet_NaN();
    // Pins the measure at the previous check's value — exactly zero
    // improvement — which drives the stall detector deterministically (the
    // CI forensics smoke and fault tests arm this via SEA_FAILPOINTS).
    SEA_FAILPOINT_SITE("sea.engine.freeze_measure")
    if (fail::Triggered("sea.engine.freeze_measure") && defined &&
        std::isfinite(stall_prev))
      measure = stall_prev;

    if (defined && !std::isfinite(measure)) {
      // Numerical breakdown: the iterate went NaN/Inf. Hand back the last
      // iterate that passed a finite check instead of the garbage; the
      // breakdown check itself is not counted or charged (its measure has
      // no value). Under the recovery ladder this becomes a rescue attempt
      // instead of a terminal status.
      if (recorder)
        recorder->Record(obs::FlightRecorder::EventKind::kBreakdown, t,
                         measure);
      backend.RestoreGoodIterate();
      if (!try_recover(t)) result.status = SolveStatus::kNumericalBreakdown;
    } else if (defined) {
      ++result.checks_compared;
      result.final_residual = measure;
      result.ops.flops += backend.CheckCost();
      if (opts.record_trace)
        result.trace.AddSerialPhase("check",
                                    static_cast<double>(backend.CheckCost()));
      bool stalled_now = false;
      if (measure <= opts.epsilon) {
        result.status = SolveStatus::kConverged;
      } else if (measure < stall_prev * (1.0 - opts.stall_rtol)) {
        // Compare with the PREVIOUS check, not the best-so-far: a transient
        // rise (common before the contraction regime sets in) would park a
        // best-so-far low-water mark that a genuinely progressing run can
        // take arbitrarily many checks to re-cross.
        stall_streak = 0;
      } else if (opts.stall_checks > 0 &&
                 ++stall_streak >= opts.stall_checks) {
        stalled_now = true;
        if (recorder)
          recorder->Record(obs::FlightRecorder::EventKind::kStallTrip, t,
                           measure);
      }
      stall_prev = measure;
      backend.SaveGoodIterate();
      if (recorder) recorder->NoteGoodIterate(t, measure);
      // A stall trip recovers after the good-iterate bookkeeping: the
      // stalled-but-finite iterate IS the restart point, and the rescue
      // resets the detector (stall_prev back to +inf).
      if (stalled_now && !try_recover(t))
        result.status = SolveStatus::kStalled;
      // Per-market attribution rides the check schedule: the backend fills
      // the scratch row with per-row-market contributions under the
      // residual form of the active criterion (kXChange attributes the
      // absolute residual of the same materialized iterate), and the
      // commit snapshots active-set churn.
      if (opts.attribution && std::isfinite(measure)) {
        const StopCriterion ac = criterion == StopCriterion::kXChange
                                     ? StopCriterion::kResidualAbs
                                     : criterion;
        const double l1 =
            backend.AttributeResidual(ac, opts.attribution->residual_scratch());
        if (l1 >= 0.0) opts.attribution->CommitCheck(t, measure, l1);
      }
    }

    if (observing) {
      IterationEvent ev;
      ev.iteration = t;
      ev.measure_defined = defined;
      ev.measure = measure;
      ev.converged = result.converged();
      ev.checks_compared = result.checks_compared;
      ev.row_phase_seconds = result.row_phase_seconds;
      ev.col_phase_seconds = result.col_phase_seconds;
      ev.check_phase_seconds = result.check_phase_seconds;
      ev.ops_total = result.ops;
      ev.ops_delta = result.ops - ops_at_last_event;
      ops_at_last_event = result.ops;

      if (opts.metrics) {
        if (defined && std::isfinite(measure))
          residual_hist->Observe(measure);
        interval_hist->Observe(static_cast<double>(t - last_check_iteration));
        iter_counter->Add(t - iters_committed);
        iters_committed = t;
        checks_counter->Add(result.checks_compared - checks_committed);
        checks_committed = result.checks_compared;
        const OpCounts ops_delta = result.ops - ops_committed;
        flops_counter->Add(ops_delta.flops);
        comparisons_counter->Add(ops_delta.comparisons);
        breakpoints_counter->Add(ops_delta.breakpoints);
        inversions_counter->Add(ops_delta.inversions);
        ops_committed = result.ops;
      }
      last_check_iteration = t;

      if (opts.progress) opts.progress(ev);
      if (opts.trace_sink) opts.trace_sink->OnCheck(ev);
      if (recorder)
        recorder->Record(obs::FlightRecorder::EventKind::kCheck, t,
                         defined ? measure
                                 : std::numeric_limits<double>::quiet_NaN());
      if (opts.status_file) opts.status_file->OnCheck(ev);
    }

    // Any terminal condition (convergence, breakdown, stall) has replaced
    // the default kMaxIterations status by now.
    if (result.status != SolveStatus::kMaxIterations) break;
    backend.RebalanceDuals(opts);

    // Checkpoint at the end of cadence-eligible compared checks — after
    // the rebalance, so the captured state is exactly what iteration t+1
    // starts from. Breakdown checks never checkpoint (the measure carried
    // no value; nothing marks this state as trustworthy).
    if (opts.checkpoint != nullptr && defined && std::isfinite(measure) &&
        opts.checkpoint->ShouldWrite()) {
      const bool wrote = write_checkpoint();
      // Crash-injection point for the CI crash-resume smoke: die AFTER a
      // checkpoint landed, so the restart proves the durability story
      // end-to-end.
      SEA_FAILPOINT_SITE("sea.engine.crash_after_checkpoint")
      if (wrote && fail::Triggered("sea.engine.crash_after_checkpoint"))
        std::abort();
    }
  }

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;

  // Final checkpoint on the interruptible exits: cancellation (how SIGTERM
  // arrives), budget expiry, and the iteration cap all leave a resumable
  // state behind — the interrupted work is not lost. Terminal guardrail
  // failures do not checkpoint (their iterate is the problem), and
  // convergence needs no resume.
  if (opts.checkpoint != nullptr && result.iterations > 0 &&
      (result.status == SolveStatus::kCancelled ||
       result.status == SolveStatus::kTimeBudgetExceeded ||
       result.status == SolveStatus::kMaxIterations))
    write_checkpoint();

  if (recorder)
    recorder->OnTermination(result.status, result.iterations,
                            result.final_residual, result.wall_seconds,
                            result.recovered_count);
  if (opts.status_file) opts.status_file->OnTermination(result.status);

  if (opts.metrics) {
    obs::MetricsRegistry& m = *opts.metrics;
    // The check loop already committed deltas up to the last check (live
    // progress); only the post-last-check remainder lands here.
    m.GetCounter("sea.iterations").Add(result.iterations - iters_committed);
    m.GetCounter("sea.checks_compared")
        .Add(result.checks_compared - checks_committed);
    const OpCounts ops_rest = result.ops - ops_committed;
    m.GetCounter("sea.ops.flops").Add(ops_rest.flops);
    m.GetCounter("sea.ops.comparisons").Add(ops_rest.comparisons);
    m.GetCounter("sea.ops.breakpoints").Add(ops_rest.breakpoints);
    m.GetCounter("sea.ops.inversions").Add(ops_rest.inversions);
    m.GetCounter("sea.sweep.order_reuses").Add(result.order_reuses);
    // Per-backend market-solve counters plus a which-backend gauge
    // (docs/OBSERVABILITY.md): 0 = scalar, 1 = simd.
    m.GetCounter(std::string("sea.kernel.") + result.kernel_backend +
                 ".markets")
        .Add(result.kernel_markets);
    m.GetGauge("sea.kernel.backend")
        .Set(std::string_view(result.kernel_backend) == "simd" ? 1.0 : 0.0);
    m.GetCounter("sea.solves").Add(1);
    if (result.converged()) m.GetCounter("sea.solves_converged").Add(1);
    m.GetCounter(std::string("solver.status.") + ToString(result.status))
        .Add(1);
    // Phase seconds accumulate across solves (the general algorithm runs
    // one engine solve per projection step).
    m.GetGauge("sea.row_phase_seconds").Add(result.row_phase_seconds);
    m.GetGauge("sea.col_phase_seconds").Add(result.col_phase_seconds);
    m.GetGauge("sea.check_phase_seconds").Add(result.check_phase_seconds);
    m.GetGauge("sea.wall_seconds").Add(result.wall_seconds);
    m.GetGauge("sea.cpu_seconds").Add(result.cpu_seconds);
    m.GetGauge("sea.final_residual").Set(result.final_residual);
    m.GetGauge("sea.converged").Set(result.converged() ? 1.0 : 0.0);
    if (opts.attribution) {
      // Attribution summary counters (docs/OBSERVABILITY.md): population,
      // committed checks, per-market solves, and total active-set churn.
      m.GetCounter("sea.market.tracked").Add(opts.attribution->markets());
      m.GetCounter("sea.market.checks")
          .Add(opts.attribution->checks().size());
      m.GetCounter("sea.market.solves").Add(opts.attribution->total_solves());
      m.GetCounter("sea.market.churn").Add(opts.attribution->total_churn());
    }
  }
  return result;
}

}  // namespace sea
