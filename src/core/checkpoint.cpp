#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "problems/diagonal_problem.hpp"
#include "support/crc32.hpp"
#include "support/hash.hpp"

namespace sea {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'A', 'C', 'K', 'P', 'T', '\0'};

void PutU32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutDoubles(std::string& out, const std::vector<double>& v) {
  PutU64(out, v.size());
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(double));
}

// Bounds-checked sequential reader over the decoded byte range.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool GetU32(std::uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(std::uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU8(std::uint8_t* v) { return GetRaw(v, sizeof(*v)); }

  bool GetDoubles(std::vector<double>* v) {
    std::uint64_t count = 0;
    if (!GetU64(&count)) return false;
    if (count > Remaining() / sizeof(double)) return false;
    v->resize(static_cast<std::size_t>(count));
    return GetRaw(v->data(), v->size() * sizeof(double));
  }

  bool GetBytes(std::vector<std::uint8_t>* v) {
    std::uint64_t count = 0;
    if (!GetU64(&count)) return false;
    if (count > Remaining()) return false;
    v->resize(static_cast<std::size_t>(count));
    return GetRaw(v->data(), v->size());
  }

  std::size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  bool GetRaw(void* dst, std::size_t len) {
    if (len > Remaining()) return false;
    std::memcpy(dst, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

CheckpointLoadResult Fail(DiagnosisCode code, std::string message) {
  CheckpointLoadResult r;
  r.diagnosis = Diagnosis{code, Diagnosis::kNoIndex, Diagnosis::kNoIndex,
                          std::move(message)};
  return r;
}

}  // namespace

std::string EncodeCheckpoint(const CheckpointState& s) {
  std::string out;
  out.reserve(128 + sizeof(double) * (s.lambda.size() + s.mu.size() +
                                      s.snapshot.size()) +
              s.recovery_rungs.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(out, kCheckpointVersion);
  PutU32(out, static_cast<std::uint32_t>(s.criterion));
  PutU64(out, s.fingerprint);
  PutU64(out, s.m);
  PutU64(out, s.n);
  PutU64(out, s.iteration);
  PutU64(out, s.checks_compared);
  PutU64(out, s.stall_streak);
  PutF64(out, s.stall_prev);
  PutF64(out, s.final_residual);
  out.push_back(s.have_snapshot ? '\1' : '\0');
  out.push_back(static_cast<char>(s.rung));
  PutU64(out, s.rung_attempts);
  PutU64(out, s.damp_iters_left);
  PutU64(out, s.recovered_count);
  PutU64(out, s.recovery_rungs.size());
  out.append(reinterpret_cast<const char*>(s.recovery_rungs.data()),
             s.recovery_rungs.size());
  PutDoubles(out, s.lambda);
  PutDoubles(out, s.mu);
  PutDoubles(out, s.snapshot);
  PutU32(out, support::Crc32(out));
  return out;
}

CheckpointLoadResult DecodeCheckpoint(std::string_view bytes) {
  // Order matters: magic identifies the file family, version decides
  // whether this build can read it at all, the CRC separates "incompatible
  // revision" from "corrupt or truncated", and only then are fields parsed.
  if (bytes.size() < sizeof(kMagic) + 2 * sizeof(std::uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return Fail(DiagnosisCode::kCheckpointMalformed,
                "not a SEA checkpoint (bad magic or too short)");
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kCheckpointVersion) {
    std::ostringstream msg;
    msg << "checkpoint format version " << version << "; this build reads "
        << kCheckpointVersion;
    return Fail(DiagnosisCode::kCheckpointVersionSkew, msg.str());
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const std::uint32_t computed_crc =
      support::Crc32(bytes.data(), bytes.size() - sizeof(stored_crc));
  if (stored_crc != computed_crc)
    return Fail(DiagnosisCode::kCheckpointMalformed,
                "CRC mismatch (corrupt or truncated checkpoint)");

  Reader r(bytes.substr(sizeof(kMagic) + sizeof(std::uint32_t),
                        bytes.size() - sizeof(kMagic) -
                            2 * sizeof(std::uint32_t)));
  CheckpointLoadResult out;
  CheckpointState& s = out.state;
  std::uint32_t criterion = 0;
  std::uint8_t have_snapshot = 0;
  std::uint8_t rung = 0;
  const bool parsed =
      r.GetU32(&criterion) && r.GetU64(&s.fingerprint) && r.GetU64(&s.m) &&
      r.GetU64(&s.n) && r.GetU64(&s.iteration) &&
      r.GetU64(&s.checks_compared) && r.GetU64(&s.stall_streak) &&
      r.GetF64(&s.stall_prev) && r.GetF64(&s.final_residual) &&
      r.GetU8(&have_snapshot) && r.GetU8(&rung) &&
      r.GetU64(&s.rung_attempts) && r.GetU64(&s.damp_iters_left) &&
      r.GetU64(&s.recovered_count) && r.GetBytes(&s.recovery_rungs) &&
      r.GetDoubles(&s.lambda) && r.GetDoubles(&s.mu) &&
      r.GetDoubles(&s.snapshot);
  if (!parsed || r.Remaining() != 0)
    return Fail(DiagnosisCode::kCheckpointMalformed,
                "inconsistent checkpoint field lengths");
  if (criterion > static_cast<std::uint32_t>(StopCriterion::kResidualRel))
    return Fail(DiagnosisCode::kCheckpointMalformed,
                "checkpoint names an unknown stop criterion");
  s.criterion = static_cast<StopCriterion>(criterion);
  s.have_snapshot = have_snapshot != 0;
  s.rung = rung;
  return out;
}

CheckpointLoadResult LoadCheckpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open())
    return Fail(DiagnosisCode::kCheckpointMalformed,
                "cannot open checkpoint file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad())
    return Fail(DiagnosisCode::kCheckpointMalformed,
                "cannot read checkpoint file: " + path);
  return DecodeCheckpoint(buf.str());
}

std::optional<Diagnosis> ValidateCheckpointFor(const CheckpointState& state,
                                               std::uint64_t fingerprint,
                                               std::size_t m, std::size_t n,
                                               StopCriterion criterion) {
  const auto mismatch = [](std::string message) {
    return Diagnosis{DiagnosisCode::kCheckpointMismatch, Diagnosis::kNoIndex,
                     Diagnosis::kNoIndex, std::move(message)};
  };
  if (state.m != m || state.n != n) {
    std::ostringstream msg;
    msg << "checkpoint is for a " << state.m << "x" << state.n
        << " problem; this problem is " << m << "x" << n;
    return mismatch(msg.str());
  }
  if (state.fingerprint != fingerprint) {
    std::ostringstream msg;
    msg << "checkpoint fingerprint " << std::hex << state.fingerprint
        << " does not match this problem's " << fingerprint
        << " (different data)";
    return mismatch(msg.str());
  }
  if (state.criterion != criterion) {
    std::ostringstream msg;
    msg << "checkpoint was taken under criterion "
        << ToString(state.criterion) << "; this solve uses "
        << ToString(criterion);
    return mismatch(msg.str());
  }
  if (state.lambda.size() != m || state.mu.size() != n)
    return mismatch("checkpoint multiplier lengths disagree with its shape");
  return std::nullopt;
}

std::uint64_t FingerprintProblem(const DiagonalProblem& p) {
  support::Fnv1a h;
  h.MixU64('D');  // dense-problem tag; sparse uses 'S'
  h.MixU64(static_cast<std::uint64_t>(p.mode()));
  h.MixU64(p.m());
  h.MixU64(p.n());
  h.MixDoubles(p.x0().Flat());
  h.MixDoubles(p.gamma().Flat());
  h.MixDoubles(p.s0());
  h.MixDoubles(p.alpha());
  h.MixDoubles(p.d0());
  h.MixDoubles(p.beta());
  h.MixDoubles(p.s_lo());
  h.MixDoubles(p.s_hi());
  h.MixDoubles(p.d_lo());
  h.MixDoubles(p.d_hi());
  return h.value();
}

std::uint64_t FingerprintProblemStructure(const DiagonalProblem& p) {
  support::Fnv1a h;
  h.MixU64('d');  // lowercase: disjoint from the full dense fingerprint
  h.MixU64(static_cast<std::uint64_t>(p.mode()));
  h.MixU64(p.m());
  h.MixU64(p.n());
  h.MixDoubles(p.x0().Flat());
  h.MixDoubles(p.gamma().Flat());
  h.MixDoubles(p.alpha());
  h.MixDoubles(p.beta());
  return h.value();
}

bool CheckpointWriter::Write(const CheckpointState& state) {
  if (last_written_iteration_.has_value() &&
      *last_written_iteration_ == state.iteration)
    return true;
  const std::string bytes = EncodeCheckpoint(state);
  const bool ok = writer_.Write(
      path_, [&](std::ostream& f) { f.write(bytes.data(), bytes.size()); });
  if (ok) {
    ++writes_;
    last_written_iteration_ = state.iteration;
  } else {
    ++write_failures_;
  }
  return ok;
}

}  // namespace sea
