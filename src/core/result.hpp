// Solver run reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/solve_status.hpp"
#include "parallel/speedup_model.hpp"
#include "support/op_counter.hpp"

namespace sea {

struct SeaResult {
  // How the solve terminated (docs/ROBUSTNESS.md). Every engine-driven run
  // ends in exactly one status; `converged` is derived, never stored.
  SolveStatus status = SolveStatus::kMaxIterations;
  bool converged() const { return status == SolveStatus::kConverged; }
  std::size_t iterations = 0;  // completed row+column iteration pairs
  // Check iterations whose stopping measure had a defined value. 0 means
  // final_residual was never evaluated (e.g. kXChange hit max_iterations
  // before a second check existed to compare against) and is meaningless.
  std::size_t checks_compared = 0;
  double final_residual = 0.0; // value of the active stopping measure
  double objective = 0.0;      // primal objective at the returned solution
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  // Phase breakdown (the parallel row/column phases vs the serial
  // convergence-verification phase, paper Section 4.2).
  double row_phase_seconds = 0.0;
  double col_phase_seconds = 0.0;
  double check_phase_seconds = 0.0;
  OpCounts ops;
  // Market solves answered by repairing a persisted breakpoint order
  // (SortPolicy::kReuse); 0 under the other sort policies.
  std::uint64_t order_reuses = 0;
  // Kernel backend that executed the market solves ("scalar" or "simd";
  // stable string literal from KernelBackend::name), and how many market
  // solves it performed across all sweeps.
  const char* kernel_backend = "scalar";
  std::uint64_t kernel_markets = 0;
  // Recovery-ladder provenance (docs/ROBUSTNESS.md "Recovery ladder"):
  // how many guardrail trips (stall / numerical breakdown) were rescued
  // instead of terminating the solve, and which rung rescued each, in trip
  // order (1 = restore last-good, 2 = damped half-step, 3 = rebalance +
  // restart from checkpoint). Empty unless SeaOptions::recover is set and
  // at least one rescue happened.
  std::uint64_t recovered_count = 0;
  std::vector<std::uint8_t> recovery_rungs;
  // Filled when SeaOptions::record_trace is set.
  ExecutionTrace trace;
  // Filled when SeaOptions::record_dual_values is set: zeta_l(lambda^{t+1},
  // mu^{t+1}) after each iteration — nondecreasing by the paper's eq. (71).
  std::vector<double> dual_values;
};

struct GeneralSeaResult {
  // Outer-loop status; an abnormal inner status (cancellation, budget,
  // breakdown) propagates here unchanged.
  SolveStatus status = SolveStatus::kMaxIterations;
  bool converged() const { return status == SolveStatus::kConverged; }
  std::size_t outer_iterations = 0;
  std::size_t total_inner_iterations = 0;
  double final_outer_change = 0.0;  // max |x^t - x^{t-1}| at termination
  double objective = 0.0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double linearization_seconds = 0.0;  // dense matvec phases
  OpCounts ops;
  ExecutionTrace trace;
};

}  // namespace sea
