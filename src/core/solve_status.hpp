// Structured solve outcomes (docs/ROBUSTNESS.md).
//
// Every solver entry point terminates with exactly one SolveStatus instead
// of a bare converged flag, so callers can distinguish "ran out of
// iterations" from "the input is infeasible" from "the iterate went
// non-finite" and react accordingly. SeaResult/GeneralSeaResult carry the
// status and derive `converged()` from it; the CLI tools map each status to
// a distinct documented process exit code via ExitCodeFor.
#pragma once

namespace sea {

enum class SolveStatus {
  // The stopping measure reached epsilon: the returned point is a solution.
  kConverged,
  // max_iterations elapsed with the measure still above epsilon.
  kMaxIterations,
  // SeaOptions::time_budget_seconds elapsed; the solve stopped at the next
  // check iteration with the best iterate so far.
  kTimeBudgetExceeded,
  // SeaOptions::cancel was triggered; cooperative stop at a check iteration.
  kCancelled,
  // The stopping measure failed to improve over stall_checks consecutive
  // compared checks — typically an infeasible support pattern on which the
  // scaling iteration has reached a non-solution fixed point.
  kStalled,
  // A check observed a non-finite stopping measure (NaN/Inf iterate); the
  // solver restored the last iterate that passed a finite check.
  kNumericalBreakdown,
  // Pre-flight detected the constraints cannot be met (e.g. a zero-support
  // row with a positive target); no iteration was attempted.
  kInfeasible,
};

// Lowercase dashed name ("converged", "time-budget-exceeded", ...). Stable:
// exported in telemetry documents and the solver.status.* metric names.
const char* ToString(SolveStatus s);

// Documented CLI exit code for a terminal status (docs/ROBUSTNESS.md):
//   0 converged          4 max-iterations      5 time-budget-exceeded
//   6 cancelled          7 stalled             8 numerical-breakdown
//   9 infeasible
// (2 and 3 are reserved by the tools for usage and input errors.)
int ExitCodeFor(SolveStatus s);

}  // namespace sea
