#include "core/solve_status.hpp"

namespace sea {

const char* ToString(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged:
      return "converged";
    case SolveStatus::kMaxIterations:
      return "max-iterations";
    case SolveStatus::kTimeBudgetExceeded:
      return "time-budget-exceeded";
    case SolveStatus::kCancelled:
      return "cancelled";
    case SolveStatus::kStalled:
      return "stalled";
    case SolveStatus::kNumericalBreakdown:
      return "numerical-breakdown";
    case SolveStatus::kInfeasible:
      return "infeasible";
  }
  return "?";
}

int ExitCodeFor(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged:
      return 0;
    case SolveStatus::kMaxIterations:
      return 4;
    case SolveStatus::kTimeBudgetExceeded:
      return 5;
    case SolveStatus::kCancelled:
      return 6;
    case SolveStatus::kStalled:
      return 7;
    case SolveStatus::kNumericalBreakdown:
      return 8;
    case SolveStatus::kInfeasible:
      return 9;
  }
  return 3;
}

}  // namespace sea
