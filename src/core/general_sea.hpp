// The Splitting Equilibration Algorithm for general (fully weighted)
// constrained matrix problems (paper Section 3.2; Figure 4).
//
// The general problem's weight matrices A, B, G may be fully dense. SEA
// constructs a series of *diagonal* problems via the projection method of
// Dafermos (1982, 1983): each outer iteration keeps the fixed diagonal
// quadratic parts diag(A), diag(G), diag(B) and refreshes only the linear
// terms at the current iterate (paper eq. (79)), then solves the resulting
// diagonal constrained matrix problem with diagonal SEA. Unlike the RC
// baseline, convergence of the projection method is verified once per outer
// iteration (a single serial phase), not inside separate row and column
// stages — the paper credits SEA's better parallel efficiency (Table 9,
// Figure 7) to exactly this difference.
//
// Convergence of the projection method holds when the diagonal part
// dominates (contraction condition of Dafermos 1983); the paper's — and this
// repository's — instances use strictly diagonally dominant weight matrices,
// which satisfy it.
#pragma once

#include "core/diagonal_sea.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "problems/general_problem.hpp"

namespace sea {

struct GeneralSeaRun {
  Solution solution;
  GeneralSeaResult result;
};

GeneralSeaRun SolveGeneral(const GeneralProblem& problem,
                           const GeneralSeaOptions& opts);

// Builds a feasible starting point (paper Step 0) for the given problem:
// for fixed totals the rank-one transportation plan x_ij = s0_i d0_j / total;
// for elastic/SAM regimes the zero matrix with consistent totals.
void FeasibleStart(const GeneralProblem& problem, Vector& x, Vector& s,
                   Vector& d);

}  // namespace sea
