#include "core/diagonal_sea.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "core/iteration_engine.hpp"
#include "parallel/schedule.hpp"
#include "core/multiplier_rebalance.hpp"
#include "core/stopping.hpp"
#include "equilibration/equilibrator.hpp"
#include "equilibration/kernel_backend.hpp"
#include "obs/market_stats.hpp"
#include "problems/feasibility.hpp"
#include "support/check.hpp"

namespace sea {

namespace {

// Dense-diagonal backend for the shared iteration engine: sweeps via
// EquilibrateSide over the problem and its transposed copies, with the
// primal materialized column-major (x^T) on check iterations.
class DenseDiagonalBackend final : public SeaIterationBackend {
 public:
  DenseDiagonalBackend(const DiagonalProblem& p, const DenseMatrix& x0_t,
                       const DenseMatrix& gamma_t, const SeaOptions& opts,
                       Vector& lambda, Vector& mu)
      : p_(p),
        x0_t_(x0_t),
        gamma_t_(gamma_t),
        lambda_(lambda),
        mu_(mu),
        xt_(p.n(), p.m(), 0.0),
        rowsum_(p.m(), 0.0) {
    row_side_.mode = p.mode();
    row_side_.t0 = p.s0();
    col_side_.mode = p.mode();
    switch (p.mode()) {
      case TotalsMode::kFixed:
        col_side_.t0 = p.d0();
        break;
      case TotalsMode::kElastic:
        row_side_.weight = p.alpha();
        col_side_.t0 = p.d0();
        col_side_.weight = p.beta();
        break;
      case TotalsMode::kInterval:
        row_side_.weight = p.alpha();
        row_side_.lo = p.s_lo();
        row_side_.hi = p.s_hi();
        col_side_.t0 = p.d0();
        col_side_.weight = p.beta();
        col_side_.lo = p.d_lo();
        col_side_.hi = p.d_hi();
        break;
      case TotalsMode::kSam:
        row_side_.weight = p.alpha();
        row_side_.coupling = mu_;  // rebound below each iteration
        col_side_.t0 = p.s0();
        col_side_.weight = p.alpha();
        col_side_.coupling = lambda_;
        break;
    }
    sweep_opts_.sort_policy = opts.sort_policy;
    sweep_opts_.pool = opts.pool;
    sweep_opts_.record_task_costs = opts.record_trace;
    sweep_opts_.kernel = ResolveKernelBackend(opts.backend).kernel;
    sweep_opts_.attribution = opts.attribution;
    if (opts.attribution != nullptr) opts.attribution->Reset(p.m(), p.n());
    if (opts.sweep_schedule != ScheduleKind::kStatic) {
      row_scheduler_.emplace(opts.sweep_schedule, opts.sweep_grain);
      col_scheduler_.emplace(opts.sweep_schedule, opts.sweep_grain);
    }
    if (opts.sort_policy == SortPolicy::kReuse) {
      row_orders_.Reset(p.m());
      col_orders_.Reset(p.n());
    }
  }

  SweepStats RowSweep() override {
    if (p_.mode() == TotalsMode::kSam) row_side_.coupling = mu_;
    sweep_opts_.profile_phase = "equilibrate.rows";
    sweep_opts_.scheduler =
        row_scheduler_.has_value() ? &*row_scheduler_ : nullptr;
    sweep_opts_.sort_cache = row_orders_.size() > 0 ? &row_orders_ : nullptr;
    sweep_opts_.attribution_base = 0;  // row markets: slots [0, m)
    return EquilibrateSide(p_.x0(), p_.gamma(), mu_, row_side_, lambda_,
                           nullptr, sweep_opts_);
  }

  SweepStats ColSweep(bool materialize) override {
    if (p_.mode() == TotalsMode::kSam) col_side_.coupling = lambda_;
    sweep_opts_.profile_phase = "equilibrate.cols";
    sweep_opts_.scheduler =
        col_scheduler_.has_value() ? &*col_scheduler_ : nullptr;
    sweep_opts_.sort_cache = col_orders_.size() > 0 ? &col_orders_ : nullptr;
    sweep_opts_.attribution_base = p_.m();  // column markets: slots [m, m+n)
    return EquilibrateSide(x0_t_, gamma_t_, lambda_, col_side_, mu_,
                           materialize ? &xt_ : nullptr, sweep_opts_);
  }

  double ResidualMeasure(StopCriterion c) override {
    // Row residual of the column-feasible iterate: after the column sweep
    // the column constraints hold exactly, so (by eq. (25)) the row residual
    // is the remaining dual-gradient component.
    AccumulateRowSums();
    return MaxRowResidual(c, rowsum_, Targets());
  }

  double AttributeResidual(StopCriterion c, std::span<double> out) override {
    // Same per-row terms the aggregate measure maxes over; FoldRowResidual
    // from a zero running max yields exactly one row's contribution.
    AccumulateRowSums();
    const ResidualTargets targets = Targets();
    double l1 = 0.0;
    for (std::size_t i = 0; i < rowsum_.size(); ++i) {
      out[i] = FoldRowResidual(c, rowsum_[i], RowTarget(targets, i), 0.0);
      l1 += out[i];
    }
    return l1;
  }

  double DiffFromSnapshot() override { return xt_.MaxAbsDiff(xt_prev_); }
  void SnapshotIterate() override { xt_prev_ = xt_; }

  std::uint64_t CheckCost() const override {
    return 2 * static_cast<std::uint64_t>(p_.m()) * p_.n();
  }

  // Breakdown recovery: the primal is recovered from (lambda, mu) after the
  // run, so capturing the duals alone preserves a full last-good iterate.
  void SaveGoodIterate() override {
    lambda_good_ = lambda_;
    mu_good_ = mu_;
  }
  void RestoreGoodIterate() override {
    if (lambda_good_.empty()) {
      // No finite check yet: fall back to the start point (lambda = 0,
      // mu = the warm start is gone, so zero both — x then recovers from
      // the unconstrained minimizer at the centers).
      std::fill(lambda_.begin(), lambda_.end(), 0.0);
      std::fill(mu_.begin(), mu_.end(), 0.0);
      return;
    }
    lambda_ = lambda_good_;
    mu_ = mu_good_;
  }

  void RebalanceDuals(const SeaOptions& opts) override {
    // The paper's Modified Algorithm: keep dual iterates bounded by
    // rebalancing multipliers across support components (a gauge shift with
    // no effect on the primal trajectory).
    if (opts.multiplier_bound > 0.0 && (p_.mode() == TotalsMode::kFixed ||
                                        p_.mode() == TotalsMode::kSam))
      RebalanceMultipliers(p_, lambda_, mu_, opts.multiplier_bound);
  }

  // Durability hooks (core/checkpoint.hpp): the duals are the complete
  // iterate (the primal recovers from them in closed form); kXChange
  // additionally needs the previous check's materialized x^T.
  bool CaptureIterate(CheckpointState& out) override {
    if (!fingerprint_.has_value()) fingerprint_ = FingerprintProblem(p_);
    out.fingerprint = *fingerprint_;
    out.m = p_.m();
    out.n = p_.n();
    out.lambda = lambda_;
    out.mu = mu_;
    const auto prev = xt_prev_.Flat();
    out.snapshot.assign(prev.begin(), prev.end());
    return true;
  }

  bool RestoreIterate(const CheckpointState& in) override {
    if (in.lambda.size() != p_.m() || in.mu.size() != p_.n()) return false;
    if (in.have_snapshot && in.snapshot.size() != p_.m() * p_.n())
      return false;
    lambda_ = in.lambda;
    mu_ = in.mu;
    if (in.have_snapshot) {
      xt_prev_ = DenseMatrix(p_.n(), p_.m(), 0.0);
      std::copy(in.snapshot.begin(), in.snapshot.end(),
                xt_prev_.Flat().begin());
    }
    // The restored duals are by construction the last trustworthy state.
    lambda_good_ = lambda_;
    mu_good_ = mu_;
    return true;
  }

  // Recovery-ladder hooks (docs/ROBUSTNESS.md "Recovery ladder").
  bool SupportsRecovery() const override { return true; }
  void SnapshotRowDuals(std::vector<double>& out) const override {
    out = lambda_;
  }
  void BlendRowDuals(const std::vector<double>& prev, double keep) override {
    for (std::size_t i = 0; i < lambda_.size(); ++i)
      lambda_[i] = prev[i] + keep * (lambda_[i] - prev[i]);
  }
  void ForceRebalance() override {
    // Rung 3's re-gauge: shift multipliers across support components
    // relative to the current dual magnitude, regardless of the
    // multiplier_bound option (only the gauge-free regimes have this
    // freedom).
    if (p_.mode() != TotalsMode::kFixed && p_.mode() != TotalsMode::kSam)
      return;
    double max_abs = 0.0;
    for (double v : lambda_) max_abs = std::max(max_abs, std::abs(v));
    if (max_abs > 0.0) RebalanceMultipliers(p_, lambda_, mu_, 0.5 * max_abs);
  }

  void RecordDualValue(std::vector<double>& out) override {
    out.push_back(DualValue(p_, lambda_, mu_));
  }

 private:
  void AccumulateRowSums() {
    std::fill(rowsum_.begin(), rowsum_.end(), 0.0);
    const std::size_t m = p_.m(), n = p_.n();
    for (std::size_t j = 0; j < n; ++j) {
      const auto col = xt_.Row(j);
      for (std::size_t i = 0; i < m; ++i) rowsum_[i] += col[i];
    }
  }

  ResidualTargets Targets() const {
    ResidualTargets targets;
    targets.mode = p_.mode();
    targets.s0 = p_.s0();
    targets.alpha = p_.alpha();
    targets.lambda = lambda_;
    targets.mu = mu_;
    if (p_.mode() == TotalsMode::kInterval) {
      targets.s_lo = p_.s_lo();
      targets.s_hi = p_.s_hi();
    }
    return targets;
  }

  const DiagonalProblem& p_;
  const DenseMatrix& x0_t_;
  const DenseMatrix& gamma_t_;
  Vector& lambda_;
  Vector& mu_;
  // Sweep descriptors (fixed for the whole run, modulo SAM coupling).
  MarketSide row_side_;
  MarketSide col_side_;
  SweepOptions sweep_opts_;
  // Cost feedback + persisted sort orders, one of each per sweep side (the
  // sides differ in market count, and costs do not transfer between them).
  std::optional<SweepScheduler> row_scheduler_, col_scheduler_;
  SortOrderCache row_orders_, col_orders_;
  // Column-major primal (x^T), materialized on check iterations.
  DenseMatrix xt_;
  DenseMatrix xt_prev_;
  Vector rowsum_;
  // Duals at the last finite check (empty until one passes).
  Vector lambda_good_, mu_good_;
  // Problem fingerprint, computed on the first checkpoint capture (one
  // O(mn) hash per solve, and only when checkpointing is on).
  std::optional<std::uint64_t> fingerprint_;
};

}  // namespace

DiagonalSea::DiagonalSea(const DiagonalProblem& problem) {
  problem.Validate();
  problem_ = &problem;
  x0_t_ = problem.x0().Transposed();
  gamma_t_ = problem.gamma().Transposed();
}

void DiagonalSea::ResetProblem(const DiagonalProblem& problem) {
  SEA_CHECK(problem.m() == problem_->m() && problem.n() == problem_->n());
  SEA_CHECK(problem.mode() == problem_->mode());
  problem_ = &problem;
  x0_t_ = problem.x0().Transposed();
  gamma_t_ = problem.gamma().Transposed();
}

DiagonalSeaRun DiagonalSea::Solve(const SeaOptions& opts) {
  return SolveWarm(opts, Vector(problem_->n(), 0.0));  // paper Step 0: mu = 0
}

DiagonalSeaRun DiagonalSea::SolveWarm(const SeaOptions& opts,
                                      const Vector& mu0) {
  const DiagonalProblem& p = *problem_;
  SEA_CHECK(mu0.size() == p.n());

  Vector lambda(p.m(), 0.0);
  Vector mu = mu0;

  DenseDiagonalBackend backend(p, x0_t_, gamma_t_, opts, lambda, mu);

  DiagonalSeaRun run;
  run.result = RunIterationEngine(backend, opts);
  run.solution = RecoverPrimal(p, std::move(lambda), std::move(mu));
  run.result.objective =
      p.Objective(run.solution.x, run.solution.s, run.solution.d);
  return run;
}

DiagonalSeaRun SolveDiagonal(const DiagonalProblem& problem,
                             const SeaOptions& opts) {
  DiagonalSea solver(problem);
  return solver.Solve(opts);
}

}  // namespace sea
