#include "core/diagonal_sea.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/multiplier_rebalance.hpp"
#include "equilibration/equilibrator.hpp"
#include "problems/feasibility.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace sea {

DiagonalSea::DiagonalSea(const DiagonalProblem& problem) {
  problem.Validate();
  problem_ = &problem;
  x0_t_ = problem.x0().Transposed();
  gamma_t_ = problem.gamma().Transposed();
}

void DiagonalSea::ResetProblem(const DiagonalProblem& problem) {
  SEA_CHECK(problem.m() == problem_->m() && problem.n() == problem_->n());
  SEA_CHECK(problem.mode() == problem_->mode());
  problem_ = &problem;
  x0_t_ = problem.x0().Transposed();
  gamma_t_ = problem.gamma().Transposed();
}

DiagonalSeaRun DiagonalSea::Solve(const SeaOptions& opts) {
  return SolveWarm(opts, Vector(problem_->n(), 0.0));  // paper Step 0: mu = 0
}

DiagonalSeaRun DiagonalSea::SolveWarm(const SeaOptions& opts,
                                      const Vector& mu0) {
  const DiagonalProblem& p = *problem_;
  const std::size_t m = p.m(), n = p.n();
  SEA_CHECK(mu0.size() == n);
  SEA_CHECK(opts.epsilon > 0.0);
  SEA_CHECK(opts.check_every >= 1);

  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  Vector lambda(m, 0.0);
  Vector mu = mu0;

  // Column-major primal (x^T), materialized on check iterations.
  DenseMatrix xt(n, m, 0.0);
  DenseMatrix xt_prev;
  bool have_prev = false;

  // Sweep descriptors (fixed for the whole run).
  MarketSide row_side;
  row_side.mode = p.mode();
  row_side.t0 = p.s0();
  MarketSide col_side;
  col_side.mode = p.mode();
  switch (p.mode()) {
    case TotalsMode::kFixed:
      col_side.t0 = p.d0();
      break;
    case TotalsMode::kElastic:
      row_side.weight = p.alpha();
      col_side.t0 = p.d0();
      col_side.weight = p.beta();
      break;
    case TotalsMode::kInterval:
      row_side.weight = p.alpha();
      row_side.lo = p.s_lo();
      row_side.hi = p.s_hi();
      col_side.t0 = p.d0();
      col_side.weight = p.beta();
      col_side.lo = p.d_lo();
      col_side.hi = p.d_hi();
      break;
    case TotalsMode::kSam:
      row_side.weight = p.alpha();
      row_side.coupling = mu;  // rebound below each iteration
      col_side.t0 = p.s0();
      col_side.weight = p.alpha();
      col_side.coupling = lambda;
      break;
  }

  SweepOptions sweep_opts;
  sweep_opts.sort_policy = opts.sort_policy;
  sweep_opts.pool = opts.pool;
  sweep_opts.record_task_costs = opts.record_trace;

  SeaResult result;
  Vector rowsum(m, 0.0);

  for (std::size_t t = 1; t <= opts.max_iterations; ++t) {
    const bool check_now =
        (t % opts.check_every == 0) || (t == opts.max_iterations);

    // ---- Step 1: row equilibration (parallel across the m row markets).
    {
      Stopwatch sw;
      if (p.mode() == TotalsMode::kSam) row_side.coupling = mu;
      SweepStats stats = EquilibrateSide(p.x0(), p.gamma(), mu, row_side,
                                         lambda, nullptr, sweep_opts);
      result.ops += stats.total_ops;
      result.row_phase_seconds += sw.Seconds();
      if (opts.record_trace)
        result.trace.AddParallelPhase("row", std::move(stats.task_costs));
    }

    // ---- Step 2: column equilibration (parallel across n column markets).
    {
      Stopwatch sw;
      if (p.mode() == TotalsMode::kSam) col_side.coupling = lambda;
      SweepStats stats =
          EquilibrateSide(x0_t_, gamma_t_, lambda, col_side, mu,
                          check_now ? &xt : nullptr, sweep_opts);
      result.ops += stats.total_ops;
      result.col_phase_seconds += sw.Seconds();
      if (opts.record_trace)
        result.trace.AddParallelPhase("col", std::move(stats.task_costs));
    }

    result.iterations = t;
    if (opts.record_dual_values)
      result.dual_values.push_back(DualValue(p, lambda, mu));

    // ---- Step 3: convergence verification (serial phase; paper Sec. 4.2).
    if (!check_now) {
      // The paper's Modified Algorithm: keep dual iterates bounded by
      // rebalancing multipliers across support components (a gauge shift
      // with no effect on the primal trajectory).
      if (opts.multiplier_bound > 0.0 && (p.mode() == TotalsMode::kFixed ||
                                        p.mode() == TotalsMode::kSam))
        RebalanceMultipliers(p, lambda, mu, opts.multiplier_bound);
      continue;
    }
    Stopwatch check_sw;
    double measure = 0.0;
    if (opts.criterion == StopCriterion::kXChange) {
      if (have_prev) {
        measure = xt.MaxAbsDiff(xt_prev);
      } else {
        measure = std::numeric_limits<double>::infinity();
      }
      xt_prev = xt;
      have_prev = true;
    } else {
      // Row residual of the column-feasible iterate: after the column sweep
      // the column constraints hold exactly, so (by eq. (25)) the row
      // residual is the remaining dual-gradient component.
      std::fill(rowsum.begin(), rowsum.end(), 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        const auto col = xt.Row(j);
        for (std::size_t i = 0; i < m; ++i) rowsum[i] += col[i];
      }
      for (std::size_t i = 0; i < m; ++i) {
        double target = 0.0;
        switch (p.mode()) {
          case TotalsMode::kFixed:
            target = p.s0()[i];
            break;
          case TotalsMode::kElastic:
            target = p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]);
            break;
          case TotalsMode::kSam:
            target = p.s0()[i] - (lambda[i] + mu[i]) / (2.0 * p.alpha()[i]);
            break;
          case TotalsMode::kInterval:
            target =
                std::clamp(p.s0()[i] - lambda[i] / (2.0 * p.alpha()[i]),
                           p.s_lo()[i], p.s_hi()[i]);
            break;
        }
        double r = std::abs(rowsum[i] - target);
        if (opts.criterion == StopCriterion::kResidualRel)
          r /= std::max(1.0, std::abs(target));
        measure = std::max(measure, r);
      }
    }
    result.check_phase_seconds += check_sw.Seconds();
    result.ops.flops += 2 * static_cast<std::uint64_t>(m) * n;
    if (opts.record_trace)
      result.trace.AddSerialPhase("check",
                                  2.0 * static_cast<double>(m) *
                                      static_cast<double>(n));
    result.final_residual = measure;
    if (measure <= opts.epsilon) {
      result.converged = true;
      break;
    }
    if (opts.multiplier_bound > 0.0 && (p.mode() == TotalsMode::kFixed ||
                                        p.mode() == TotalsMode::kSam))
      RebalanceMultipliers(p, lambda, mu, opts.multiplier_bound);
  }

  DiagonalSeaRun run;
  run.solution = RecoverPrimal(p, std::move(lambda), std::move(mu));
  result.objective = p.Objective(run.solution.x, run.solution.s,
                                 run.solution.d);
  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  run.result = std::move(result);
  return run;
}

DiagonalSeaRun SolveDiagonal(const DiagonalProblem& problem,
                             const SeaOptions& opts) {
  DiagonalSea solver(problem);
  return solver.Solve(opts);
}

}  // namespace sea
