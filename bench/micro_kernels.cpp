// Microbenchmarks for the library's hot kernels, in two parts.
//
// 1. A kernel-backend comparison (scalar vs simd market solves across market
//    sizes, cold kAuto and warm kReuse) that always runs and emits the bench
//    schema v2 JSON (BENCH_micro_kernels.json) so tools/bench_diff can gate
//    the SIMD speedup across PRs. Accepts the standard bench flags
//    (--quick/--csv/--json/...; see bench_common.hpp).
//
// 2. The original google-benchmark suite (sort paths, row sweeps, dense
//    matvec — the quantities behind the paper's per-iteration cost model
//    N = T n^2 (9 + log n)). Runs only when a --benchmark* flag is passed
//    (e.g. --benchmark_filter=.*), keeping part 1 cheap for CI perf-smoke.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "datasets/large_diagonal.hpp"
#include "equilibration/breakpoint_solver.hpp"
#include "equilibration/equilibrator.hpp"
#include "equilibration/kernel_backend.hpp"
#include "io/table_printer.hpp"
#include "linalg/kernels.hpp"
#include "obs/market_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace sea;

void FillArcs(std::vector<Arc>& arcs, std::size_t n, Rng& rng) {
  arcs.resize(n);
  for (auto& a : arcs)
    a = {rng.Uniform(-100.0, 100.0), rng.Uniform(0.01, 5.0)};
}

// ---------------------------------------------------------------------------
// Part 1: scalar vs simd backend comparison (always runs; feeds bench_diff).

// One full market pipeline through a backend: arc build + clearing solve +
// allocation writeback — the exact per-market work of a sweep.
double TimeBackendUs(const KernelBackend& kb, std::size_t n, std::size_t reps,
                     SortPolicy policy) {
  Rng rng(7);
  std::vector<double> centers(n), weights(n), other(n), x(n);
  for (std::size_t j = 0; j < n; ++j) {
    centers[j] = rng.Uniform(-100.0, 100.0);
    weights[j] = rng.Uniform(0.05, 5.0);
    other[j] = rng.Uniform(-10.0, 10.0);
  }
  const double u = 0.6 * static_cast<double>(n);
  BreakpointWorkspace ws;
  MarketOrder order;
  MarketOrder* order_ptr = policy == SortPolicy::kReuse ? &order : nullptr;
  // Warm-up solve (establishes the kReuse permutation, faults pages).
  ws.Resize(n);
  kb.BuildArcs(centers, weights, other, ws.p(), ws.q());
  (void)kb.Solve(ws, u, 0.0, policy, order_ptr);
  // Best of three repetition means: this container has no CPU pinning, so a
  // single mean is at the mercy of scheduler migrations.
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      ws.Resize(n);
      kb.BuildArcs(centers, weights, other, ws.p(), ws.q());
      const auto res = kb.Solve(ws, u, 0.0, policy, order_ptr);
      kb.Writeback(ws.p(), ws.q(), res.lambda, x);
      benchmark::DoNotOptimize(x.data());
    }
    best = std::min(best, sw.Seconds() * 1e6 / static_cast<double>(reps));
  }
  return best;
}

// The vectorized elementwise stages alone (arc build, breakpoints,
// writeback), without the shared scalar sort/driver: the per-element
// throughput a wider backend can actually move. The full-solve rows above
// bound the end-to-end win (Amdahl over the shared sort and the
// latency-bound prefix-sum sweep).
double TimeStagesUs(const KernelBackend& kb, std::size_t n, std::size_t reps) {
  Rng rng(11);
  std::vector<double> centers(n), weights(n), other(n), b(n), x(n);
  for (std::size_t j = 0; j < n; ++j) {
    centers[j] = rng.Uniform(-100.0, 100.0);
    weights[j] = rng.Uniform(0.05, 5.0);
    other[j] = rng.Uniform(-10.0, 10.0);
  }
  std::vector<double> p(n), q(n);
  kb.BuildArcs(centers, weights, other, p, q);  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      kb.BuildArcs(centers, weights, other, p, q);
      kb.Breakpoints(p, q, b);
      kb.Writeback(p, q, 0.25, x);
      benchmark::DoNotOptimize(x.data());
    }
    best = std::min(best, sw.Seconds() * 1e6 / static_cast<double>(reps));
  }
  return best;
}

void RunBackendComparison(const bench::BenchOptions& opts,
                          ExperimentLog& log) {
  std::cout << "kernel backends: compiled="
            << simd::ToString(simd::CompiledIsa())
            << " runtime=" << simd::ToString(simd::RuntimeIsa())
            << " simd_available=" << (SimdKernelAvailable() ? "yes" : "no")
            << "\n";
  TablePrinter t({"market n", "sort", "scalar (us)", "simd (us)", "speedup"});
  for (std::size_t n : {10u, 120u, 1000u, 10000u}) {
    std::size_t reps = std::max<std::size_t>(20, 200000 / n);
    if (opts.quick) reps = std::max<std::size_t>(5, reps / 10);
    for (SortPolicy policy : {SortPolicy::kAuto, SortPolicy::kReuse}) {
      const char* sort_name = policy == SortPolicy::kReuse ? "reuse" : "auto";
      const double us_scalar = TimeBackendUs(ScalarKernel(), n, reps, policy);
      const double us_simd = TimeBackendUs(SimdKernel(), n, reps, policy);
      const double speedup = us_simd > 0.0 ? us_scalar / us_simd : 0.0;
      t.AddRow({TablePrinter::Int(static_cast<long>(n)), sort_name,
                TablePrinter::Num(us_scalar, 3), TablePrinter::Num(us_simd, 3),
                TablePrinter::Num(speedup, 2)});
      const std::string ds = "n=" + std::to_string(n) + ",sort=" + sort_name;
      log.Add("kernel_backend", ds, "scalar_us_per_solve", us_scalar);
      log.Add("kernel_backend", ds, "simd_us_per_solve", us_simd);
      log.Add("kernel_backend", ds, "simd_speedup", speedup, std::nullopt,
              SimdKernelAvailable() ? "simd vector bodies"
                                    : "simd degraded to scalar bodies");
    }
  }
  t.Print(std::cout);

  std::cout << "\nelementwise stages only (arc build + breakpoints + "
               "writeback, no sort/sweep):\n";
  TablePrinter ts({"market n", "scalar (us)", "simd (us)", "speedup"});
  for (std::size_t n : {120u, 1000u, 10000u}) {
    std::size_t reps = std::max<std::size_t>(50, 400000 / n);
    if (opts.quick) reps = std::max<std::size_t>(10, reps / 10);
    const double us_scalar = TimeStagesUs(ScalarKernel(), n, reps);
    const double us_simd = TimeStagesUs(SimdKernel(), n, reps);
    const double speedup = us_simd > 0.0 ? us_scalar / us_simd : 0.0;
    ts.AddRow({TablePrinter::Int(static_cast<long>(n)),
               TablePrinter::Num(us_scalar, 3), TablePrinter::Num(us_simd, 3),
               TablePrinter::Num(speedup, 2)});
    const std::string ds = "n=" + std::to_string(n) + ",stages=elementwise";
    log.Add("kernel_backend", ds, "scalar_us_per_pass", us_scalar);
    log.Add("kernel_backend", ds, "simd_us_per_pass", us_simd);
    log.Add("kernel_backend", ds, "simd_speedup", speedup);
  }
  ts.Print(std::cout);
}

// ---------------------------------------------------------------------------
// Attribution overhead: full SolveDiagonal on a table1-style dense instance
// with per-market attribution off vs on. The disabled path is a single
// pointer test per sweep, so the "on" column upper-bounds it; the trajectory
// record lets bench_diff flag any PR that makes forensics stop being
// pay-for-what-you-use (the <2% wall-clock claim in OBSERVABILITY.md).
// Rounds are interleaved off/on so scheduler drift hits both arms equally.

void RunAttributionOverhead(const bench::BenchOptions& opts,
                            ExperimentLog& log) {
  std::cout << "\nattribution overhead (full solve, table1-style dense):\n";
  TablePrinter t({"m x n", "off (ms)", "on (ms)", "on/off"});
  const std::size_t rounds = opts.quick ? 9 : 25;
  for (std::size_t n : {96u, 160u}) {
    if (opts.quick && n > 96u) continue;
    Rng rng(11);
    const auto p = datasets::MakeLargeDiagonal(n, n, rng);
    SeaOptions base;
    base.epsilon = 1e-8;
    obs::MarketAttribution attr;
    const auto solve_ms = [&](bool enabled) {
      SeaOptions o = base;
      o.attribution = enabled ? &attr : nullptr;
      Stopwatch sw;
      const auto res = SolveDiagonal(p, o);
      benchmark::DoNotOptimize(&res);
      return sw.Seconds() * 1e3;
    };
    // Warm-ups fault pages and settle the allocator before timing.
    (void)solve_ms(false);
    (void)solve_ms(true);
    double off = std::numeric_limits<double>::infinity();
    double on = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < rounds; ++r) {
      off = std::min(off, solve_ms(false));
      on = std::min(on, solve_ms(true));
    }
    const double ratio = off > 0.0 ? on / off : 0.0;
    const std::string dim =
        std::to_string(n) + " x " + std::to_string(n);
    t.AddRow({dim, TablePrinter::Num(off, 3), TablePrinter::Num(on, 3),
              TablePrinter::Num(ratio, 4)});
    const std::string ds = "n=" + std::to_string(n) + ",dense";
    log.Add("attribution_overhead", ds, "solve_off_ms", off);
    log.Add("attribution_overhead", ds, "solve_on_ms", on);
    log.Add("attribution_overhead", ds, "overhead_ratio", ratio, std::nullopt,
            "on/off, min over interleaved rounds; disabled path is one "
            "branch per sweep");
  }
  t.Print(std::cout);
}

// ---------------------------------------------------------------------------
// Sampler overhead: full solve with a metrics registry attached, background
// sampler off vs on at the default cadence. The sampler thread only READS
// registry atomics, so the "on" arm should be indistinguishable from "off";
// the trajectory record lets bench_diff flag any PR that couples the
// sampler to the solve path (the <=2% wall-clock claim in OBSERVABILITY.md
// — report-only, like the attribution record above). Rounds interleave
// off/on so scheduler drift hits both arms equally.

void RunSamplerOverhead(const bench::BenchOptions& opts, ExperimentLog& log) {
  std::cout << "\nsampler overhead (full solve, metrics attached):\n";
  TablePrinter t({"m x n", "off (ms)", "on (ms)", "on/off"});
  const std::size_t rounds = opts.quick ? 9 : 25;
  for (std::size_t n : {96u, 160u}) {
    if (opts.quick && n > 96u) continue;
    Rng rng(13);
    const auto p = datasets::MakeLargeDiagonal(n, n, rng);
    const auto solve_ms = [&](bool sampler_on) {
      obs::MetricsRegistry metrics;
      SeaOptions o;
      o.epsilon = 1e-8;
      o.metrics = &metrics;
      obs::MetricsSampler sampler(&metrics);  // default 250 ms cadence
      if (sampler_on) sampler.Start();
      Stopwatch sw;
      const auto res = SolveDiagonal(p, o);
      const double ms = sw.Seconds() * 1e3;
      benchmark::DoNotOptimize(&res);
      sampler.Stop();
      return ms;
    };
    // Warm-ups fault pages and settle the allocator before timing.
    (void)solve_ms(false);
    (void)solve_ms(true);
    double off = std::numeric_limits<double>::infinity();
    double on = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < rounds; ++r) {
      off = std::min(off, solve_ms(false));
      on = std::min(on, solve_ms(true));
    }
    const double ratio = off > 0.0 ? on / off : 0.0;
    const std::string dim = std::to_string(n) + " x " + std::to_string(n);
    t.AddRow({dim, TablePrinter::Num(off, 3), TablePrinter::Num(on, 3),
              TablePrinter::Num(ratio, 4)});
    const std::string ds = "n=" + std::to_string(n) + ",dense";
    log.Add("sampler_overhead", ds, "solve_off_ms", off);
    log.Add("sampler_overhead", ds, "solve_on_ms", on);
    log.Add("sampler_overhead", ds, "overhead_ratio", ratio, std::nullopt,
            "on/off, min over interleaved rounds; sampler reads registry "
            "atomics from its own thread at the default 250 ms cadence");
  }
  t.Print(std::cout);
}

// ---------------------------------------------------------------------------
// Part 2: google-benchmark suite (opt-in via --benchmark* flags).

void BM_MarketSolveHeapsort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<Arc> arcs;
  BreakpointWorkspace ws;
  for (auto _ : state) {
    state.PauseTiming();
    FillArcs(arcs, n, rng);
    ws.Assign(arcs);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        SolveMarket(ws, 100.0, 0.0, SortPolicy::kHeapsort));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MarketSolveHeapsort)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_MarketSolveInsertion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<Arc> arcs;
  BreakpointWorkspace ws;
  for (auto _ : state) {
    state.PauseTiming();
    FillArcs(arcs, n, rng);
    ws.Assign(arcs);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        SolveMarket(ws, 100.0, 0.0, SortPolicy::kInsertion));
  }
}
BENCHMARK(BM_MarketSolveInsertion)->DenseRange(16, 128, 28);

void BM_RowSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  DenseMatrix centers(n, n), weights(n, n);
  for (double& v : centers.Flat()) v = rng.Uniform(0.1, 100.0);
  for (double& v : weights.Flat()) v = rng.Uniform(0.01, 1.0);
  Vector mu(n, 0.0), mult(n);
  Vector s0 = centers.RowSums();
  MarketSide side;
  side.mode = TotalsMode::kFixed;
  side.t0 = s0;
  SweepOptions opts;
  for (auto _ : state) {
    EquilibrateSide(centers, weights, mu, side, mult, nullptr, opts);
    benchmark::DoNotOptimize(mult.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RowSweep)->Arg(128)->Arg(512)->Arg(1024);

void BM_DenseGemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  DenseMatrix a(n, n);
  for (double& v : a.Flat()) v = rng.Uniform(-1.0, 1.0);
  Vector x = rng.UniformVector(n, -1.0, 1.0), y(n);
  for (auto _ : state) {
    Gemv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) *
                          static_cast<int64_t>(n) * 8);
}
BENCHMARK(BM_DenseGemv)->Arg(512)->Arg(2304)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  // Split the command line: --benchmark* flags go to google-benchmark, the
  // rest to the shared bench harness (which rejects flags it doesn't know).
  std::vector<char*> bench_args{argv[0]};
  std::vector<char*> gbench_args{argv[0]};
  bool run_gbench = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      gbench_args.push_back(argv[i]);
      run_gbench = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());
  const auto opts = sea::bench::ParseArgs(bench_argc, bench_args.data());

  sea::bench::PrintHeader(
      "micro_kernels: kernel-backend comparison (scalar vs simd)",
      "full market pipeline (arc build + clearing solve + writeback), "
      "single thread, median-free mean over fixed reps");
  sea::ExperimentLog log;
  RunBackendComparison(opts, log);
  RunAttributionOverhead(opts, log);
  RunSamplerOverhead(opts, log);
  sea::bench::Finish(log, opts, "micro_kernels");

  if (run_gbench) {
    int gbench_argc = static_cast<int>(gbench_args.size());
    benchmark::Initialize(&gbench_argc, gbench_args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
