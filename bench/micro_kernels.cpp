// google-benchmark microbenchmarks for the library's hot kernels: the exact
// equilibration market solver (both sort paths), full row/column sweeps,
// and the dense matvec that dominates the general algorithms' projection
// step. These are the quantities behind the paper's per-iteration cost model
// N = T n^2 (9 + log n).
#include <benchmark/benchmark.h>

#include "equilibration/breakpoint_solver.hpp"
#include "equilibration/equilibrator.hpp"
#include "linalg/kernels.hpp"
#include "support/rng.hpp"

namespace {

using namespace sea;

void FillArcs(BreakpointWorkspace& ws, std::size_t n, Rng& rng) {
  ws.arcs().resize(n);
  for (auto& a : ws.arcs())
    a = {rng.Uniform(-100.0, 100.0), rng.Uniform(0.01, 5.0)};
}

void BM_MarketSolveHeapsort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  BreakpointWorkspace ws;
  for (auto _ : state) {
    state.PauseTiming();
    FillArcs(ws, n, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        SolveMarket(ws, 100.0, 0.0, SortPolicy::kHeapsort));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MarketSolveHeapsort)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_MarketSolveInsertion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  BreakpointWorkspace ws;
  for (auto _ : state) {
    state.PauseTiming();
    FillArcs(ws, n, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        SolveMarket(ws, 100.0, 0.0, SortPolicy::kInsertion));
  }
}
BENCHMARK(BM_MarketSolveInsertion)->DenseRange(16, 128, 28);

void BM_RowSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  DenseMatrix centers(n, n), weights(n, n);
  for (double& v : centers.Flat()) v = rng.Uniform(0.1, 100.0);
  for (double& v : weights.Flat()) v = rng.Uniform(0.01, 1.0);
  Vector mu(n, 0.0), mult(n);
  Vector s0 = centers.RowSums();
  MarketSide side;
  side.mode = TotalsMode::kFixed;
  side.t0 = s0;
  SweepOptions opts;
  for (auto _ : state) {
    EquilibrateSide(centers, weights, mu, side, mult, nullptr, opts);
    benchmark::DoNotOptimize(mult.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RowSweep)->Arg(128)->Arg(512)->Arg(1024);

void BM_DenseGemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  DenseMatrix a(n, n);
  for (double& v : a.Flat()) v = rng.Uniform(-1.0, 1.0);
  Vector x = rng.UniformVector(n, -1.0, 1.0), y(n);
  for (auto _ : state) {
    Gemv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) *
                          static_cast<int64_t>(n) * 8);
}
BENCHMARK(BM_DenseGemv)->Arg(512)->Arg(2304)->Arg(4096);

}  // namespace
