// Ablation studies for SEA's design choices (DESIGN.md Section 8):
//
//   1. sort policy    — straight insertion vs heapsort per market length,
//                       the paper's own implementation switch (HEAPSORT for
//                       long arrays, STRAIGHT INSERTION for 10..120).
//   2. warm start     — chaining inner diagonal solves from the previous
//                       outer iteration's multipliers vs cold mu = 0.
//   3. check spacing  — convergence verification every k-th iteration (the
//                       paper checks every other iteration for the elastic
//                       runs to shrink the serial phase).
//   4. inner tolerance— projection subproblem accuracy vs outer iterations.
//   5. sparse storage — pattern-aware solve vs dense solve with stiff
//                       zero-cell weights at I/O-table densities.
#include <iostream>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "core/general_sea.hpp"
#include "datasets/general_dense.hpp"
#include "datasets/io_tables.hpp"
#include "datasets/large_diagonal.hpp"
#include "datasets/weights.hpp"
#include "io/table_printer.hpp"
#include "sparse/sparse_sea.hpp"
#include "spe/spe_generator.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace sea;

void AblateSortPolicy(bool quick) {
  std::cout << "\n--- Ablation 1: sort policy (per-market CPU by length) ---\n";
  TablePrinter t({"market length", "insertion (us)", "heapsort (us)",
                  "winner"});
  Rng rng(1);
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 1024u, 4096u}) {
    if (quick && n > 256) break;
    BreakpointWorkspace ws;
    std::vector<Arc> arcs(n);
    const std::size_t reps = 2000000 / (n + 64) + 1;
    double us[2] = {0.0, 0.0};
    int w = 0;
    for (SortPolicy pol : {SortPolicy::kInsertion, SortPolicy::kHeapsort}) {
      Rng local(42);
      Stopwatch sw;
      for (std::size_t r = 0; r < reps; ++r) {
        for (auto& a : arcs)
          a = {local.Uniform(-100.0, 100.0), local.Uniform(0.01, 5.0)};
        ws.Assign(arcs);
        SolveMarket(ws, 50.0, 0.0, pol);
      }
      us[w++] = sw.Seconds() * 1e6 / double(reps);
    }
    t.AddRow({TablePrinter::Int(long(n)), TablePrinter::Num(us[0], 2),
              TablePrinter::Num(us[1], 2),
              us[0] < us[1] ? "insertion" : "heapsort"});
  }
  t.Print(std::cout);
  std::cout << "(the library's kAuto threshold is "
            << kInsertionThreshold << ")\n";
}

void AblateWarmStart(bool quick) {
  std::cout << "\n--- Ablation 2: warm-starting inner solves (general SEA) "
               "---\n";
  const std::size_t size = quick ? 10 : 30;
  Rng rng(2);
  const auto p = datasets::MakeGeneralDense(size, size, rng);

  TablePrinter t({"inner start", "outer iters", "total inner iters",
                  "CPU (s)"});
  for (bool warm : {true, false}) {
    // Emulate cold starts by solving with a fresh solver each outer step:
    // run the library path (warm) vs a manual cold loop.
    GeneralSeaOptions o;
    o.outer_epsilon = 1e-5;
    o.inner.criterion = StopCriterion::kResidualRel;
    if (warm) {
      const auto run = SolveGeneral(p, o);
      t.AddRow({"warm (library)",
                TablePrinter::Int(long(run.result.outer_iterations)),
                TablePrinter::Int(long(run.result.total_inner_iterations)),
                TablePrinter::Num(run.result.cpu_seconds)});
    } else {
      // Manual projection loop with cold inner starts.
      Vector x, s, d;
      FeasibleStart(p, x, s, d);
      SeaOptions inner = o.inner;
      inner.epsilon = o.outer_epsilon / 10.0;
      std::size_t outer = 0, inner_total = 0;
      const double cpu0 = ProcessCpuSeconds();
      for (std::size_t it = 1; it <= 500; ++it) {
        const auto diag = p.Diagonalize(x, s, d);
        const auto run = SolveDiagonal(diag, inner);  // cold mu = 0
        inner_total += run.result.iterations;
        double change = 0.0;
        const auto xf = run.solution.x.Flat();
        for (std::size_t k = 0; k < xf.size(); ++k)
          change = std::max(change, std::abs(xf[k] - x[k]));
        x.assign(xf.begin(), xf.end());
        s = run.solution.s;
        d = run.solution.d;
        outer = it;
        if (change <= o.outer_epsilon) break;
      }
      t.AddRow({"cold (mu = 0)", TablePrinter::Int(long(outer)),
                TablePrinter::Int(long(inner_total)),
                TablePrinter::Num(ProcessCpuSeconds() - cpu0)});
    }
  }
  t.Print(std::cout);
}

void AblateCheckSpacing(bool quick) {
  std::cout << "\n--- Ablation 3: convergence-check spacing (elastic SPE) "
               "---\n";
  const std::size_t size = quick ? 40 : 150;
  Rng rng(3);
  const auto diag = spe::Generate(size, size, rng).ToDiagonalProblem();

  TablePrinter t({"check every", "iterations", "serial work fraction",
                  "CPU (s)"});
  for (std::size_t k : {1u, 2u, 5u, 10u}) {
    SeaOptions o;
    o.epsilon = 0.01;
    o.criterion = StopCriterion::kXChange;
    o.check_every = k;
    o.record_trace = true;
    const auto run = SolveDiagonal(diag, o);
    const double frac =
        run.result.trace.SerialWork() / run.result.trace.TotalWork();
    t.AddRow({TablePrinter::Int(long(k)),
              TablePrinter::Int(long(run.result.iterations)),
              TablePrinter::Num(100.0 * frac, 2) + "%",
              TablePrinter::Num(run.result.cpu_seconds)});
  }
  t.Print(std::cout);
}

void AblateInnerTolerance(bool quick) {
  std::cout << "\n--- Ablation 4: projection inner tolerance (general SEA) "
               "---\n";
  const std::size_t size = quick ? 10 : 30;
  Rng rng(4);
  const auto p = datasets::MakeGeneralDense(size, size, rng);

  TablePrinter t({"inner epsilon", "outer iters", "total inner iters",
                  "CPU (s)", "objective"});
  for (double eps : {1e-2, 1e-4, 1e-6, 1e-8}) {
    GeneralSeaOptions o;
    o.outer_epsilon = 1e-5;
    o.inner_epsilon = eps;
    o.inner.criterion = StopCriterion::kResidualRel;
    const auto run = SolveGeneral(p, o);
    t.AddRow({TablePrinter::Num(eps, 8),
              TablePrinter::Int(long(run.result.outer_iterations)),
              TablePrinter::Int(long(run.result.total_inner_iterations)),
              TablePrinter::Num(run.result.cpu_seconds),
              TablePrinter::Num(run.result.objective, 2)});
  }
  t.Print(std::cout);
}

void AblateSparseStorage(bool quick) {
  std::cout << "\n--- Ablation 5: sparse pattern vs dense stiff-zero solve "
               "---\n";
  TablePrinter t({"density", "dense CPU (s)", "sparse CPU (s)",
                  "dense/sparse", "nnz"});
  for (double density : {0.16, 0.52, 1.0}) {
    const std::size_t n = quick ? 100 : 485;
    Rng rng(5);
    DenseMatrix x0(n, n, 0.0);
    for (double& v : x0.Flat())
      if (rng.Bernoulli(density)) v = rng.Uniform(0.1, 10000.0);
    for (std::size_t i = 0; i < n; ++i)
      if (x0(i, i) == 0.0) x0(i, i) = 1.0;  // keep the pattern connected
    Vector s0 = x0.RowSums(), d0 = x0.ColSums();

    SeaOptions o;
    o.epsilon = 0.01;
    o.criterion = StopCriterion::kXChange;
    o.sort_policy = SortPolicy::kHeapsort;

    const auto dense_p = DiagonalProblem::MakeFixed(
        x0, datasets::ChiSquareWeights(x0), s0, d0);
    const auto dense_run = SolveDiagonal(dense_p, o);

    const auto spat = SparseMatrix::FromDense(x0);
    DenseMatrix gamma(n, n, 0.0);
    for (std::size_t k = 0; k < x0.size(); ++k)
      if (x0.Flat()[k] > 0.0) gamma.Flat()[k] = 1.0 / x0.Flat()[k];
    const auto sparse_p = SparseDiagonalProblem::MakeFixed(
        spat, SparseMatrix::FromDense(gamma), s0, d0);
    const auto sparse_run = SolveSparse(sparse_p, o);

    t.AddRow({TablePrinter::Num(density, 2),
              TablePrinter::Num(dense_run.result.cpu_seconds),
              TablePrinter::Num(sparse_run.result.cpu_seconds),
              TablePrinter::Num(dense_run.result.cpu_seconds /
                                    std::max(1e-9,
                                             sparse_run.result.cpu_seconds),
                                2),
              TablePrinter::Int(long(spat.nnz()))});
  }
  t.Print(std::cout);
  std::cout << "(note: the two solves answer slightly different questions — "
               "stiff zero weights vs excluded structural zeros)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = sea::bench::ParseArgs(argc, argv);
  sea::bench::PrintHeader("Ablations: SEA design choices",
                          "sort policy, warm starts, check spacing, inner "
                          "tolerance, sparse storage");
  AblateSortPolicy(opts.quick);
  AblateWarmStart(opts.quick);
  AblateCheckSpacing(opts.quick);
  AblateInnerTolerance(opts.quick);
  AblateSparseStorage(opts.quick);
  std::cout.flush();
  return 0;
}
