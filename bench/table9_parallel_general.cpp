// Regenerates paper Table 9 and Figure 7: parallel speedup and efficiency of
// SEA versus RC on the general 10000x10000 dense-G problem (X0 = 100x100).
//
// SUBSTITUTION (DESIGN.md Section 5): speedups come from the deterministic
// schedule simulator over each algorithm's recorded execution trace. The
// structural difference the paper highlights is visible in the traces: RC
// verifies projection convergence serially inside *both* the row and the
// column phase of every outer iteration, while SEA verifies once per outer
// iteration — so RC carries more serial work and scales worse (Figure 7).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "baselines/rc_algorithm.hpp"
#include "core/general_sea.hpp"
#include "datasets/general_dense.hpp"
#include "io/table_printer.hpp"
#include "parallel/speedup_model.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 9 / Figure 7: parallel SEA vs RC, general 10000 x 10000 G",
      "speedups from the operation-count schedule simulator (see DESIGN.md "
      "Section 5)");

  const std::size_t x_size = opts.quick ? 20 : 100;
  Rng rng(0x7AB1E009 + x_size);
  const auto problem = datasets::MakeGeneralDense(x_size, x_size, rng);

  GeneralSeaOptions sea_opts;
  sea_opts.outer_epsilon = 1e-3;
  sea_opts.inner.criterion = StopCriterion::kResidualRel;
  sea_opts.inner.sort_policy = SortPolicy::kInsertion;
  sea_opts.inner.record_trace = true;
  const auto sea_run = SolveGeneral(problem, sea_opts);

  RcOptions rc_opts;
  rc_opts.epsilon = 1e-3;
  rc_opts.sort_policy = SortPolicy::kInsertion;
  rc_opts.record_trace = true;
  const auto rc_run = SolveRc(problem, rc_opts);

  std::cout << "SEA: outer iterations = " << sea_run.result.outer_iterations
            << ", inner iterations = "
            << sea_run.result.total_inner_iterations
            << (sea_run.result.converged() ? "" : " (NOT CONVERGED)") << '\n'
            << "RC:  outer iterations = " << rc_run.result.outer_iterations
            << ", projection iterations per phase = [";
  for (std::size_t it : rc_run.result.projection_iterations_per_phase)
    std::cout << ' ' << it;
  std::cout << " ]" << (rc_run.result.converged ? "" : " (NOT CONVERGED)")
            << "\n\n";

  const struct {
    const char* algo;
    const ExecutionTrace& trace;
    double paper_s2, paper_e2, paper_s4, paper_e4;
  } algos[] = {
      {"SEA", sea_run.result.trace, 1.82, 90.77, 2.62, 65.49},
      {"RC", rc_run.result.trace, 1.75, 87.7, 2.24, 55.9},
  };

  // Trace structure: the paper attributes RC's weaker scaling to its extra
  // serial synchronization points (projection-method verification inside
  // both phases).
  std::cout << "Trace structure (the paper's structural argument):\n";
  for (const auto& a : algos)
    std::cout << "  " << a.algo << ": " << a.trace.SerialPhaseCount()
              << " serial synchronization phases, serial work fraction "
              << TablePrinter::Num(
                     100.0 * a.trace.SerialWork() / a.trace.TotalWork(), 3)
              << "%\n";

  // Machine-model calibration: two constants — V, the supervisor cost per
  // serial synchronization phase, and B, the memory-bandwidth parallelism
  // cap on the dense-G linearization phases — are fit by least squares to
  // the paper's four measured speedups. The fit residual reports how much
  // of the paper's Table 9 this two-parameter IBM 3090-600E model explains.
  auto simulate = [](const ExecutionTrace& tr, std::size_t p, double v,
                     double b) {
    ScheduleOptions so;
    so.serial_phase_overhead = v;
    so.bandwidth_cap = b;
    const double t1 = SimulateSchedule(tr, 1, so).makespan;
    const double tp = SimulateSchedule(tr, p, so).makespan;
    return t1 / tp;
  };

  const double work_scale = algos[0].trace.TotalWork();
  double best_v = 0.0, best_b = 6.0, best_err = 1e100;
  for (double b = 1.5; b <= 6.0; b += 0.05) {
    for (double vf = 0.0; vf <= 0.2001; vf += 0.002) {
      const double v = vf * work_scale;
      double err = 0.0;
      for (const auto& a : algos) {
        const double s2 = simulate(a.trace, 2, v, b);
        const double s4 = simulate(a.trace, 4, v, b);
        err += (s2 - a.paper_s2) * (s2 - a.paper_s2) +
               (s4 - a.paper_s4) * (s4 - a.paper_s4);
      }
      if (err < best_err) {
        best_err = err;
        best_v = v;
        best_b = b;
      }
    }
  }
  std::cout << "\ncalibrated machine model: V = "
            << TablePrinter::Num(best_v / work_scale, 3)
            << " x (SEA total work) per synchronization, B = "
            << TablePrinter::Num(best_b, 2)
            << " (bandwidth cap); rms residual = "
            << TablePrinter::Num(std::sqrt(best_err / 4.0), 3) << "\n\n";

  TablePrinter table({"algorithm", "N", "S_N (model)", "S_N (paper)",
                      "E_N (model)", "E_N (paper)"});
  ExperimentLog log;

  std::cout << "Figure 7 series (speedup vs processors):\n";
  for (const auto& a : algos) {
    std::cout << "  " << a.algo << ": ";
    for (std::size_t p : {1u, 2u, 4u, 6u})
      std::cout << "S(" << p << ")="
                << TablePrinter::Num(simulate(a.trace, p, best_v, best_b), 2)
                << ' ';
    std::cout << '\n';
    for (std::size_t p : {2u, 4u}) {
      const double s = simulate(a.trace, p, best_v, best_b);
      const double paper_s = p == 2 ? a.paper_s2 : a.paper_s4;
      const double paper_e = p == 2 ? a.paper_e2 : a.paper_e4;
      table.AddRow({a.algo, TablePrinter::Int(long(p)),
                    TablePrinter::Num(s, 2), TablePrinter::Num(paper_s, 2),
                    TablePrinter::Num(100.0 * s / double(p), 2) + "%",
                    TablePrinter::Num(paper_e, 2) + "%"});
      log.Add("table9", a.algo, "speedup_p" + std::to_string(p), s, paper_s,
              "calibrated schedule model");
    }
  }

  std::cout << '\n';
  table.Print(std::cout);
  bench::Finish(log, opts, "table9");
  return 0;
}
