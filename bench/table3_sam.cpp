// Regenerates paper Table 3: SEA on social accounting matrix estimation
// problems (synthetic stand-ins), where the row and column totals must
// balance and are estimated along with the transactions.
//
// Protocol (Section 4.1.2): STONE/TURK/SRI tiny sparse SAMs, USDA82E 133
// accounts fully dense, S500/S750/S1000 large random SAMs; eps = .001
// (relative row residual).
#include <iostream>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "datasets/sam_datasets.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 3: SEA on social accounting matrix datasets (synthetic)",
      "balanced-base SAMs with perturbed transactions; totals estimated "
      "(SAM regime), eps = .001 (relative)");

  const double paper_cpu[] = {0.0024, 0.0210, 0.009, 5.7598,
                              28.99,  52.60,  95.08};

  auto specs = datasets::Table3Specs();
  if (opts.quick) {
    // Keep the tiny classics; shrink the large random SAMs.
    specs[3].accounts = 40;
    specs[4].accounts = 60;
    specs[5].accounts = 80;
    specs[6].accounts = 100;
  }

  TablePrinter table({"dataset", "# accounts", "# transactions",
                      "CPU time (s)", "paper CPU (s)", "iters",
                      "max rel residual"});
  ExperimentLog log;

  for (std::size_t k = 0; k < specs.size(); ++k) {
    const auto& spec = specs[k];
    const auto problem = datasets::MakeSam(spec);

    SeaOptions sea_opts;
    sea_opts.epsilon = 1e-3;
    sea_opts.criterion = StopCriterion::kResidualRel;
    sea_opts.sort_policy = spec.accounts <= 128 ? SortPolicy::kInsertion
                                                : SortPolicy::kHeapsort;
    const auto run = SolveDiagonal(problem, sea_opts);

    std::size_t nnz = 0;
    for (double v : problem.x0().Flat())
      if (v > 0.0) ++nnz;

    const auto rep = CheckFeasibility(problem, run.solution);
    table.AddRow({spec.name, TablePrinter::Int(long(spec.accounts)),
                  TablePrinter::Int(long(nnz)),
                  TablePrinter::Num(run.result.cpu_seconds),
                  TablePrinter::Num(paper_cpu[k]),
                  TablePrinter::Int(long(run.result.iterations)),
                  TablePrinter::Num(rep.MaxRel(), 6)});
    log.Add("table3", spec.name, "cpu_seconds", run.result.cpu_seconds,
            paper_cpu[k], run.result.converged() ? "converged" : "NOT CONVERGED");
    log.Add("table3", spec.name, "iterations",
            static_cast<double>(run.result.iterations));
    log.Add("table3", spec.name, "final_residual", run.result.final_residual);
  }

  table.Print(std::cout);
  bench::Finish(log, opts, "table3");
  return 0;
}
