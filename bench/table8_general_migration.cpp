// Regenerates paper Table 8: SEA on general constrained matrix problems
// built from US migration tables with 100% dense G (dimension 2304x2304).
//
// Protocol (Section 5.1.2): 48x48 synthetic migration tables (see
// datasets/migration.hpp for the substitution note), fixed totals grown by
// 0-10% factors; protocol 'b' additionally perturbs the entries; dense
// strictly-diagonally-dominant G generated as in Section 5.1.1;
// eps' = .001.
#include <iostream>

#include "bench_common.hpp"
#include "core/general_sea.hpp"
#include "datasets/migration.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 8: SEA on general migration problems, dense G = 2304 x 2304",
      "48x48 gravity-model tables, fixed grown totals, dense dominant G, "
      "eps' = .001");

  const double paper_cpu[] = {23.16, 22.99, 23.57, 23.28, 28.73, 23.49};

  auto specs = datasets::Table8Specs();
  if (opts.quick) specs.resize(2);

  TablePrinter table({"dataset", "CPU time (s)", "paper CPU (s)",
                      "outer iters", "inner iters", "max rel residual"});
  ExperimentLog log;

  for (std::size_t k = 0; k < specs.size(); ++k) {
    const auto problem = datasets::MakeGeneralMigration(specs[k]);

    GeneralSeaOptions sea_opts;
    sea_opts.outer_epsilon = 1e-3;
    sea_opts.inner.criterion = StopCriterion::kResidualRel;
    sea_opts.inner.sort_policy = SortPolicy::kInsertion;  // 48-element rows
    const auto run = SolveGeneral(problem, sea_opts);

    const auto rep =
        CheckFeasibility(run.solution.x, problem.s0(), problem.d0());
    table.AddRow({specs[k].name, TablePrinter::Num(run.result.cpu_seconds),
                  TablePrinter::Num(paper_cpu[k]),
                  TablePrinter::Int(long(run.result.outer_iterations)),
                  TablePrinter::Int(long(run.result.total_inner_iterations)),
                  TablePrinter::Num(rep.MaxRel(), 6)});
    log.Add("table8", specs[k].name, "cpu_seconds", run.result.cpu_seconds,
            paper_cpu[k],
            run.result.converged() ? "converged" : "NOT CONVERGED");
    log.Add("table8", specs[k].name, "outer_iterations",
            static_cast<double>(run.result.outer_iterations));
    log.Add("table8", specs[k].name, "total_inner_iterations",
            static_cast<double>(run.result.total_inner_iterations));
  }

  table.Print(std::cout);
  bench::Finish(log, opts, "table8");
  return 0;
}
