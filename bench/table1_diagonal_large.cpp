// Regenerates paper Table 1: SEA on large-scale diagonal quadratic
// constrained matrix problems with fixed row and column totals.
//
// Protocol (Section 4.1.1): m = n in {750, 1000, 2000, 3000}; 100% dense
// X0 uniform [.1, 10000]; gamma = 1/x0; s0 = 2*rowsums, d0 = 2*colsums;
// HEAPSORT exact equilibration; epsilon = .01 on |x^t - x^{t-1}|.
#include <iostream>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "datasets/large_diagonal.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 1: SEA on large-scale diagonal problems (fixed totals)",
      "100% dense, x0 ~ U[.1, 10000], gamma = 1/x0, totals = 2x base sums, "
      "eps = .01 (x-change)");

  struct Row {
    std::size_t n;
    double paper_cpu;
  };
  const std::vector<Row> rows = opts.quick
                                    ? std::vector<Row>{{100, 0}, {200, 0}}
                                    : std::vector<Row>{{750, 204.7476},
                                                       {1000, 483.2065},
                                                       {2000, 3823.2139},
                                                       {3000, 13561.5703}};

  TablePrinter table({"m x n", "# nonzero variables", "CPU time (s)",
                      "paper CPU (s)", "iters", "max rel residual"});
  ExperimentLog log;

  for (const auto& row : rows) {
    Rng rng(0x7AB1E001 + row.n);
    const auto problem = datasets::MakeLargeDiagonal(row.n, row.n, rng);

    SeaOptions sea_opts;
    sea_opts.epsilon = 0.01;
    sea_opts.criterion = StopCriterion::kXChange;
    sea_opts.sort_policy = SortPolicy::kHeapsort;
    const std::string dims =
        std::to_string(row.n) + " x " + std::to_string(row.n);
    bench::MaybeAttachProgress(opts, sea_opts, "table1 " + dims);
    const auto run = SolveDiagonal(problem, sea_opts);

    const auto rep = CheckFeasibility(problem, run.solution);
    table.AddRow({dims, TablePrinter::Int(long(row.n) * long(row.n)),
                  TablePrinter::Num(run.result.cpu_seconds),
                  row.paper_cpu > 0 ? TablePrinter::Num(row.paper_cpu) : "-",
                  TablePrinter::Int(long(run.result.iterations)),
                  TablePrinter::Num(rep.MaxRel(), 6)});
    log.Add("table1", dims, "cpu_seconds", run.result.cpu_seconds,
            row.paper_cpu > 0 ? std::optional<double>(row.paper_cpu)
                              : std::nullopt,
            run.result.converged() ? "converged" : "NOT CONVERGED");
    // The same doubles the printed table is formatted from, so the JSON
    // record is bit-identical to the table row.
    log.Add("table1", dims, "iterations",
            static_cast<double>(run.result.iterations));
    log.Add("table1", dims, "final_residual", run.result.final_residual);
    log.Add("table1", dims, "max_rel_residual", rep.MaxRel());
  }

  table.Print(std::cout);
  bench::Finish(log, opts, "table1");
  return 0;
}
