// Regenerates paper Table 5: SEA on classical spatial price equilibrium
// problems (isomorphic to constrained matrix problems with unknown totals).
//
// Protocol (Section 4.1.2): separable linear supply price, demand price and
// transportation cost functions; sizes SP50x50 ... SP750x750; eps = .01.
#include <iostream>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "io/table_printer.hpp"
#include "spe/spe_generator.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 5: SEA on spatial price equilibrium problems",
      "linear separable supply/demand/transport functions, elastic regime, "
      "eps = .01, convergence checked every other iteration");

  struct Row {
    std::size_t size;
    double paper_cpu;
  };
  const std::vector<Row> rows =
      opts.quick ? std::vector<Row>{{25, 0}, {50, 1.3822}}
                 : std::vector<Row>{{50, 1.3822},
                                    {100, 11.2621},
                                    {250, 129.4597},
                                    {500, 540.7056},
                                    {750, 1589.0613}};

  TablePrinter table({"m x n", "# variables", "CPU time (s)", "paper CPU (s)",
                      "iters", "max equilibrium violation"});
  ExperimentLog log;

  for (const auto& row : rows) {
    Rng rng(0x5EA5 + row.size);
    const auto spe_problem = spe::Generate(row.size, row.size, rng);
    const auto diag = spe_problem.ToDiagonalProblem();

    SeaOptions sea_opts;
    sea_opts.epsilon = 0.01;
    sea_opts.criterion = StopCriterion::kXChange;
    sea_opts.check_every = 2;  // paper Section 4.2
    sea_opts.sort_policy = SortPolicy::kHeapsort;
    const auto run = SolveDiagonal(diag, sea_opts);

    const auto eq = spe::CheckEquilibrium(spe_problem, run.solution.x);
    const std::string name = "SP" + std::to_string(row.size) + " x " +
                             std::to_string(row.size);
    table.AddRow({name, TablePrinter::Int(long(row.size) * long(row.size)),
                  TablePrinter::Num(run.result.cpu_seconds),
                  row.paper_cpu > 0 ? TablePrinter::Num(row.paper_cpu) : "-",
                  TablePrinter::Int(long(run.result.iterations)),
                  TablePrinter::Num(eq.Max(), 6)});
    log.Add("table5", name, "cpu_seconds", run.result.cpu_seconds,
            row.paper_cpu > 0 ? std::optional<double>(row.paper_cpu)
                              : std::nullopt,
            run.result.converged() ? "converged" : "NOT CONVERGED");
    log.Add("table5", name, "iterations",
            static_cast<double>(run.result.iterations));
    log.Add("table5", name, "final_residual", run.result.final_residual);

    // Sort-reuse kernel: same solve with the persisted-order repair path.
    // Multipliers are bit-identical (total-order tie break), so the CPU
    // ratio and the comparison-count drop are the whole story.
    SeaOptions reuse_opts = sea_opts;
    reuse_opts.sort_policy = SortPolicy::kReuse;
    const auto reuse_run = SolveDiagonal(diag, reuse_opts);
    const double cmp_ratio =
        run.result.ops.comparisons > 0
            ? static_cast<double>(reuse_run.result.ops.comparisons) /
                  static_cast<double>(run.result.ops.comparisons)
            : 1.0;
    std::cout << "  " << name << " sort reuse: cpu "
              << TablePrinter::Num(reuse_run.result.cpu_seconds) << "s vs "
              << TablePrinter::Num(run.result.cpu_seconds)
              << "s heapsort, comparisons x"
              << TablePrinter::Num(cmp_ratio, 3) << ", "
              << reuse_run.result.order_reuses << " order reuses\n";
    log.Add("table5", name, "cpu_seconds_reuse",
            reuse_run.result.cpu_seconds, std::nullopt,
            "SortPolicy::kReuse kernel");
    log.Add("table5", name, "reuse_comparison_ratio", cmp_ratio, std::nullopt,
            "reuse/heapsort sort+sweep comparisons");
    log.Add("table5", name, "order_reuses",
            static_cast<double>(reuse_run.result.order_reuses));
  }

  table.Print(std::cout);
  bench::Finish(log, opts, "table5");
  return 0;
}
