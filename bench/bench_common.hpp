// Shared harness for the table/figure benches.
//
// Every bench binary accepts:
//   --quick        scaled-down sizes (CI smoke run; full paper sizes default)
//   --csv <path>   append paper-vs-measured records to a CSV
//   --json <path>  machine-readable results (default BENCH_<table>.json)
//   --progress     stream the iteration engine's residual trajectory
//
// Finish() always writes the JSON document (the repository's perf
// trajectory diffs it across PRs); --json only overrides the path. Schema:
//   {"schema":1,"bench":"table1","quick":false,"host_threads":N,
//    "records":[{"experiment":..,"dataset":..,"metric":..,"measured":..,
//                "paper":..|null,"note":..}, ...]}
// Measured values are rendered with round-trip precision, so the JSON
// carries exactly the doubles the printed table was formatted from.
#pragma once

#include <optional>
#include <string>

#include "core/options.hpp"
#include "io/experiment_record.hpp"

namespace sea::bench {

struct BenchOptions {
  bool quick = false;
  bool progress = false;
  std::string csv_path;
  std::string json_path;  // empty = BENCH_<table>.json in the working dir
};

BenchOptions ParseArgs(int argc, char** argv);

// Engine per-iteration callback that streams "tag: iter=... residual=..."
// lines to stderr (stdout carries the result tables). Wire into
// SeaOptions::progress when BenchOptions::progress is set.
IterationCallback ProgressPrinter(std::string tag);

// Convenience: attaches ProgressPrinter to opts when requested.
void MaybeAttachProgress(const BenchOptions& bench_opts, SeaOptions& opts,
                         const std::string& tag);

// Prints the bench banner: which paper table/figure this regenerates, the
// protocol line, and the host context.
void PrintHeader(const std::string& title, const std::string& protocol);

// Prints the log's paper-vs-measured table, appends the CSV if requested,
// and writes the machine-readable BENCH_<bench_name>.json.
void Finish(const ExperimentLog& log, const BenchOptions& opts,
            const std::string& bench_name);

// Renders the log as the BENCH json document (exposed for tests).
std::string BenchJson(const ExperimentLog& log, const BenchOptions& opts,
                      const std::string& bench_name);

}  // namespace sea::bench
