// Shared harness for the table/figure benches.
//
// Every bench binary accepts:
//   --quick              scaled-down sizes (CI smoke; full paper sizes default)
//   --csv <path>         append paper-vs-measured records to a CSV
//   --json <path>        machine-readable results (default BENCH_<table>.json)
//   --json-truncate      start the JSON file fresh instead of appending
//   --profile-json <path> export the run's phase spans as Chrome trace JSON
//   --progress           stream the iteration engine's residual trajectory
//
// Finish() always writes the JSON document (the repository's perf
// trajectory diffs it across PRs). The file is append-mode JSONL: each run
// adds ONE line holding a full JSON document, so successive runs of the
// same bench form a time series that tools/bench_diff can compare (it
// defaults to the last two lines). Pass --json-truncate to reset the file.
// Schema (version 2; append-only — docs/OBSERVABILITY.md):
//   {"schema":2,"bench":"table1","quick":false,"host_threads":N,
//    "git_sha":"..","build_type":"Release","timestamp":"2026-01-01T00:00:00Z",
//    "wall_seconds":..,"cpu_seconds":..,"peak_rss_bytes":..,
//    "records":[{"experiment":..,"dataset":..,"metric":..,"measured":..,
//                "paper":..|null,"note":..}, ...],
//    "phases":[{"phase":"equilibrate.rows","count":..,"total_seconds":..,
//               "self_seconds":..,"mean_seconds":..,"max_seconds":..}, ...]}
// Measured values are rendered with round-trip precision, so the JSON
// carries exactly the doubles the printed table was formatted from. The
// phase breakdown comes from an obs::Profiler attached for the whole bench
// run by ParseArgs (obs/profiler.hpp).
#pragma once

#include <optional>
#include <string>

#include "core/options.hpp"
#include "io/experiment_record.hpp"

namespace sea::bench {

struct BenchOptions {
  bool quick = false;
  bool progress = false;
  bool json_truncate = false;
  std::string csv_path;
  std::string json_path;     // empty = BENCH_<table>.json in the working dir
  std::string profile_json;  // empty = no Chrome trace export
};

BenchOptions ParseArgs(int argc, char** argv);

// Engine per-iteration callback that streams "tag: iter=... residual=..."
// lines to stderr (stdout carries the result tables). Wire into
// SeaOptions::progress when BenchOptions::progress is set.
IterationCallback ProgressPrinter(std::string tag);

// Convenience: attaches ProgressPrinter to opts when requested.
void MaybeAttachProgress(const BenchOptions& bench_opts, SeaOptions& opts,
                         const std::string& tag);

// Prints the bench banner: which paper table/figure this regenerates, the
// protocol line, and the host context.
void PrintHeader(const std::string& title, const std::string& protocol);

// Prints the log's paper-vs-measured table, appends the CSV if requested,
// appends one JSONL line to the machine-readable BENCH_<bench_name>.json,
// and exports the Chrome trace when --profile-json was given.
void Finish(const ExperimentLog& log, const BenchOptions& opts,
            const std::string& bench_name);

// Renders the log as the BENCH json document (exposed for tests). Includes
// the phase breakdown of the profiler attached by ParseArgs, when any.
std::string BenchJson(const ExperimentLog& log, const BenchOptions& opts,
                      const std::string& bench_name);

}  // namespace sea::bench
