// Shared harness for the table/figure benches.
//
// Every bench binary accepts:
//   --quick        scaled-down sizes (CI smoke run; full paper sizes default)
//   --csv <path>   append paper-vs-measured records to a CSV
#pragma once

#include <optional>
#include <string>

#include "io/experiment_record.hpp"

namespace sea::bench {

struct BenchOptions {
  bool quick = false;
  std::string csv_path;
};

BenchOptions ParseArgs(int argc, char** argv);

// Prints the bench banner: which paper table/figure this regenerates, the
// protocol line, and the host context.
void PrintHeader(const std::string& title, const std::string& protocol);

// Prints the log's paper-vs-measured table and appends the CSV if requested.
void Finish(const ExperimentLog& log, const BenchOptions& opts);

}  // namespace sea::bench
