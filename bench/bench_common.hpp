// Shared harness for the table/figure benches.
//
// Every bench binary accepts:
//   --quick        scaled-down sizes (CI smoke run; full paper sizes default)
//   --csv <path>   append paper-vs-measured records to a CSV
//   --progress     stream the iteration engine's residual trajectory
#pragma once

#include <optional>
#include <string>

#include "core/options.hpp"
#include "io/experiment_record.hpp"

namespace sea::bench {

struct BenchOptions {
  bool quick = false;
  bool progress = false;
  std::string csv_path;
};

BenchOptions ParseArgs(int argc, char** argv);

// Engine per-iteration callback that streams "tag: iter=... residual=..."
// lines to stderr (stdout carries the result tables). Wire into
// SeaOptions::progress when BenchOptions::progress is set.
IterationCallback ProgressPrinter(std::string tag);

// Convenience: attaches ProgressPrinter to opts when requested.
void MaybeAttachProgress(const BenchOptions& bench_opts, SeaOptions& opts,
                         const std::string& tag);

// Prints the bench banner: which paper table/figure this regenerates, the
// protocol line, and the host context.
void PrintHeader(const std::string& title, const std::string& protocol);

// Prints the log's paper-vs-measured table and appends the CSV if requested.
void Finish(const ExperimentLog& log, const BenchOptions& opts);

}  // namespace sea::bench
