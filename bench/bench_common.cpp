#include "bench_common.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "obs/json_export.hpp"
#include "support/check.hpp"

namespace sea::bench {

BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opts.progress = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      opts.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--progress] [--csv <path>] [--json <path>]\n";
      std::exit(2);
    }
  }
  return opts;
}

IterationCallback ProgressPrinter(std::string tag) {
  return [tag = std::move(tag)](const IterationEvent& ev) {
    std::cerr << tag << ": iter=" << ev.iteration << " residual=";
    if (ev.measure_defined) {
      std::cerr << ev.measure;
    } else {
      std::cerr << "n/a";
    }
    std::cerr << " row_s=" << ev.row_phase_seconds
              << " col_s=" << ev.col_phase_seconds
              << " check_s=" << ev.check_phase_seconds;
    if (ev.converged) std::cerr << " (converged)";
    std::cerr << '\n';
  };
}

void MaybeAttachProgress(const BenchOptions& bench_opts, SeaOptions& opts,
                         const std::string& tag) {
  if (bench_opts.progress) opts.progress = ProgressPrinter(tag);
}

void PrintHeader(const std::string& title, const std::string& protocol) {
  std::cout << "==========================================================\n"
            << title << '\n'
            << protocol << '\n'
            << "host threads: " << std::thread::hardware_concurrency()
            << "  (paper testbed: IBM 3090-600E, VS FORTRAN opt(3))\n"
            << "==========================================================\n";
}

std::string BenchJson(const ExperimentLog& log, const BenchOptions& opts,
                      const std::string& bench_name) {
  obs::JsonArr records;
  for (const auto& r : log.records()) {
    obs::JsonObj rec;
    rec.Field("experiment", r.experiment)
        .Field("dataset", r.dataset)
        .Field("metric", r.metric)
        .Field("measured", r.measured);
    if (r.paper.has_value()) {
      rec.Field("paper", *r.paper);
    } else {
      rec.Raw("paper", "null");
    }
    rec.Field("note", r.note);
    records.Raw(rec.Str());
  }
  return obs::JsonObj()
      .Field("schema", obs::kTelemetrySchemaVersion)
      .Field("bench", bench_name)
      .Field("quick", opts.quick)
      .Field("host_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .Raw("records", records.Str())
      .Str();
}

void Finish(const ExperimentLog& log, const BenchOptions& opts,
            const std::string& bench_name) {
  std::cout << '\n';
  log.Print(std::cout);
  if (!opts.csv_path.empty()) log.AppendCsv(opts.csv_path);

  const std::string json_path = opts.json_path.empty()
                                    ? "BENCH_" + bench_name + ".json"
                                    : opts.json_path;
  {
    std::ofstream f(json_path);
    SEA_CHECK_MSG(f.good(),
                  "cannot open bench json for writing: " + json_path);
    f << BenchJson(log, opts, bench_name) << '\n';
  }
  std::cout << "\nbench json: " << json_path << '\n';
  std::cout.flush();
}

}  // namespace sea::bench
