#include "bench_common.hpp"

#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "obs/json_export.hpp"
#include "obs/profiler.hpp"
#include "support/check.hpp"
#include "support/rusage.hpp"
#include "support/stopwatch.hpp"

#ifndef SEA_GIT_SHA
#define SEA_GIT_SHA "unknown"
#endif
#ifndef SEA_BUILD_TYPE
#define SEA_BUILD_TYPE "unknown"
#endif

namespace sea::bench {

namespace {

// Whole-run context created by ParseArgs: the wall/cpu baseline for the
// document's timing fields and the profiler whose spans become the
// document's phase breakdown (and the optional Chrome trace).
struct RunContext {
  Stopwatch wall;
  double cpu0 = ProcessCpuSeconds();
  obs::Profiler profiler;
};
RunContext* g_run = nullptr;

std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opts.progress = true;
    } else if (std::strcmp(argv[i], "--json-truncate") == 0) {
      opts.json_truncate = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      opts.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-json") == 0 && i + 1 < argc) {
      opts.profile_json = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--progress] [--csv <path>] [--json <path>]"
                << " [--json-truncate] [--profile-json <path>]\n";
      std::exit(2);
    }
  }
  // Attach the whole-run profiler so every solve the bench performs lands
  // in the document's phase breakdown. Leaked intentionally: worker threads
  // may still hold buffer pointers at exit, and the process is ending.
  if (g_run == nullptr) {
    g_run = new RunContext();
    g_run->profiler.Attach();
  }
  return opts;
}

IterationCallback ProgressPrinter(std::string tag) {
  return [tag = std::move(tag)](const IterationEvent& ev) {
    std::cerr << tag << ": iter=" << ev.iteration << " residual=";
    if (ev.measure_defined) {
      std::cerr << ev.measure;
    } else {
      std::cerr << "n/a";
    }
    std::cerr << " row_s=" << ev.row_phase_seconds
              << " col_s=" << ev.col_phase_seconds
              << " check_s=" << ev.check_phase_seconds;
    if (ev.converged) std::cerr << " (converged)";
    std::cerr << '\n';
  };
}

void MaybeAttachProgress(const BenchOptions& bench_opts, SeaOptions& opts,
                         const std::string& tag) {
  if (bench_opts.progress) opts.progress = ProgressPrinter(tag);
}

void PrintHeader(const std::string& title, const std::string& protocol) {
  std::cout << "==========================================================\n"
            << title << '\n'
            << protocol << '\n'
            << "host threads: " << std::thread::hardware_concurrency()
            << "  (paper testbed: IBM 3090-600E, VS FORTRAN opt(3))\n"
            << "==========================================================\n";
}

std::string BenchJson(const ExperimentLog& log, const BenchOptions& opts,
                      const std::string& bench_name) {
  obs::JsonArr records;
  for (const auto& r : log.records()) {
    obs::JsonObj rec;
    rec.Field("experiment", r.experiment)
        .Field("dataset", r.dataset)
        .Field("metric", r.metric)
        .Field("measured", r.measured);
    if (r.paper.has_value()) {
      rec.Field("paper", *r.paper);
    } else {
      rec.Raw("paper", "null");
    }
    rec.Field("note", r.note);
    records.Raw(rec.Str());
  }

  obs::JsonObj doc;
  doc.Field("schema", obs::kTelemetrySchemaVersion)
      .Field("bench", bench_name)
      .Field("quick", opts.quick)
      .Field("host_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .Field("git_sha", SEA_GIT_SHA)
      .Field("build_type", SEA_BUILD_TYPE)
      .Field("timestamp", IsoTimestampUtc());
  if (g_run != nullptr) {
    doc.Field("wall_seconds", g_run->wall.Seconds())
        .Field("cpu_seconds", ProcessCpuSeconds() - g_run->cpu0);
  }
  doc.Field("peak_rss_bytes", support::PeakRssBytes());
  doc.Raw("records", records.Str());

  if (g_run != nullptr) {
    const auto stats =
        obs::SummarizeSpans(obs::ToRawSpans(g_run->profiler.Events()));
    obs::JsonArr phases;
    for (const auto& st : stats) {
      phases.Raw(obs::JsonObj()
                     .Field("phase", st.name)
                     .Field("count", st.count)
                     .Field("total_seconds", st.total_seconds)
                     .Field("self_seconds", st.self_seconds)
                     .Field("mean_seconds", st.mean_seconds)
                     .Field("max_seconds", st.max_seconds)
                     .Str());
    }
    doc.Raw("phases", phases.Str());
  }
  return doc.Str();
}

void Finish(const ExperimentLog& log, const BenchOptions& opts,
            const std::string& bench_name) {
  std::cout << '\n';
  log.Print(std::cout);
  if (!opts.csv_path.empty()) log.AppendCsv(opts.csv_path);

  const std::string json_path = opts.json_path.empty()
                                    ? "BENCH_" + bench_name + ".json"
                                    : opts.json_path;
  {
    // Append-mode JSONL: one document line per run (see header comment).
    const auto mode = opts.json_truncate
                          ? std::ios::out | std::ios::trunc
                          : std::ios::out | std::ios::app;
    std::ofstream f(json_path, mode);
    SEA_CHECK_MSG(f.good(),
                  "cannot open bench json for writing: " + json_path);
    f << BenchJson(log, opts, bench_name) << '\n';
  }
  std::cout << "\nbench json: " << json_path << '\n';

  if (!opts.profile_json.empty() && g_run != nullptr) {
    const auto spans = obs::ToRawSpans(g_run->profiler.Events());
    if (obs::WriteChromeTrace(opts.profile_json, spans, bench_name)) {
      std::cout << "profile trace: " << opts.profile_json << " ("
                << spans.size() << " spans, "
                << g_run->profiler.thread_count() << " threads)\n";
    } else {
      std::cerr << "warning: could not write profile trace to "
                << opts.profile_json << '\n';
    }
  }
  std::cout.flush();
}

}  // namespace sea::bench
