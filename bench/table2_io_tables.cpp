// Regenerates paper Table 2: SEA on (synthetic stand-ins for) the United
// States input/output matrix datasets with known row and column totals.
//
// Protocol (Section 4.1.2): IOC72*/IOC77* are 205x205 at 52%/58% density,
// IO72* are 485x485 at 16%; protocols a (10% growth), b (100% growth),
// c (average of 10 additively perturbed instances). Chi-square weights.
#include <iostream>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "datasets/io_tables.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 2: SEA on input/output table datasets (synthetic stand-ins)",
      "205x205 @52/58% and 485x485 @16% density, growth protocols a/b/c, "
      "gamma = 1/x0, eps = .01");

  const double paper_cpu[] = {18.6697, 18.9923, 25.6035, 13.6168, 19.1338,
                              30.2037, 333.2691, 438.3519, 335.6124};

  auto specs = datasets::Table2Specs();
  if (opts.quick)
    for (auto& s : specs) s.size = s.size / 4;

  TablePrinter table({"dataset", "CPU time (s)", "paper CPU (s)", "iters",
                      "max rel residual"});
  ExperimentLog log;

  for (std::size_t k = 0; k < specs.size(); ++k) {
    const auto& spec = specs[k];
    double total_cpu = 0.0;
    double worst_resid = 0.0;
    std::size_t iters = 0;
    bool all_converged = true;
    for (std::size_t rep = 0; rep < spec.replications; ++rep) {
      const auto problem = datasets::MakeIoTable(spec, rep);
      SeaOptions sea_opts;
      sea_opts.epsilon = 0.01;
      sea_opts.criterion = StopCriterion::kXChange;
      sea_opts.sort_policy = SortPolicy::kHeapsort;
      bench::MaybeAttachProgress(opts, sea_opts,
                                 spec.name + " rep " + std::to_string(rep));
      const auto run = SolveDiagonal(problem, sea_opts);
      total_cpu += run.result.cpu_seconds;
      iters += run.result.iterations;
      all_converged = all_converged && run.result.converged();
      worst_resid = std::max(worst_resid,
                             CheckFeasibility(problem, run.solution).MaxRel());
    }
    // Protocol 'c' reports the average over its replications (as the paper
    // "consisted of the average of 10 examples").
    const double cpu = total_cpu / double(spec.replications);

    table.AddRow({spec.name, TablePrinter::Num(cpu),
                  TablePrinter::Num(paper_cpu[k]),
                  TablePrinter::Int(long(iters)),
                  TablePrinter::Num(worst_resid, 6)});
    log.Add("table2", spec.name, "cpu_seconds", cpu, paper_cpu[k],
            all_converged ? "converged" : "NOT CONVERGED");
    log.Add("table2", spec.name, "iterations", static_cast<double>(iters));
    log.Add("table2", spec.name, "max_rel_residual", worst_resid);
  }

  table.Print(std::cout);
  bench::Finish(log, opts, "table2");
  return 0;
}
