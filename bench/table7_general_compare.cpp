// Regenerates paper Table 7: computational comparison of SEA, RC and B-K on
// general quadratic constrained matrix problems with 100% dense G.
//
// Protocol (Section 5.1.1): X0 sizes 10..120 (G of dimension 100..14400);
// G symmetric strictly diagonally dominant with diagonal in [500, 800] and
// mixed-sign off-diagonals; linear coefficients uniform [100, 1000];
// epsilon' = .001 for all three algorithms; STRAIGHT INSERTION sort (arrays
// of 10..120 elements). B-K runs only up to G = 900x900, exactly as in the
// paper ("it became prohibitively expensive").
#include <iostream>

#include "bench_common.hpp"
#include "baselines/bachem_korte.hpp"
#include "baselines/rc_algorithm.hpp"
#include "core/general_sea.hpp"
#include "datasets/general_dense.hpp"
#include "io/table_printer.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 7: SEA vs RC vs B-K on general problems with 100% dense G",
      "G diag [500,800], strictly diagonally dominant, mixed-sign "
      "off-diagonals; linear terms U[100,1000]; eps' = .001");

  struct Row {
    std::size_t x_size;     // X0 is x_size x x_size
    std::size_t runs;       // paper averaged over several runs at small sizes
    double paper_sea, paper_rc, paper_bk;  // <0: not run in the paper
  };
  const std::vector<Row> rows =
      opts.quick ? std::vector<Row>{{10, 2, 0.0194, 0.1270, 0.7725},
                                    {20, 1, 0.5694, 1.8373, 78.9557}}
                 : std::vector<Row>{{10, 10, 0.0194, 0.1270, 0.7725},
                                    {20, 10, 0.5694, 1.8373, 78.9557},
                                    {30, 2, 2.9767, 9.5129, 1458.3820},
                                    {50, 1, 21.4607, 71.4807, -1},
                                    {70, 1, 81.2640, 428.8780, -1},
                                    {100, 1, 353.6885, 1305.5940, -1},
                                    {120, 1, 1254.731, 3000.5200, -1}};

  TablePrinter table({"dim of G", "# runs", "SEA (s)", "RC (s)", "B-K (s)",
                      "paper SEA", "paper RC", "paper B-K"});
  ExperimentLog log;

  for (const auto& row : rows) {
    const std::size_t mn = row.x_size * row.x_size;
    double sea_cpu = 0.0, rc_cpu = 0.0, bk_cpu = 0.0;
    bool run_bk = mn <= 900;
    bool all_ok = true;

    for (std::size_t r = 0; r < row.runs; ++r) {
      Rng rng(0x7AB1E007 + row.x_size * 131 + r);
      const auto problem =
          datasets::MakeGeneralDense(row.x_size, row.x_size, rng);

      GeneralSeaOptions sea_opts;
      sea_opts.outer_epsilon = 1e-3;
      sea_opts.inner.criterion = StopCriterion::kResidualRel;
      sea_opts.inner.sort_policy = SortPolicy::kInsertion;
      const auto sea_run = SolveGeneral(problem, sea_opts);
      sea_cpu += sea_run.result.cpu_seconds;
      all_ok = all_ok && sea_run.result.converged();

      RcOptions rc_opts;
      rc_opts.epsilon = 1e-3;
      rc_opts.sort_policy = SortPolicy::kInsertion;
      const auto rc_run = SolveRc(problem, rc_opts);
      rc_cpu += rc_run.result.cpu_seconds;
      all_ok = all_ok && rc_run.result.converged;

      if (run_bk) {
        BachemKorteOptions bk_opts;
        bk_opts.epsilon = 1e-3;
        const auto bk_run = SolveBachemKorte(problem, bk_opts);
        bk_cpu += bk_run.result.cpu_seconds;
        all_ok = all_ok && bk_run.result.converged;
      }
    }
    const double denom = static_cast<double>(row.runs);
    sea_cpu /= denom;
    rc_cpu /= denom;
    bk_cpu /= denom;

    const std::string dim =
        std::to_string(mn) + " x " + std::to_string(mn);
    table.AddRow(
        {dim, TablePrinter::Int(long(row.runs)), TablePrinter::Num(sea_cpu),
         TablePrinter::Num(rc_cpu), run_bk ? TablePrinter::Num(bk_cpu) : "-",
         TablePrinter::Num(row.paper_sea), TablePrinter::Num(row.paper_rc),
         row.paper_bk > 0 ? TablePrinter::Num(row.paper_bk) : "-"});
    log.Add("table7", dim, "sea_cpu_seconds", sea_cpu, row.paper_sea,
            all_ok ? "converged" : "NOT CONVERGED");
    log.Add("table7", dim, "rc_cpu_seconds", rc_cpu, row.paper_rc);
    if (run_bk && row.paper_bk > 0)
      log.Add("table7", dim, "bk_cpu_seconds", bk_cpu, row.paper_bk);
    log.Add("table7", dim, "rc_over_sea", rc_cpu / sea_cpu,
            row.paper_rc / row.paper_sea, "speed ratio");
    if (run_bk && row.paper_bk > 0)
      log.Add("table7", dim, "bk_over_sea", bk_cpu / sea_cpu,
              row.paper_bk / row.paper_sea, "speed ratio");
  }

  table.Print(std::cout);
  bench::Finish(log, opts, "table7");
  return 0;
}
