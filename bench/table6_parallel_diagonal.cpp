// Regenerates paper Table 6 and Figure 5: parallel speedup and efficiency of
// SEA on diagonal problems (examples IO72b, 1000x1000, SP500x500, SP750x750;
// N = 2, 4, 6 processors).
//
// SUBSTITUTION (DESIGN.md Section 5): the paper measured wall-clock speedups
// standalone on a 6-way IBM 3090-600E. This host may have fewer cores, so
// speedups here come from the deterministic schedule simulator driven by the
// solver's recorded execution trace: exact per-market operation counts for
// the parallel row/column phases plus the measured serial convergence-
// verification phases — precisely the cost structure the paper's own
// Section 4.2 analysis uses to explain its efficiency numbers. Real
// thread-pool wall times are printed alongside for the host's core count.
#include <iostream>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "datasets/io_tables.hpp"
#include "datasets/large_diagonal.hpp"
#include "io/table_printer.hpp"
#include "parallel/speedup_model.hpp"
#include "parallel/thread_pool.hpp"
#include "spe/spe_generator.hpp"
#include "support/rng.hpp"

namespace {

struct PaperRow {
  std::size_t n_procs;
  double speedup;
  double efficiency_pct;
};

struct Example {
  std::string name;
  sea::DiagonalProblem problem;
  sea::SeaOptions opts;
  std::vector<PaperRow> paper;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 6 / Figure 5: parallel speedup and efficiency, diagonal SEA",
      "speedups from the operation-count schedule simulator (see DESIGN.md "
      "Section 5); serial phase = convergence verification");

  const std::size_t io_size = opts.quick ? 60 : 485;
  const std::size_t diag_size = opts.quick ? 100 : 1000;
  const std::size_t sp_small = opts.quick ? 50 : 500;
  const std::size_t sp_large = opts.quick ? 80 : 750;

  std::vector<Example> examples;
  {
    datasets::IoTableSpec spec = datasets::Table2Specs()[7];  // IO72b
    spec.size = io_size;
    SeaOptions o;
    o.epsilon = 0.01;
    o.criterion = StopCriterion::kXChange;
    o.sort_policy = SortPolicy::kHeapsort;
    o.record_trace = true;
    examples.push_back({"IO72b", datasets::MakeIoTable(spec, 0), o,
                        {{2, 1.93, 96.5}, {4, 3.74, 93.5}, {6, 5.15, 85.8}}});
  }
  {
    Rng rng(0x7AB1E001 + diag_size);
    SeaOptions o;
    o.epsilon = 0.01;
    o.criterion = StopCriterion::kXChange;
    o.sort_policy = SortPolicy::kHeapsort;
    o.record_trace = true;
    examples.push_back(
        {std::to_string(diag_size) + " x " + std::to_string(diag_size),
         datasets::MakeLargeDiagonal(diag_size, diag_size, rng), o,
         {{2, 1.93, 96.5}, {4, 3.57, 89.4}, {6, 4.71, 78.5}}});
  }
  for (auto [size, rows] : {std::pair<std::size_t, std::vector<PaperRow>>{
                                sp_small,
                                {{2, 1.86, 92.85},
                                 {4, 3.52, 88.10},
                                 {6, 4.66, 77.75}}},
                            std::pair<std::size_t, std::vector<PaperRow>>{
                                sp_large,
                                {{2, 1.87, 93.79},
                                 {4, 3.19, 79.80},
                                 {6, 3.86, 64.34}}}}) {
    Rng rng(0x5EA5 + size);
    SeaOptions o;
    o.epsilon = 0.01;
    o.criterion = StopCriterion::kXChange;
    o.check_every = 2;
    o.sort_policy = SortPolicy::kHeapsort;
    o.record_trace = true;
    examples.push_back(
        {"SP" + std::to_string(size) + " x " + std::to_string(size),
         spe::Generate(size, size, rng).ToDiagonalProblem(), o, rows});
  }

  TablePrinter table({"example", "N", "S_N (simulated)", "S_N (paper)",
                      "E_N (simulated)", "E_N (paper)"});
  ExperimentLog log;

  std::cout << "\nFigure 5 series (speedup vs processors):\n";
  for (auto& ex : examples) {
    const auto run = SolveDiagonal(ex.problem, ex.opts);
    if (!run.result.converged())
      std::cout << "WARNING: " << ex.name << " did not converge\n";

    // Schedule-simulator speedups (paper processor counts).
    ScheduleOptions sched;
    const auto speedups =
        ComputeSpeedups(run.result.trace, {1, 2, 4, 6}, sched);

    std::cout << "  " << ex.name << ": ";
    for (const auto& s : speedups) {
      std::cout << "S(" << s.n_processors << ")="
                << TablePrinter::Num(s.speedup, 2) << " ";
    }
    std::cout << " [iterations: " << run.result.iterations << "]\n";

    for (const auto& paper_row : ex.paper) {
      const SpeedupRow* sim = nullptr;
      for (const auto& s : speedups)
        if (s.n_processors == paper_row.n_procs) sim = &s;
      if (sim == nullptr) continue;
      table.AddRow({ex.name, TablePrinter::Int(long(paper_row.n_procs)),
                    TablePrinter::Num(sim->speedup, 2),
                    TablePrinter::Num(paper_row.speedup, 2),
                    TablePrinter::Num(100.0 * sim->efficiency, 2) + "%",
                    TablePrinter::Num(paper_row.efficiency_pct, 2) + "%"});
      log.Add("table6", ex.name,
              "speedup_p" + std::to_string(paper_row.n_procs), sim->speedup,
              paper_row.speedup, "simulated schedule");
    }

    // Real thread-pool wall times at the host's concurrency, one run per
    // sweep schedule (docs/PARALLELISM.md). The schedules are bit-identical
    // in results, so the comparison isolates partitioning overhead/balance;
    // the cost-guided run also flips on sort reuse to show the combined
    // kernel+schedule effect.
    const std::size_t hw = std::thread::hardware_concurrency();
    if (hw >= 2) {
      struct SchedCase {
        const char* name;
        ScheduleKind kind;
        SortPolicy sort;
      };
      const SchedCase cases[] = {
          {"static", ScheduleKind::kStatic, SortPolicy::kHeapsort},
          {"dynamic", ScheduleKind::kDynamic, SortPolicy::kHeapsort},
          {"cost", ScheduleKind::kCostGuided, SortPolicy::kHeapsort},
          {"cost+reuse", ScheduleKind::kCostGuided, SortPolicy::kReuse},
      };
      std::cout << "    real wall time 1 thread: "
                << TablePrinter::Num(run.result.wall_seconds, 3) << "s; " << hw
                << " threads:";
      for (const auto& c : cases) {
        ThreadPool pool(hw);
        SeaOptions par = ex.opts;
        par.record_trace = false;
        par.pool = &pool;
        par.sweep_schedule = c.kind;
        par.sort_policy = c.sort;
        const auto par_run = SolveDiagonal(ex.problem, par);
        std::cout << ' ' << c.name << '='
                  << TablePrinter::Num(par_run.result.wall_seconds, 3) << 's';
        log.Add("table6", ex.name,
                std::string("wall_seconds_") + c.name + "_t" +
                    std::to_string(hw),
                par_run.result.wall_seconds, std::nullopt,
                "host-concurrency wall time");
        if (c.sort == SortPolicy::kReuse)
          log.Add("table6", ex.name, "order_reuses",
                  static_cast<double>(par_run.result.order_reuses),
                  std::nullopt, "markets solved by order repair");
      }
      std::cout << '\n';
    }
  }

  std::cout << '\n';
  table.Print(std::cout);
  bench::Finish(log, opts, "table6");
  return 0;
}
