// Regenerates paper Table 4: SEA on (synthetic stand-ins for) United States
// state-to-state migration tables with estimated row and column totals.
//
// Protocol (Section 4.1.2): 48x48 tables (Alaska, Hawaii, DC removed);
// three periods x protocols a (0-10% total growth), b (0-100%),
// c (perturbed entries); all weights equal to one; elastic regime.
#include <iostream>

#include "bench_common.hpp"
#include "core/diagonal_sea.hpp"
#include "datasets/migration.hpp"
#include "io/table_printer.hpp"
#include "problems/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace sea;
  const auto opts = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 4: SEA on US migration tables (synthetic gravity-model tables)",
      "48x48, elastic totals, unit weights, protocols a/b/c per period, "
      "eps = .001 (relative)");

  const double paper_cpu[] = {1.5935, 4.1367, 0.8932, 1.2915, 3.9714,
                              0.8203, 3.5168, 9.1067, 0.8041};

  const auto specs = datasets::Table4Specs();
  TablePrinter table({"dataset", "CPU time (s)", "paper CPU (s)", "iters",
                      "max rel residual"});
  ExperimentLog log;

  for (std::size_t k = 0; k < specs.size(); ++k) {
    const auto problem = datasets::MakeMigration(specs[k]);
    SeaOptions sea_opts;
    sea_opts.epsilon = 1e-3;
    sea_opts.criterion = StopCriterion::kResidualRel;
    sea_opts.check_every = opts.quick ? 1 : 2;  // paper: every other iter
    sea_opts.sort_policy = SortPolicy::kInsertion;  // 48-element arrays
    const auto run = SolveDiagonal(problem, sea_opts);

    const auto rep = CheckFeasibility(problem, run.solution);
    table.AddRow({specs[k].name, TablePrinter::Num(run.result.cpu_seconds),
                  TablePrinter::Num(paper_cpu[k]),
                  TablePrinter::Int(long(run.result.iterations)),
                  TablePrinter::Num(rep.MaxRel(), 6)});
    log.Add("table4", specs[k].name, "cpu_seconds", run.result.cpu_seconds,
            paper_cpu[k], run.result.converged() ? "converged" : "NOT CONVERGED");
    log.Add("table4", specs[k].name, "iterations",
            static_cast<double>(run.result.iterations));
    log.Add("table4", specs[k].name, "final_residual",
            run.result.final_residual);
  }

  table.Print(std::cout);
  bench::Finish(log, opts, "table4");
  return 0;
}
