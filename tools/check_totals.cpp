// check_totals — CSV estimate verifier for the CLI smoke tests.
//
// Reads a matrix and checks its row/column sums against target totals (or,
// with --balance, against each other — the SAM account-balance condition),
// so ctest can assert that sea_solve's written estimate actually meets its
// constraints.
//
// Exit codes:
//   0  every checked sum is within tolerance
//   1  tolerance exceeded (or --balance on a non-square matrix)
//   2  usage error
//   3  malformed input (unreadable file, ragged rows, NaN/Inf or garbage
//      cells — the message names the file, row, and column)
//   4  dimension mismatch between the matrix and a totals vector
//
// Usage:
//   check_totals --matrix est.csv [--row-totals r.csv] [--col-totals c.csv]
//                [--balance] [--tol 1e-4]
#include <cmath>
#include <iostream>
#include <map>
#include <string>

#include "io/csv.hpp"
#include "linalg/dense_matrix.hpp"

namespace {

using namespace sea;

[[noreturn]] void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --matrix est.csv [--row-totals r.csv] [--col-totals c.csv]"
               " [--balance] [--tol 1e-4]\n";
  std::exit(2);
}

// Thrown for a totals vector whose length disagrees with the matrix —
// distinct from a tolerance failure (the comparison never happened).
struct DimensionMismatch {
  std::string message;
};

// Worst |sums_i - targets_i| / max(1, |targets_i|).
double MaxRelDeviation(const Vector& sums, const Vector& targets,
                       const std::string& what) {
  if (sums.size() != targets.size())
    throw DimensionMismatch{what + ": matrix has " +
                            std::to_string(sums.size()) +
                            " sums but totals file has " +
                            std::to_string(targets.size()) + " entries"};
  double worst = 0.0;
  for (std::size_t i = 0; i < sums.size(); ++i)
    worst = std::max(worst, std::abs(sums[i] - targets[i]) /
                                std::max(1.0, std::abs(targets[i])));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) Usage(argv[0]);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key.substr(2)] = argv[++i];
    } else {
      args[key.substr(2)] = "1";
    }
  }
  if (!args.count("matrix")) Usage(argv[0]);
  const double tol = args.count("tol") ? std::stod(args["tol"]) : 1e-4;

  try {
    const DenseMatrix x = ReadMatrixCsv(args["matrix"]);
    const Vector rows = x.RowSums();
    const Vector cols = x.ColSums();
    bool checked = false;
    double worst = 0.0;

    if (args.count("balance")) {
      if (x.rows() != x.cols()) {
        std::cerr << "balance check needs a square matrix\n";
        return 1;
      }
      worst = std::max(worst, MaxRelDeviation(rows, cols, "balance"));
      checked = true;
    }
    if (args.count("row-totals")) {
      worst = std::max(
          worst, MaxRelDeviation(rows, ReadVectorCsv(args["row-totals"]),
                                 "row totals"));
      checked = true;
    }
    if (args.count("col-totals")) {
      worst = std::max(
          worst, MaxRelDeviation(cols, ReadVectorCsv(args["col-totals"]),
                                 "col totals"));
      checked = true;
    }
    if (!checked) Usage(argv[0]);

    std::cout << "max rel deviation: " << worst << " (tol " << tol << ")\n";
    return worst <= tol ? 0 : 1;
  } catch (const DimensionMismatch& e) {
    std::cerr << "error: " << e.message << '\n';
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}
