// check_totals — CSV estimate verifier for the CLI smoke tests.
//
// Reads a matrix and checks its row/column sums against target totals (or,
// with --balance, against each other — the SAM account-balance condition).
// Exits 0 when every sum is within tolerance, 1 otherwise, so ctest can
// assert that sea_solve's written estimate actually meets its constraints.
//
// Usage:
//   check_totals --matrix est.csv [--row-totals r.csv] [--col-totals c.csv]
//                [--balance] [--tol 1e-4]
#include <cmath>
#include <iostream>
#include <map>
#include <string>

#include "io/csv.hpp"
#include "linalg/dense_matrix.hpp"

namespace {

using namespace sea;

[[noreturn]] void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --matrix est.csv [--row-totals r.csv] [--col-totals c.csv]"
               " [--balance] [--tol 1e-4]\n";
  std::exit(2);
}

Vector ReadTotals(const std::string& path) {
  const auto rows = ReadCsv(path);
  Vector v;
  for (const auto& row : rows)
    for (const auto& cell : row)
      if (!cell.empty()) v.push_back(std::stod(cell));
  return v;
}

// Worst |sums_i - targets_i| / max(1, |targets_i|).
double MaxRelDeviation(const Vector& sums, const Vector& targets) {
  if (sums.size() != targets.size()) return HUGE_VAL;
  double worst = 0.0;
  for (std::size_t i = 0; i < sums.size(); ++i)
    worst = std::max(worst, std::abs(sums[i] - targets[i]) /
                                std::max(1.0, std::abs(targets[i])));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) Usage(argv[0]);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key.substr(2)] = argv[++i];
    } else {
      args[key.substr(2)] = "1";
    }
  }
  if (!args.count("matrix")) Usage(argv[0]);
  const double tol = args.count("tol") ? std::stod(args["tol"]) : 1e-4;

  try {
    const DenseMatrix x = ReadMatrixCsv(args["matrix"]);
    const Vector rows = x.RowSums();
    const Vector cols = x.ColSums();
    bool checked = false;
    double worst = 0.0;

    if (args.count("balance")) {
      if (x.rows() != x.cols()) {
        std::cerr << "balance check needs a square matrix\n";
        return 1;
      }
      worst = std::max(worst, MaxRelDeviation(rows, cols));
      checked = true;
    }
    if (args.count("row-totals")) {
      worst = std::max(worst,
                       MaxRelDeviation(rows, ReadTotals(args["row-totals"])));
      checked = true;
    }
    if (args.count("col-totals")) {
      worst = std::max(worst,
                       MaxRelDeviation(cols, ReadTotals(args["col-totals"])));
      checked = true;
    }
    if (!checked) Usage(argv[0]);

    std::cout << "max rel deviation: " << worst << " (tol " << tol << ")\n";
    return worst <= tol ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}
