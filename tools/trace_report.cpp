// trace_report — convergence / phase summary of a solver trace.
//
// Reads the JSONL trace written by `sea_solve --trace-jsonl` (or any
// obs::JsonlTraceSink user) and prints:
//   * iteration count, convergence status, and the final stopping measure
//     (matching the solve's own stdout summary);
//   * the iteration at which the measure first reached each decade of
//     residual — the shape of the geometric convergence the paper proves
//     (eqs. (64), (76)-(77));
//   * the serial/parallel phase split and the serial-fraction estimate of
//     Section 4.2: the convergence-verification phase is the Amdahl
//     bottleneck, so 1/serial_fraction bounds any parallel speedup;
//   * for general-SEA traces, the outer projection trajectory;
//   * with --metrics <metrics.json>, p50/p95/p99 for every histogram the
//     metrics export contains (bucket-interpolated, obs::HistogramQuantile).
//
// Event kinds this tool does not know are counted and noted, not errors —
// the trace schema is append-only and newer solvers may emit new kinds.
//
// Usage: trace_report <trace.jsonl> [--metrics <metrics.json>]
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_reader.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_reader.hpp"

namespace {

using sea::obs::TraceEvent;

void PrintCheckSummary(const std::vector<const TraceEvent*>& checks) {
  const TraceEvent& last = *checks.back();
  const std::size_t iterations = static_cast<std::size_t>(last.Number("iter"));
  const bool converged = last.Flag("converged");
  std::cout << "iterations:      " << iterations
            << (converged ? " (converged)" : " (NOT converged)") << '\n';
  if (last.Flag("measure_defined"))
    std::cout << "final measure:   " << last.Number("measure") << '\n';

  // First iteration at which the measure dropped to each decade between the
  // first defined measure and the final one.
  double first_defined = 0.0;
  bool have_first = false;
  for (const TraceEvent* ev : checks)
    if (ev->Flag("measure_defined") && !have_first) {
      first_defined = ev->Number("measure");
      have_first = true;
    }
  if (have_first && first_defined > 0.0) {
    const int top = static_cast<int>(std::floor(std::log10(first_defined)));
    const double final_measure = last.Number("measure", first_defined);
    const int bottom =
        final_measure > 0.0
            ? static_cast<int>(std::floor(std::log10(final_measure)))
            : top - 16;
    std::cout << "residual decades (first iteration at or below):\n";
    for (int decade = top; decade >= bottom; --decade) {
      const double threshold = std::pow(10.0, decade);
      for (const TraceEvent* ev : checks) {
        if (ev->Flag("measure_defined") &&
            ev->Number("measure") <= threshold) {
          std::cout << "  <= 1e" << decade << "  iter "
                    << static_cast<std::size_t>(ev->Number("iter")) << '\n';
          break;
        }
      }
    }
  }

  // Phase split (cumulative seconds from the last event) and the paper's
  // Section 4.2 serial-fraction / Amdahl analysis.
  const double row_s = last.Number("row_seconds");
  const double col_s = last.Number("col_seconds");
  const double check_s = last.Number("check_seconds");
  const double total = row_s + col_s + check_s;
  std::cout << "phase seconds:   row " << row_s << "  col " << col_s
            << "  check " << check_s << '\n';
  if (total > 0.0) {
    const double serial_fraction = check_s / total;
    std::cout << "serial fraction: " << serial_fraction
              << " (convergence verification, Sec. 4.2)\n";
    if (serial_fraction > 0.0)
      std::cout << "Amdahl bound:    max speedup " << 1.0 / serial_fraction
                << '\n';
  }
  std::cout << "ops total:       flops "
            << static_cast<std::uint64_t>(last.Number("flops_total"))
            << "  comparisons "
            << static_cast<std::uint64_t>(last.Number("comparisons_total"))
            << '\n';
}

void PrintOuterSummary(const std::vector<const TraceEvent*>& outers) {
  const TraceEvent& last = *outers.back();
  std::cout << "outer steps:     "
            << static_cast<std::size_t>(last.Number("iter"))
            << (last.Flag("converged") ? " (converged)" : " (NOT converged)")
            << '\n'
            << "final change:    " << last.Number("change") << '\n'
            << "inner iters:     "
            << static_cast<std::size_t>(
                   last.Number("inner_iterations_total"))
            << '\n'
            << "linearize secs:  " << last.Number("linearize_seconds") << '\n';
}

// Reconstructs each histogram under "metrics"/"histograms" (or a top-level
// "histograms") in a metrics JSON export and prints interpolated
// percentiles. Fail-soft by design: a missing section just prints a note.
void PrintHistogramPercentiles(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "error: cannot open metrics json: " << path << '\n';
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string hist_json;
  auto find = [](const std::string& obj,
                 const std::string& key) -> std::string {
    for (auto& [k, v] : sea::obs::JsonObjectFields(obj))
      if (k == key) return v;
    return std::string();
  };
  const std::string metrics = find(buf.str(), "metrics");
  hist_json = metrics.empty() ? find(buf.str(), "histograms")
                              : find(metrics, "histograms");
  if (hist_json.empty()) {
    std::cout << "histograms:      none in " << path << '\n';
    return;
  }
  const auto hists = sea::obs::JsonObjectFields(hist_json);
  std::cout << "histogram percentiles (" << path << "):\n";
  if (hists.empty()) std::cout << "  (none recorded)\n";
  for (const auto& [name, body] : hists) {
    sea::obs::HistogramSnapshot h;
    for (const auto& [k, v] : sea::obs::JsonObjectFields(body)) {
      if (k == "bounds") {
        h.bounds = sea::obs::JsonNumberArray(v);
      } else if (k == "counts") {
        for (double c : sea::obs::JsonNumberArray(v))
          h.counts.push_back(static_cast<std::uint64_t>(c));
      } else if (k == "count") {
        h.total_count = static_cast<std::uint64_t>(std::stod(v));
      } else if (k == "sum") {
        h.sum = std::stod(v);
      } else if (k == "min") {
        h.min = std::stod(v);
      } else if (k == "max") {
        h.max = std::stod(v);
      }
    }
    std::cout << "  " << name << ":  count "
              << h.total_count;
    if (h.total_count == 0) {
      std::cout << " (empty)\n";
      continue;
    }
    std::cout << "  mean " << h.sum / static_cast<double>(h.total_count)
              << "  p50 " << sea::obs::HistogramQuantile(h, 0.50) << "  p95 "
              << sea::obs::HistogramQuantile(h, 0.95) << "  p99 "
              << sea::obs::HistogramQuantile(h, 0.99) << "  max " << h.max
              << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) != 0 && trace_path.empty()) {
      trace_path = argv[i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " <trace.jsonl> [--metrics <metrics.json>]\n";
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::cerr << "usage: " << argv[0]
              << " <trace.jsonl> [--metrics <metrics.json>]\n";
    return 2;
  }
  try {
    // Tolerant read: a torn tail line (solver killed mid-write) degrades to
    // a note, not a parse failure on the whole report.
    std::size_t lines_skipped = 0;
    const auto events = sea::obs::ReadTraceJsonl(trace_path, &lines_skipped);
    std::vector<const TraceEvent*> checks, outers;
    std::map<std::string, std::size_t> unknown_kinds;
    int schema = 0;
    for (const auto& ev : events) {
      if (ev.Has("schema"))
        schema = std::max(schema, static_cast<int>(ev.Number("schema")));
      if (ev.Type() == "check")
        checks.push_back(&ev);
      else if (ev.Type() == "outer")
        outers.push_back(&ev);
      else
        ++unknown_kinds[ev.Type()];
    }
    std::cout << "trace:           " << trace_path << " — " << checks.size()
              << " check events, " << outers.size()
              << " outer events (schema " << schema << ")\n";
    if (lines_skipped > 0)
      std::cout << "note: skipped " << lines_skipped
                << " malformed line(s)\n";
    // Append-only schema: unknown kinds are future additions, not errors.
    for (const auto& [kind, count] : unknown_kinds)
      std::cout << "note: skipped " << count << " event(s) of unknown kind \""
                << (kind.empty() ? "(untyped)" : kind) << "\"\n";
    if (checks.empty() && outers.empty() && metrics_path.empty()) {
      std::cerr << "error: no trace events found\n";
      return 1;
    }
    if (!checks.empty()) PrintCheckSummary(checks);
    if (!outers.empty()) PrintOuterSummary(outers);
    if (!metrics_path.empty()) PrintHistogramPercentiles(metrics_path);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}
