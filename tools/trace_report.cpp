// trace_report — convergence / phase summary of a solver trace.
//
// Reads the JSONL trace written by `sea_solve --trace-jsonl` (or any
// obs::JsonlTraceSink user) and prints:
//   * iteration count, convergence status, and the final stopping measure
//     (matching the solve's own stdout summary);
//   * the iteration at which the measure first reached each decade of
//     residual — the shape of the geometric convergence the paper proves
//     (eqs. (64), (76)-(77));
//   * the serial/parallel phase split and the serial-fraction estimate of
//     Section 4.2: the convergence-verification phase is the Amdahl
//     bottleneck, so 1/serial_fraction bounds any parallel speedup;
//   * for general-SEA traces, the outer projection trajectory.
//
// Usage: trace_report <trace.jsonl>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "obs/trace_reader.hpp"

namespace {

using sea::obs::TraceEvent;

void PrintCheckSummary(const std::vector<const TraceEvent*>& checks) {
  const TraceEvent& last = *checks.back();
  const std::size_t iterations = static_cast<std::size_t>(last.Number("iter"));
  const bool converged = last.Flag("converged");
  std::cout << "iterations:      " << iterations
            << (converged ? " (converged)" : " (NOT converged)") << '\n';
  if (last.Flag("measure_defined"))
    std::cout << "final measure:   " << last.Number("measure") << '\n';

  // First iteration at which the measure dropped to each decade between the
  // first defined measure and the final one.
  double first_defined = 0.0;
  bool have_first = false;
  for (const TraceEvent* ev : checks)
    if (ev->Flag("measure_defined") && !have_first) {
      first_defined = ev->Number("measure");
      have_first = true;
    }
  if (have_first && first_defined > 0.0) {
    const int top = static_cast<int>(std::floor(std::log10(first_defined)));
    const double final_measure = last.Number("measure", first_defined);
    const int bottom =
        final_measure > 0.0
            ? static_cast<int>(std::floor(std::log10(final_measure)))
            : top - 16;
    std::cout << "residual decades (first iteration at or below):\n";
    for (int decade = top; decade >= bottom; --decade) {
      const double threshold = std::pow(10.0, decade);
      for (const TraceEvent* ev : checks) {
        if (ev->Flag("measure_defined") &&
            ev->Number("measure") <= threshold) {
          std::cout << "  <= 1e" << decade << "  iter "
                    << static_cast<std::size_t>(ev->Number("iter")) << '\n';
          break;
        }
      }
    }
  }

  // Phase split (cumulative seconds from the last event) and the paper's
  // Section 4.2 serial-fraction / Amdahl analysis.
  const double row_s = last.Number("row_seconds");
  const double col_s = last.Number("col_seconds");
  const double check_s = last.Number("check_seconds");
  const double total = row_s + col_s + check_s;
  std::cout << "phase seconds:   row " << row_s << "  col " << col_s
            << "  check " << check_s << '\n';
  if (total > 0.0) {
    const double serial_fraction = check_s / total;
    std::cout << "serial fraction: " << serial_fraction
              << " (convergence verification, Sec. 4.2)\n";
    if (serial_fraction > 0.0)
      std::cout << "Amdahl bound:    max speedup " << 1.0 / serial_fraction
                << '\n';
  }
  std::cout << "ops total:       flops "
            << static_cast<std::uint64_t>(last.Number("flops_total"))
            << "  comparisons "
            << static_cast<std::uint64_t>(last.Number("comparisons_total"))
            << '\n';
}

void PrintOuterSummary(const std::vector<const TraceEvent*>& outers) {
  const TraceEvent& last = *outers.back();
  std::cout << "outer steps:     "
            << static_cast<std::size_t>(last.Number("iter"))
            << (last.Flag("converged") ? " (converged)" : " (NOT converged)")
            << '\n'
            << "final change:    " << last.Number("change") << '\n'
            << "inner iters:     "
            << static_cast<std::size_t>(
                   last.Number("inner_iterations_total"))
            << '\n'
            << "linearize secs:  " << last.Number("linearize_seconds") << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::strncmp(argv[1], "--", 2) == 0) {
    std::cerr << "usage: " << argv[0] << " <trace.jsonl>\n";
    return 2;
  }
  try {
    const auto events = sea::obs::ReadTraceJsonl(argv[1]);
    std::vector<const TraceEvent*> checks, outers;
    int schema = 0;
    for (const auto& ev : events) {
      if (ev.Has("schema"))
        schema = std::max(schema, static_cast<int>(ev.Number("schema")));
      if (ev.Type() == "check") checks.push_back(&ev);
      if (ev.Type() == "outer") outers.push_back(&ev);
    }
    std::cout << "trace:           " << argv[1] << " — " << checks.size()
              << " check events, " << outers.size()
              << " outer events (schema " << schema << ")\n";
    if (checks.empty() && outers.empty()) {
      std::cerr << "error: no trace events found\n";
      return 1;
    }
    if (!checks.empty()) PrintCheckSummary(checks);
    if (!outers.empty()) PrintOuterSummary(outers);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}
