// prof_report — aggregated per-phase table from a Chrome trace JSON file
// written by `sea_solve --profile-json`, a bench binary's --profile-json,
// or any obs::WriteChromeTrace export (docs/OBSERVABILITY.md, "Profiling").
//
// Usage:
//   prof_report <trace.json> [--top N]
//
// Prints, per phase: span count, total/self/mean/max seconds, and the self
// time's share of the profile's wall clock. Self time excludes spans nested
// inside on the same thread, so the per-thread shares partition the covered
// wall time. Exit codes: 0 on success, 1 if the trace has no spans, 3 on a
// missing/malformed file.
#include <cstring>
#include <iostream>
#include <string>

#include "obs/profiler.hpp"
#include "support/check.hpp"

int main(int argc, char** argv) {
  std::string path;
  std::size_t top = 0;  // 0 = all
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      std::cerr << "usage: " << argv[0] << " <trace.json> [--top N]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: " << argv[0] << " <trace.json> [--top N]\n";
    return 2;
  }

  try {
    const auto spans = sea::obs::ReadChromeTrace(path);
    if (spans.empty()) {
      std::cerr << "no profile spans found in " << path << '\n';
      return 1;
    }
    std::size_t threads = 0;
    for (const auto& s : spans)
      threads = std::max<std::size_t>(threads, s.thread + 1);
    auto stats = sea::obs::SummarizeSpans(spans);
    const double wall = sea::obs::ProfileWallSeconds(spans);
    if (top > 0 && stats.size() > top) stats.resize(top);
    std::cout << "profile:         " << path << " — " << spans.size()
              << " spans across " << threads << " thread"
              << (threads == 1 ? "" : "s") << '\n';
    sea::obs::PrintProfileSummary(std::cout, stats, wall);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}
