// bench_diff — perf-regression gate over BENCH_<table>.json trajectories
// (docs/OBSERVABILITY.md, "Bench JSON").
//
// Bench binaries append one JSON document line per run, so a BENCH file is
// a time series. This tool compares two runs per (experiment, dataset,
// metric) record:
//
//   bench_diff <bench.json>                   last two lines of one file
//   bench_diff <base.json> <candidate.json>   last line of each
//
// Options:
//   --noise <frac>   relative change treated as noise (default 0.25 —
//                    wall-clock on shared CI machines is jittery)
//   --report-only    print the comparison but always exit 0 (CI smoke mode)
//
// Lower-is-better metrics (names containing "seconds", "iterations",
// "sweeps", or "rss") flag a REGRESSION when the candidate exceeds the
// baseline by more than the noise band, and an IMPROVEMENT when it drops
// below it; other metrics are reported as CHANGED/ok. Schema-1 baselines
// (no metadata) compare fine — provenance labels just print as "?".
//
// Exit codes: 0 ok / within noise, 1 at least one regression, 2 usage,
// 3 missing/malformed input.
#include <cmath>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_reader.hpp"

namespace {

using sea::obs::BenchDoc;
using sea::obs::BenchRecord;

bool LowerIsBetter(const std::string& metric) {
  return metric.find("seconds") != std::string::npos ||
         metric.find("iterations") != std::string::npos ||
         metric.find("sweeps") != std::string::npos ||
         metric.find("rss") != std::string::npos;
}

std::string Label(const BenchDoc& doc) {
  auto get = [&doc](const char* key) {
    auto it = doc.meta.strings.find(key);
    return it != doc.meta.strings.end() ? it->second : std::string("?");
  };
  return get("git_sha") + " @ " + get("timestamp");
}

const BenchRecord* Find(const BenchDoc& doc, const BenchRecord& want) {
  for (const auto& r : doc.records)
    if (r.experiment == want.experiment && r.dataset == want.dataset &&
        r.metric == want.metric)
      return &r;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double noise = 0.25;
  bool report_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--noise") == 0 && i + 1 < argc) {
      try {
        noise = std::stod(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "error: malformed --noise value\n";
        return 2;
      }
      if (!(noise >= 0.0)) {
        std::cerr << "error: --noise must be >= 0\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--report-only") == 0) {
      report_only = true;
    } else if (argv[i][0] != '-') {
      paths.push_back(argv[i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " <bench.json> [<candidate.json>] [--noise <frac>]"
                << " [--report-only]\n";
      return 2;
    }
  }
  if (paths.empty() || paths.size() > 2) {
    std::cerr << "usage: " << argv[0]
              << " <bench.json> [<candidate.json>] [--noise <frac>]"
              << " [--report-only]\n";
    return 2;
  }

  try {
    BenchDoc base, cand;
    if (paths.size() == 1) {
      const auto docs = sea::obs::ReadBenchJsonl(paths[0]);
      if (docs.size() < 2) {
        std::cerr << "error: " << paths[0] << " has " << docs.size()
                  << " run(s); need two to diff (bench output appends one "
                     "line per run)\n";
        return 3;
      }
      base = docs[docs.size() - 2];
      cand = docs[docs.size() - 1];
    } else {
      const auto base_docs = sea::obs::ReadBenchJsonl(paths[0]);
      const auto cand_docs = sea::obs::ReadBenchJsonl(paths[1]);
      if (base_docs.empty() || cand_docs.empty()) {
        std::cerr << "error: empty bench file\n";
        return 3;
      }
      base = base_docs.back();  // last line = most recent run
      cand = cand_docs.back();
    }

    std::cout << "baseline:  " << Label(base) << '\n'
              << "candidate: " << Label(cand) << '\n'
              << "noise band: ±" << noise * 100.0 << "%\n\n";
    std::cout << std::left << std::setw(24) << "dataset" << std::setw(22)
              << "metric" << std::right << std::setw(14) << "base"
              << std::setw(14) << "cand" << std::setw(10) << "delta"
              << "  verdict\n";

    std::size_t regressions = 0, improvements = 0, compared = 0,
                unmatched = 0;
    for (const auto& b : cand.records) {
      const BenchRecord* prev = Find(base, b);
      if (prev == nullptr) {
        ++unmatched;
        continue;
      }
      ++compared;
      const double denom = std::abs(prev->measured);
      const double rel =
          denom > 0.0 ? (b.measured - prev->measured) / denom
                      : (b.measured == prev->measured ? 0.0 : INFINITY);
      std::string verdict = "ok";
      if (std::abs(rel) > noise) {
        if (LowerIsBetter(b.metric)) {
          if (rel > 0.0) {
            verdict = "REGRESSION";
            ++regressions;
          } else {
            verdict = "improvement";
            ++improvements;
          }
        } else {
          verdict = "changed";
        }
      }
      std::cout << std::left << std::setw(24) << b.dataset << std::setw(22)
                << b.metric << std::right << std::setw(14)
                << std::setprecision(6) << prev->measured << std::setw(14)
                << b.measured << std::setw(9) << std::setprecision(1)
                << std::fixed << rel * 100.0 << "%  " << verdict << '\n';
      std::cout.unsetf(std::ios::fixed);
    }

    std::cout << '\n'
              << compared << " compared, " << regressions << " regression(s), "
              << improvements << " improvement(s)";
    if (unmatched > 0)
      std::cout << ", " << unmatched << " candidate record(s) without a "
                << "baseline counterpart";
    std::cout << '\n';
    if (regressions > 0 && report_only)
      std::cout << "(report-only: exiting 0 despite regressions)\n";
    return (regressions > 0 && !report_only) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}
