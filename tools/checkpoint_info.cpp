// checkpoint_info — inspect a sea_solve resume checkpoint
// (core/checkpoint.hpp; docs/ROBUSTNESS.md).
//
// Usage:
//   checkpoint_info <checkpoint-file> [--json]
//
// Prints the checkpoint header (format version, problem fingerprint, shape,
// stop criterion), engine progress, stall-detector and recovery-ladder
// state, and FNV-1a digests of the iterate vectors — the digests let two
// checkpoints (or a checkpoint and a reference run) be compared for
// bit-identity without dumping megabytes of doubles. --json emits the same
// facts as one JSON document for scripting.
//
// A malformed, truncated, version-skewed, or CRC-corrupt file is reported
// as a structured diagnosis on stderr and exit code 3 — never a crash
// (the loader is fuzzed on hostile bytes; see tests/test_fuzz.cpp).
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/checkpoint.hpp"
#include "obs/json_export.hpp"
#include "problems/validate.hpp"
#include "support/hash.hpp"

namespace {

using namespace sea;

std::string Hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

std::uint64_t Digest(const std::vector<double>& v) {
  support::Fnv1a h;
  h.MixDoubles(v);
  return h.value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::cerr << "usage: " << argv[0] << " <checkpoint-file> [--json]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: " << argv[0] << " <checkpoint-file> [--json]\n";
    return 2;
  }

  const CheckpointLoadResult loaded = LoadCheckpoint(path);
  if (!loaded.ok()) {
    std::cerr << "error: " << ToString(loaded.diagnosis->code) << ": "
              << loaded.diagnosis->message << '\n';
    return 3;
  }
  const CheckpointState& st = loaded.state;

  if (json) {
    obs::JsonArr rungs;
    for (std::uint8_t rung : st.recovery_rungs)
      rungs.Add(static_cast<std::uint64_t>(rung));
    obs::JsonObj doc;
    doc.Field("version", static_cast<std::uint64_t>(kCheckpointVersion))
        .Field("fingerprint", Hex64(st.fingerprint))
        .Field("m", st.m)
        .Field("n", st.n)
        .Field("criterion", ToString(st.criterion))
        .Field("iteration", st.iteration)
        .Field("checks_compared", st.checks_compared)
        .Field("final_residual", st.final_residual)
        .Field("stall_streak", st.stall_streak)
        .Field("stall_prev", st.stall_prev)
        .Field("rung", static_cast<std::uint64_t>(st.rung))
        .Field("rung_attempts", st.rung_attempts)
        .Field("damp_iters_left", st.damp_iters_left)
        .Field("recovered_count", st.recovered_count)
        .Raw("recovery_rungs", rungs.Str())
        .Field("have_snapshot", st.have_snapshot)
        .Field("lambda_len", static_cast<std::uint64_t>(st.lambda.size()))
        .Field("mu_len", static_cast<std::uint64_t>(st.mu.size()))
        .Field("snapshot_len", static_cast<std::uint64_t>(st.snapshot.size()))
        .Field("lambda_digest", Hex64(Digest(st.lambda)))
        .Field("mu_digest", Hex64(Digest(st.mu)))
        .Field("snapshot_digest", Hex64(Digest(st.snapshot)));
    std::cout << doc.Str() << '\n';
    return 0;
  }

  std::cout << "checkpoint:      " << path << '\n'
            << "format version:  " << kCheckpointVersion << '\n'
            << "fingerprint:     " << Hex64(st.fingerprint) << '\n'
            << "problem:         " << st.m << " x " << st.n << " ("
            << ToString(st.criterion) << ")\n"
            << "iteration:       " << st.iteration << '\n'
            << "checks compared: " << st.checks_compared << '\n'
            << "last measure:    " << st.final_residual << '\n'
            << "stall streak:    " << st.stall_streak
            << " (prev measure " << st.stall_prev << ")\n"
            << "recovery:        rung " << static_cast<unsigned>(st.rung)
            << ", " << st.rung_attempts << " attempts, "
            << st.damp_iters_left << " damped iters left\n"
            << "rescues so far:  " << st.recovered_count << " (rungs:";
  for (std::uint8_t rung : st.recovery_rungs)
    std::cout << ' ' << static_cast<unsigned>(rung);
  std::cout << ")\n"
            << "lambda:          " << st.lambda.size() << " values, digest "
            << Hex64(Digest(st.lambda)) << '\n'
            << "mu:              " << st.mu.size() << " values, digest "
            << Hex64(Digest(st.mu)) << '\n'
            << "snapshot:        "
            << (st.have_snapshot ? std::to_string(st.snapshot.size()) +
                                       " values, digest " +
                                       Hex64(Digest(st.snapshot))
                                 : std::string("none"))
            << '\n';
  return 0;
}
