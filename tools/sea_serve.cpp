// sea_serve — long-running batching solve daemon (docs/SERVING.md).
//
// Accepts solve requests over the embedded loopback HTTP server
// (POST /solve, binary frame or JSON — src/serve/protocol.hpp), multiplexes
// them across a bounded admission queue with graceful shedding, and
// warm-starts repeat/perturbed requests from a sharded LRU cache of
// converged multipliers (src/serve/warm_cache.hpp).
//
// Endpoints:
//   POST /solve     submit one problem; JSON reply (schema 4)
//   GET  /healthz   liveness ("ok")
//   GET  /varz      daemon identity + live serve/cache/admission counters
//   GET  /metrics   Prometheus text exposition of the metrics registry
//
// Lifecycle: SIGTERM/SIGINT begins a graceful drain — the listener stops
// accepting, queued waiters are answered 503, in-flight solves run to
// completion (bounded by their time budgets), then the process exits 0.
// A second signal trips the hard-abort token: in-flight solves return
// kCancelled at their next check iteration and the drain completes.
//
// Exit codes: 0 clean drain, 2 usage error, 3 startup failure.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "net/http_server.hpp"
#include "obs/json_export.hpp"
#include "obs/metrics.hpp"
#include "obs/solve_log.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/solve_service.hpp"
#include "serve/warm_cache.hpp"
#include "support/atomic_file.hpp"
#include "support/cancel.hpp"

namespace {

using namespace sea;

CancelToken g_term;   // first signal: graceful drain
CancelToken g_abort;  // second signal: cancel in-flight solves
std::atomic<int> g_signals{0};

void OnTerminationSignal(int) {
  const int n = g_signals.fetch_add(1) + 1;
  if (n == 1)
    g_term.Cancel();
  else
    g_abort.Cancel();
}

[[noreturn]] void Usage(const char* argv0, const std::string& why = "") {
  if (!why.empty()) std::cerr << "error: " << why << '\n';
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --listen <port>            bind 127.0.0.1:<port> (default 0 = "
         "ephemeral)\n"
      << "  --listen-port-file <path>  write the bound port to <path>\n"
      << "  --handler-threads <n>      HTTP worker threads (default 4)\n"
      << "  --max-concurrent <n>       concurrent solves (default 4)\n"
      << "  --max-queued <n>           waiting requests before shedding "
         "(default 64)\n"
      << "  --cache-capacity <n>       warm-cache entries, 0 disables "
         "(default 1024)\n"
      << "  --cache-shards <n>         warm-cache shards (default 8)\n"
      << "  --max-body-bytes <n>       request-body cap (default 8 MiB)\n"
      << "  --max-time-budget <secs>   per-solve budget cap and default "
         "(default 30)\n"
      << "  --max-iters <n>            per-solve iteration cap (default "
         "200000)\n"
      << "  --solve-log <path>         append one wide event per request\n";
  std::exit(2);
}

std::size_t ParseSize(const std::string& s, const char* flag) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    std::cerr << "error: malformed number '" << s << "' for " << flag << '\n';
    std::exit(2);
  }
}

double ParseDouble(const std::string& s, const char* flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    std::cerr << "error: malformed number '" << s << "' for " << flag << '\n';
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) Usage(argv[0], "unexpected operand " + flag);
    if (i + 1 >= argc) Usage(argv[0], flag + " needs a value");
    args[flag.substr(2)] = argv[++i];
  }
  const auto arg = [&args](const char* key) { return args.count(key) != 0; };

  std::size_t port = 0;
  if (arg("listen")) port = ParseSize(args["listen"], "--listen");
  if (port > 65535) Usage(argv[0], "--listen port must be <= 65535");
  const std::size_t handler_threads =
      arg("handler-threads") ? ParseSize(args["handler-threads"],
                                         "--handler-threads")
                             : 4;
  const std::size_t max_concurrent =
      arg("max-concurrent") ? ParseSize(args["max-concurrent"],
                                        "--max-concurrent")
                            : 4;
  const std::size_t max_queued =
      arg("max-queued") ? ParseSize(args["max-queued"], "--max-queued") : 64;
  const std::size_t cache_capacity =
      arg("cache-capacity") ? ParseSize(args["cache-capacity"],
                                        "--cache-capacity")
                            : 1024;
  const std::size_t cache_shards =
      arg("cache-shards") ? ParseSize(args["cache-shards"], "--cache-shards")
                          : 8;

  serve::ServiceLimits limits;
  limits.cancel = &g_abort;
  if (arg("max-time-budget")) {
    limits.max_time_budget_seconds =
        ParseDouble(args["max-time-budget"], "--max-time-budget");
    if (!(limits.max_time_budget_seconds > 0.0))
      Usage(argv[0], "--max-time-budget must be positive");
  }
  if (arg("max-iters"))
    limits.max_iterations = ParseSize(args["max-iters"], "--max-iters");

  obs::MetricsRegistry metrics;
  serve::WarmStartCache cache(cache_capacity, cache_shards);
  serve::AdmissionQueue admission(max_concurrent, max_queued);
  obs::SolveLogWriter solve_log(arg("solve-log") ? args["solve-log"] : "");
  serve::SolveService service(&cache, &metrics, &solve_log, limits);

  net::HttpServer server(handler_threads, &g_term);
  if (arg("max-body-bytes"))
    server.set_max_body_bytes(
        ParseSize(args["max-body-bytes"], "--max-body-bytes"));

  server.Handle("/healthz", [](const net::HttpRequest&) {
    net::HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  });
  server.Handle("/metrics", [&metrics](const net::HttpRequest&) {
    net::HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::ostringstream out;
    metrics.WritePrometheus(out);
    resp.body = out.str();
    return resp;
  });
  // /varz is the operational snapshot the CI gauntlet asserts on: cache
  // hits prove warm starts happened, errors must stay zero.
  server.Handle("/varz", [&](const net::HttpRequest&) {
    const serve::WarmCacheStats stats = cache.Stats();
    net::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body =
        obs::JsonObj()
            .Field("schema", obs::kTelemetrySchemaVersion)
            .Field("type", "varz")
            .Field("tool", "sea_serve")
            .Field("git_sha", SEA_GIT_SHA)
            .Field("build_type", SEA_BUILD_TYPE)
            .Field("requests", service.requests())
            .Field("errors", service.errors())
            .Field("cache_hits_exact", stats.hits_exact)
            .Field("cache_hits_nearby", stats.hits_nearby)
            .Field("cache_misses", stats.misses)
            .Field("cache_inserts", stats.inserts)
            .Field("cache_evictions", stats.evictions)
            .Field("cache_size", stats.size)
            .Field("cache_capacity",
                   static_cast<std::uint64_t>(cache_capacity))
            .Field("admitted", admission.admitted())
            .Field("shed", admission.shed())
            .Field("in_flight",
                   static_cast<std::uint64_t>(admission.in_flight()))
            .Field("peak_queued",
                   static_cast<std::uint64_t>(admission.peak_queued()))
            .Field("draining", admission.draining())
            .Str() +
        "\n";
    return resp;
  });
  server.HandlePost("/solve", [&](const net::HttpRequest& req) {
    net::HttpResponse resp;
    resp.content_type = "application/json";

    const auto queue_start = std::chrono::steady_clock::now();
    const auto outcome = admission.Acquire();
    const double queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      queue_start)
            .count();
    if (outcome != serve::AdmissionQueue::Outcome::kAdmitted) {
      resp.status = 503;
      resp.headers.push_back("Retry-After: 1");
      resp.body =
          outcome == serve::AdmissionQueue::Outcome::kShed
              ? "{\"error\":\"overloaded: admission queue full\"}\n"
              : "{\"error\":\"draining: daemon is shutting down\"}\n";
      return resp;
    }

    struct SlotGuard {
      serve::AdmissionQueue* q;
      ~SlotGuard() { q->Release(); }
    } guard{&admission};

    const serve::DecodedRequest decoded = serve::DecodeRequest(req.body);
    if (!decoded.ok()) {
      resp.status = 422;
      resp.body = obs::JsonObj().Field("error", decoded.error).Str() + "\n";
      return resp;
    }

    const serve::ServeOutcome out =
        service.Handle(decoded.request, queue_seconds);
    if (!out.ok) resp.status = 500;
    resp.body = serve::SolveService::RenderReplyJson(
                    out, decoded.request.want_multipliers) +
                "\n";
    return resp;
  });

  std::signal(SIGINT, OnTerminationSignal);
  std::signal(SIGTERM, OnTerminationSignal);

  std::string bind_error;
  if (!server.Start(static_cast<std::uint16_t>(port), &bind_error)) {
    std::cerr << "error: cannot start server: " << bind_error << '\n';
    return 3;
  }
  std::cerr << "sea_serve: listening on http://127.0.0.1:" << server.port()
            << " (concurrent=" << max_concurrent << " queued=" << max_queued
            << " cache=" << cache_capacity << ")\n";
  if (arg("listen-port-file")) {
    support::AtomicFileWriter port_writer;
    const std::uint16_t bound = server.port();
    if (!port_writer.Write(args["listen-port-file"],
                           [bound](std::ostream& f) { f << bound << '\n'; }))
      std::cerr << "warning: could not write port file "
                << args["listen-port-file"] << '\n';
  }

  // Serve until the first termination signal, then drain: stop admitting
  // (waiters wake to 503), let in-flight solves finish, stop the server.
  while (!g_term.cancelled())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::cerr << "sea_serve: draining\n";
  admission.BeginDrain();
  admission.AwaitIdle();
  server.Stop();

  const serve::WarmCacheStats stats = cache.Stats();
  std::cerr << "sea_serve: drained: requests=" << service.requests()
            << " errors=" << service.errors()
            << " hits_exact=" << stats.hits_exact
            << " hits_nearby=" << stats.hits_nearby
            << " misses=" << stats.misses << " shed=" << admission.shed()
            << '\n';
  return 0;
}
