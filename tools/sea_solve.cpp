// sea_solve — command-line constrained matrix estimation.
//
// Reads a base matrix and totals from CSV, solves the selected regime with
// the splitting equilibration algorithm, writes the estimate as CSV, and
// prints a solve report.
//
// Usage:
//   sea_solve --mode fixed    --matrix base.csv --row-totals r.csv
//             --col-totals c.csv [--weights chi2|unit|sqrt]
//             [--epsilon 1e-6] [--criterion rel|abs|xchange]
//             [--check-every K] [--max-iters N] [--threads N]
//             [--progress] [--out estimate.csv]
//             [--metrics-json m.json] [--trace-jsonl t.jsonl]
//   sea_solve --mode elastic  ... (same flags; totals are treated as
//             estimates with unit weights)
//   sea_solve --mode interval ... (same flags; totals may move within
//             +-slack, --slack <frac>, default 0.05)
//   sea_solve --mode sam      --matrix base.csv --totals t.csv ...
//   sea_solve --mode check    --matrix base.csv --row-totals r.csv
//             --col-totals c.csv
//             (max-flow feasibility of the totals on the matrix's support —
//              tells you whether RAS can possibly converge before you run it)
//
// Totals files: one value per line (or a single CSV row).
// Telemetry (docs/OBSERVABILITY.md): --metrics-json writes one JSON document
// with the solve result, metric counters/histograms, and thread-pool
// utilization; --metrics-prom writes the same registry in Prometheus text
// exposition format; --trace-jsonl streams one JSON event per convergence
// check (readable with tools/trace_report).
//
// Convergence forensics (docs/OBSERVABILITY.md, "Convergence forensics"):
// --attribution-json records per-market residual/breakpoint/active-set
// attribution (summarize with tools/market_report); --postmortem-json arms
// the flight recorder to dump a JSONL postmortem when the solve ends in a
// guardrail failure class; --status-file maintains a live, atomically
// replaced JSON snapshot of the running solve. The SEA_FAILPOINTS
// environment variable ("site[:at_hit[:count]],...") arms fault-injection
// failpoints for CI smokes (docs/ROBUSTNESS.md).
//
// Live telemetry plane (docs/OBSERVABILITY.md, "Live endpoints"):
// --listen <port> starts an embedded loopback HTTP server (port 0 picks an
// ephemeral port; --listen-port-file publishes the bound port) exposing
// /healthz, /metrics (Prometheus text exposition), /statusz (the live
// status snapshot), /timeseries (sampler rings; ?metric=...&last=K), and
// /varz (build/config identity). A background sampler
// (--sample-interval-ms, default 250) turns the metrics registry into
// bounded time series while the solve runs. --solve-log <path> appends one
// flat JSON wide event per invocation — success, infeasible, cancelled, or
// error — for fleet-level forensics (docs/OBSERVABILITY.md, "Wide-event
// solve log").
//
// Durability + self-healing (docs/ROBUSTNESS.md): --checkpoint <path> writes
// a crash-safe resume checkpoint every --checkpoint-every N compared checks
// (and at cancellation / budget expiry / the iteration cap); --resume <path>
// restores one and continues bit-identically; --recover walks the automatic
// recovery ladder on stall/breakdown instead of terminating
// (--recovery-retries attempts per rung). Inspect any checkpoint with
// tools/checkpoint_info. SIGINT/SIGTERM trip cooperative cancellation: the
// solve stops at the next check, flushes telemetry, writes the final
// checkpoint and postmortem, and exits with code 6.
//
// Exit codes (docs/ROBUSTNESS.md) follow sea::ExitCodeFor:
//   0 converged          5 time budget exceeded   8 numerical breakdown
//   2 usage error        6 cancelled              9 infeasible input
//   3 input/IO error     7 stalled                  (pre-flight or check
//   4 iteration limit                                mode cut)
#include <csignal>
#include <iostream>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"

#include "core/diagonal_sea.hpp"
#include "core/solve_status.hpp"
#include "datasets/weights.hpp"
#include "equilibration/kernel_backend.hpp"
#include "io/csv.hpp"
#include "net/http_server.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json_export.hpp"
#include "obs/market_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/solve_log.hpp"
#include "obs/status_file.hpp"
#include "obs/trace_sink.hpp"
#include "parallel/thread_pool.hpp"
#include "problems/feasibility.hpp"
#include "problems/validate.hpp"
#include "sparse/feasibility_flow.hpp"
#include "support/atomic_file.hpp"
#include "support/check.hpp"
#include "support/failpoint.hpp"
#include "support/hash.hpp"
#include "support/rusage.hpp"
#include "support/stopwatch.hpp"

#ifndef SEA_GIT_SHA
#define SEA_GIT_SHA "unknown"
#endif
#ifndef SEA_BUILD_TYPE
#define SEA_BUILD_TYPE "unknown"
#endif

namespace {

using namespace sea;

// SIGINT/SIGTERM handler: async-signal-safe cancellation. The token's
// Cancel() is a lock-free atomic store; the engine notices at the next
// check iteration and unwinds normally (final checkpoint, telemetry flush,
// exit code 6) — no state is touched from signal context.
CancelToken g_cancel;

extern "C" void OnTerminationSignal(int /*signum*/) { g_cancel.Cancel(); }

[[noreturn]] void Usage(const char* argv0, const std::string& why = {}) {
  if (!why.empty()) std::cerr << "error: " << why << '\n';
  std::cerr
      << "usage: " << argv0
      << " --mode fixed|elastic|interval|sam --matrix base.csv\n"
         "  fixed/elastic/interval: --row-totals r.csv --col-totals c.csv\n"
         "  sam:                    --totals t.csv\n"
         "  options: --weights chi2|unit|sqrt (default chi2)\n"
         "           --epsilon <tol>          (default 1e-6)\n"
         "           --criterion rel|abs|xchange (default rel)\n"
         "           --check-every <K>        (default 1: verify every "
         "iteration)\n"
         "           --max-iters <N>          (default 200000)\n"
         "           --time-budget <seconds>  (wall-clock deadline; exit 5 "
         "when exceeded)\n"
         "           --slack <frac>           (interval mode: totals may "
         "move within +-frac, default 0.05)\n"
         "           --threads <N>            (default 1)\n"
         "           --schedule static|cost|dynamic (sweep partitioning; "
         "default static)\n"
         "           --grain <N>              (dynamic-schedule chunk size; "
         "0 = auto)\n"
         "           --sort auto|insertion|heapsort|reuse (breakpoint sort "
         "policy; default auto)\n"
         "           --backend scalar|simd|auto (equilibration kernel "
         "backend; default auto)\n"
         "           --progress               (print residual per check "
         "iteration)\n"
         "           --out estimate.csv       (default: stdout summary "
         "only)\n"
         "           --stall-checks <N>       (stall detector window; 0 "
         "disables, default 50)\n"
         "           --metrics-json <path>    (write result + metrics as "
         "JSON)\n"
         "           --metrics-prom <path>    (write metrics in Prometheus "
         "text exposition format)\n"
         "           --trace-jsonl <path>     (stream per-check trace "
         "events)\n"
         "           --attribution-json <path> (per-market attribution "
         "JSONL; summarize with market_report)\n"
         "           --postmortem-json <path> (flight-recorder dump on "
         "stall/breakdown/cancel/budget failures)\n"
         "           --status-file <path>     (live solve snapshot, "
         "atomically replaced per check)\n"
         "           --listen <port>          (serve /healthz /metrics "
         "/statusz /timeseries /varz on 127.0.0.1; 0 = ephemeral port)\n"
         "           --listen-port-file <path> (write the bound port, "
         "atomically)\n"
         "           --sample-interval-ms <ms> (metrics sampler cadence, "
         "default 250)\n"
         "           --solve-log <path>       (append one JSON wide event "
         "per invocation)\n"
         "           --checkpoint <path>      (crash-safe resume checkpoint, "
         "atomically replaced)\n"
         "           --checkpoint-every <N>   (checkpoint cadence in "
         "compared checks, default 1)\n"
         "           --resume <path>          (restore a checkpoint and "
         "continue bit-identically)\n"
         "           --recover                (walk the recovery ladder on "
         "stall/breakdown instead of terminating)\n"
         "           --recovery-retries <N>   (rescue attempts per ladder "
         "rung, default 2)\n"
         "           --profile-json <path>    (export phase spans as Chrome "
         "trace JSON for Perfetto)\n"
         "           --profile-summary        (print the per-phase profile "
         "table)\n";
  std::exit(2);
}

// Flags that consume the following token vs. value-less switches. Anything
// else is rejected instead of silently ignored.
const std::set<std::string>& ValueFlags() {
  static const std::set<std::string> flags{
      "mode",      "matrix",     "row-totals",   "col-totals", "totals",
      "weights",   "epsilon",    "criterion",    "check-every", "max-iters",
      "slack",     "threads",    "out",          "metrics-json",
      "trace-jsonl", "time-budget", "profile-json",
      "schedule",  "grain",      "sort",         "backend",
      "stall-checks", "metrics-prom", "attribution-json",
      "postmortem-json", "status-file", "checkpoint", "checkpoint-every",
      "resume", "recovery-retries", "listen", "listen-port-file",
      "sample-interval-ms", "solve-log"};
  return flags;
}

const std::set<std::string>& SwitchFlags() {
  static const std::set<std::string> flags{"progress", "profile-summary",
                                           "recover"};
  return flags;
}

// std::stod/std::stoul wrappers that reject garbage and trailing junk with
// a message naming the flag (or file) the value came from.
double ParseDouble(const std::string& value, const std::string& context) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("malformed number '" + value + "' for " + context);
  }
}

std::size_t ParseSize(const std::string& value, const std::string& context) {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(value, &pos);
    if (pos != value.size() || value[0] == '-')
      throw std::invalid_argument("trailing junk");
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw InvalidArgument("malformed count '" + value + "' for " + context);
  }
}

Vector ReadTotals(const std::string& path) { return ReadVectorCsv(path); }

// Exit-path telemetry flush: even when the solve never ran (pre-flight
// infeasibility cut, input error), a requested --metrics-json still gets a
// parseable document carrying whatever solver.status.* counters were
// recorded before the failure (docs/OBSERVABILITY.md, "Exit-path flush").
void WriteFailureMetrics(const std::string& path, const std::string& mode,
                         const std::string& error,
                         const obs::MetricsRegistry& metrics) {
  std::ofstream f(path);
  if (!f.good()) {
    std::cerr << "warning: cannot open metrics file for writing: " << path
              << '\n';
    return;
  }
  obs::JsonObj doc;
  doc.Field("schema", obs::kTelemetrySchemaVersion)
      .Field("tool", "sea_solve")
      .Field("mode", mode)
      .Field("error", error)
      .Raw("metrics", obs::ToJson(metrics.Snapshot()));
  f << doc.Str() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) Usage(argv[0], "unexpected argument '" + key + "'");
    key = key.substr(2);
    if (SwitchFlags().count(key)) {
      args[key] = "1";
    } else if (ValueFlags().count(key)) {
      if (i + 1 >= argc) Usage(argv[0], "missing value for --" + key);
      args[key] = argv[++i];
    } else {
      Usage(argv[0], "unknown flag --" + key);
    }
  }

  const std::string mode = args.count("mode") ? args["mode"] : "";
  if (!args.count("matrix") ||
      (mode != "fixed" && mode != "elastic" && mode != "interval" &&
       mode != "sam" && mode != "check"))
    Usage(argv[0]);

  // CI fault injection (docs/ROBUSTNESS.md): arm any failpoints named in
  // the SEA_FAILPOINTS environment variable before the solve starts.
  if (const std::size_t armed = fail::ArmFromEnv(); armed > 0)
    std::cerr << "note: armed " << armed
              << " failpoint(s) from SEA_FAILPOINTS\n";

  // The registry outlives the try block so failure paths can still flush
  // the solver.status.* counters recorded before the exit.
  obs::MetricsRegistry metrics;

  // Wide-event solve log (docs/OBSERVABILITY.md): exactly one line per
  // invocation, whatever the exit path. The event accumulates fields as
  // they become known; EmitWideEvent stamps wall/cpu/RSS and appends once.
  Stopwatch invocation_clock;
  obs::SolveLogWriter solve_log(
      args.count("solve-log") ? args["solve-log"] : "");
  obs::SolveWideEvent wide;
  wide.mode = mode;
  bool wide_emitted = false;
  const auto emit_wide_event = [&](const std::string& status, int exit_code,
                                   const std::string& error) {
    if (wide_emitted) return;
    wide_emitted = true;
    wide.status = status;
    wide.exit_code = exit_code;
    wide.error = error;
    // The engine stamps solve-only timings; invocation totals cover IO and
    // failure paths that never reached the engine.
    if (wide.wall_seconds == 0.0)
      wide.wall_seconds = invocation_clock.Seconds();
    if (wide.cpu_seconds == 0.0) wide.cpu_seconds = ProcessCpuSeconds();
    wide.peak_rss_bytes = support::PeakRssBytes();
    if (!solve_log.Emit(wide))
      std::cerr << "warning: could not append solve log to "
                << solve_log.path() << '\n';
  };
  const bool want_metrics_json = args.count("metrics-json") > 0;
  const bool want_metrics_prom = args.count("metrics-prom") > 0;
  const auto flush_failure_metrics = [&](const std::string& error) {
    if (want_metrics_json)
      WriteFailureMetrics(args["metrics-json"], mode, error, metrics);
    if (want_metrics_prom) {
      std::ofstream pf(args["metrics-prom"]);
      if (pf.good()) metrics.WritePrometheus(pf);
    }
  };

  try {
    const DenseMatrix x0 = ReadMatrixCsv(args["matrix"]);
    wide.rows = static_cast<std::uint64_t>(x0.rows());
    wide.cols = static_cast<std::uint64_t>(x0.cols());

    if (mode == "check") {
      if (!args.count("row-totals") || !args.count("col-totals"))
        Usage(argv[0]);
      const Vector s0 = ReadTotals(args["row-totals"]);
      const Vector d0 = ReadTotals(args["col-totals"]);
      const auto rep =
          CheckPatternFeasibility(SparseMatrix::FromDense(x0), s0, d0);
      std::cout << "support:        " << SparseMatrix::FromDense(x0).nnz()
                << " of " << x0.size() << " cells\n"
                << "required flow:  " << rep.required << '\n'
                << "max flow:       " << rep.max_flow << '\n'
                << "feasible:       " << (rep.feasible ? "yes" : "NO") << '\n';
      if (!rep.feasible) {
        std::cout << "violated cut:   rows {";
        for (std::size_t i : rep.deficient_rows) std::cout << ' ' << i;
        std::cout << " } feed only columns {";
        for (std::size_t j : rep.reachable_cols) std::cout << ' ' << j;
        std::cout << " }\n";
      }
      const int code = rep.feasible ? 0 : ExitCodeFor(SolveStatus::kInfeasible);
      emit_wide_event(rep.feasible ? "feasible" : "infeasible", code, "");
      return code;
    }

    const std::string scheme =
        args.count("weights") ? args["weights"] : "chi2";
    DenseMatrix gamma;
    if (scheme == "chi2") {
      gamma = sea::datasets::ChiSquareWeights(x0);
    } else if (scheme == "unit") {
      gamma = sea::datasets::UnitWeights(x0.rows(), x0.cols());
    } else if (scheme == "sqrt") {
      gamma = sea::datasets::SqrtWeights(x0);
    } else {
      Usage(argv[0], "unknown weights scheme '" + scheme + "'");
    }

    DiagonalProblem problem;
    if (mode == "sam") {
      if (!args.count("totals")) Usage(argv[0]);
      Vector t = ReadTotals(args["totals"]);
      Vector alpha(t.size());
      for (std::size_t i = 0; i < t.size(); ++i)
        alpha[i] = 1.0 / std::max(t[i], 1e-3);
      problem = DiagonalProblem::MakeSam(x0, gamma, t, alpha);
    } else {
      if (!args.count("row-totals") || !args.count("col-totals"))
        Usage(argv[0]);
      Vector s0 = ReadTotals(args["row-totals"]);
      Vector d0 = ReadTotals(args["col-totals"]);
      if (mode == "fixed") {
        // Pre-flight on the raw parts (the constructor throws on the first
        // defect; the report lists all of them): shape, signs, Σs = Σd, and
        // zero-support rows/columns, per the paper's Section 3 feasibility
        // conditions.
        const ValidationReport preflight =
            ValidateProblem(x0, gamma, s0, d0);
        if (!preflight.ok()) {
          std::cerr << "infeasible problem ("
                    << preflight.diagnoses.size() << " diagnos"
                    << (preflight.diagnoses.size() == 1 ? "is" : "es")
                    << "):\n"
                    << preflight.Summary() << '\n';
          metrics
              .GetCounter(std::string("solver.status.") +
                          ToString(SolveStatus::kInfeasible))
              .Add(1);
          flush_failure_metrics("preflight infeasible");
          emit_wide_event(ToString(SolveStatus::kInfeasible),
                          ExitCodeFor(SolveStatus::kInfeasible),
                          "preflight infeasible");
          return ExitCodeFor(SolveStatus::kInfeasible);
        }
        problem = DiagonalProblem::MakeFixed(x0, gamma, s0, d0);
      } else if (mode == "elastic") {
        problem = DiagonalProblem::MakeElastic(
            x0, gamma, s0, Vector(s0.size(), 1.0), d0,
            Vector(d0.size(), 1.0));
      } else {  // interval: totals elastic within +-slack box bounds
        const double slack =
            args.count("slack") ? ParseDouble(args["slack"], "--slack")
                                : 0.05;
        if (slack < 0.0) Usage(argv[0], "--slack must be nonnegative");
        Vector s_lo = s0, s_hi = s0, d_lo = d0, d_hi = d0;
        for (std::size_t i = 0; i < s0.size(); ++i) {
          s_lo[i] = (1.0 - slack) * s0[i];
          s_hi[i] = (1.0 + slack) * s0[i];
        }
        for (std::size_t j = 0; j < d0.size(); ++j) {
          d_lo[j] = (1.0 - slack) * d0[j];
          d_hi[j] = (1.0 + slack) * d0[j];
        }
        problem = DiagonalProblem::MakeInterval(
            x0, gamma, s0, Vector(s0.size(), 1.0), std::move(s_lo),
            std::move(s_hi), d0, Vector(d0.size(), 1.0), std::move(d_lo),
            std::move(d_hi));
      }
    }

    SeaOptions opts;
    opts.epsilon = args.count("epsilon")
                       ? ParseDouble(args["epsilon"], "--epsilon")
                       : 1e-6;
    const std::string crit =
        args.count("criterion") ? args["criterion"] : "rel";
    if (crit == "rel") {
      opts.criterion = StopCriterion::kResidualRel;
    } else if (crit == "abs") {
      opts.criterion = StopCriterion::kResidualAbs;
    } else if (crit == "xchange") {
      opts.criterion = StopCriterion::kXChange;
    } else {
      Usage(argv[0], "unknown criterion '" + crit + "'");
    }
    if (args.count("check-every")) {
      opts.check_every = ParseSize(args["check-every"], "--check-every");
      if (opts.check_every == 0) Usage(argv[0], "--check-every must be >= 1");
    }
    if (args.count("max-iters")) {
      opts.max_iterations = ParseSize(args["max-iters"], "--max-iters");
      if (opts.max_iterations == 0) Usage(argv[0], "--max-iters must be >= 1");
    }
    if (args.count("stall-checks"))
      opts.stall_checks = ParseSize(args["stall-checks"], "--stall-checks");
    if (args.count("time-budget")) {
      opts.time_budget_seconds =
          ParseDouble(args["time-budget"], "--time-budget");
      if (opts.time_budget_seconds <= 0.0)
        Usage(argv[0], "--time-budget must be positive");
    }
    if (args.count("progress")) {
      opts.progress = [](const IterationEvent& ev) {
        std::cout << "progress: iter=" << ev.iteration << " residual=";
        if (ev.measure_defined) {
          std::cout << ev.measure;
        } else {
          std::cout << "n/a";
        }
        if (ev.converged) std::cout << " (converged)";
        std::cout << '\n';
      };
    }
    const std::size_t threads =
        args.count("threads") ? ParseSize(args["threads"], "--threads") : 1;
    ThreadPool pool(threads);
    if (threads > 1) opts.pool = &pool;
    const std::string schedule =
        args.count("schedule") ? args["schedule"] : "static";
    if (schedule == "static") {
      opts.sweep_schedule = ScheduleKind::kStatic;
    } else if (schedule == "cost") {
      opts.sweep_schedule = ScheduleKind::kCostGuided;
    } else if (schedule == "dynamic") {
      opts.sweep_schedule = ScheduleKind::kDynamic;
    } else {
      Usage(argv[0], "unknown schedule '" + schedule + "'");
    }
    if (args.count("grain"))
      opts.sweep_grain = ParseSize(args["grain"], "--grain");
    const std::string sort = args.count("sort") ? args["sort"] : "auto";
    if (sort == "auto") {
      opts.sort_policy = SortPolicy::kAuto;
    } else if (sort == "insertion") {
      opts.sort_policy = SortPolicy::kInsertion;
    } else if (sort == "heapsort") {
      opts.sort_policy = SortPolicy::kHeapsort;
    } else if (sort == "reuse") {
      opts.sort_policy = SortPolicy::kReuse;
    } else {
      Usage(argv[0], "unknown sort policy '" + sort + "'");
    }
    const std::string backend =
        args.count("backend") ? args["backend"] : "auto";
    if (const auto parsed = ParseKernelBackendKind(backend)) {
      opts.backend = *parsed;
    } else {
      Usage(argv[0], "unknown backend '" + backend + "'");
    }
    // Surface an explicit-but-unavailable SIMD request as a structured
    // diagnosis (the solve still runs, on the scalar backend).
    const KernelResolution kres = ResolveKernelBackend(opts.backend);
    if (kres.fell_back) {
      Diagnosis d;
      d.code = DiagnosisCode::kBackendUnavailable;
      d.message = kres.note;
      std::cerr << "warning: " << ToString(d.code) << ": " << d.message
                << '\n';
    }

    // Opt-in telemetry: structured trace + metrics registry + pool stats.
    std::unique_ptr<obs::JsonlTraceSink> trace_sink;
    if (args.count("trace-jsonl")) {
      trace_sink = std::make_unique<obs::JsonlTraceSink>(args["trace-jsonl"]);
      opts.trace_sink = trace_sink.get();
    }
    if (want_metrics_json || want_metrics_prom) {
      opts.metrics = &metrics;
      pool.EnableStats(true);
    }

    // Convergence forensics: per-market attribution table, guardrail flight
    // recorder, and live status snapshot — pay-for-use, wired on request.
    obs::MarketAttribution attribution;
    if (args.count("attribution-json")) opts.attribution = &attribution;
    obs::FlightRecorder recorder;
    if (args.count("postmortem-json")) {
      recorder.SetDumpPath(args["postmortem-json"]);
      opts.flight_recorder = &recorder;
    }
    // --listen implies a (possibly path-less) status writer: /statusz
    // serves its latest snapshot without requiring --status-file.
    std::unique_ptr<obs::StatusFileWriter> status_writer;
    if (args.count("status-file") || args.count("listen")) {
      status_writer = std::make_unique<obs::StatusFileWriter>(
          args.count("status-file") ? args["status-file"] : std::string(),
          opts.epsilon);
      opts.status_file = status_writer.get();
    }

    // Durability + self-healing (docs/ROBUSTNESS.md): checkpoint cadence,
    // resume restore (validated against the problem before the solve sees
    // it), and the recovery ladder.
    std::unique_ptr<CheckpointWriter> checkpoint_writer;
    if (args.count("checkpoint")) {
      std::uint64_t every = 1;
      if (args.count("checkpoint-every")) {
        every = ParseSize(args["checkpoint-every"], "--checkpoint-every");
        if (every == 0) Usage(argv[0], "--checkpoint-every must be >= 1");
      }
      checkpoint_writer =
          std::make_unique<CheckpointWriter>(args["checkpoint"], every);
      opts.checkpoint = checkpoint_writer.get();
    } else if (args.count("checkpoint-every")) {
      Usage(argv[0], "--checkpoint-every requires --checkpoint");
    }
    CheckpointState resume_state;
    if (args.count("resume")) {
      CheckpointLoadResult loaded = LoadCheckpoint(args["resume"]);
      std::optional<Diagnosis> bad = std::move(loaded.diagnosis);
      if (!bad.has_value())
        bad = ValidateCheckpointFor(loaded.state, FingerprintProblem(problem),
                                    problem.m(), problem.n(), opts.criterion);
      if (bad.has_value()) {
        std::cerr << "error: cannot resume from " << args["resume"] << ": "
                  << ToString(bad->code) << ": " << bad->message << '\n';
        flush_failure_metrics("resume rejected: " + bad->message);
        emit_wide_event("error", 3, "resume rejected: " + bad->message);
        return 3;
      }
      resume_state = std::move(loaded.state);
      opts.resume = &resume_state;
    }
    if (args.count("recover")) opts.recover = true;
    if (args.count("recovery-retries"))
      opts.recovery_retries =
          ParseSize(args["recovery-retries"], "--recovery-retries");

    // Ctrl-C / kill become a clean guardrail exit instead of an abort: the
    // handler trips the cancel token, the engine stops at the next check,
    // and every flush below (final checkpoint, metrics, postmortem) runs.
    opts.cancel = &g_cancel;
    std::signal(SIGINT, OnTerminationSignal);
    std::signal(SIGTERM, OnTerminationSignal);

    // Wide-event identity: the configuration fields plus an FNV-1a
    // fingerprint over everything that affects the numerics — equal
    // fingerprints mean comparable rows in fleet-level queries.
    wide.epsilon = opts.epsilon;
    wide.criterion = ToString(opts.criterion);
    wide.threads = static_cast<std::uint64_t>(threads);
    wide.schedule = schedule;
    wide.sort = sort;
    wide.resumed = opts.resume != nullptr;
    {
      support::Fnv1a fp;
      const auto mix_str = [&fp](const std::string& s) {
        fp.MixU64(s.size());
        fp.MixBytes(s.data(), s.size());
      };
      mix_str(mode);
      mix_str(scheme);
      mix_str(ToString(opts.criterion));
      mix_str(schedule);
      mix_str(sort);
      mix_str(backend);
      fp.MixBytes(&opts.epsilon, sizeof(opts.epsilon));
      fp.MixU64(static_cast<std::uint64_t>(opts.check_every));
      fp.MixU64(static_cast<std::uint64_t>(opts.max_iterations));
      fp.MixU64(static_cast<std::uint64_t>(opts.stall_checks));
      fp.MixU64(static_cast<std::uint64_t>(threads));
      fp.MixU64(static_cast<std::uint64_t>(opts.sweep_grain));
      fp.MixU64(opts.recover ? 1 : 0);
      fp.MixU64(static_cast<std::uint64_t>(opts.recovery_retries));
      wide.options_fingerprint = fp.value();
    }

    // Live telemetry plane: background sampler feeding ring time series +
    // embedded loopback HTTP server. The handlers only touch internally
    // synchronized telemetry (registry snapshots, sampler rings, the
    // status writer's latest snapshot) — never the solve state — which is
    // why sampler on/off cannot change solver results.
    std::unique_ptr<obs::MetricsSampler> sampler;
    std::unique_ptr<net::HttpServer> server;
    if (args.count("listen")) {
      opts.metrics = &metrics;  // rates need a populated registry
      pool.EnableStats(true);
      obs::SamplerOptions sampler_opts;
      if (args.count("sample-interval-ms")) {
        sampler_opts.interval_ms =
            ParseDouble(args["sample-interval-ms"], "--sample-interval-ms");
        if (!(sampler_opts.interval_ms > 0.0))
          Usage(argv[0], "--sample-interval-ms must be positive");
      }
      sampler = std::make_unique<obs::MetricsSampler>(&metrics, sampler_opts);
      sampler->Start();

      const std::size_t port = ParseSize(args["listen"], "--listen");
      if (port > 65535) Usage(argv[0], "--listen port must be <= 65535");
      server =
          std::make_unique<net::HttpServer>(/*handler_threads=*/2, &g_cancel);
      server->Handle("/healthz", [](const net::HttpRequest&) {
        net::HttpResponse resp;
        resp.body = "ok\n";
        return resp;
      });
      server->Handle("/metrics", [&metrics](const net::HttpRequest&) {
        net::HttpResponse resp;
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        std::ostringstream out;
        metrics.WritePrometheus(out);
        resp.body = out.str();
        return resp;
      });
      server->Handle("/statusz",
                     [status = status_writer.get()](const net::HttpRequest&) {
                       net::HttpResponse resp;
                       resp.content_type = "application/json";
                       resp.body = status->LatestJson() + "\n";
                       return resp;
                     });
      server->Handle(
          "/timeseries",
          [rings = sampler.get()](const net::HttpRequest& req) {
            net::HttpResponse resp;
            resp.content_type = "application/json";
            const std::string metric = req.Param("metric");
            if (metric.empty()) {
              resp.body = rings->SeriesIndexJson() + "\n";
              return resp;
            }
            std::size_t last = 0;
            try {
              last = ParseSize(req.Param("last", "0"), "last");
            } catch (const std::exception&) {
              resp.status = 400;
              resp.body = "{\"error\":\"malformed 'last' parameter\"}\n";
              return resp;
            }
            resp.body = rings->TimeSeriesJson(metric, last) + "\n";
            return resp;
          });
      // /varz is immutable for the process lifetime: render once.
      const std::string varz =
          obs::JsonObj()
              .Field("schema", obs::kTelemetrySchemaVersion)
              .Field("type", "varz")
              .Field("tool", "sea_solve")
              .Field("git_sha", SEA_GIT_SHA)
              .Field("build_type", SEA_BUILD_TYPE)
              .Field("mode", mode)
              .Field("weights", scheme)
              .Field("epsilon", opts.epsilon)
              .Field("criterion", ToString(opts.criterion))
              .Field("threads", static_cast<std::uint64_t>(threads))
              .Field("schedule", schedule)
              .Field("sort", sort)
              .Field("backend", backend)
              .Field("sample_interval_ms", sampler_opts.interval_ms)
              .Str();
      server->Handle("/varz", [varz](const net::HttpRequest&) {
        net::HttpResponse resp;
        resp.content_type = "application/json";
        resp.body = varz + "\n";
        return resp;
      });
      std::string bind_error;
      if (!server->Start(static_cast<std::uint16_t>(port), &bind_error))
        throw InvalidArgument("cannot start telemetry server: " + bind_error);
      wide.listen_port = server->port();
      std::cerr << "telemetry: listening on http://127.0.0.1:"
                << server->port() << '\n';
      if (args.count("listen-port-file")) {
        support::AtomicFileWriter port_writer;
        const std::uint16_t bound = server->port();
        if (!port_writer.Write(args["listen-port-file"],
                               [bound](std::ostream& f) { f << bound << '\n'; }))
          std::cerr << "warning: could not write port file "
                    << args["listen-port-file"] << '\n';
      }
    }

    // Profiler: attached for the solve only, so the trace/summary covers
    // exactly the algorithm (docs/OBSERVABILITY.md, "Profiling").
    const bool profiling =
        args.count("profile-json") || args.count("profile-summary");
    obs::Profiler profiler;
    if (profiling) profiler.Attach();

    const auto run = SolveDiagonal(problem, opts);

    if (profiling) profiler.Detach();
    // Telemetry-plane shutdown, in dependency order: the engine has just
    // recorded its result metrics, so the sampler's terminal sample (taken
    // by Stop) captures them; the server stops after, once the final
    // /statusz and /timeseries states exist. Exceptional exits run the
    // same joins via the destructors.
    if (sampler) sampler->Stop();
    if (server) server->Stop();
    const auto rep = CheckFeasibility(problem, run.solution);

    wide.backend = run.result.kernel_backend;
    wide.iterations = static_cast<std::uint64_t>(run.result.iterations);
    wide.checks_compared =
        static_cast<std::uint64_t>(run.result.checks_compared);
    wide.final_residual = run.result.final_residual;
    wide.objective = run.result.objective;
    wide.feasibility_max_abs = rep.MaxAbs();
    wide.feasibility_max_rel = rep.MaxRel();
    wide.wall_seconds = run.result.wall_seconds;
    wide.cpu_seconds = run.result.cpu_seconds;
    wide.row_phase_seconds = run.result.row_phase_seconds;
    wide.col_phase_seconds = run.result.col_phase_seconds;
    wide.check_phase_seconds = run.result.check_phase_seconds;
    wide.recoveries = run.result.recovered_count;
    wide.recovery_rungs = run.result.recovery_rungs;

    std::cout << "mode:           " << mode << " (" << x0.rows() << " x "
              << x0.cols() << ", weights: " << scheme << ")\n"
              << "status:         " << ToString(run.result.status) << '\n'
              << "converged:      " << (run.result.converged() ? "yes" : "NO")
              << " in " << run.result.iterations << " iterations\n"
              << "final measure:  " << run.result.final_residual << " ("
              << ToString(opts.criterion) << ")\n"
              << "objective:      " << run.result.objective << '\n'
              << "max residual:   " << rep.MaxAbs() << " (abs), "
              << rep.MaxRel() << " (rel)\n"
              << "kernel backend: " << run.result.kernel_backend << '\n'
              << "cpu seconds:    " << run.result.cpu_seconds << '\n';

    if (opts.resume != nullptr)
      std::cout << "resumed:        " << args["resume"] << " (from iteration "
                << resume_state.iteration << ")\n";
    if (run.result.recovered_count > 0) {
      std::cout << "recoveries:     " << run.result.recovered_count
                << " (rungs:";
      for (std::uint8_t rung : run.result.recovery_rungs)
        std::cout << ' ' << static_cast<unsigned>(rung);
      std::cout << ")\n";
    }
    if (checkpoint_writer) {
      std::cout << "checkpoint:     " << checkpoint_writer->path() << " ("
                << checkpoint_writer->writes() << " writes";
      if (checkpoint_writer->write_failures() > 0)
        std::cout << ", " << checkpoint_writer->write_failures()
                  << " failures";
      std::cout << ")\n";
    }

    if (profiling) {
      const auto spans = obs::ToRawSpans(profiler.Events());
      if (args.count("profile-summary")) {
        std::cout << '\n';
        obs::PrintProfileSummary(std::cout, obs::SummarizeSpans(spans),
                                 run.result.wall_seconds);
      }
      if (args.count("profile-json")) {
        // Fail-soft: a trace-write failure degrades the export, never the
        // solve or its exit code (docs/ROBUSTNESS.md).
        if (obs::WriteChromeTrace(args["profile-json"], spans, "sea_solve")) {
          std::cout << "profile trace:  " << args["profile-json"] << " ("
                    << spans.size() << " spans, " << profiler.thread_count()
                    << " threads)\n";
        } else {
          std::cerr << "warning: could not write profile trace to "
                    << args["profile-json"] << '\n';
        }
      }
      if (profiler.dropped() > 0)
        std::cerr << "warning: profiler dropped " << profiler.dropped()
                  << " spans (per-thread buffer cap)\n";
    }

    if (trace_sink) {
      trace_sink->Flush();
      std::cout << "trace jsonl:    " << args["trace-jsonl"] << " ("
                << trace_sink->events_written() << " events)\n";
    }
    if (args.count("attribution-json")) {
      // Fail-soft like the profile export: a write failure degrades the
      // forensics output, never the solve or its exit code.
      if (attribution.WriteJsonl(args["attribution-json"], opts.epsilon,
                                 ToString(opts.criterion))) {
        std::cout << "attribution:    " << args["attribution-json"] << " ("
                  << attribution.checks().size() << " checks, "
                  << attribution.markets() << " markets)\n";
      } else {
        std::cerr << "warning: could not write attribution to "
                  << args["attribution-json"] << '\n';
      }
    }
    if (status_writer && !status_writer->path().empty())
      std::cout << "status file:    " << status_writer->path() << " ("
                << status_writer->writes() << " writes)\n";
    if (server)
      std::cout << "telemetry:      http://127.0.0.1:" << server->port()
                << " (" << server->requests_ok() << " ok, "
                << server->requests_error() << " error, "
                << sampler->samples_taken() << " samples)\n";
    if (!solve_log.path().empty())
      std::cout << "solve log:      " << solve_log.path() << '\n';
    if (opts.flight_recorder != nullptr && recorder.dumped())
      std::cout << "postmortem:     " << args["postmortem-json"] << " ("
                << recorder.recorded() << " events recorded)\n";
    if (want_metrics_json || want_metrics_prom)
      obs::RecordPoolMetrics(metrics, pool.Stats());
    if (want_metrics_json) {
      std::ofstream f(args["metrics-json"]);
      SEA_CHECK_MSG(f.good(), "cannot open metrics file for writing: " +
                                  args["metrics-json"]);
      obs::JsonObj doc;
      doc.Field("schema", obs::kTelemetrySchemaVersion)
          .Field("tool", "sea_solve")
          .Field("mode", mode)
          .Field("rows", static_cast<std::uint64_t>(x0.rows()))
          .Field("cols", static_cast<std::uint64_t>(x0.cols()))
          .Field("weights", scheme)
          .Field("epsilon", opts.epsilon)
          .Field("criterion", ToString(opts.criterion))
          .Field("threads", static_cast<std::uint64_t>(threads))
          .Field("schedule", schedule)
          .Field("sort", sort)
          .Field("backend", run.result.kernel_backend)
          .Raw("result", obs::ToJson(run.result))
          .Raw("feasibility", obs::JsonObj()
                                  .Field("max_abs", rep.MaxAbs())
                                  .Field("max_rel", rep.MaxRel())
                                  .Str())
          .Raw("metrics", obs::ToJson(metrics.Snapshot()))
          .Raw("pool", obs::ToJson(pool.Stats()));
      f << doc.Str() << '\n';
      std::cout << "metrics json:   " << args["metrics-json"] << '\n';
    }
    if (want_metrics_prom) {
      std::ofstream pf(args["metrics-prom"]);
      SEA_CHECK_MSG(pf.good(), "cannot open prometheus file for writing: " +
                                   args["metrics-prom"]);
      metrics.WritePrometheus(pf);
      std::cout << "metrics prom:   " << args["metrics-prom"] << '\n';
    }

    if (args.count("out")) {
      WriteMatrixCsv(args["out"], run.solution.x);
      std::cout << "estimate:       " << args["out"] << '\n';
    }
    emit_wide_event(ToString(run.result.status),
                    ExitCodeFor(run.result.status), "");
    return ExitCodeFor(run.result.status);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    flush_failure_metrics(e.what());
    emit_wide_event("error", 3, e.what());
    return 3;
  }
}
