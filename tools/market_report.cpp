// market_report — per-market convergence forensics from an attribution
// trace (docs/OBSERVABILITY.md, "Per-market attribution").
//
// Reads the JSONL written by `sea_solve --attribution-json` and prints:
//   * a consistency audit: at every check, the per-market residual
//     contributions re-summed in file order must match the engine's own
//     recorded L1 aggregate to 1e-12 (they are the same sequential sum, so
//     the shortest-round-trip doubles reproduce it bit-for-bit) — a
//     mismatch exits nonzero, because it means the attribution no longer
//     measures the solve it claims to;
//   * the top-K last-to-converge row markets: the first check after which a
//     market's residual stays at or below epsilon — the markets that gate
//     overall convergence;
//   * residual concentration at the final check: how many markets carry
//     50% / 90% of the remaining L1 residual (a handful of stubborn
//     markets vs. diffuse slow mixing);
//   * the churn-vs-check trajectory: aggregate active-set churn between
//     consecutive checks, against the stopping measure — churn that stays
//     high while the measure plateaus is the stall signature;
//   * per-market kernel-time hot spots (top-K by cumulative seconds).
//
// Malformed lines (e.g. the torn tail of a killed solve) are skipped and
// counted, not fatal — same tolerant reader as trace_report.
//
// Usage: market_report <attribution.jsonl> [--top K]
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace_reader.hpp"

namespace {

using sea::obs::TraceEvent;

constexpr double kConsistencyTol = 1e-12;

struct Check {
  std::size_t iter = 0;
  double measure = 0.0;
  double residual_l1 = 0.0;
  std::uint64_t churn = 0;
  std::vector<double> residuals;  // row markets, file order
};

struct Market {
  std::size_t slot = 0;
  std::string side;
  std::size_t index = 0;
  std::uint64_t solves = 0;
  std::uint64_t breakpoints = 0;
  double kernel_seconds = 0.0;
  std::uint64_t churn = 0;
};

std::string GetString(const TraceEvent& ev, const std::string& key) {
  const auto it = ev.strings.find(key);
  return it == ev.strings.end() ? std::string() : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_k = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--", 2) != 0 && path.empty()) {
      path = argv[i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " <attribution.jsonl> [--top K]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: " << argv[0] << " <attribution.jsonl> [--top K]\n";
    return 2;
  }

  try {
    std::size_t lines_skipped = 0;
    const auto events = sea::obs::ReadTraceJsonl(path, &lines_skipped);

    std::size_t rows = 0, cols = 0;
    double epsilon = 0.0;
    std::string criterion;
    std::vector<Check> checks;
    std::vector<Market> markets;
    for (const auto& ev : events) {
      const std::string type = ev.Type();
      if (type == "attribution") {
        rows = static_cast<std::size_t>(ev.Number("rows"));
        cols = static_cast<std::size_t>(ev.Number("cols"));
        epsilon = ev.Number("epsilon");
        criterion = GetString(ev, "criterion");
      } else if (type == "attribution_check") {
        Check c;
        c.iter = static_cast<std::size_t>(ev.Number("iter"));
        c.measure = ev.Number("measure");
        c.residual_l1 = ev.Number("residual_l1");
        c.churn = static_cast<std::uint64_t>(ev.Number("churn"));
        c.residuals.reserve(rows);
        checks.push_back(std::move(c));
      } else if (type == "attribution_residual") {
        if (!checks.empty())
          checks.back().residuals.push_back(ev.Number("residual"));
      } else if (type == "attribution_market") {
        Market m;
        m.slot = static_cast<std::size_t>(ev.Number("market"));
        m.side = GetString(ev, "side");
        m.index = static_cast<std::size_t>(ev.Number("index"));
        m.solves = static_cast<std::uint64_t>(ev.Number("solves"));
        m.breakpoints = static_cast<std::uint64_t>(ev.Number("breakpoints"));
        m.kernel_seconds = ev.Number("kernel_seconds");
        m.churn = static_cast<std::uint64_t>(ev.Number("churn"));
        markets.push_back(std::move(m));
      }
      // Unknown kinds: append-only schema, ignore.
    }

    std::cout << "attribution:     " << path << " — " << rows << " x " << cols
              << " markets, " << checks.size() << " checks (criterion "
              << (criterion.empty() ? "?" : criterion) << ", epsilon "
              << epsilon << ")\n";
    if (lines_skipped > 0)
      std::cout << "note: skipped " << lines_skipped
                << " malformed line(s)\n";
    if (checks.empty()) {
      std::cerr << "error: no attribution_check events in " << path << '\n';
      return 1;
    }

    // Consistency audit: re-sum each check's contributions in file order
    // and compare against the engine's recorded aggregate.
    double worst = 0.0;
    std::size_t worst_check = 0;
    bool shape_ok = true;
    for (std::size_t c = 0; c < checks.size(); ++c) {
      if (checks[c].residuals.size() != rows) shape_ok = false;
      double sum = 0.0;
      for (double r : checks[c].residuals) sum += r;
      const double diff = std::fabs(sum - checks[c].residual_l1);
      if (diff > worst) {
        worst = diff;
        worst_check = c;
      }
    }
    std::cout << "consistency:     max |sum - residual_l1| = " << worst
              << " over " << checks.size() << " checks (tolerance "
              << kConsistencyTol << ")\n";
    if (!shape_ok) {
      std::cerr << "error: residual line count does not match rows="
                << rows << " at some check (truncated trace?)\n";
      return 1;
    }
    if (worst > kConsistencyTol) {
      std::cerr << "error: attribution sum diverges from the engine "
                   "aggregate at check "
                << worst_check << " (iter " << checks[worst_check].iter
                << "): |diff| = " << worst << " > " << kConsistencyTol
                << '\n';
      return 1;
    }

    // Last-to-converge: first check after which the market's residual stays
    // <= epsilon through the end of the trace.
    struct Straggler {
      std::size_t market;
      std::size_t settled_iter;  // SIZE_MAX sentinel: never settled
      double final_residual;
    };
    std::vector<Straggler> stragglers;
    stragglers.reserve(rows);
    const Check& last = checks.back();
    for (std::size_t i = 0; i < rows; ++i) {
      std::size_t settled = static_cast<std::size_t>(-1);
      // Scan backwards: the settle point is just past the last violation.
      std::size_t c = checks.size();
      while (c > 0 && checks[c - 1].residuals[i] <= epsilon) --c;
      if (c < checks.size()) settled = checks[c].iter;
      stragglers.push_back({i, settled, last.residuals[i]});
    }
    std::stable_sort(stragglers.begin(), stragglers.end(),
                     [](const Straggler& a, const Straggler& b) {
                       if (a.settled_iter != b.settled_iter)
                         return a.settled_iter > b.settled_iter;
                       return a.final_residual > b.final_residual;
                     });
    std::cout << "last to converge (row markets, residual <= epsilon and "
                 "stays there):\n";
    for (std::size_t k = 0; k < std::min(top_k, stragglers.size()); ++k) {
      const Straggler& s = stragglers[k];
      std::cout << "  market " << s.market << "  settled ";
      if (s.settled_iter == static_cast<std::size_t>(-1))
        std::cout << "never";
      else
        std::cout << "iter " << s.settled_iter;
      std::cout << "  final residual " << s.final_residual << '\n';
    }

    // Residual concentration at the final check.
    std::vector<double> sorted = last.residuals;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    double total = 0.0;
    for (double r : sorted) total += r;
    if (total > 0.0) {
      double acc = 0.0;
      std::size_t at50 = 0, at90 = 0;
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        acc += sorted[i];
        if (at50 == 0 && acc >= 0.5 * total) at50 = i + 1;
        if (acc >= 0.9 * total) {
          at90 = i + 1;
          break;
        }
      }
      std::cout << "concentration:   " << at50 << " of " << rows
                << " markets carry 50% of final L1, " << at90
                << " carry 90%\n";
    } else {
      std::cout << "concentration:   final L1 residual is zero\n";
    }

    // Churn trajectory: active-set movement between consecutive checks vs.
    // the stopping measure.
    std::cout << "churn vs check:\n"
              << "  iter        measure     residual_l1     churn\n";
    for (const Check& c : checks)
      std::cout << "  " << c.iter << "  " << c.measure << "  "
                << c.residual_l1 << "  " << c.churn << '\n';

    // Kernel-time hot spots across both sides.
    if (!markets.empty()) {
      std::vector<const Market*> by_time;
      by_time.reserve(markets.size());
      for (const Market& m : markets) by_time.push_back(&m);
      std::stable_sort(by_time.begin(), by_time.end(),
                       [](const Market* a, const Market* b) {
                         return a->kernel_seconds > b->kernel_seconds;
                       });
      std::cout << "kernel hot spots (cumulative seconds):\n";
      for (std::size_t k = 0; k < std::min(top_k, by_time.size()); ++k) {
        const Market& m = *by_time[k];
        std::cout << "  " << m.side << " " << m.index << "  "
                  << m.kernel_seconds << " s  " << m.solves << " solves  "
                  << m.breakpoints << " breakpoints  churn " << m.churn
                  << '\n';
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}
