// serve_load — load generator and latency bench for the sea_serve daemon
// (docs/SERVING.md, "Load testing").
//
// Replays a deterministic mixed request script against a running daemon:
//
//   * cold    — unique problems (fresh centers => fresh structure), the
//               cache can never help;
//   * repeat  — byte-identical re-submissions of a base problem, served by
//               the exact tier (zero-iteration replay);
//   * perturb — the base structure with rescaled totals, served by the
//               nearby tier (warm-started solve).
//
// The mix is interleaved round-robin across --threads client connections,
// per-request latency is recorded, and the run appends ONE JSONL line to
// --json (default BENCH_serve.json; schema 4, same record shape as the
// bench/ documents so tools/bench_diff gates trajectories): p50/p95/p99
// latency, sustained requests/second, cache hit rate, error count.
//
// Exit codes: 0 all requests answered 2xx, 1 any error/shed response,
// 2 usage, 3 cannot reach the daemon.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.hpp"
#include "obs/bench_reader.hpp"
#include "obs/json_export.hpp"
#include "problems/diagonal_problem.hpp"
#include "serve/protocol.hpp"
#include "support/rng.hpp"

namespace {

using namespace sea;

[[noreturn]] void Usage(const char* argv0, const std::string& why = "") {
  if (!why.empty()) std::cerr << "error: " << why << '\n';
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --port <port>          daemon port (or --port-file)\n"
      << "  --port-file <path>     read the port from a --listen-port-file\n"
      << "  --requests <n>         total requests (default 2000)\n"
      << "  --threads <n>          client threads (default 4)\n"
      << "  --rows <m> --cols <n>  problem shape (default 12x12)\n"
      << "  --repeat-pct <p>       exact repeats, percent (default 40)\n"
      << "  --perturb-pct <p>      perturbed totals, percent (default 40)\n"
      << "  --epsilon <eps>        request tolerance (default 1e-6)\n"
      << "  --json <path>          bench JSONL out (default "
         "BENCH_serve.json)\n"
      << "  --json-truncate        start the JSON file fresh\n"
      << "  --quick                small preset (200 requests)\n";
  std::exit(2);
}

std::size_t ParseSize(const std::string& s, const char* flag) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    std::cerr << "error: malformed number '" << s << "' for " << flag << '\n';
    std::exit(2);
  }
}

double ParseDouble(const std::string& s, const char* flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    std::cerr << "error: malformed number '" << s << "' for " << flag << '\n';
    std::exit(2);
  }
}

// Deterministic fixed-mode problem: positive centers, unit-ish weights,
// consistent totals derived from the centers (always feasible).
DiagonalProblem MakeProblem(std::size_t m, std::size_t n, std::uint64_t seed,
                            double totals_scale) {
  Rng rng(seed);
  DenseMatrix x0(m, n);
  DenseMatrix gamma(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      x0(i, j) = rng.Uniform(1.0, 10.0);
      gamma(i, j) = rng.Uniform(0.5, 2.0);
    }
  Vector s0 = x0.RowSums();
  Vector d0(n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) d0[j] += x0(i, j);
  // Scaling both sides by the same factor keeps sum(s0) == sum(d0), so a
  // perturbed request is still feasible — it just has different totals
  // (same structure fingerprint, different exact fingerprint).
  for (double& v : s0) v *= totals_scale;
  for (double& v : d0) v *= totals_scale;
  return DiagonalProblem::MakeFixed(std::move(x0), std::move(gamma),
                                    std::move(s0), std::move(d0));
}

struct RequestResult {
  double seconds = 0.0;
  int status = 0;
  std::string cache_tier;
  bool ok = false;
};

std::string TimestampUtc() {
  char buf[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool quick = false, json_truncate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quick") {
      quick = true;
    } else if (flag == "--json-truncate") {
      json_truncate = true;
    } else if (flag.rfind("--", 0) == 0) {
      if (i + 1 >= argc) Usage(argv[0], flag + " needs a value");
      args[flag.substr(2)] = argv[++i];
    } else {
      Usage(argv[0], "unexpected operand " + flag);
    }
  }
  const auto arg = [&args](const char* key) { return args.count(key) != 0; };

  std::size_t port = 0;
  if (arg("port")) {
    port = ParseSize(args["port"], "--port");
  } else if (arg("port-file")) {
    std::ifstream in(args["port-file"]);
    if (!(in >> port)) {
      std::cerr << "error: cannot read port from " << args["port-file"]
                << '\n';
      return 3;
    }
  } else {
    Usage(argv[0], "need --port or --port-file");
  }
  if (port == 0 || port > 65535) Usage(argv[0], "port out of range");

  const std::size_t total =
      arg("requests") ? ParseSize(args["requests"], "--requests")
                      : (quick ? 200 : 2000);
  const std::size_t threads =
      arg("threads") ? ParseSize(args["threads"], "--threads") : 4;
  const std::size_t m = arg("rows") ? ParseSize(args["rows"], "--rows") : 12;
  const std::size_t n = arg("cols") ? ParseSize(args["cols"], "--cols") : 12;
  const std::size_t repeat_pct =
      arg("repeat-pct") ? ParseSize(args["repeat-pct"], "--repeat-pct") : 40;
  const std::size_t perturb_pct =
      arg("perturb-pct") ? ParseSize(args["perturb-pct"], "--perturb-pct")
                         : 40;
  if (repeat_pct + perturb_pct > 100)
    Usage(argv[0], "--repeat-pct + --perturb-pct must be <= 100");
  const double epsilon =
      arg("epsilon") ? ParseDouble(args["epsilon"], "--epsilon") : 1e-6;
  const std::string json_path =
      arg("json") ? args["json"] : "BENCH_serve.json";
  if (total == 0 || threads == 0 || m == 0 || n == 0)
    Usage(argv[0], "counts must be positive");

  // Reachability probe before spawning the fleet.
  {
    const auto health = net::HttpGet("127.0.0.1",
                                     static_cast<std::uint16_t>(port),
                                     "/healthz");
    if (!health.ok || health.status != 200) {
      std::cerr << "error: daemon unreachable on port " << port << ": "
                << (health.ok ? "status " + std::to_string(health.status)
                              : health.error)
                << '\n';
      return 3;
    }
  }

  // Pre-encode the script: request i is repeat / perturb / cold by its
  // residue mod 100 — a fixed interleave, so every run of the same flags
  // replays the identical byte stream.
  // Totals are scaled away from the centers' own row sums so every solve
  // does real work (scale 1.0 would make x = x0 optimal immediately).
  serve::SolveRequest base;
  base.problem = MakeProblem(m, n, /*seed=*/42, /*totals_scale=*/1.1);
  base.epsilon = epsilon;
  const std::string base_frame = serve::EncodeRequestFrame(base);

  std::vector<std::string> frames(total);
  std::vector<int> kinds(total);  // 0 = cold, 1 = repeat, 2 = perturb
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t r = i % 100;
    if (r < repeat_pct) {
      kinds[i] = 1;
      frames[i] = base_frame;
    } else if (r < repeat_pct + perturb_pct) {
      kinds[i] = 2;
      serve::SolveRequest req = base;
      // Distinct totals per request: same structure, different exact key.
      req.problem = MakeProblem(
          m, n, /*seed=*/42,
          1.1 + 0.01 * static_cast<double>(1 + i % 17));
      frames[i] = serve::EncodeRequestFrame(req);
    } else {
      kinds[i] = 0;
      serve::SolveRequest req = base;
      req.problem = MakeProblem(m, n, /*seed=*/1000 + i, 1.1);
      frames[i] = serve::EncodeRequestFrame(req);
    }
  }

  std::vector<RequestResult> results(total);
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= total) return;
      const auto t0 = std::chrono::steady_clock::now();
      const auto fetched =
          net::HttpPost("127.0.0.1", static_cast<std::uint16_t>(port),
                        "/solve", frames[i]);
      auto& r = results[i];
      r.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      r.status = fetched.status;
      r.ok = fetched.ok && fetched.status == 200;
      if (r.ok) {
        try {
          for (const auto& [key, value] :
               obs::JsonObjectFields(fetched.body)) {
            if (key == "cache_tier" && value.size() >= 2)
              r.cache_tier = value.substr(1, value.size() - 2);
          }
        } catch (const std::exception&) {
          r.ok = false;
        }
      }
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet;
  for (std::size_t t = 0; t < threads; ++t) fleet.emplace_back(worker);
  for (auto& t : fleet) t.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  std::vector<double> lat;
  std::vector<double> lat_cold, lat_warmable;
  std::uint64_t errors = 0, exact = 0, warm = 0, cold = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const auto& r = results[i];
    if (!r.ok) {
      ++errors;
      continue;
    }
    lat.push_back(r.seconds);
    if (kinds[i] == 0)
      lat_cold.push_back(r.seconds);
    else
      lat_warmable.push_back(r.seconds);
    if (r.cache_tier == "exact")
      ++exact;
    else if (r.cache_tier == "warm")
      ++warm;
    else
      ++cold;
  }
  std::sort(lat.begin(), lat.end());
  std::sort(lat_cold.begin(), lat_cold.end());
  std::sort(lat_warmable.begin(), lat_warmable.end());

  const double p50 = Percentile(lat, 0.50);
  const double p95 = Percentile(lat, 0.95);
  const double p99 = Percentile(lat, 0.99);
  const double rps = wall > 0.0 ? static_cast<double>(lat.size()) / wall : 0.0;
  const double hit_rate =
      lat.empty() ? 0.0
                  : static_cast<double>(exact + warm) /
                        static_cast<double>(lat.size());

  std::cout << "serve_load: " << total << " requests (" << m << "x" << n
            << "), " << threads << " threads\n"
            << "  answered:  " << lat.size() << " ok, " << errors
            << " errors\n"
            << "  tiers:     exact=" << exact << " warm=" << warm
            << " cold=" << cold << " (hit rate "
            << static_cast<int>(hit_rate * 100.0) << "%)\n"
            << "  latency:   p50=" << p50 * 1e3 << "ms p95=" << p95 * 1e3
            << "ms p99=" << p99 * 1e3 << "ms\n"
            << "  sustained: " << rps << " requests/sec over " << wall
            << "s\n";
  if (!lat_cold.empty() && !lat_warmable.empty())
    std::cout << "  p99 cold-only=" << Percentile(lat_cold, 0.99) * 1e3
              << "ms vs repeat/perturbed="
              << Percentile(lat_warmable, 0.99) * 1e3 << "ms\n";

  // One JSONL line, bench-diff comparable (metric names carry "seconds"
  // so latency regressions gate as lower-is-better).
  {
    const std::string dataset = std::to_string(m) + "x" + std::to_string(n);
    const auto record = [&dataset](const char* metric, double measured) {
      return obs::JsonObj()
          .Field("experiment", "serve_load")
          .Field("dataset", dataset)
          .Field("metric", metric)
          .Field("measured", measured)
          .Raw("paper", "null")
          .Field("note", "")
          .Str();
    };
    obs::JsonArr records;
    records.Raw(record("p50_seconds", p50))
        .Raw(record("p95_seconds", p95))
        .Raw(record("p99_seconds", p99))
        .Raw(record("p99_cold_seconds",
                    lat_cold.empty() ? 0.0 : Percentile(lat_cold, 0.99)))
        .Raw(record("p99_warmable_seconds",
                    lat_warmable.empty() ? 0.0
                                         : Percentile(lat_warmable, 0.99)))
        .Raw(record("requests_per_second", rps))
        .Raw(record("cache_hit_rate", hit_rate))
        .Raw(record("errors", static_cast<double>(errors)));
    const std::string doc =
        obs::JsonObj()
            .Field("schema", obs::kTelemetrySchemaVersion)
            .Field("bench", "serve")
            .Field("quick", quick)
            .Field("git_sha", SEA_GIT_SHA)
            .Field("build_type", SEA_BUILD_TYPE)
            .Field("timestamp", TimestampUtc())
            .Field("requests", static_cast<std::uint64_t>(total))
            .Field("threads", static_cast<std::uint64_t>(threads))
            .Field("wall_seconds", wall)
            .Raw("records", records.Str())
            .Str();
    std::ofstream out(json_path, json_truncate ? std::ios::trunc
                                               : std::ios::app);
    out << doc << '\n';
    if (!out) {
      std::cerr << "error: cannot write " << json_path << '\n';
      return 3;
    }
    std::cout << "  bench json: " << json_path << '\n';
  }

  return errors == 0 ? 0 : 1;
}
