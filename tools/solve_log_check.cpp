// solve_log_check — validate a wide-event solve log (obs/solve_log.hpp).
//
// The "exactly one well-formed line per invocation" contract is what makes
// the solve log trustworthy for fleet queries, and it is exactly the kind
// of contract that silently rots without an auditor. This tool re-reads a
// log in STRICT mode (any malformed line is a failure, unlike the
// tolerant trace tooling) and checks the invariants:
//
//   * every line is flat JSON with type == "solve" and the current
//     append-only schema's required fields;
//   * --expect-lines N: the log holds exactly N events (a CI run that
//     invoked sea_solve N times must find N lines — no more, no fewer);
//   * --expect-status S: the LAST event terminated with status S
//     ("converged", "cancelled", "infeasible", "stalled", "error", ...);
//   * --expect-exit-code C: the last event recorded exit code C;
//   * --expect-min-recoveries N: the last event rescued at least N
//     guardrail trips (the stall-recovered CI leg; the exact count is a
//     ladder implementation detail, >= 1 is the contract).
//
// Exit codes: 0 all checks pass, 1 a check failed, 2 usage, 3 unreadable
// log. Prints one summary line per event so failures are debuggable from
// CI output alone.
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace_reader.hpp"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <solve_log.jsonl> [--expect-lines N]"
               " [--expect-status S] [--expect-exit-code C]"
               " [--expect-min-recoveries N]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  long expect_lines = -1;
  long expect_exit_code = -1;
  long expect_recoveries = -1;
  std::string expect_status;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--expect-lines") {
      expect_lines = std::stol(next());
    } else if (arg == "--expect-status") {
      expect_status = next();
    } else if (arg == "--expect-exit-code") {
      expect_exit_code = std::stol(next());
    } else if (arg == "--expect-min-recoveries") {
      expect_recoveries = std::stol(next());
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      Usage(argv[0]);
    }
  }
  if (path.empty()) Usage(argv[0]);

  std::vector<sea::obs::TraceEvent> events;
  try {
    // Strict mode: a torn or malformed line in a solve log is itself a
    // finding, not something to skip past.
    events = sea::obs::ReadTraceJsonl(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }

  bool ok = true;
  const auto fail = [&ok](const std::string& why) {
    std::cerr << "FAIL: " << why << '\n';
    ok = false;
  };

  static const char* kRequired[] = {
      "status",     "mode",        "iterations",      "wall_seconds",
      "recoveries", "exit_code",   "peak_rss_bytes",  "options_fingerprint"};
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    const std::string line = "line " + std::to_string(i + 1);
    if (ev.Type() != "solve") fail(line + ": type != \"solve\"");
    if (ev.Number("schema", -1.0) < 4.0)
      fail(line + ": schema missing or predates the solve-log document");
    for (const char* key : kRequired)
      if (!ev.Has(key)) fail(line + ": missing field '" + key + "'");
    std::cout << line << ": status="
              << (ev.strings.count("status") ? ev.strings.at("status")
                                             : std::string("?"))
              << " exit_code=" << ev.Number("exit_code", -1.0)
              << " iterations=" << ev.Number("iterations", 0.0)
              << " recoveries=" << ev.Number("recoveries", 0.0) << '\n';
  }

  if (expect_lines >= 0 &&
      events.size() != static_cast<std::size_t>(expect_lines))
    fail("expected " + std::to_string(expect_lines) + " events, found " +
         std::to_string(events.size()));
  if (!events.empty()) {
    const auto& last = events.back();
    const std::string status =
        last.strings.count("status") ? last.strings.at("status") : "";
    if (!expect_status.empty() && status != expect_status)
      fail("last event status '" + status + "' != expected '" +
           expect_status + "'");
    if (expect_exit_code >= 0 &&
        last.Number("exit_code", -1.0) !=
            static_cast<double>(expect_exit_code))
      fail("last event exit_code != " + std::to_string(expect_exit_code));
    if (expect_recoveries >= 0 &&
        last.Number("recoveries", -1.0) <
            static_cast<double>(expect_recoveries))
      fail("last event recoveries < " + std::to_string(expect_recoveries));
  } else if (!expect_status.empty() || expect_exit_code >= 0 ||
             expect_recoveries >= 0) {
    fail("log is empty but expectations were given");
  }

  std::cout << "solve log: " << events.size() << " event(s), "
            << (ok ? "all checks passed" : "CHECKS FAILED") << '\n';
  return ok ? 0 : 1;
}
