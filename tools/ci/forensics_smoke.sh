#!/usr/bin/env bash
# Forensics smoke (docs/ROBUSTNESS.md): force a deterministic stall
# through the failpoint registry and prove the flight recorder publishes a
# parseable postmortem on the guardrail path — exit code must be 7
# (stalled) and the dump must carry the stalled header plus a termination
# event.
#
#   tools/ci/forensics_smoke.sh [build-dir]
set -euo pipefail
BUILD_DIR="${1:-build}"

set +e
SEA_FAILPOINTS=sea.engine.freeze_measure:2 "$BUILD_DIR"/tools/sea_solve \
  --mode fixed --matrix data/example_base.csv \
  --row-totals data/example_row_totals.csv \
  --col-totals data/example_col_totals.csv \
  --stall-checks 3 --postmortem-json postmortem.json
code=$?
set -e
[ "$code" -eq 7 ] || { echo "expected stalled exit 7, got $code"; exit 1; }
[ -s postmortem.json ] || { echo "postmortem.json missing"; exit 1; }
python3 -c "
import json
lines = [json.loads(l) for l in open('postmortem.json')]
head = lines[0]
assert head['type'] == 'postmortem', head
assert head['status'] == 'stalled', head
assert any(e.get('kind') == 'termination'
           for e in lines if e.get('type') == 'event'), lines
print('postmortem ok:', len(lines), 'lines, status', head['status'])
"
