#!/usr/bin/env bash
# Live telemetry smoke (docs/OBSERVABILITY.md, "Live endpoints"): start a
# deliberately long solve with the embedded HTTP server on an ephemeral
# port, scrape every endpoint MID-SOLVE and validate the payloads, then
# SIGINT the process and require a clean cancelled exit (6) plus exactly
# one well-formed wide event in the solve log.
#
#   tools/ci/live_telemetry_smoke.sh [build-dir]
set -euo pipefail
BUILD_DIR="${1:-build}"

python3 - <<'EOF'
import random
random.seed(7)
m, n = 400, 300
rows = [[random.uniform(1.0, 10.0) for _ in range(n)]
        for _ in range(m)]
open('live_base.csv', 'w').write('\n'.join(
    ','.join('%.6f' % v for v in r) for r in rows) + '\n')
rs = [sum(r) * 1.2 for r in rows]
cs = [sum(rows[i][j] for i in range(m)) * 1.2 for j in range(n)]
open('live_rows.csv', 'w').write(
    '\n'.join(repr(v) for v in rs) + '\n')
open('live_cols.csv', 'w').write(
    '\n'.join(repr(v) for v in cs) + '\n')
EOF
rm -f live_port.txt solve_log.jsonl
"$BUILD_DIR"/tools/sea_solve --mode fixed --matrix live_base.csv \
  --row-totals live_rows.csv --col-totals live_cols.csv \
  --epsilon 1e-14 --criterion abs --stall-checks 0 \
  --time-budget 60 --threads 2 \
  --listen 0 --listen-port-file live_port.txt \
  --solve-log solve_log.jsonl > live_solve.out 2>&1 &
pid=$!
for i in $(seq 1 100); do
  [ -s live_port.txt ] && break
  sleep 0.2
done
[ -s live_port.txt ] || { cat live_solve.out; exit 1; }
port=$(cat live_port.txt)
echo "scraping live solve on 127.0.0.1:$port"
curl -fsS "http://127.0.0.1:$port/healthz" | grep -q ok
curl -fsS "http://127.0.0.1:$port/statusz" | python3 -m json.tool
curl -fsS "http://127.0.0.1:$port/varz" | python3 -m json.tool
sleep 1.5  # a few sampler cadences, so the rate rings have data
curl -fsS "http://127.0.0.1:$port/metrics" | grep '_total '
curl -fsS "http://127.0.0.1:$port/metrics" \
  | grep -q 'sea_iterations_total [1-9]'
curl -fsS "http://127.0.0.1:$port/timeseries" \
  | python3 -m json.tool > /dev/null
curl -fsS \
  "http://127.0.0.1:$port/timeseries?metric=sea.iterations&last=8" \
  | python3 -c "
import json, sys
d = json.load(sys.stdin)
assert d['type'] == 'timeseries' and d['kind'] == 'rate', d
assert d['samples'], 'no rate samples mid-solve'
print('iteration rate samples:', d['samples'])
"
kill -INT "$pid"
set +e
wait "$pid"
code=$?
set -e
[ "$code" -eq 6 ] || {
  echo "expected cancelled exit 6, got $code"
  cat live_solve.out
  exit 1
}
grep -E 'telemetry:|solve log:' live_solve.out
"$BUILD_DIR"/tools/solve_log_check solve_log.jsonl --expect-lines 1 \
  --expect-status cancelled --expect-exit-code 6
