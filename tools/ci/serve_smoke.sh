#!/usr/bin/env bash
# Serve smoke (docs/SERVING.md): boot the sea_serve daemon on an ephemeral
# port, replay serve_load's mixed cold/repeat/perturbed script against it,
# and prove the full service contract in one pass —
#
#   * every request answered, zero errors (serve_load exits non-zero
#     otherwise, and /varz errors must read 0),
#   * the warm-start cache actually hit (exact + nearby > 0 on /varz),
#   * nothing was shed at smoke scale,
#   * SIGTERM drains cleanly: the daemon exits 0 after "drained",
#   * the per-request wide-event log passes solve_log_check with one
#     converged line per request.
#
#   tools/ci/serve_smoke.sh [build-dir] [bench-json-out]
#
# The second argument renames the serve_load bench document (default
# BENCH_serve.json) so the perf and nightly jobs can produce candidate
# files for bench_diff without clobbering the committed baseline.
set -euo pipefail
BUILD_DIR="${1:-build}"
BENCH_OUT="${2:-BENCH_serve.json}"
REQUESTS=200  # serve_load --quick request count

rm -f serve_port.txt serve_log.jsonl "$BENCH_OUT"
"$BUILD_DIR"/tools/sea_serve --listen 0 --listen-port-file serve_port.txt \
  --solve-log serve_log.jsonl > serve_smoke.out 2>&1 &
pid=$!
for i in $(seq 1 100); do
  [ -s serve_port.txt ] && break
  sleep 0.2
done
[ -s serve_port.txt ] || { cat serve_smoke.out; exit 1; }
port=$(cat serve_port.txt)
echo "sea_serve on 127.0.0.1:$port"

curl -fsS "http://127.0.0.1:$port/healthz" | grep -q ok
"$BUILD_DIR"/tools/serve_load --port-file serve_port.txt --quick \
  --json "$BENCH_OUT"
python3 -c "import json,sys; [json.loads(l) for l in open('$BENCH_OUT')]"

curl -fsS "http://127.0.0.1:$port/varz" | tee serve_varz.json \
  | python3 -c "
import json, sys
v = json.load(sys.stdin)
assert v['tool'] == 'sea_serve', v
assert v['requests'] == $REQUESTS, v
assert v['errors'] == 0, v
hits = v['cache_hits_exact'] + v['cache_hits_nearby']
assert hits > 0, 'warm-start cache never hit: %r' % v
assert v['shed'] == 0, v
print('varz ok: %d requests, %d cache hits (%d exact / %d nearby)'
      % (v['requests'], hits, v['cache_hits_exact'],
         v['cache_hits_nearby']))
"

kill -TERM "$pid"
set +e
wait "$pid"
code=$?
set -e
[ "$code" -eq 0 ] || {
  echo "expected clean drain exit 0, got $code"
  cat serve_smoke.out
  exit 1
}
grep -q 'drained:' serve_smoke.out
"$BUILD_DIR"/tools/solve_log_check serve_log.jsonl \
  --expect-lines "$REQUESTS" --expect-status converged --expect-exit-code 0
echo "serve smoke ok"
