#!/usr/bin/env bash
# Telemetry smoke: one instrumented solve on the committed example dataset
# must emit every offline telemetry artifact in parseable form, and the
# report tools must read them back. Shared by every build-and-test matrix
# leg (.github/workflows/ci.yml) and runnable locally:
#
#   tools/ci/telemetry_smoke.sh [build-dir]
set -euo pipefail
BUILD_DIR="${1:-build}"

"$BUILD_DIR"/tools/sea_solve --mode fixed \
  --matrix data/example_base.csv \
  --row-totals data/example_row_totals.csv \
  --col-totals data/example_col_totals.csv \
  --schedule cost --sort reuse --threads 2 \
  --metrics-json metrics.json --trace-jsonl trace.jsonl \
  --attribution-json attr.jsonl --status-file status.json \
  --metrics-prom metrics.prom
python3 -m json.tool metrics.json > /dev/null
python3 -m json.tool status.json > /dev/null
python3 -c "import json,sys; [json.loads(l) for l in open('trace.jsonl')]"
grep -q '_total ' metrics.prom
"$BUILD_DIR"/tools/trace_report trace.jsonl
"$BUILD_DIR"/tools/market_report attr.jsonl --top 3
"$BUILD_DIR"/bench/table1_diagonal_large --quick --json BENCH_table1.json
python3 -m json.tool BENCH_table1.json > /dev/null
