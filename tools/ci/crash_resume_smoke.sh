#!/usr/bin/env bash
# Crash-resume smoke (docs/ROBUSTNESS.md): kill the solver with the
# crash_after_checkpoint failpoint right after checkpoint #2 lands,
# inspect the survivor with checkpoint_info, resume from it, and require
# the resumed solution to be byte-identical to an uninterrupted reference
# run. CI runs this in every matrix leg, so the bit-identity contract is
# proven under both the scalar and simd kernel backends.
#
#   tools/ci/crash_resume_smoke.sh [build-dir]
set -euo pipefail
BUILD_DIR="${1:-build}"

"$BUILD_DIR"/tools/sea_solve --mode fixed \
  --matrix data/example_base.csv \
  --row-totals data/example_row_totals.csv \
  --col-totals data/example_col_totals.csv \
  --out resume_ref.csv > /dev/null
set +e
SEA_FAILPOINTS=sea.engine.crash_after_checkpoint:2 \
  "$BUILD_DIR"/tools/sea_solve --mode fixed \
  --matrix data/example_base.csv \
  --row-totals data/example_row_totals.csv \
  --col-totals data/example_col_totals.csv \
  --checkpoint resume_ck.bin --checkpoint-every 1 \
  --out resume_crashed.csv > /dev/null 2>&1
code=$?
set -e
[ "$code" -ge 128 ] || { echo "expected a crash (>=128), got $code"; exit 1; }
[ ! -e resume_crashed.csv ] || { echo "crashed run must not emit a solution"; exit 1; }
"$BUILD_DIR"/tools/checkpoint_info resume_ck.bin
"$BUILD_DIR"/tools/checkpoint_info resume_ck.bin --json \
  | python3 -m json.tool > /dev/null
"$BUILD_DIR"/tools/sea_solve --mode fixed \
  --matrix data/example_base.csv \
  --row-totals data/example_row_totals.csv \
  --col-totals data/example_col_totals.csv \
  --resume resume_ck.bin --out resume_resumed.csv | grep resumed:
cmp resume_ref.csv resume_resumed.csv
echo "resume is bit-identical to the uninterrupted reference"
