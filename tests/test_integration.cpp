// Cross-module integration tests: whole pipelines (dataset generation ->
// solve -> verification) and cross-algorithm agreement on shared instances.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bachem_korte.hpp"
#include "baselines/ras.hpp"
#include "baselines/rc_algorithm.hpp"
#include "baselines/reference_solvers.hpp"
#include "core/diagonal_sea.hpp"
#include "core/general_sea.hpp"
#include "datasets/general_dense.hpp"
#include "datasets/io_tables.hpp"
#include "datasets/large_diagonal.hpp"
#include "datasets/migration.hpp"
#include "datasets/sam_datasets.hpp"
#include "datasets/weights.hpp"
#include "parallel/thread_pool.hpp"
#include "problems/feasibility.hpp"
#include "spe/spe_generator.hpp"
#include "support/rng.hpp"

namespace sea {
namespace {

TEST(Integration, ThreeAlgorithmsAgreeOnGeneralProblem) {
  // SEA, RC and B-K on the same Table 7-protocol instance must find the
  // same optimum (same objective value, same solution up to tolerance).
  Rng rng(1);
  const auto p = datasets::MakeGeneralDense(5, 5, rng);

  GeneralSeaOptions sea_opts;
  sea_opts.outer_epsilon = 1e-7;
  const auto sea_run = SolveGeneral(p, sea_opts);

  RcOptions rc_opts;
  rc_opts.epsilon = 1e-7;
  rc_opts.max_outer_iterations = 5000;
  const auto rc_run = SolveRc(p, rc_opts);

  BachemKorteOptions bk_opts;
  bk_opts.epsilon = 1e-7;
  bk_opts.max_sweeps = 200000;
  const auto bk_run = SolveBachemKorte(p, bk_opts);

  ASSERT_TRUE(sea_run.result.converged());
  ASSERT_TRUE(rc_run.result.converged);
  ASSERT_TRUE(bk_run.result.converged);

  const double scale = std::max(1.0, std::abs(sea_run.result.objective));
  EXPECT_NEAR(rc_run.result.objective, sea_run.result.objective,
              1e-3 * scale);
  EXPECT_NEAR(bk_run.result.objective, sea_run.result.objective,
              1e-3 * scale);
}

TEST(Integration, Table1PipelineSmall) {
  // Scaled-down Table 1 instance end to end, serial vs parallel.
  Rng rng(2);
  const auto p = datasets::MakeLargeDiagonal(60, 60, rng);
  SeaOptions o;
  o.epsilon = 0.01;
  o.criterion = StopCriterion::kXChange;
  const auto serial = SolveDiagonal(p, o);
  ASSERT_TRUE(serial.result.converged());

  ThreadPool pool(4);
  SeaOptions op = o;
  op.pool = &pool;
  const auto parallel = SolveDiagonal(p, op);
  EXPECT_DOUBLE_EQ(serial.solution.x.MaxAbsDiff(parallel.solution.x), 0.0);

  const auto rep = CheckFeasibility(p, serial.solution);
  EXPECT_LT(rep.MaxRel(), 1e-2);
}

TEST(Integration, Table2PipelineSmall) {
  datasets::IoTableSpec spec;
  spec.name = "mini-io";
  spec.size = 40;
  spec.density = 0.5;
  spec.protocol = 'a';
  spec.growth_hi = 0.10;
  const auto p = datasets::MakeIoTable(spec, 0);
  SeaOptions o;
  o.epsilon = 1e-6;
  o.criterion = StopCriterion::kResidualRel;
  const auto run = SolveDiagonal(p, o);
  ASSERT_TRUE(run.result.converged());
  EXPECT_LT(KktStationarityError(p, run.solution), 1e-4);
  // Updated table respects structural support economics: entries stay
  // nonnegative and table totals hit the grown margins.
  EXPECT_GE(CheckFeasibility(p, run.solution).min_x, 0.0);
}

TEST(Integration, Table3PipelineSmall) {
  datasets::SamSpec spec;
  spec.name = "mini-sam";
  spec.accounts = 30;
  spec.transactions = 0;
  const auto p = datasets::MakeSam(spec);
  SeaOptions o;
  o.epsilon = 1e-3;
  o.criterion = StopCriterion::kResidualRel;
  const auto run = SolveDiagonal(p, o);
  ASSERT_TRUE(run.result.converged());
  // Balanced accounts at the solution.
  for (std::size_t i = 0; i < 30; ++i) {
    double rs = 0.0, cs = 0.0;
    for (std::size_t j = 0; j < 30; ++j) {
      rs += run.solution.x(i, j);
      cs += run.solution.x(j, i);
    }
    EXPECT_NEAR(rs, cs, 2e-3 * std::max(1.0, rs));
  }
}

TEST(Integration, Table4PipelineFull48States) {
  const auto p = datasets::MakeMigration(datasets::Table4Specs()[0]);
  SeaOptions o;
  o.epsilon = 1e-4;
  o.criterion = StopCriterion::kResidualRel;
  const auto run = SolveDiagonal(p, o);
  ASSERT_TRUE(run.result.converged());
  const auto rep = CheckFeasibility(p, run.solution);
  EXPECT_LT(rep.MaxRel(), 1e-3);
}

TEST(Integration, Table5PipelineSmall) {
  Rng rng(3);
  const auto spe_problem = spe::Generate(25, 25, rng);
  SeaOptions o;
  o.epsilon = 1e-8;
  o.criterion = StopCriterion::kResidualAbs;
  const auto run = SolveDiagonal(spe_problem.ToDiagonalProblem(), o);
  ASSERT_TRUE(run.result.converged());
  EXPECT_LT(spe::CheckEquilibrium(spe_problem, run.solution.x).Max(), 1e-4);
}

TEST(Integration, SeaHandlesRasInfeasibleInstance) {
  // On supports where RAS fails, SEA still solves the least-squares
  // problem (it can move off the support at finite cost).
  DenseMatrix x0(2, 2, 0.0);
  x0(0, 0) = 1.0;
  x0(0, 1) = 1.0;
  x0(1, 1) = 1.0;
  const Vector s0{2.0, 5.0}, d0{5.0, 2.0};

  const auto ras = SolveRas(x0, s0, d0, {.max_iterations = 2000});
  EXPECT_NE(ras.status, RasStatus::kConverged);

  DenseMatrix gamma(2, 2, 1.0);
  const auto p = DiagonalProblem::MakeFixed(x0, gamma, s0, d0);
  SeaOptions o;
  o.epsilon = 1e-9;
  o.criterion = StopCriterion::kResidualAbs;
  const auto run = SolveDiagonal(p, o);
  ASSERT_TRUE(run.result.converged());
  const auto oracle = SolveEnumerativeKkt(p);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_LT(run.solution.x.MaxAbsDiff(oracle->x), 1e-6);
}

TEST(Integration, WeightSchemesChangeSolutionsPredictably) {
  // Chi-square weights protect small entries relative to unit weights: the
  // relative adjustment of small cells shrinks.
  Rng rng(4);
  DenseMatrix x0(6, 6);
  for (double& v : x0.Flat()) v = rng.Uniform(0.1, 10.0);
  x0(0, 0) = 0.01;  // one tiny cell
  Vector s0 = x0.RowSums(), d0 = x0.ColSums();
  for (double& v : s0) v *= 1.5;
  for (double& v : d0) v *= 1.5;

  SeaOptions o;
  o.epsilon = 1e-9;
  o.criterion = StopCriterion::kResidualAbs;

  const auto unit = SolveDiagonal(
      DiagonalProblem::MakeFixed(x0, DenseMatrix(6, 6, 1.0), s0, d0), o);
  const auto chi = SolveDiagonal(
      DiagonalProblem::MakeFixed(x0, datasets::ChiSquareWeights(x0), s0, d0),
      o);
  ASSERT_TRUE(unit.result.converged());
  ASSERT_TRUE(chi.result.converged());
  const double rel_unit = std::abs(unit.solution.x(0, 0) - 0.01) / 0.01;
  const double rel_chi = std::abs(chi.solution.x(0, 0) - 0.01) / 0.01;
  EXPECT_LT(rel_chi, rel_unit);
}

TEST(Integration, GeneralMigrationInstanceSolvesEndToEnd) {
  // Table 8 protocol at full scale is a bench concern; here a structurally
  // identical scaled instance exercises the path.
  const auto p = datasets::MakeGeneralMigration(datasets::Table8Specs()[0]);
  ASSERT_EQ(p.G().rows(), 2304u);
  // Solve with loose tolerance to keep test time bounded.
  GeneralSeaOptions o;
  o.outer_epsilon = 1.0;
  o.inner.criterion = StopCriterion::kResidualRel;
  o.inner.epsilon = 1e-3;
  o.max_outer_iterations = 10;
  const auto run = SolveGeneral(p, o);
  EXPECT_GE(run.result.outer_iterations, 1u);
  EXPECT_GE(CheckFeasibility(run.solution.x, p.s0(), p.d0()).min_x, 0.0);
}

}  // namespace
}  // namespace sea
