#include <gtest/gtest.h>

#include <cmath>

#include "baselines/reference_solvers.hpp"
#include "problems/feasibility.hpp"
#include "support/rng.hpp"

namespace sea {
namespace {

DenseMatrix Fill(std::size_t m, std::size_t n, Rng& rng, double lo, double hi) {
  DenseMatrix x(m, n);
  for (double& v : x.Flat()) v = rng.Uniform(lo, hi);
  return x;
}

TEST(EnumerativeKkt, HandSolvableOneByTwo) {
  // min (x1 - 4)^2 + (x2 - 1)^2  s.t. x1 + x2 = 3 (row), x1 = a, x2 = 3 - a
  // Column totals fix each variable: d0 = {2.5, 0.5}.
  DenseMatrix x0(1, 2);
  x0(0, 0) = 4.0;
  x0(0, 1) = 1.0;
  DenseMatrix gamma(1, 2, 1.0);
  const auto p = DiagonalProblem::MakeFixed(x0, gamma, {3.0}, {2.5, 0.5});
  const auto sol = SolveEnumerativeKkt(p);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->x(0, 0), 2.5, 1e-9);
  EXPECT_NEAR(sol->x(0, 1), 0.5, 1e-9);
}

TEST(EnumerativeKkt, UnconstrainedInteriorCase) {
  // Base matrix already satisfies the totals: solution is x0 itself.
  Rng rng(1);
  DenseMatrix x0 = Fill(2, 3, rng, 1.0, 5.0);
  DenseMatrix gamma = Fill(2, 3, rng, 0.5, 2.0);
  const auto p = DiagonalProblem::MakeFixed(x0, gamma, x0.RowSums(),
                                            x0.ColSums());
  const auto sol = SolveEnumerativeKkt(p);
  ASSERT_TRUE(sol.has_value());
  EXPECT_LT(sol->x.MaxAbsDiff(x0), 1e-8);
}

TEST(EnumerativeKkt, ActivatesNonnegativity) {
  // Pulling totals far below the base forces small entries to zero.
  DenseMatrix x0(2, 2);
  x0(0, 0) = 10.0;
  x0(0, 1) = 0.1;
  x0(1, 0) = 0.1;
  x0(1, 1) = 10.0;
  DenseMatrix gamma(2, 2, 1.0);
  const auto p =
      DiagonalProblem::MakeFixed(x0, gamma, {5.0, 5.0}, {5.0, 5.0});
  const auto sol = SolveEnumerativeKkt(p);
  ASSERT_TRUE(sol.has_value());
  const auto rep = CheckFeasibility(p, *sol);
  EXPECT_LT(rep.MaxAbs(), 1e-8);
  EXPECT_LT(KktStationarityError(p, *sol), 1e-8);
}

TEST(EnumerativeKkt, SolutionSatisfiesKktInAllModes) {
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    // Fixed 2x3.
    {
      DenseMatrix x0 = Fill(2, 3, rng, 0.1, 5.0);
      DenseMatrix gamma = Fill(2, 3, rng, 0.3, 2.0);
      Vector s0 = x0.RowSums();
      Vector d0 = x0.ColSums();
      for (double& v : s0) v *= 1.4;
      for (double& v : d0) v *= 1.4;
      const auto p = DiagonalProblem::MakeFixed(x0, gamma, s0, d0);
      const auto sol = SolveEnumerativeKkt(p);
      ASSERT_TRUE(sol.has_value());
      EXPECT_LT(CheckFeasibility(p, *sol).MaxAbs(), 1e-7);
      EXPECT_LT(KktStationarityError(p, *sol), 1e-7);
    }
    // Elastic 2x2.
    {
      DenseMatrix x0 = Fill(2, 2, rng, 0.1, 5.0);
      DenseMatrix gamma = Fill(2, 2, rng, 0.3, 2.0);
      const auto p = DiagonalProblem::MakeElastic(
          x0, gamma, rng.UniformVector(2, 1.0, 10.0),
          rng.UniformVector(2, 0.5, 2.0), rng.UniformVector(2, 1.0, 10.0),
          rng.UniformVector(2, 0.5, 2.0));
      const auto sol = SolveEnumerativeKkt(p);
      ASSERT_TRUE(sol.has_value());
      EXPECT_LT(CheckFeasibility(p, *sol).MaxAbs(), 1e-7);
      EXPECT_LT(KktStationarityError(p, *sol), 1e-7);
    }
    // SAM 3x3.
    {
      DenseMatrix x0 = Fill(3, 3, rng, 0.1, 5.0);
      DenseMatrix gamma = Fill(3, 3, rng, 0.3, 2.0);
      const auto p = DiagonalProblem::MakeSam(
          x0, gamma, rng.UniformVector(3, 2.0, 12.0),
          rng.UniformVector(3, 0.5, 2.0));
      const auto sol = SolveEnumerativeKkt(p);
      ASSERT_TRUE(sol.has_value());
      EXPECT_LT(CheckFeasibility(p, *sol).MaxAbs(), 1e-7);
      EXPECT_LT(KktStationarityError(p, *sol), 1e-7);
      // SAM: row totals equal column totals.
      for (std::size_t i = 0; i < 3; ++i) {
        double rs = 0.0, cs = 0.0;
        for (std::size_t j = 0; j < 3; ++j) {
          rs += sol->x(i, j);
          cs += sol->x(j, i);
        }
        EXPECT_NEAR(rs, cs, 1e-7);
      }
    }
  }
}

TEST(EnumerativeKkt, GuardsAgainstLargeProblems) {
  Rng rng(3);
  DenseMatrix x0 = Fill(5, 5, rng, 0.1, 1.0);
  DenseMatrix gamma(5, 5, 1.0);
  const auto p = DiagonalProblem::MakeFixed(x0, gamma, x0.RowSums(),
                                            x0.ColSums());
  EXPECT_THROW(SolveEnumerativeKkt(p), InvalidArgument);
}

TEST(DualGradient, MatchesEnumerativeOnFixed) {
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    DenseMatrix x0 = Fill(2, 3, rng, 0.1, 5.0);
    DenseMatrix gamma = Fill(2, 3, rng, 0.3, 2.0);
    Vector s0 = x0.RowSums();
    Vector d0 = x0.ColSums();
    for (double& v : s0) v *= 0.8;
    for (double& v : d0) v *= 0.8;
    const auto p = DiagonalProblem::MakeFixed(x0, gamma, s0, d0);

    const auto oracle = SolveEnumerativeKkt(p);
    ASSERT_TRUE(oracle.has_value());
    const auto ref = SolveDualGradient(p);
    EXPECT_TRUE(ref.converged);
    EXPECT_LT(ref.solution.x.MaxAbsDiff(oracle->x), 1e-5);
  }
}

TEST(DualGradient, MatchesEnumerativeOnElasticAndSam) {
  Rng rng(5);
  {
    DenseMatrix x0 = Fill(2, 2, rng, 0.1, 5.0);
    DenseMatrix gamma = Fill(2, 2, rng, 0.3, 2.0);
    const auto p = DiagonalProblem::MakeElastic(
        x0, gamma, {4.0, 7.0}, {1.0, 0.5}, {3.0, 6.0}, {0.7, 1.2});
    const auto oracle = SolveEnumerativeKkt(p);
    ASSERT_TRUE(oracle.has_value());
    const auto ref = SolveDualGradient(p);
    EXPECT_TRUE(ref.converged);
    EXPECT_LT(ref.solution.x.MaxAbsDiff(oracle->x), 1e-5);
    for (std::size_t i = 0; i < 2; ++i)
      EXPECT_NEAR(ref.solution.s[i], oracle->s[i], 1e-5);
  }
  {
    DenseMatrix x0 = Fill(3, 3, rng, 0.1, 5.0);
    DenseMatrix gamma = Fill(3, 3, rng, 0.3, 2.0);
    const auto p = DiagonalProblem::MakeSam(x0, gamma, {5.0, 8.0, 3.0},
                                            {1.0, 0.5, 2.0});
    const auto oracle = SolveEnumerativeKkt(p);
    ASSERT_TRUE(oracle.has_value());
    const auto ref = SolveDualGradient(p);
    EXPECT_TRUE(ref.converged);
    EXPECT_LT(ref.solution.x.MaxAbsDiff(oracle->x), 1e-5);
  }
}

TEST(DualGradient, ConvergesOnMediumFixedProblem) {
  Rng rng(6);
  DenseMatrix x0 = Fill(15, 20, rng, 0.1, 100.0);
  DenseMatrix gamma = Fill(15, 20, rng, 0.01, 1.0);
  Vector s0 = x0.RowSums();
  Vector d0 = x0.ColSums();
  for (double& v : s0) v *= 1.3;
  for (double& v : d0) v *= 1.3;
  const auto p = DiagonalProblem::MakeFixed(x0, gamma, s0, d0);
  const auto ref = SolveDualGradient(p, {.grad_tol = 1e-6,
                                         .max_iterations = 500000});
  EXPECT_TRUE(ref.converged);
  const auto rep = CheckFeasibility(p, ref.solution);
  EXPECT_LT(rep.MaxAbs(), 1e-4);
  EXPECT_LT(KktStationarityError(p, ref.solution), 1e-6);
}

}  // namespace
}  // namespace sea
