// Public-API surface test: every header of the library, included together
// and in alphabetical order, must compile without relying on includes a
// previous user translation unit happened to pull in, and the one-line
// umbrella usage below must link. Guards against hidden include-order
// dependencies creeping into the public surface.
#include "baselines/bachem_korte.hpp"
#include "baselines/ras.hpp"
#include "baselines/rc_algorithm.hpp"
#include "baselines/reference_solvers.hpp"
#include "core/diagonal_sea.hpp"
#include "core/general_sea.hpp"
#include "core/iteration_engine.hpp"
#include "core/multiplier_rebalance.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "core/stopping.hpp"
#include "datasets/contingency.hpp"
#include "datasets/general_dense.hpp"
#include "datasets/io_tables.hpp"
#include "datasets/large_diagonal.hpp"
#include "datasets/migration.hpp"
#include "datasets/sam_datasets.hpp"
#include "datasets/weights.hpp"
#include "entropy/entropy_sea.hpp"
#include "equilibration/breakpoint_solver.hpp"
#include "equilibration/equilibrator.hpp"
#include "equilibration/kernel_backend.hpp"
#include "io/csv.hpp"
#include "io/experiment_record.hpp"
#include "io/table_printer.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/kernels.hpp"
#include "linalg/spd_generators.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/speedup_model.hpp"
#include "parallel/thread_pool.hpp"
#include "problems/diagonal_problem.hpp"
#include "problems/feasibility.hpp"
#include "problems/general_problem.hpp"
#include "problems/solution.hpp"
#include "problems/types.hpp"
#include "sparse/feasibility_flow.hpp"
#include "sparse/sparse_matrix.hpp"
#include "sparse/sparse_problem.hpp"
#include "sparse/sparse_sea.hpp"
#include "spe/spatial_price.hpp"
#include "spe/spe_generator.hpp"
#include "support/check.hpp"
#include "support/op_counter.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/stopwatch.hpp"

#include <gtest/gtest.h>

namespace sea {
namespace {

TEST(PublicHeaders, UmbrellaUsageCompilesAndLinks) {
  // Touch one symbol per major module so the linker resolves them all
  // through the umbrella inclusion above.
  Rng rng(1);
  DenseMatrix x0(2, 2, 1.0);
  const auto p = DiagonalProblem::MakeFixed(x0, DenseMatrix(2, 2, 1.0),
                                            {2.0, 2.0}, {2.0, 2.0});
  SeaOptions o;
  o.epsilon = 1e-8;
  o.criterion = StopCriterion::kResidualAbs;
  const auto run = SolveDiagonal(p, o);
  EXPECT_TRUE(run.result.converged());
  EXPECT_EQ(ToString(TotalsMode::kFixed), std::string("fixed"));
  EXPECT_EQ(SparseMatrix::FromDense(x0).nnz(), 4u);
  EXPECT_GE(EntropyObjective(x0, x0), 0.0);
}

}  // namespace
}  // namespace sea
