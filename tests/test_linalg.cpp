#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_matrix.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/kernels.hpp"
#include "linalg/spd_generators.hpp"
#include "parallel/thread_pool.hpp"
#include "support/rng.hpp"

namespace sea {
namespace {

DenseMatrix RandomMatrix(std::size_t r, std::size_t c, Rng& rng) {
  DenseMatrix m(r, c);
  for (double& v : m.Flat()) v = rng.Uniform(-5.0, 5.0);
  return m;
}

TEST(DenseMatrix, IdentityAndDiagonal) {
  const auto id = DenseMatrix::Identity(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);

  const auto d = DenseMatrix::Diagonal({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_EQ(d.DiagonalVector(), (Vector{1.0, 2.0, 3.0}));
}

TEST(DenseMatrix, TransposeRoundTrip) {
  Rng rng(1);
  const auto m = RandomMatrix(37, 53, rng);
  const auto t = m.Transposed();
  ASSERT_EQ(t.rows(), 53u);
  ASSERT_EQ(t.cols(), 37u);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_DOUBLE_EQ(t(j, i), m(i, j));
  EXPECT_DOUBLE_EQ(t.Transposed().MaxAbsDiff(m), 0.0);
}

TEST(DenseMatrix, TransposeLargeBlocked) {
  Rng rng(2);
  const auto m = RandomMatrix(130, 67, rng);  // exercises partial blocks
  const auto t = m.Transposed();
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      ASSERT_DOUBLE_EQ(t(j, i), m(i, j));
}

TEST(DenseMatrix, RowAndColSums) {
  DenseMatrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  EXPECT_EQ(m.RowSums(), (Vector{6.0, 15.0}));
  EXPECT_EQ(m.ColSums(), (Vector{5.0, 7.0, 9.0}));
}

TEST(DenseMatrix, MaxAbsDiffAndSymmetry) {
  DenseMatrix a(2, 2, 1.0), b(2, 2, 1.0);
  b(1, 0) = 1.5;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_FALSE(b.IsSymmetric());
  b(0, 1) = 1.5;
  EXPECT_TRUE(b.IsSymmetric());
}

TEST(Kernels, DotAxpyNorms) {
  const Vector x{1.0, 2.0, 3.0, 4.0, 5.0};
  const Vector y{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 35.0);
  EXPECT_DOUBLE_EQ(Sum(x), 15.0);
  EXPECT_DOUBLE_EQ(MaxAbs(y), 5.0);
  EXPECT_DOUBLE_EQ(Norm2(Vector{3.0, 4.0}), 5.0);

  Vector z = y;
  Axpy(2.0, x, z);
  EXPECT_EQ(z, (Vector{7.0, 8.0, 9.0, 10.0, 11.0}));
}

TEST(Kernels, DotMatchesNaiveOnOddLengths) {
  Rng rng(3);
  for (std::size_t n : {1u, 2u, 3u, 5u, 17u, 33u, 100u}) {
    const auto x = rng.UniformVector(n, -1.0, 1.0);
    const auto y = rng.UniformVector(n, -1.0, 1.0);
    double naive = 0.0;
    for (std::size_t i = 0; i < n; ++i) naive += x[i] * y[i];
    EXPECT_NEAR(Dot(x, y), naive, 1e-12);
  }
}

TEST(Kernels, GemvMatchesManual) {
  Rng rng(4);
  const auto a = RandomMatrix(7, 11, rng);
  const auto x = rng.UniformVector(11, -2.0, 2.0);
  Vector y(7);
  Gemv(a, x, y);
  for (std::size_t i = 0; i < 7; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 11; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-12);
  }
}

TEST(Kernels, GemvParallelMatchesSerial) {
  Rng rng(5);
  const auto a = RandomMatrix(64, 64, rng);
  const auto x = rng.UniformVector(64, -2.0, 2.0);
  Vector y_serial(64), y_par(64);
  Gemv(a, x, y_serial);
  ThreadPool pool(4);
  GemvParallel(a, x, y_par, &pool);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_DOUBLE_EQ(y_par[i], y_serial[i]);
}

TEST(Kernels, MatMulIdentity) {
  Rng rng(6);
  const auto a = RandomMatrix(5, 5, rng);
  const auto prod = MatMul(a, DenseMatrix::Identity(5));
  EXPECT_LT(prod.MaxAbsDiff(a), 1e-14);
}

TEST(Kernels, MatMulKnownProduct) {
  DenseMatrix a(2, 3), b(3, 2);
  double v = 1.0;
  for (double& x : a.Flat()) x = v++;
  v = 1.0;
  for (double& x : b.Flat()) x = v++;
  const auto c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(Cholesky, SolvesSpdSystem) {
  Rng rng(7);
  const auto a = MakeDiagonallyDominantSpd(20, rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.has_value());
  const auto xtrue = rng.UniformVector(20, -3.0, 3.0);
  Vector b(20);
  Gemv(a, xtrue, b);
  const auto x = chol->Solve(b);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::Factor(a).has_value());
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng(8);
  const auto a = MakeDiagonallyDominantSpd(8, rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.has_value());
  const auto llt = MatMul(chol->L(), chol->L().Transposed());
  EXPECT_LT(llt.MaxAbsDiff(a), 1e-9);
}

TEST(PartialPivLU, SolvesGeneralSystem) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomMatrix(15, 15, rng);
    const auto xtrue = rng.UniformVector(15, -3.0, 3.0);
    Vector b(15);
    Gemv(a, xtrue, b);
    auto lu = PartialPivLU::Factor(a);
    ASSERT_TRUE(lu.has_value());
    const auto x = lu->Solve(b);
    for (std::size_t i = 0; i < 15; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-7);
  }
}

TEST(PartialPivLU, DetectsSingular) {
  DenseMatrix a(3, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // third row all zero
  EXPECT_FALSE(PartialPivLU::Factor(a).has_value());
}

TEST(PartialPivLU, HandlesPermutationRequiredMatrix) {
  // Zero pivot in the (0,0) position forces a row swap.
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  auto lu = PartialPivLU::Factor(a);
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->Solve(Vector{3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SpdGenerators, ProducesDominantSymmetric) {
  Rng rng(10);
  const auto a = MakeDiagonallyDominantSpd(50, rng);
  EXPECT_TRUE(a.IsSymmetric());
  EXPECT_TRUE(IsStrictlyDiagonallyDominant(a));
  // Diagonal range per the paper's protocol.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GE(a(i, i), 500.0);
  }
}

TEST(SpdGenerators, MixedSignOffDiagonals) {
  Rng rng(11);
  const auto a = MakeDiagonallyDominantSpd(40, rng);
  int neg = 0, pos = 0;
  for (std::size_t i = 0; i < 40; ++i)
    for (std::size_t j = i + 1; j < 40; ++j) {
      if (a(i, j) < 0.0) ++neg;
      if (a(i, j) > 0.0) ++pos;
    }
  EXPECT_GT(neg, 100);
  EXPECT_GT(pos, 100);
}

TEST(SpdGenerators, DensityControl) {
  Rng rng(12);
  SpdOptions opts;
  opts.density = 0.2;
  const auto a = MakeDiagonallyDominantSpd(60, rng, opts);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < 60; ++i)
    for (std::size_t j = i + 1; j < 60; ++j)
      if (a(i, j) != 0.0) ++nnz;
  const double frac = static_cast<double>(nnz) / (60.0 * 59.0 / 2.0);
  EXPECT_NEAR(frac, 0.2, 0.06);
  EXPECT_TRUE(IsStrictlyDiagonallyDominant(a));
}

TEST(SpdGenerators, PositiveDefiniteViaCholesky) {
  Rng rng(13);
  const auto a = MakeDiagonallyDominantSpd(30, rng);
  EXPECT_TRUE(Cholesky::Factor(a).has_value());
}

}  // namespace
}  // namespace sea
