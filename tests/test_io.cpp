#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/experiment_record.hpp"
#include "io/table_printer.hpp"
#include "support/rng.hpp"

namespace sea {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TablePrinter, FormatsAlignedColumns) {
  TablePrinter t({"dataset", "CPU time (seconds)"});
  t.AddRow({"IOC72a", TablePrinter::Num(18.6697)});
  t.AddRow({"IO72b", TablePrinter::Num(438.3519)});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("IOC72a"), std::string::npos);
  EXPECT_NE(out.find("438.3519"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, NumAndIntHelpers) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 4), "2.0000");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
}

TEST(TablePrinter, RejectsRaggedRows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), InvalidArgument);
}

TEST(Csv, RoundTripWithQuoting) {
  const std::string path = TempPath("sea_test_quoting.csv");
  WriteCsv(path, {"name", "note"},
           {{"a", "plain"},
            {"b", "has,comma"},
            {"c", "has \"quotes\""}});
  const auto rows = ReadCsv(path);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][1], "note");
  EXPECT_EQ(rows[2][1], "has,comma");
  EXPECT_EQ(rows[3][1], "has \"quotes\"");
  std::remove(path.c_str());
}

TEST(Csv, MatrixRoundTrip) {
  Rng rng(1);
  DenseMatrix m(7, 5);
  for (double& v : m.Flat()) v = rng.Uniform(-100.0, 100.0);
  const std::string path = TempPath("sea_test_matrix.csv");
  WriteMatrixCsv(path, m);
  const auto back = ReadMatrixCsv(path);
  ASSERT_EQ(back.rows(), 7u);
  ASSERT_EQ(back.cols(), 5u);
  EXPECT_LT(back.MaxAbsDiff(m), 1e-12);
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(ReadCsv("/nonexistent/definitely/missing.csv"),
               InvalidArgument);
}

// Writes raw CSV text to a temp file and returns the path.
std::string WriteFixture(const char* name, const char* text) {
  const std::string path = TempPath(name);
  std::ofstream f(path);
  f << text;
  return path;
}

// Expects fn() to throw InvalidArgument whose message contains every
// fragment — the errors must name the file and the offending cell.
template <typename Fn>
void ExpectThrowContaining(Fn fn, std::initializer_list<const char*> parts) {
  try {
    fn();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    for (const char* part : parts)
      EXPECT_NE(what.find(part), std::string::npos)
          << "missing '" << part << "' in: " << what;
  }
}

TEST(Csv, RejectsNanCellNamingLocation) {
  const std::string path =
      WriteFixture("sea_test_nan_cell.csv", "1,2\n3,nan\n");
  ExpectThrowContaining([&] { ReadMatrixCsv(path); },
                        {"non-finite", "nan", "row 2", "column 2"});
  std::remove(path.c_str());
}

TEST(Csv, RejectsInfCellNamingLocation) {
  const std::string path =
      WriteFixture("sea_test_inf_cell.csv", "inf,2\n3,4\n");
  ExpectThrowContaining([&] { ReadMatrixCsv(path); },
                        {"non-finite", "row 1", "column 1"});
  std::remove(path.c_str());
}

TEST(Csv, RejectsGarbageCellNamingLocation) {
  const std::string path =
      WriteFixture("sea_test_garbage_cell.csv", "1,2\n3,4x\n");
  ExpectThrowContaining([&] { ReadMatrixCsv(path); },
                        {"malformed", "4x", "row 2", "column 2"});
  std::remove(path.c_str());
}

TEST(Csv, RejectsRaggedRowsNamingWidths) {
  const std::string path =
      WriteFixture("sea_test_ragged.csv", "1,2,3\n4,5\n");
  ExpectThrowContaining(
      [&] { ReadMatrixCsv(path); },
      {"ragged", "row 2", "2 cells", "expected 3"});
  std::remove(path.c_str());
}

TEST(Csv, RejectsEmptyCell) {
  const std::string path =
      WriteFixture("sea_test_empty_cell.csv", "1,\n3,4\n");
  ExpectThrowContaining([&] { ReadMatrixCsv(path); },
                        {"empty cell", "row 1", "column 2"});
  std::remove(path.c_str());
}

TEST(Csv, ReadVectorAcceptsColumnAndRowLayouts) {
  const std::string col = WriteFixture("sea_test_vec_col.csv", "1\n2\n3\n");
  const std::string row = WriteFixture("sea_test_vec_row.csv", "1,2,3\n");
  const std::vector<double> want{1.0, 2.0, 3.0};
  EXPECT_EQ(ReadVectorCsv(col), want);
  EXPECT_EQ(ReadVectorCsv(row), want);
  std::remove(col.c_str());
  std::remove(row.c_str());
}

TEST(Csv, ReadVectorRejectsBadCellNamingLocation) {
  const std::string path =
      WriteFixture("sea_test_vec_bad.csv", "1\nbogus\n");
  ExpectThrowContaining([&] { ReadVectorCsv(path); },
                        {"malformed", "bogus", "row 2"});
  std::remove(path.c_str());
}

TEST(ExperimentLog, PrintsPaperComparison) {
  ExperimentLog log;
  log.Add("table1", "1000x1000", "cpu_seconds", 12.5, 483.2065);
  log.Add("table6", "IO72b", "speedup_p2", 1.9, 1.93, "simulated");
  std::ostringstream os;
  log.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("table1"), std::string::npos);
  EXPECT_NE(out.find("483.2065"), std::string::npos);
  EXPECT_NE(out.find("simulated"), std::string::npos);
  // Ratio column present for rows with paper values.
  EXPECT_NE(out.find("measured/paper"), std::string::npos);
}

TEST(ExperimentLog, HandlesMissingPaperValue) {
  ExperimentLog log;
  log.Add("table3", "S2000", "cpu_seconds", 1.0);
  std::ostringstream os;
  log.Print(os);
  EXPECT_NE(os.str().find('-'), std::string::npos);
}

TEST(ExperimentLog, AppendCsvWritesHeaderOnce) {
  const std::string path = TempPath("sea_test_explog.csv");
  std::remove(path.c_str());
  ExperimentLog log;
  log.Add("t", "d", "m", 1.0, 2.0);
  log.AppendCsv(path);
  log.AppendCsv(path);
  const auto rows = ReadCsv(path);
  ASSERT_EQ(rows.size(), 3u);  // header + 2 data rows
  EXPECT_EQ(rows[0][0], "experiment");
  std::remove(path.c_str());
}

TEST(ExperimentLog, AppendCsvHeaderOnceAcrossSeparateLogs) {
  // Two distinct logs appending to one file (how successive bench binaries
  // share results.csv) must produce a single header.
  const std::string path = TempPath("sea_test_explog_two.csv");
  std::remove(path.c_str());
  ExperimentLog first, second;
  first.Add("t1", "d", "m", 1.0);
  second.Add("t2", "d", "m", 2.0);
  first.AppendCsv(path);
  second.AppendCsv(path);
  const auto rows = ReadCsv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "experiment");
  EXPECT_EQ(rows[1][0], "t1");
  EXPECT_EQ(rows[2][0], "t2");
  std::remove(path.c_str());
}

TEST(ExperimentLog, AppendCsvEscapesNoteField) {
  const std::string path = TempPath("sea_test_explog_note.csv");
  std::remove(path.c_str());
  ExperimentLog log;
  const std::string note = "paper says \"fast\", we measure slower";
  log.Add("t", "d,with,commas", "m", 1.0, std::nullopt, note);
  log.AppendCsv(path);
  const auto rows = ReadCsv(path);
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[1].size(), 6u);  // the note did not shear the row
  EXPECT_EQ(rows[1][1], "d,with,commas");
  EXPECT_EQ(rows[1][5], note);
  std::remove(path.c_str());
}

TEST(Csv, EscapeQuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

}  // namespace
}  // namespace sea
