#include <gtest/gtest.h>

#include <cmath>

#include "core/diagonal_sea.hpp"
#include "problems/feasibility.hpp"
#include "spe/spatial_price.hpp"
#include "spe/spe_generator.hpp"
#include "support/rng.hpp"

namespace sea {
namespace {

using spe::SpatialPriceProblem;

SeaOptions TightOptions() {
  SeaOptions o;
  o.epsilon = 1e-10;
  o.criterion = StopCriterion::kResidualAbs;
  o.max_iterations = 500000;
  return o;
}

TEST(Spe, GeneratorProducesValidProblem) {
  Rng rng(1);
  const auto p = spe::Generate(10, 12, rng);
  EXPECT_EQ(p.m(), 10u);
  EXPECT_EQ(p.n(), 12u);
  EXPECT_NO_THROW(p.Validate());
}

TEST(Spe, IsomorphismRoundTrip) {
  // The diagonal problem's centers/weights must encode exactly the price
  // function coefficients.
  Rng rng(2);
  const auto p = spe::Generate(3, 4, rng);
  const auto d = p.ToDiagonalProblem();
  ASSERT_EQ(d.mode(), TotalsMode::kElastic);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(d.alpha()[i], p.t[i] / 2.0, 1e-14);
    EXPECT_NEAR(d.s0()[i], -p.r[i] / p.t[i], 1e-14);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(d.gamma()(i, j), p.h(i, j) / 2.0, 1e-14);
      EXPECT_NEAR(d.x0()(i, j), -p.g(i, j) / p.h(i, j), 1e-12);
    }
  }
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(d.beta()[j], p.v[j] / 2.0, 1e-14);
    EXPECT_NEAR(d.d0()[j], p.u[j] / p.v[j], 1e-12);
  }
}

TEST(Spe, SeaSolutionIsSpatialPriceEquilibrium) {
  Rng rng(3);
  for (std::size_t size : {5u, 15u, 30u}) {
    const auto p = spe::Generate(size, size, rng);
    const auto run = SolveDiagonal(p.ToDiagonalProblem(), TightOptions());
    ASSERT_TRUE(run.result.converged()) << size;
    const auto rep = spe::CheckEquilibrium(p, run.solution.x);
    EXPECT_LT(rep.Max(), 1e-5) << size;
  }
}

TEST(Spe, MultipliersArePrices) {
  // lambda_i = -pi_i(s_i) and mu_j = rho_j(d_j) at the equilibrium.
  Rng rng(4);
  const auto p = spe::Generate(6, 8, rng);
  const auto run = SolveDiagonal(p.ToDiagonalProblem(), TightOptions());
  ASSERT_TRUE(run.result.converged());
  const Vector s = run.solution.x.RowSums();
  const Vector d = run.solution.x.ColSums();
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(run.solution.lambda[i], -p.SupplyPrice(i, s[i]), 1e-5);
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_NEAR(run.solution.mu[j], p.DemandPrice(j, d[j]), 1e-5);
}

TEST(Spe, MarketsClearConsistently) {
  Rng rng(5);
  const auto p = spe::Generate(10, 10, rng);
  const auto run = SolveDiagonal(p.ToDiagonalProblem(), TightOptions());
  ASSERT_TRUE(run.result.converged());
  // Estimated totals equal flow sums.
  const Vector s = run.solution.x.RowSums();
  const Vector d = run.solution.x.ColSums();
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(run.solution.s[i], s[i], 1e-6 * std::max(1.0, s[i]));
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(run.solution.d[j], d[j], 1e-6 * std::max(1.0, d[j]));
  // Positive trade exists under the standard coefficient ranges.
  double total = 0.0;
  for (double v : run.solution.x.Flat()) total += v;
  EXPECT_GT(total, 1.0);
}

TEST(Spe, ExpensiveArcsCarryNoFlow) {
  // Make one arc's transaction cost prohibitive: equilibrium must leave it
  // unused.
  Rng rng(6);
  auto p = spe::Generate(4, 4, rng);
  p.g(2, 3) = 1e6;
  const auto run = SolveDiagonal(p.ToDiagonalProblem(), TightOptions());
  ASSERT_TRUE(run.result.converged());
  EXPECT_NEAR(run.solution.x(2, 3), 0.0, 1e-9);
  const auto rep = spe::CheckEquilibrium(p, run.solution.x);
  EXPECT_LT(rep.Max(), 1e-5);
}

TEST(Spe, HigherDemandRaisesPrices) {
  // Comparative statics sanity: scaling all demand intercepts up increases
  // every demand-market clearing price.
  Rng rng(7);
  auto p = spe::Generate(5, 5, rng);
  const auto run1 = SolveDiagonal(p.ToDiagonalProblem(), TightOptions());
  ASSERT_TRUE(run1.result.converged());
  auto p2 = p;
  for (double& x : p2.u) x *= 1.5;
  const auto run2 = SolveDiagonal(p2.ToDiagonalProblem(), TightOptions());
  ASSERT_TRUE(run2.result.converged());
  const Vector d1 = run1.solution.x.ColSums();
  const Vector d2 = run2.solution.x.ColSums();
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_GE(p2.DemandPrice(j, d2[j]), p.DemandPrice(j, d1[j]) - 1e-6);
}

TEST(Spe, ValidateRejectsBadSlopes) {
  Rng rng(8);
  auto p = spe::Generate(2, 2, rng);
  p.t[0] = 0.0;
  EXPECT_THROW(p.Validate(), InvalidArgument);
}

}  // namespace
}  // namespace sea
